"""Tests for ihybrid_code: greedy selection, stats, projection behaviour."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.constraints.input_constraints import ConstraintSet
from repro.encoding.base import constraint_satisfied, satisfied_weight
from repro.encoding.ihybrid import HybridStats, ihybrid_code
from repro.fsm.machine import minimum_code_length

from tests.conftest import PAPER_WEIGHTS, paper_constraint_masks


def paper_cs() -> ConstraintSet:
    cs = ConstraintSet(7)
    for m, w in zip(paper_constraint_masks(), PAPER_WEIGHTS):
        cs.add(m, w)
    return cs


class TestIhybrid:
    def test_minimum_bits_by_default(self):
        enc = ihybrid_code(paper_cs())
        assert enc.nbits == 3

    def test_rejects_too_few_bits(self):
        with pytest.raises(ValueError):
            ihybrid_code(paper_cs(), nbits=2)

    def test_example_4_1_satisfies_all_at_4_bits(self):
        """The paper's Example 4.1 run ends with all six satisfied."""
        cs = paper_cs()
        enc = ihybrid_code(cs, nbits=4)
        for m in cs.masks():
            assert constraint_satisfied(enc, m)

    def test_greedy_prefers_heavy_constraints(self):
        cs = paper_cs()
        stats = HybridStats()
        ihybrid_code(cs, stats=stats)
        # the heaviest constraint {1,5,6} (weight 5) must be satisfied
        heaviest = max(cs.weights, key=cs.weights.get)
        assert heaviest in stats.satisfied

    def test_stats_partition_constraints(self):
        cs = paper_cs()
        stats = HybridStats()
        ihybrid_code(cs, stats=stats)
        assert set(stats.satisfied) | set(stats.rejected) == set(cs.masks())
        assert not set(stats.satisfied) & set(stats.rejected)
        assert stats.satisfied_weight + stats.unsatisfied_weight \
            == cs.total_weight()

    def test_large_space_satisfies_everything(self):
        cs = paper_cs()
        stats = HybridStats()
        enc = ihybrid_code(cs, nbits=7, stats=stats)
        assert not stats.rejected
        for m in cs.masks():
            assert constraint_satisfied(enc, m)

    def test_empty_constraints(self):
        cs = ConstraintSet(5)
        enc = ihybrid_code(cs)
        assert enc.nbits == minimum_code_length(5)
        assert len(set(enc.codes)) == 5


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=30, deadline=None)
def test_ihybrid_always_valid_and_monotone_in_bits(seed):
    """More encoding space never hurts the satisfied weight."""
    rng = random.Random(seed)
    n = rng.randrange(4, 9)
    cs = ConstraintSet(n)
    for _ in range(rng.randrange(1, 6)):
        cs.add(rng.randrange(1, 1 << n), rng.randrange(1, 6))
    low = ihybrid_code(cs)
    high = ihybrid_code(cs, nbits=min(n, low.nbits + 2))
    assert len(set(low.codes)) == n
    assert len(set(high.codes)) == n
    assert satisfied_weight(high, cs) >= satisfied_weight(low, cs)
