"""Tests for the espresso-style minimizer: every phase and the full loop."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cover import Cover, from_strings
from repro.logic.cube import Format
from repro.logic.espresso import (
    espresso,
    expand,
    irredundant,
    minimize,
    reduce_cover,
)
from repro.logic.verify import covers_equivalent, verify_minimization

from tests.conftest import cover_minterms, random_cover


class TestExpand:
    def test_expand_to_prime(self):
        # f = a'b' + a'b  -> a'
        fmt = Format([2, 2, 1])
        on = from_strings(fmt, ["0 0 1", "0 1 1"])
        e = expand(on, on)
        assert len(e) == 1
        assert fmt.field(e.cubes[0], 0) == 1
        assert fmt.field(e.cubes[0], 1) == 3

    def test_expand_respects_offset(self):
        fmt = Format([2, 2, 1])
        on = from_strings(fmt, ["0 0 1"])
        off = from_strings(fmt, ["1 - 1", "- 1 1"])
        e = expand(on, on, off)
        assert len(e) == 1
        assert e.cubes[0] == on.cubes[0]  # fully blocked

    def test_expand_swallows_covered_cubes(self):
        fmt = Format([2, 2, 1])
        on = from_strings(fmt, ["0 0 1", "0 1 1", "1 0 1"])
        e = expand(on, on)
        assert len(e) == 2


class TestIrredundant:
    def test_removes_redundant_middle(self):
        # a'b + ab' + (a'b' covered by nothing) keep; classic: x'y + xy' + xy
        fmt = Format([2, 2, 1])
        f = from_strings(fmt, ["0 - 1", "1 - 1", "- 1 1"])
        g = irredundant(f)
        assert len(g) == 2
        assert covers_equivalent(f, g)

    def test_respects_dc(self):
        fmt = Format([2, 2, 1])
        f = from_strings(fmt, ["0 - 1"])
        dc = from_strings(fmt, ["0 0 1", "0 1 1"])
        g = irredundant(f, dc)
        assert len(g) == 0  # entirely inside the dc set


class TestReduce:
    def test_reduce_shrinks_overlap(self):
        fmt = Format([2, 2, 1])
        f = from_strings(fmt, ["0 - 1", "- 1 1"])
        r = reduce_cover(f)
        assert covers_equivalent(Cover(fmt, f.cubes), r)

    def test_reduce_drops_fully_covered(self):
        fmt = Format([2, 2, 1])
        f = from_strings(fmt, ["- - 1", "0 0 1"])
        r = reduce_cover(f)
        assert cover_minterms(r) == cover_minterms(f)


class TestEspresso:
    def test_classic_example(self):
        # f = a'b' + a'b + ab == a' + b
        fmt = Format([2, 2, 1])
        on = from_strings(fmt, ["0 0 1", "0 1 1", "1 1 1"])
        m = espresso(on)
        assert len(m) == 2
        assert verify_minimization(m, on)

    def test_with_dc(self):
        # f on = a'b', dc = a'b  -> single cube a'
        fmt = Format([2, 2, 1])
        on = from_strings(fmt, ["0 0 1"])
        dc = from_strings(fmt, ["0 1 1"])
        m = espresso(on, dc)
        assert len(m) == 1
        assert verify_minimization(m, on, dc)

    def test_multioutput_sharing(self):
        # two outputs share the product a'b'
        fmt = Format([2, 2, 2])
        on = from_strings(fmt, ["0 0 01", "0 0 10"])
        m = espresso(on)
        assert len(m) == 1
        assert fmt.field(m.cubes[0], 2) == 3

    def test_explicit_off_allows_expansion_into_unspecified(self):
        fmt = Format([2, 2, 1])
        on = from_strings(fmt, ["0 0 1"])
        off = from_strings(fmt, ["1 1 1"])
        m = minimize(on, Cover(fmt), off)
        assert len(m) == 1
        # the cube may grow into the unspecified quadrant
        assert fmt.minterm_count(m.cubes[0]) > 1
        assert verify_minimization(m, on, off=off)

    def test_low_effort_still_correct(self):
        fmt = Format([2, 2, 2, 1])
        on = from_strings(fmt, ["0 0 0 1", "0 0 1 1", "0 1 1 1", "1 1 1 1"])
        m = espresso(on, effort="low")
        assert verify_minimization(m, on)

    def test_mv_variable(self):
        # MV var with 4 values: f asserts output for values {0,1} of v
        fmt = Format([4, 1])
        on = Cover(fmt, [fmt.cube_from_fields([0b0001, 1]),
                         fmt.cube_from_fields([0b0010, 1])])
        m = espresso(on)
        assert len(m) == 1
        assert fmt.field(m.cubes[0], 0) == 0b0011

    def test_empty_on_set(self):
        fmt = Format([2, 1])
        m = espresso(Cover(fmt))
        assert len(m) == 0


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_espresso_equivalence_random(seed):
    """Minimized cover stays equivalent to the original function."""
    rng = random.Random(seed)
    fmt = Format(rng.choice([[2, 2, 1], [2, 2, 2], [3, 2, 2], [2, 2, 2, 1]]))
    on = random_cover(fmt, rng.randrange(1, 7), rng)
    dc = random_cover(fmt, rng.randrange(0, 3), rng)
    m = espresso(on, dc)
    assert verify_minimization(m, on, dc)
    assert len(m) <= len(on) + len(dc)
    # exact minterm check: on ⊆ m ∪ dc and m ⊆ on ∪ dc
    on_m = cover_minterms(on)
    dc_m = cover_minterms(dc)
    got = cover_minterms(m)
    assert on_m <= got | dc_m
    assert got <= on_m | dc_m


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_espresso_never_intersects_explicit_off(seed):
    rng = random.Random(seed)
    fmt = Format([2, 2, 2])
    on = random_cover(fmt, rng.randrange(1, 5), rng)
    off_full = Cover(fmt)
    # off = complement of on (so on/off partition, no dc)
    from repro.logic.urp import complement

    off_full.cubes = complement(on).cubes
    m = minimize(on, Cover(fmt), off_full)
    assert verify_minimization(m, on, off=off_full)
    assert cover_minterms(m) == cover_minterms(on)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_espresso_result_is_prime_and_irredundant(seed):
    rng = random.Random(seed)
    fmt = Format([2, 2, 1])
    on = random_cover(fmt, rng.randrange(1, 6), rng)
    m = espresso(on)
    on_dc = on
    # primality: raising any position breaks implicant-ness
    for c in m.cubes:
        for b in range(fmt.width):
            if not (c >> b) & 1:
                grown = c | (1 << b)
                assert not on_dc.contains_cube(grown)
    # irredundancy (greedy): no cube covered by the others
    for i, c in enumerate(m.cubes):
        rest = Cover(fmt, [x for j, x in enumerate(m.cubes) if j != i])
        assert not rest.contains_cube(c)
