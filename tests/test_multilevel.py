"""Tests for the quick-factoring multilevel literal estimator."""

from repro.encoding.base import Encoding
from repro.eval.instantiate import evaluate_encoding
from repro.eval.multilevel import factored_literals, multilevel_literals, \
    pla_output_sops
from repro.fsm.benchmarks import benchmark


def lits(*pairs):
    return frozenset(pairs)


class TestFactoredLiterals:
    def test_empty(self):
        assert factored_literals([]) == 0

    def test_constant_one(self):
        assert factored_literals([lits()]) == 0

    def test_single_cube(self):
        assert factored_literals([lits((0, 1), (1, 0))]) == 2

    def test_no_sharing_is_flat_count(self):
        sop = [lits((0, 1)), lits((1, 0))]
        assert factored_literals(sop) == 2

    def test_factoring_beats_flat(self):
        # ab + ac = a(b + c): flat 4 literals, factored 3
        sop = [lits((0, 1), (1, 1)), lits((0, 1), (2, 1))]
        assert factored_literals(sop) == 3

    def test_nested_factoring(self):
        # abc + abd + abe = ab(c+d+e): flat 9, factored 5
        sop = [
            lits((0, 1), (1, 1), (2, 1)),
            lits((0, 1), (1, 1), (3, 1)),
            lits((0, 1), (1, 1), (4, 1)),
        ]
        assert factored_literals(sop) == 5

    def test_duplicates_collapse(self):
        sop = [lits((0, 1)), lits((0, 1))]
        assert factored_literals(sop) == 1

    def test_never_exceeds_flat_form(self):
        import random

        rng = random.Random(5)
        for _ in range(50):
            sop = []
            for _ in range(rng.randrange(1, 8)):
                cube = frozenset(
                    (v, rng.randrange(2)) for v in range(5)
                    if rng.random() < 0.5
                )
                sop.append(cube)
            flat = sum(len(c) for c in set(sop))
            assert factored_literals(sop) <= flat


class TestPlaLiterals:
    def test_output_sops_cover_all_outputs(self):
        fsm = benchmark("lion")
        pla = evaluate_encoding(fsm, Encoding(2, [0, 1, 2, 3]))
        sops = pla_output_sops(pla)
        assert len(sops) == pla.state_bits + fsm.num_outputs

    def test_multilevel_literals_positive(self):
        fsm = benchmark("bbtas")
        pla = evaluate_encoding(fsm, Encoding(3, [0, 1, 2, 3, 4, 5]))
        assert multilevel_literals(pla) > 0

    def test_shiftreg_identity_encoding_is_wires(self):
        """With the natural code, a shift register is almost pure wiring."""
        fsm = benchmark("shiftreg")
        pla = evaluate_encoding(fsm, Encoding(3, list(range(8))))
        assert multilevel_literals(pla) <= 4
