"""The unified runtime configuration: layering, validation, the shim.

``repro.config`` replaced six scattered ``os.environ`` reads with one
precedence chain (env < ``$NOVA_CONFIG`` file < ``config_scope``).
These tests pin the contract the rest of the tree now leans on: every
layer validates eagerly and names its source, blank env vars count as
unset, and the deprecated ``NOVA_*`` variables keep working — with a
``DeprecationWarning`` — for one more release.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro import config
from repro.config import (
    CACHE_POLICIES,
    DEFAULT_CACHE_MAX_BYTES,
    ENV_VARS,
    RuntimeConfig,
    config_scope,
    get_config,
)


@pytest.fixture(autouse=True)
def _clean_config_env(monkeypatch):
    """Start from no NOVA_* configuration at all (the conftest autouse
    cache fixture exports NOVA_CACHE=off for hermeticity; these tests
    control the environment themselves)."""
    for var in ENV_VARS.values():
        monkeypatch.delenv(var, raising=False)
    monkeypatch.delenv(config.CONFIG_FILE_VAR, raising=False)
    # warn-once bookkeeping is process-global; isolate it per test
    monkeypatch.setattr(config, "_warned_vars", set())


def write_config(tmp_path, monkeypatch, body, name="nova.json"):
    path = tmp_path / name
    if name.endswith(".toml"):
        path.write_text(body, encoding="utf-8")
    else:
        path.write_text(json.dumps(body), encoding="utf-8")
    monkeypatch.setenv(config.CONFIG_FILE_VAR, str(path))
    return path


# ----------------------------------------------------------------------
# defaults and the dataclass's own validation
# ----------------------------------------------------------------------
class TestRuntimeConfig:
    def test_defaults(self):
        cfg = RuntimeConfig()
        assert cfg.cache == "on"
        assert cfg.cache_dir is None
        assert cfg.cache_max_bytes == DEFAULT_CACHE_MAX_BYTES
        assert cfg.substrate == "python"
        assert cfg.perf is False
        assert cfg.bench_jobs == 1

    def test_get_config_with_empty_environment_is_all_defaults(self):
        assert get_config() == RuntimeConfig()

    @pytest.mark.parametrize("field,bad", [
        ("cache", "sometimes"),
        ("substrate", "fortran"),
        ("cache_max_bytes", -1),
        ("cache_max_bytes", "1000"),
        ("bench_jobs", 0),
        ("bench_jobs", True),
        ("perf", "yes"),
        ("cache_dir", 42),
    ])
    def test_constructor_rejects_bad_fields(self, field, bad):
        with pytest.raises(ValueError):
            RuntimeConfig(**{field: bad})

    def test_replace_revalidates(self):
        cfg = RuntimeConfig()
        assert cfg.replace(cache="memory").cache == "memory"
        with pytest.raises(ValueError):
            cfg.replace(cache="maybe")

    def test_to_dict_round_trips_through_a_config_file(
            self, tmp_path, monkeypatch):
        cfg = RuntimeConfig(cache="memory", substrate="python",
                            bench_jobs=3, perf=True)
        write_config(tmp_path, monkeypatch, cfg.to_dict())
        assert get_config() == cfg

    def test_resolved_cache_dir_default_and_explicit(self, tmp_path):
        assert RuntimeConfig().resolved_cache_dir().name == "nova"
        explicit = RuntimeConfig(cache_dir=str(tmp_path))
        assert explicit.resolved_cache_dir() == tmp_path


# ----------------------------------------------------------------------
# layer 1: the deprecated environment shim
# ----------------------------------------------------------------------
class TestEnvLayer:
    def test_each_legacy_var_still_routes(self, monkeypatch):
        monkeypatch.setenv("NOVA_CACHE", "memory")
        monkeypatch.setenv("NOVA_CACHE_DIR", "/tmp/somewhere")
        monkeypatch.setenv("NOVA_CACHE_MAX_BYTES", "1024")
        monkeypatch.setenv("NOVA_SUBSTRATE", "python")
        monkeypatch.setenv("NOVA_PERF", "1")
        monkeypatch.setenv("NOVA_BENCH_JOBS", "4")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cfg = get_config()
        assert cfg == RuntimeConfig(cache="memory",
                                    cache_dir="/tmp/somewhere",
                                    cache_max_bytes=1024,
                                    substrate="python", perf=True,
                                    bench_jobs=4)

    def test_consulting_a_legacy_var_warns_once(self, monkeypatch):
        monkeypatch.setenv("NOVA_CACHE", "off")
        with pytest.warns(DeprecationWarning, match="NOVA_CACHE"):
            assert config.cache_policy() == "off"
        # second consultation of the same var stays quiet
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert config.cache_policy() == "off"

    def test_unset_vars_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert get_config() == RuntimeConfig()

    @pytest.mark.parametrize("alias,expect", [
        ("1", "on"), ("true", "on"), ("ON", "on"), ("yes", "on"),
        ("0", "off"), ("no", "off"), ("False", "off"),
        ("memory", "memory"),
    ])
    def test_cache_aliases(self, monkeypatch, alias, expect):
        monkeypatch.setenv("NOVA_CACHE", alias)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert config.cache_policy() == expect
        assert expect in CACHE_POLICIES

    def test_blank_env_var_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv("NOVA_CACHE", "  ")
        monkeypatch.setenv("NOVA_BENCH_JOBS", "")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert get_config() == RuntimeConfig()

    @pytest.mark.parametrize("var,raw", [
        ("NOVA_CACHE", "of"),
        ("NOVA_CACHE_MAX_BYTES", "many"),
        ("NOVA_CACHE_MAX_BYTES", "-5"),
        ("NOVA_SUBSTRATE", "cuda"),
        ("NOVA_PERF", "maybe"),
        ("NOVA_BENCH_JOBS", "0"),
        ("NOVA_BENCH_JOBS", "two"),
    ])
    def test_bad_env_values_raise_and_name_the_variable(
            self, monkeypatch, var, raw):
        monkeypatch.setenv(var, raw)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match=var):
                get_config()

    def test_narrow_accessor_ignores_other_fields_errors(
            self, monkeypatch):
        """An import-time reader of one knob must not trip over another
        knob's garbage — that's the point of the narrow accessors."""
        monkeypatch.setenv("NOVA_CACHE_MAX_BYTES", "garbage")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert config.substrate() is None        # unaffected
            assert config.bench_jobs() == 1          # unaffected
            with pytest.raises(ValueError):
                config.cache_max_bytes()             # its own error
            with pytest.raises(ValueError):
                get_config()                         # eager full check

    def test_substrate_accessor_distinguishes_unset_from_python(
            self, monkeypatch):
        assert config.substrate() is None
        monkeypatch.setenv("NOVA_SUBSTRATE", "python")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert config.substrate() == "python"


# ----------------------------------------------------------------------
# layer 2: the $NOVA_CONFIG file
# ----------------------------------------------------------------------
class TestFileLayer:
    def test_json_file_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("NOVA_CACHE", "on")
        write_config(tmp_path, monkeypatch, {"cache": "memory"})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert config.cache_policy() == "memory"

    def test_toml_file(self, tmp_path, monkeypatch):
        pytest.importorskip("tomllib")
        write_config(tmp_path, monkeypatch,
                     'cache = "off"\nbench_jobs = 2\n', name="nova.toml")
        cfg = get_config()
        assert cfg.cache == "off" and cfg.bench_jobs == 2

    def test_fields_not_in_file_fall_through_to_env(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("NOVA_BENCH_JOBS", "5")
        write_config(tmp_path, monkeypatch, {"cache": "off"})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cfg = get_config()
        assert cfg.cache == "off" and cfg.bench_jobs == 5

    def test_unknown_keys_rejected(self, tmp_path, monkeypatch):
        write_config(tmp_path, monkeypatch, {"cache_polcy": "off"})
        with pytest.raises(ValueError, match="cache_polcy"):
            get_config()

    def test_bad_value_names_file_key(self, tmp_path, monkeypatch):
        write_config(tmp_path, monkeypatch, {"substrate": "tpu"})
        with pytest.raises(ValueError, match="NOVA_CONFIG:substrate"):
            get_config()

    def test_missing_file_is_an_eager_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv(config.CONFIG_FILE_VAR,
                           str(tmp_path / "absent.json"))
        with pytest.raises(ValueError, match="NOVA_CONFIG"):
            get_config()

    def test_invalid_json_is_an_eager_error(self, tmp_path, monkeypatch):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        monkeypatch.setenv(config.CONFIG_FILE_VAR, str(path))
        with pytest.raises(ValueError, match="invalid JSON"):
            get_config()

    def test_non_object_file_rejected(self, tmp_path, monkeypatch):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        monkeypatch.setenv(config.CONFIG_FILE_VAR, str(path))
        with pytest.raises(ValueError, match="one object"):
            get_config()

    def test_narrow_accessor_unaffected_by_other_fields_file_errors(
            self, tmp_path, monkeypatch):
        """A bad *cache* value in the file must not break the
        import-time substrate() read (repro.logic.backend); only
        get_config and the cache accessors may trip on it."""
        write_config(tmp_path, monkeypatch, {"cache": "sideways",
                                             "substrate": "python"})
        assert config.substrate() == "python"
        with pytest.raises(ValueError, match="NOVA_CONFIG:cache"):
            config.cache_policy()
        with pytest.raises(ValueError, match="NOVA_CONFIG:cache"):
            get_config()

    def test_native_file_values_validated_per_field(
            self, tmp_path, monkeypatch):
        write_config(tmp_path, monkeypatch, {"cache_max_bytes": -5})
        with pytest.raises(ValueError, match="NOVA_CONFIG:cache_max_bytes"):
            config.cache_max_bytes()

    def test_file_does_not_trigger_deprecation_warnings(
            self, tmp_path, monkeypatch):
        write_config(tmp_path, monkeypatch, {"cache": "memory",
                                             "bench_jobs": 2})
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cfg = get_config()
        assert cfg.cache == "memory"


# ----------------------------------------------------------------------
# layer 3: config_scope, and the full precedence chain
# ----------------------------------------------------------------------
class TestScopeLayer:
    def test_scope_beats_file_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("NOVA_CACHE", "on")          # lowest
        write_config(tmp_path, monkeypatch, {"cache": "memory"})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert config.cache_policy() == "memory"    # file > env
            with config_scope(cache="off"):
                assert config.cache_policy() == "off"   # scope > file
            assert config.cache_policy() == "memory"    # restored

    def test_scopes_nest_innermost_wins_per_field(self):
        with config_scope(cache="off", bench_jobs=3):
            with config_scope(cache="memory"):
                cfg = get_config()
                assert cfg.cache == "memory"
                assert cfg.bench_jobs == 3       # from the outer scope
            assert get_config().cache == "off"

    def test_scope_yields_the_active_config(self):
        with config_scope(perf=True) as cfg:
            assert cfg.perf is True

    def test_scope_validates_eagerly(self):
        with pytest.raises(ValueError, match="config_scope"):
            with config_scope(cache="sideways"):
                pass  # pragma: no cover - must not be reached

    def test_scope_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="cache_policy"):
            with config_scope(cache_policy="off"):
                pass  # pragma: no cover - must not be reached

    def test_scope_unwinds_on_exception(self):
        with pytest.raises(RuntimeError):
            with config_scope(cache="off"):
                raise RuntimeError("boom")
        assert get_config().cache == "on"

    def test_scope_accepts_path_cache_dir(self, tmp_path):
        with config_scope(cache_dir=tmp_path):
            assert config.cache_dir() == tmp_path


# ----------------------------------------------------------------------
# the consumers actually route through the config module
# ----------------------------------------------------------------------
class TestConsumers:
    def test_cache_policy_resolution_uses_config(self):
        from repro.cache import resolve_policy
        with config_scope(cache="memory"):
            assert resolve_policy("auto") == "memory"
        # explicit EncodeOptions policies still win over the config
        with config_scope(cache="off"):
            assert resolve_policy("on") == "on"

    def test_bench_discover_uses_config(self):
        from repro.bench import discover
        with config_scope(bench_jobs=7):
            assert discover.bench_jobs() == 7

    def test_perf_enabled_routes_through_config(self):
        with config_scope(perf=True):
            assert config.perf_enabled() is True
        assert config.perf_enabled() is False
