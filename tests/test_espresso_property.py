"""Randomized espresso-vs-brute-force property tests.

Every test draws a random function over a small format, runs the
heuristic minimizer, and checks it against the brute-force minterm
semantics: the result plus don't-cares must cover exactly the on-set
(no under-cover, no over-cover into the off-set).  Both validity
oracles get exercised — the tautology-based implicant check (no
off-set) and the explicit off-set distance check — and the off-set
variant is built as a true partition of the minterm space so the two
oracles see the same function.

Seeds are fixed through hypothesis strategies, so failures replay.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.logic.cover import Cover
from repro.logic.cube import Format
from repro.logic.espresso import espresso, minimize
from repro.perf.budget import Budget

from tests.conftest import cover_minterms, enumerate_minterms, random_cover

FORMATS = [
    Format([2, 2, 2]),
    Format([2, 2, 3]),
    Format([3, 2, 2]),
]


def _random_partition(fmt, rng):
    """Partition the minterm space into (on, dc, off) covers."""
    on, dc, off = Cover(fmt), Cover(fmt), Cover(fmt)
    for m in enumerate_minterms(fmt):
        bucket = rng.choices((on, dc, off), weights=(4, 1, 3))[0]
        bucket.append(m)
    return on, dc, off


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_tautology_oracle_exact(seed):
    rng = random.Random(seed)
    fmt = FORMATS[seed % len(FORMATS)]
    on = random_cover(fmt, rng.randrange(1, 7), rng)
    dc = random_cover(fmt, rng.randrange(0, 3), rng)
    result = espresso(on, dc)
    on_m = cover_minterms(on)
    dc_m = cover_minterms(dc)
    res_m = cover_minterms(result)
    # on-minterms also in dc may legitimately be left to the dc-set
    assert on_m - dc_m <= res_m, "under-cover: an on-minterm was lost"
    assert res_m <= on_m | dc_m, "over-cover: a minterm outside on+dc"


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_explicit_off_oracle_exact(seed):
    rng = random.Random(seed)
    fmt = FORMATS[seed % len(FORMATS)]
    on, dc, off = _random_partition(fmt, rng)
    if not on.cubes:
        return
    result = minimize(on, dc, off)
    on_m = cover_minterms(on)
    off_m = cover_minterms(off)
    res_m = cover_minterms(result)
    assert on_m <= res_m, "under-cover: an on-minterm was lost"
    assert not (res_m & off_m), "over-cover: result touches the off-set"


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_both_oracles_agree_on_function(seed):
    """Identical function through either oracle yields a valid cover of
    the same on-set (cube counts may differ; semantics must not)."""
    rng = random.Random(seed)
    fmt = FORMATS[seed % len(FORMATS)]
    on, dc, off = _random_partition(fmt, rng)
    if not on.cubes:
        return
    with_taut = espresso(on, dc)
    with_off = espresso(on, dc, off=off)
    on_m = cover_minterms(on)
    dc_m = cover_minterms(dc)
    # the partition is disjoint, so the full on-set must be covered
    assert on_m <= cover_minterms(with_taut) <= on_m | dc_m
    assert on_m <= cover_minterms(with_off) <= on_m | dc_m


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_result_never_more_cubes(seed):
    # literal cost can grow when expansion raises output bits at equal
    # cube count, but the cube count itself never increases
    rng = random.Random(seed)
    fmt = FORMATS[seed % len(FORMATS)]
    on = random_cover(fmt, rng.randrange(1, 8), rng)
    result = espresso(on)
    assert len(result) <= len(on.single_cube_containment())


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_exhausted_budget_still_valid(seed):
    """An expired budget degrades quality, never correctness."""
    rng = random.Random(seed)
    fmt = FORMATS[seed % len(FORMATS)]
    on = random_cover(fmt, rng.randrange(1, 7), rng)
    dc = random_cover(fmt, rng.randrange(0, 3), rng)
    budget = Budget(seconds=0.0)  # already expired
    result = espresso(on, dc, budget=budget)
    on_m = cover_minterms(on)
    dc_m = cover_minterms(dc)
    res_m = cover_minterms(result)
    assert on_m - dc_m <= res_m <= on_m | dc_m


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_low_effort_unaffected_by_lastgasp(seed):
    """effort='low' returns before the iteration, so LASTGASP and the
    tie-keeping logic must leave it untouched."""
    rng = random.Random(seed)
    fmt = FORMATS[seed % len(FORMATS)]
    on = random_cover(fmt, rng.randrange(1, 6), rng)
    with perf.collect() as stats:
        result = espresso(on, effort="low")
    assert stats.espresso_passes == 0
    assert stats.lastgasp_attempts == 0
    on_m = cover_minterms(on)
    assert cover_minterms(result) == on_m
