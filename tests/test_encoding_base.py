"""Tests for the Encoding type and satisfaction predicates."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.constraints.input_constraints import ConstraintSet
from repro.encoding.base import (
    Encoding,
    constraint_satisfied,
    counting_sequence_code,
    satisfied_masks,
    satisfied_weight,
)


class TestEncoding:
    def test_valid(self):
        enc = Encoding(2, [0, 1, 2, 3])
        assert enc.n == 4
        assert enc.code_of(2) == 2
        assert enc.as_bits(1) == "01"

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Encoding(2, [0, 1, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Encoding(2, [0, 4])
        with pytest.raises(ValueError):
            Encoding(2, [-1, 0])

    def test_unused_codes(self):
        enc = Encoding(2, [0, 3])
        assert enc.unused_codes() == [1, 2]
        assert enc.used_codes() == [0, 3]

    def test_widen(self):
        enc = Encoding(2, [0, 1]).widen([1, 0])
        assert enc.nbits == 3
        assert enc.codes == [4, 1]

    def test_widen_wrong_length(self):
        with pytest.raises(ValueError):
            Encoding(2, [0, 1]).widen([1])

    def test_counting_sequence(self):
        enc = counting_sequence_code(5, 3)
        assert enc.codes == [0, 1, 2, 3, 4]
        with pytest.raises(ValueError):
            counting_sequence_code(5, 2)


class TestSatisfaction:
    def test_adjacent_pair_satisfied(self):
        enc = Encoding(2, [0b00, 0b01, 0b10, 0b11])
        assert constraint_satisfied(enc, 0b0011)  # codes 00,01: face 0x

    def test_diagonal_pair_unsatisfied(self):
        enc = Encoding(2, [0b00, 0b01, 0b10, 0b11])
        assert not constraint_satisfied(enc, 0b1001)  # 00,11 spans all

    def test_singletons_and_universe_trivially_satisfied(self):
        enc = Encoding(2, [0, 1, 2])
        assert constraint_satisfied(enc, 0b001)
        assert constraint_satisfied(enc, 0b111)

    def test_satisfied_masks_filters(self):
        enc = Encoding(2, [0b00, 0b01, 0b10, 0b11])
        masks = [0b0011, 0b1001, 0b1100]
        assert set(satisfied_masks(enc, masks)) == {0b0011, 0b1100}

    def test_satisfied_weight(self):
        cs = ConstraintSet(4)
        cs.add(0b0011, 5)
        cs.add(0b1001, 2)
        enc = Encoding(2, [0b00, 0b01, 0b10, 0b11])
        assert satisfied_weight(enc, cs) == 5


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_satisfaction_matches_bruteforce(seed):
    """constraint_satisfied == 'no foreign code in the spanned subcube'."""
    import random

    rng = random.Random(seed)
    n = rng.randrange(2, 7)
    nbits = rng.randrange((n - 1).bit_length() or 1, 5)
    if (1 << nbits) < n:
        return
    codes = rng.sample(range(1 << nbits), n)
    enc = Encoding(nbits, codes)
    mask = rng.randrange(1, 1 << n)
    members = [codes[i] for i in range(n) if (mask >> i) & 1]
    if len(members) <= 1:
        assert constraint_satisfied(enc, mask)
        return
    ones = 0
    zeros = 0
    for c in members:
        ones |= c
        zeros |= ~c
    care = ((1 << nbits) - 1) & ~(ones & zeros)
    val = members[0] & care
    foreign = any(
        (codes[i] ^ val) & care == 0
        for i in range(n) if not (mask >> i) & 1
    )
    assert constraint_satisfied(enc, mask) == (not foreign)
