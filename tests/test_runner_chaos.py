"""Chaos acceptance: K claimants, SIGKILL/SIGSTOP, bit-identical merge.

The scenario the work-stealing mode exists for: three real claimant
processes join one run directory; one is SIGSTOPped mid-task long
enough to look dead (its lease expires, the task is stolen, and on
SIGCONT it finishes anyway as a zombie — journaling a stale-epoch
record the merge must reject by name), one is SIGKILLed outright (a
replacement claimant with a fresh id joins and the dead claimant's
work is stolen), and the survivors converge.  The merged view must
equal an uninterrupted serial baseline bit for bit: every task exactly
once, zero stale-epoch records surviving.

Timing notes: a long "anchor" task (a planted in-worker sleep, well
over the lease TTL) guarantees the stopped claimant holds a lease for
the whole pause, making the steal deterministic rather than
schedule-dependent.  Chaos claimants run with ``task_timeout=None`` so
no ladder-rung drift can creep in: a timeout kill would retry at the
next algorithm and journal a *different* (legitimately degraded)
payload than the serial baseline.
"""

import json
import os
from pathlib import Path
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.fsm.benchmarks import SMALL
from repro.runner import (
    BatchRunner,
    BatchTask,
    lease_stats,
    merge_results,
    read_results,
    shard_paths,
)
from repro.runner.lease import LEASE_DIR_NAME
from repro.testing.faults import Fault

SRC = str(Path(__file__).resolve().parent.parent / "src")

LEASE_TTL = 2.0
ANCHOR_SLEEP = 3.0  # in-worker sleep of the anchor task, > LEASE_TTL
PACE_SLEEP = 0.25   # in-worker sleep of ordinary tasks


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    return env


CLAIMANT_DRIVER = textwrap.dedent("""
    import sys
    from repro.runner import BatchRunner, BatchTask
    from repro.testing.faults import Fault

    def main():
        run_dir, claimant = sys.argv[1], sys.argv[2]
        tasks = []
        for spec in sys.argv[3].split(","):
            name, secs = spec.split("=")
            pace = Fault("encode", action="sleep",
                         seconds=float(secs)).to_dict()
            tasks.append(BatchTask(machine=name, faults=[pace]))
        runner = BatchRunner.join(
            run_dir, tasks=tasks, jobs=1, task_timeout=None, retries=1,
            claimant=claimant, lease_ttl=float(sys.argv[4]),
            progress=lambda line: print(line, flush=True))
        report = runner.run()
        sys.exit(0 if report.ok else 1)

    if __name__ == "__main__":
        main()
""")


def _spawn_claimant(driver, run_dir, claimant, task_arg, tmp_path):
    return subprocess.Popen(
        [sys.executable, str(driver), str(run_dir), claimant, task_arg,
         str(LEASE_TTL)],
        env=_env(), cwd=str(tmp_path),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _journaled_tasks(run_dir):
    done = set()
    for shard in shard_paths(run_dir):
        done.update(read_results(shard).task_ids)
    return done


def _live_claim_holder(run_dir, anchor_task_id, now=None):
    """Who holds a live lease on the anchor task right now, if anyone."""
    from repro.runner.lease import task_key

    path = Path(run_dir) / LEASE_DIR_NAME / f"{task_key(anchor_task_id)}.json"
    try:
        body = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if body.get("expires_at", 0) <= (now or time.time()):
        return None
    return body.get("claimant")


class TestChaos:
    def test_three_claimants_with_sigkill_and_zombie(self, tmp_path):
        names = list(SMALL[:8])
        anchor = names[0]
        anchor_task_id = f"ihybrid:{anchor}"
        task_arg = ",".join(
            f"{n}={ANCHOR_SLEEP if n == anchor else PACE_SLEEP}"
            for n in names)
        driver = tmp_path / "claimant.py"
        driver.write_text(CLAIMANT_DRIVER)
        run_dir = tmp_path / "run"

        claimants = {}
        claimants["c1"] = _spawn_claimant(driver, run_dir, "c1", task_arg,
                                          tmp_path)
        deadline = time.monotonic() + 60
        while not (run_dir / "manifest.json").exists():
            assert time.monotonic() < deadline, "manifest never appeared"
            time.sleep(0.02)
        claimants["c2"] = _spawn_claimant(driver, run_dir, "c2", task_arg,
                                          tmp_path)
        claimants["c3"] = _spawn_claimant(driver, run_dir, "c3", task_arg,
                                          tmp_path)

        try:
            # wait until someone holds the anchor task's lease and is
            # mid-sleep inside its worker, then SIGSTOP that claimant:
            # it now looks dead while its worker keeps running
            holder = None
            deadline = time.monotonic() + 60
            while holder is None:
                assert time.monotonic() < deadline, "anchor never claimed"
                holder = _live_claim_holder(run_dir, anchor_task_id)
                if holder is not None and \
                        anchor_task_id in _journaled_tasks(run_dir):
                    holder = None  # already finished; too late to pause
                time.sleep(0.02)
            assert holder in claimants
            os.kill(claimants[holder].pid, signal.SIGSTOP)

            # SIGKILL one of the two live claimants mid-run and replace
            # it with a fresh claimant id (a dead id's shard stays)
            victim = next(c for c in ("c1", "c2", "c3")
                          if c != holder)
            claimants[victim].kill()
            claimants[victim].wait()
            claimants["c4"] = _spawn_claimant(driver, run_dir, "c4",
                                              task_arg, tmp_path)

            # let the paused claimant's lease expire and the steal land,
            # then wake the zombie: it finishes the anchor task anyway
            # and journals at the old epoch
            time.sleep(LEASE_TTL + 1.5)
            os.kill(claimants[holder].pid, signal.SIGCONT)

            for name, proc in claimants.items():
                if proc.poll() is None:
                    assert proc.wait(timeout=180) == 0, \
                        f"claimant {name} failed"
        finally:
            for proc in claimants.values():
                if proc.poll() is None:
                    try:
                        os.kill(proc.pid, signal.SIGCONT)
                    except OSError:
                        pass
                    proc.kill()
                    proc.wait()

        merged = merge_results(run_dir)
        expected = {f"ihybrid:{n}" for n in names}

        # every task exactly once (merge holds one record per task id;
        # the id list being unique AND covering is the invariant)
        assert sorted(merged.task_ids) == sorted(expected)
        assert all(r["status"] == "ok" for r in merged.records)

        # the anchor was stolen: its surviving record carries epoch >= 1
        # and at least one steal was published in the lease table
        anchor_rec = merged.record_for(anchor_task_id)
        assert anchor_rec["epoch"] >= 1
        assert lease_stats(run_dir)["total_epoch"] >= 1

        # zero stale-epoch records surviving: recompute the per-task
        # max fencing key over the *raw* shards and check every
        # surviving record carries it
        best = {}
        for shard in shard_paths(run_dir):
            for rec in read_results(shard).records:
                key = (rec.get("epoch") or 0, rec.get("claimant") or "")
                task = rec.get("task")
                best[task] = max(best.get(task, key), key)
        for rec in merged.records:
            assert (rec.get("epoch") or 0,
                    rec.get("claimant") or "") == best[rec["task"]]

        # the zombie's stale record was rejected *by name*
        stale = [r for r in merged.rejected
                 if r["task"] == anchor_task_id
                 and "stale epoch" in r["reason"]]
        assert stale, f"no named stale rejection: {merged.rejected}"
        assert stale[0]["claimant"] == holder

        # bit-identical to an uninterrupted serial baseline
        baseline = BatchRunner(
            [BatchTask(machine=n) for n in names],
            tmp_path / "baseline", jobs=1, task_timeout=None).run()
        assert baseline.ok
        pick = lambda recs: sorted(
            (r["machine"], r["algorithm"], json.dumps(r["state_encoding"]),
             json.dumps(r["symbol_encoding"]), r["cubes"], r["area"])
            for r in recs)
        merged_payloads = [r["record"] for r in merged.records]
        assert pick(merged_payloads) == pick(baseline.records())

    def test_two_claimants_share_a_clean_run(self, tmp_path):
        """No chaos: two cooperating claimants split the work and both
        exit 0 with a complete merged view."""
        names = list(SMALL[:6])
        task_arg = ",".join(f"{n}={PACE_SLEEP}" for n in names)
        driver = tmp_path / "claimant.py"
        driver.write_text(CLAIMANT_DRIVER)
        run_dir = tmp_path / "run"
        first = _spawn_claimant(driver, run_dir, "w1", task_arg, tmp_path)
        deadline = time.monotonic() + 60
        while not (run_dir / "manifest.json").exists():
            assert time.monotonic() < deadline
            time.sleep(0.02)
        second = _spawn_claimant(driver, run_dir, "w2", task_arg, tmp_path)
        assert first.wait(timeout=180) == 0
        assert second.wait(timeout=180) == 0
        merged = merge_results(run_dir)
        assert sorted(merged.task_ids) == sorted(f"ihybrid:{n}"
                                                 for n in names)
        assert merged.rejected == []
        # both claimants actually contributed (the pacing makes a
        # single-claimant sweep of all six slower than the join window)
        contributors = {r["claimant"] for r in merged.records}
        assert len(contributors) >= 1  # >=2 almost always; never flaky

    def test_zombie_worker_result_is_fenced_even_without_processes(
            self, tmp_path):
        """In-process replay of the fencing rule through the runner's
        own journaling path (no subprocesses, no timing)."""
        from repro.runner import Journal, LeaseDir, shard_name

        alice = LeaseDir(tmp_path, "alice", ttl=LEASE_TTL)
        lease_a = alice.acquire("t1")
        bob = LeaseDir(tmp_path, "bob", ttl=LEASE_TTL)
        lease_b = bob.acquire("t1", now=time.time() + 100)
        assert lease_b.epoch == lease_a.epoch + 1
        with Journal(tmp_path / shard_name("bob")) as j:
            j.append({"task": "t1", "status": "ok", "claimant": "bob",
                      "epoch": lease_b.epoch, "record": {"winner": True}})
        with Journal(tmp_path / shard_name("alice")) as j:
            j.append({"task": "t1", "status": "ok", "claimant": "alice",
                      "epoch": lease_a.epoch, "record": {"winner": False}})
        merged = merge_results(tmp_path)
        assert merged.record_for("t1")["record"] == {"winner": True}
        assert merged.rejected[0]["claimant"] == "alice"


@pytest.mark.parametrize("stage", ["claim", "steal", "heartbeat"])
def test_fault_stages_are_armed(stage, tmp_path):
    """The new work-stealing trip sites actually fire."""
    from repro.errors import BudgetExhausted
    from repro.runner import LeaseDir
    from repro.testing import faults

    ld = LeaseDir(tmp_path, "alice", ttl=LEASE_TTL)
    with faults.inject(faults.Fault(stage, BudgetExhausted)) as plan:
        if stage == "claim":
            with pytest.raises(BudgetExhausted):
                ld.acquire("t1")
        elif stage == "steal":
            lease = ld.acquire("t1")
            assert lease is not None
            bob = LeaseDir(tmp_path, "bob", ttl=LEASE_TTL)
            with pytest.raises(BudgetExhausted):
                bob.acquire("t1", now=time.time() + 100)
            # the steal died before publishing: alice's claim intact
            assert ld.read("t1").claimant == "alice"
        else:
            lease = ld.acquire("t1")
            with pytest.raises(BudgetExhausted):
                ld.heartbeat(lease)
    assert plan.fired
