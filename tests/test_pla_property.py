"""Property tests: PLA text round-trips preserve functions exactly."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.cube import Format
from repro.logic.pla_io import parse_pla, write_pla
from repro.logic.verify import covers_equivalent

from tests.conftest import random_cover


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=80, deadline=None)
def test_binary_pla_roundtrip(seed):
    rng = random.Random(seed)
    n_in = rng.randrange(1, 5)
    n_out = rng.randrange(1, 4)
    fmt = Format([2] * n_in + [n_out])
    on = random_cover(fmt, rng.randrange(1, 8), rng)
    dc = random_cover(fmt, rng.randrange(0, 3), rng)
    text = write_pla(on, n_in, dc=dc)
    pla = parse_pla(text)
    assert pla.fmt == fmt
    assert covers_equivalent(pla.on, on)
    if len(dc):
        assert covers_equivalent(pla.dc, dc)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=60, deadline=None)
def test_mv_pla_roundtrip(seed):
    rng = random.Random(seed)
    parts = [2] * rng.randrange(0, 3) + \
        [rng.randrange(3, 6) for _ in range(rng.randrange(1, 3))] + \
        [rng.randrange(1, 4)]
    num_binary = parts.count(2) if 2 in parts[:-1] else 0
    num_binary = sum(1 for p in parts[:-1] if p == 2)
    fmt = Format(parts)
    on = random_cover(fmt, rng.randrange(1, 6), rng)
    text = write_pla(on, num_binary)
    pla = parse_pla(text)
    assert pla.fmt == fmt
    assert covers_equivalent(pla.on, on)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_roundtrip_is_idempotent(seed):
    rng = random.Random(seed)
    fmt = Format([2, 2, 2])
    on = random_cover(fmt, rng.randrange(1, 6), rng)
    once = write_pla(parse_pla(write_pla(on, 2)).on, 2)
    twice = write_pla(parse_pla(once).on, 2)
    assert once == twice
