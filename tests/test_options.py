"""EncodeOptions: validation, merge semantics, and the kwargs shim."""

from __future__ import annotations

import random

import pytest

from repro.encoding.nova import encode_fsm
from repro.encoding.options import (
    ALGORITHMS,
    CACHE_POLICIES,
    EncodeOptions,
    merge_options,
)
from repro.fsm.benchmarks import benchmark


class TestConstruction:
    def test_defaults(self):
        o = EncodeOptions()
        assert o.algorithm == "ihybrid"
        assert o.effort == "full"
        assert o.seed is None
        assert o.cache == "auto"

    def test_frozen(self):
        o = EncodeOptions()
        with pytest.raises(Exception):
            o.algorithm = "iexact"  # type: ignore[misc]

    def test_hashable(self):
        assert len({EncodeOptions(), EncodeOptions(),
                    EncodeOptions(algorithm="iexact")}) == 2

    @pytest.mark.parametrize("bad", [
        {"algorithm": "nope"},
        {"effort": "max"},
        {"cache": "disk"},
        {"nbits": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            EncodeOptions(**bad)

    def test_seed_must_be_int(self):
        with pytest.raises(TypeError, match="unhashable"):
            EncodeOptions(seed=random.Random(0))  # type: ignore[arg-type]

    def test_replace_revalidates(self):
        o = EncodeOptions()
        assert o.replace(algorithm="iexact").algorithm == "iexact"
        assert o.algorithm == "ihybrid"  # original untouched
        with pytest.raises(ValueError):
            o.replace(algorithm="nope")

    def test_dict_round_trip(self):
        o = EncodeOptions(algorithm="igreedy", nbits=4, seed=3)
        assert EncodeOptions.from_dict(o.to_dict()) == o
        with pytest.raises(ValueError, match="unknown EncodeOptions"):
            EncodeOptions.from_dict({"algorithm": "ihybrid", "bogus": 1})

    def test_algorithm_lists_agree(self):
        from repro.encoding import nova

        assert tuple(nova.ALGORITHMS) == tuple(ALGORITHMS)
        assert "auto" in CACHE_POLICIES


class TestFingerprintFields:
    def test_cache_policy_excluded(self):
        a = EncodeOptions(cache="on")
        b = EncodeOptions(cache="off")
        assert a.fingerprint_fields() == b.fingerprint_fields()

    def test_seed_included(self):
        assert (EncodeOptions(seed=1).fingerprint_fields()
                != EncodeOptions(seed=2).fingerprint_fields())

    def test_storable(self):
        assert EncodeOptions().storable
        assert EncodeOptions(timeout=5.0).storable  # fill-gated at runtime
        assert not EncodeOptions(algorithm="random").storable
        assert EncodeOptions(algorithm="random", seed=1).storable


class TestMerge:
    def test_kwargs_only(self):
        o = merge_options(None, {"algorithm": "iexact", "nbits": 3})
        assert o.algorithm == "iexact" and o.nbits == 3

    def test_options_only(self):
        base = EncodeOptions(algorithm="iexact")
        assert merge_options(base, {}) is base

    def test_kwarg_fills_default_field(self):
        o = merge_options(EncodeOptions(algorithm="iexact"), {"nbits": 4})
        assert o.algorithm == "iexact" and o.nbits == 4

    def test_kwarg_restating_same_value_ok(self):
        base = EncodeOptions(algorithm="iexact")
        assert merge_options(base, {"algorithm": "iexact"}) is base

    def test_conflict_raises(self):
        base = EncodeOptions(algorithm="iexact")
        with pytest.raises(ValueError, match="conflicting"):
            merge_options(base, {"algorithm": "igreedy"})

    def test_conflict_names_every_field(self):
        base = EncodeOptions(algorithm="iexact", effort="low")
        with pytest.raises(ValueError) as ei:
            merge_options(base, {"algorithm": "igreedy", "effort": "full"})
        assert "algorithm" in str(ei.value) and "effort" in str(ei.value)

    def test_non_options_rejected(self):
        with pytest.raises(TypeError):
            merge_options({"algorithm": "iexact"}, {})  # type: ignore


class TestEncodeFsmShim:
    def test_options_and_legacy_agree(self):
        fsm = benchmark("lion")
        legacy = encode_fsm(fsm, "igreedy", nbits=3)
        new = encode_fsm(fsm, options=EncodeOptions(algorithm="igreedy",
                                                    nbits=3))
        assert legacy.state_encoding == new.state_encoding
        assert legacy.area == new.area

    def test_conflicting_kwarg_and_options(self):
        fsm = benchmark("lion")
        with pytest.raises(ValueError, match="conflicting"):
            encode_fsm(fsm, "igreedy",
                       options=EncodeOptions(algorithm="iexact"))

    def test_rng_deprecated_but_works(self):
        fsm = benchmark("lion")
        with pytest.deprecated_call():
            r = encode_fsm(fsm, "random", rng=random.Random(3))
        assert r.cubes > 0

    def test_rng_and_seed_conflict(self):
        fsm = benchmark("lion")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                encode_fsm(fsm, "random", rng=random.Random(3), seed=3)

    def test_unknown_algorithm_still_valueerror(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            encode_fsm(benchmark("lion"), "nope")

    def test_no_deprecation_warning_on_new_api(self, recwarn):
        encode_fsm(benchmark("lion"), "random", seed=1)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]
