"""Tests for the top-level driver encode_fsm."""

import random

import pytest

from repro.encoding.nova import encode_fsm
from repro.fsm.benchmarks import benchmark
from repro.fsm.machine import minimum_code_length


class TestEncodeFsm:
    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            encode_fsm(benchmark("lion"), "nope")

    @pytest.mark.parametrize("alg", ["ihybrid", "igreedy", "iohybrid",
                                     "iovariant", "kiss", "mustang"])
    def test_all_algorithms_on_lion(self, alg):
        r = encode_fsm(benchmark("lion"), alg)
        assert r.cubes > 0
        assert r.area == (2 * (2 + r.state_encoding.nbits)
                          + r.state_encoding.nbits + 1) * r.cubes
        assert len(set(r.state_encoding.codes)) == 4

    def test_random_uses_rng(self):
        # the deprecated rng= shim must keep working (with a warning)
        # and agree with the equivalent seed= call
        with pytest.deprecated_call():
            a = encode_fsm(benchmark("lion"), "random",
                           rng=random.Random(0))
        b = encode_fsm(benchmark("lion"), "random", seed=0)
        assert a.state_encoding.codes == b.state_encoding.codes

    def test_random_seed_deterministic(self):
        a = encode_fsm(benchmark("lion"), "random", seed=7)
        b = encode_fsm(benchmark("lion"), "random", seed=7)
        c = encode_fsm(benchmark("lion"), "random", seed=8)
        assert a.state_encoding.codes == b.state_encoding.codes
        assert (a.state_encoding.codes != c.state_encoding.codes
                or a.state_encoding.nbits != c.state_encoding.nbits)

    def test_onehot_fast_path(self):
        r = encode_fsm(benchmark("bbtas"), "onehot", evaluate=False)
        assert r.cubes == r.mv_cover_size
        assert r.state_encoding.nbits == 6
        assert r.pla is None

    def test_onehot_full_evaluation(self):
        r = encode_fsm(benchmark("lion"), "onehot")
        assert r.pla is not None
        assert r.state_encoding.nbits == 4

    def test_symbolic_machine_gets_symbol_encoding(self):
        r = encode_fsm(benchmark("dk27"), "ihybrid")
        assert r.symbol_encoding is not None
        assert r.bits == r.state_encoding.nbits + r.symbol_encoding.nbits

    def test_iexact_small_machine(self):
        # note: not every machine is iexact-feasible -- the paper itself
        # reports failures (tbk) -- but shiftreg's constraints embed
        r = encode_fsm(benchmark("shiftreg"), "iexact")
        assert r.cubes > 0
        assert r.state_encoding.nbits >= minimum_code_length(8)

    def test_iexact_triangle_constraints(self):
        # lion's MV constraints contain a pair-triangle, infeasible under
        # strict subposet equivalence; the engine's relaxed verification
        # (codes-based, per the §3.1 criterion) still embeds it at k=3
        r = encode_fsm(benchmark("lion"), "iexact")
        assert r.state_encoding.nbits == 3

    def test_bits_parameter_respected(self):
        r = encode_fsm(benchmark("lion9"), "ihybrid", nbits=5)
        assert r.state_encoding.nbits <= 5
        assert r.state_encoding.nbits >= minimum_code_length(9)

    def test_satisfied_weight_accounting(self):
        r = encode_fsm(benchmark("bbtas"), "ihybrid")
        assert r.satisfied_weight >= 0
        assert r.unsatisfied_weight >= 0

    def test_timing_recorded(self):
        r = encode_fsm(benchmark("lion"), "ihybrid")
        assert r.seconds > 0

    def test_mustang_options(self):
        for opt in ("p", "n", "pt", "nt"):
            r = encode_fsm(benchmark("train4"), "mustang",
                           mustang_option=opt)
            assert r.cubes > 0

    def test_low_effort_still_valid(self):
        r = encode_fsm(benchmark("bbtas"), "ihybrid", effort="low")
        assert r.cubes > 0


class TestQualityOrdering:
    """Directional claims of the paper on small machines."""

    def test_nova_beats_worst_random(self):
        for name in ("lion9", "bbtas", "train11"):
            nova = min(
                encode_fsm(benchmark(name), a).area
                for a in ("ihybrid", "igreedy", "iohybrid")
            )
            randoms = [encode_fsm(benchmark(name), "random", seed=s).area
                       for s in range(11, 16)]
            assert nova <= max(randoms), name

    def test_encoded_beats_onehot_area(self):
        for name in ("lion", "bbtas", "lion9"):
            fsm = benchmark(name)
            encoded = encode_fsm(fsm, "ihybrid")
            onehot = encode_fsm(fsm, "onehot", evaluate=False)
            assert encoded.area <= onehot.area, name
