"""Durability of the batch journal and the run manifest."""

import json

import pytest

from repro.runner.journal import (
    Journal,
    JournalError,
    read_manifest,
    read_results,
    repair,
    write_manifest,
)


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a", "status": "ok", "area": 88})
            j.append({"task": "b", "status": "failed"})
        loaded = read_results(path)
        assert loaded.task_ids == ["a", "b"]
        assert loaded.records[0]["area"] == 88
        assert loaded.truncated_tail is None

    def test_append_is_durable_per_line(self, tmp_path):
        """Each line must be on disk before append() returns."""
        path = tmp_path / "results.jsonl"
        j = Journal(path)
        j.append({"task": "a"})
        # read through a second handle *without* closing the writer:
        # flush+fsync already published the line
        assert read_results(path).task_ids == ["a"]
        j.close()

    def test_truncated_tail_is_tolerated_and_reported(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a"})
            j.append({"task": "b"})
        # simulate a crash mid-write of the third line
        with open(path, "a") as fh:
            fh.write('{"task": "c", "stat')
        loaded = read_results(path)
        assert loaded.task_ids == ["a", "b"]
        assert loaded.truncated_tail == '{"task": "c", "stat'

    def test_complete_final_line_without_newline_still_loads(self, tmp_path):
        """Crash between the payload and the trailing newline: the JSON
        is whole, so the record must not be discarded."""
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a"})
        with open(path, "a") as fh:
            fh.write(json.dumps({"task": "b"}))  # no "\n"
        loaded = read_results(path)
        assert loaded.task_ids == ["a", "b"]
        assert loaded.truncated_tail is None

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"task": "a"}\nGARBAGE\n{"task": "b"}\n')
        with pytest.raises(JournalError):
            read_results(path)

    def test_missing_file_is_empty(self, tmp_path):
        loaded = read_results(tmp_path / "nope.jsonl")
        assert loaded.records == [] and loaded.truncated_tail is None

    def test_repair_truncates_torn_tail_so_appends_stay_clean(self,
                                                              tmp_path):
        """Without repair, resume's first append would glue onto the
        torn tail and turn it into mid-file garbage."""
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a"})
        with open(path, "a") as fh:
            fh.write('{"task": "b", "stat')  # torn
        repaired = repair(path)
        assert repaired.task_ids == ["a"]
        assert repaired.truncated_tail_removed
        with Journal(path) as j:
            j.append({"task": "c"})
        assert read_results(path).task_ids == ["a", "c"]

    def test_repair_adds_missing_final_newline(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a"})
        with open(path, "a") as fh:
            fh.write(json.dumps({"task": "b"}))  # complete, no "\n"
        assert repair(path).task_ids == ["a", "b"]
        with Journal(path) as j:
            j.append({"task": "c"})
        assert read_results(path).task_ids == ["a", "b", "c"]

    def test_repair_of_missing_or_clean_journal_is_a_no_op(self, tmp_path):
        assert repair(tmp_path / "nope.jsonl").records == []
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a"})
        before = path.read_bytes()
        assert repair(path).task_ids == ["a"]
        assert path.read_bytes() == before


class TestManifest:
    def test_round_trip(self, tmp_path):
        write_manifest(tmp_path, {"status": "running", "tasks": []})
        m = read_manifest(tmp_path)
        assert m["status"] == "running"

    def test_atomic_replace_leaves_no_tmp(self, tmp_path):
        write_manifest(tmp_path, {"status": "running"})
        write_manifest(tmp_path, {"status": "complete"})
        assert read_manifest(tmp_path)["status"] == "complete"
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]

    def test_missing_manifest_is_explicit(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest.json"):
            read_manifest(tmp_path)
