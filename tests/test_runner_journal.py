"""Durability of the batch journal and the run manifest."""

import json
import subprocess
import sys
import textwrap

import pytest

from repro.errors import exit_code_for
from repro.runner.journal import (
    Journal,
    JournalError,
    read_manifest,
    read_results,
    repair,
    write_manifest,
)


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a", "status": "ok", "area": 88})
            j.append({"task": "b", "status": "failed"})
        loaded = read_results(path)
        assert loaded.task_ids == ["a", "b"]
        assert loaded.records[0]["area"] == 88
        assert loaded.truncated_tail is None

    def test_append_is_durable_per_line(self, tmp_path):
        """Each line must be on disk before append() returns."""
        path = tmp_path / "results.jsonl"
        j = Journal(path)
        j.append({"task": "a"})
        # read through a second handle *without* closing the writer:
        # flush+fsync already published the line
        assert read_results(path).task_ids == ["a"]
        j.close()

    def test_truncated_tail_is_tolerated_and_reported(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a"})
            j.append({"task": "b"})
        # simulate a crash mid-write of the third line
        with open(path, "a") as fh:
            fh.write('{"task": "c", "stat')
        loaded = read_results(path)
        assert loaded.task_ids == ["a", "b"]
        assert loaded.truncated_tail == '{"task": "c", "stat'

    def test_complete_final_line_without_newline_still_loads(self, tmp_path):
        """Crash between the payload and the trailing newline: the JSON
        is whole, so the record must not be discarded."""
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a"})
        with open(path, "a") as fh:
            fh.write(json.dumps({"task": "b"}))  # no "\n"
        loaded = read_results(path)
        assert loaded.task_ids == ["a", "b"]
        assert loaded.truncated_tail is None

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"task": "a"}\nGARBAGE\n{"task": "b"}\n')
        with pytest.raises(JournalError):
            read_results(path)

    def test_missing_file_is_empty(self, tmp_path):
        loaded = read_results(tmp_path / "nope.jsonl")
        assert loaded.records == [] and loaded.truncated_tail is None

    def test_repair_truncates_torn_tail_so_appends_stay_clean(self,
                                                              tmp_path):
        """Without repair, resume's first append would glue onto the
        torn tail and turn it into mid-file garbage."""
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a"})
        with open(path, "a") as fh:
            fh.write('{"task": "b", "stat')  # torn
        repaired = repair(path)
        assert repaired.task_ids == ["a"]
        assert repaired.truncated_tail_removed
        with Journal(path) as j:
            j.append({"task": "c"})
        assert read_results(path).task_ids == ["a", "c"]

    def test_repair_adds_missing_final_newline(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a"})
        with open(path, "a") as fh:
            fh.write(json.dumps({"task": "b"}))  # complete, no "\n"
        assert repair(path).task_ids == ["a", "b"]
        with Journal(path) as j:
            j.append({"task": "c"})
        assert read_results(path).task_ids == ["a", "b", "c"]

    def test_repair_of_missing_or_clean_journal_is_a_no_op(self, tmp_path):
        assert repair(tmp_path / "nope.jsonl").records == []
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a"})
        before = path.read_bytes()
        assert repair(path).task_ids == ["a"]
        assert path.read_bytes() == before


class TestDuplicateTaskIds:
    def test_last_record_wins_and_repeats_are_counted(self, tmp_path):
        """A crash between append and acknowledgement (or a forced
        re-run) can journal a task twice; reports must not double-count
        it."""
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"task": "a", "status": "failed", "v": 1})
            j.append({"task": "b", "status": "ok"})
            j.append({"task": "a", "status": "ok", "v": 2})
        loaded = read_results(path)
        assert loaded.task_ids == ["a", "b"]  # first position kept
        assert loaded.records[0] == {"task": "a", "status": "ok", "v": 2}
        assert loaded.duplicates == {"a": 1}
        assert loaded.duplicate_count == 1

    def test_records_without_task_ids_are_kept_verbatim(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with Journal(path) as j:
            j.append({"note": "x"})
            j.append({"note": "x"})
        assert len(read_results(path).records) == 2


class TestSingleWriterLock:
    def test_second_live_writer_is_refused(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with Journal(path):
            with pytest.raises(JournalError, match="another live writer"):
                Journal(path)
        # lock dies with the holder: reopening afterwards is fine
        with Journal(path) as j:
            j.append({"task": "a"})

    def test_lock_is_released_on_sigkill(self, tmp_path):
        """The kernel drops the flock when the holder dies — even by
        SIGKILL — so a crashed writer never wedges the run dir."""
        from pathlib import Path

        src = str(Path(__file__).resolve().parent.parent / "src")
        holder = subprocess.Popen(
            [sys.executable, "-c", textwrap.dedent(f"""
                import sys, time
                sys.path.insert(0, {src!r})
                from repro.runner.journal import Journal
                j = Journal({str(tmp_path / "results.jsonl")!r})
                print("held", flush=True)
                time.sleep(60)
            """)],
            stdout=subprocess.PIPE, text=True)
        try:
            assert holder.stdout.readline().strip() == "held"
            with pytest.raises(JournalError):
                Journal(tmp_path / "results.jsonl")
        finally:
            holder.kill()
            holder.wait()
        with Journal(tmp_path / "results.jsonl") as j:
            j.append({"task": "a"})
        assert read_results(tmp_path / "results.jsonl").task_ids == ["a"]

    def test_exclusive_false_skips_the_lock(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with Journal(path):
            reader_side = Journal(path, exclusive=False)
            reader_side.close()


class TestManifest:
    def test_round_trip(self, tmp_path):
        write_manifest(tmp_path, {"status": "running", "tasks": []})
        m = read_manifest(tmp_path)
        assert m["status"] == "running"

    def test_atomic_replace_leaves_no_tmp(self, tmp_path):
        write_manifest(tmp_path, {"status": "running"})
        write_manifest(tmp_path, {"status": "complete"})
        assert read_manifest(tmp_path)["status"] == "complete"
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]

    def test_concurrent_writers_race_cleanly(self, tmp_path):
        """Cooperating claimants race to publish the final manifest; a
        shared tmp name would let one writer's ``os.replace`` consume
        the other's tmp file (FileNotFoundError)."""
        from pathlib import Path

        src = str(Path(__file__).resolve().parent.parent / "src")
        code = textwrap.dedent(f"""
            import sys
            sys.path.insert(0, {src!r})
            from repro.runner.journal import write_manifest
            for i in range(80):
                write_manifest(sys.argv[1], {{"status": "complete",
                                              "i": i}})
        """)
        procs = [subprocess.Popen([sys.executable, "-c", code,
                                   str(tmp_path)],
                                  stderr=subprocess.PIPE, text=True)
                 for _ in range(2)]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
        assert read_manifest(tmp_path)["status"] == "complete"
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]

    def test_missing_manifest_is_explicit(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest.json"):
            read_manifest(tmp_path)

    def test_torn_manifest_raises_journal_error_with_path(self, tmp_path):
        (tmp_path / "manifest.json").write_text('{"status": "runn')
        with pytest.raises(JournalError) as exc_info:
            read_manifest(tmp_path)
        assert "manifest.json" in str(exc_info.value)
        # the taxonomy maps run-dir state problems to the usage/env
        # exit-code bucket (README's table: code 2)
        assert exit_code_for(exc_info.value) == 2

    def test_non_object_manifest_raises_journal_error(self, tmp_path):
        (tmp_path / "manifest.json").write_text('["not", "an", "object"]')
        with pytest.raises(JournalError, match="expected an object"):
            read_manifest(tmp_path)

    def test_resume_wraps_malformed_task_list(self, tmp_path):
        """BatchRunner.resume on a structurally damaged manifest must
        raise the taxonomy error, not a raw KeyError."""
        from repro.runner import BatchRunner

        write_manifest(tmp_path, {"status": "complete", "config": {}})
        with pytest.raises(JournalError, match="task list"):
            BatchRunner.resume(tmp_path)
        write_manifest(tmp_path, {"status": "complete",
                                  "config": "not-a-dict", "tasks": []})
        with pytest.raises(JournalError, match="config"):
            BatchRunner.resume(tmp_path)
        write_manifest(tmp_path, {"status": "complete", "config": {},
                                  "tasks": [{"no_machine_key": 1}]})
        with pytest.raises(JournalError, match="task list"):
            BatchRunner.resume(tmp_path)

    def test_cli_reports_corrupt_manifest_as_exit_2(self, tmp_path):
        """The distinct CLI path: one-line diagnostic, exit code 2,
        no traceback."""
        import os
        from pathlib import Path

        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "manifest.json").write_text('{"status": "runn')
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                                   if env.get("PYTHONPATH") else "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "batch", "--resume",
             str(run_dir)],
            env=env, capture_output=True, text=True, timeout=120)
        assert proc.returncode == 2
        assert "JournalError" in proc.stderr
        assert "manifest.json" in proc.stderr
        assert "Traceback" not in proc.stderr
