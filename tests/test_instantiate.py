"""Tests for PLA instantiation: the encoded machine must behave identically.

The strongest check in the suite: after encoding and re-minimization,
evaluating the minimized cover on every (input, state) pair must give
exactly the next-state code and outputs the original FSM specifies.
"""

import itertools
import random

import pytest

from repro.encoding.base import Encoding
from repro.encoding.onehot import random_code
from repro.eval.instantiate import evaluate_encoding, instantiate
from repro.fsm.benchmarks import benchmark
from repro.logic.verify import verify_minimization


def eval_cover(pla, input_bits: str, state_code: int):
    """OR of the output parts of all cubes containing the minterm."""
    fmt = pla.cover.fmt
    out_var = fmt.num_vars - 1
    fields = [{"0": 1, "1": 2}[ch] for ch in input_bits]
    fields += [2 if (state_code >> b) & 1 else 1
               for b in range(pla.state_bits)]
    fields += [(1 << fmt.parts[out_var]) - 1]
    minterm = fmt.cube_from_fields(fields)
    result = 0
    for cube in pla.cover.cubes:
        if fmt.intersects(cube, minterm):
            result |= fmt.field(cube, out_var)
    return result


def check_simulation(name: str, enc: Encoding, symbol_enc=None) -> None:
    fsm = benchmark(name)
    pla = evaluate_encoding(fsm, enc, symbol_enc)
    assert verify_minimization(
        pla.cover, pla.on, pla.dc,
        pla.off if len(pla.off) else None,
    ), f"{name}: minimized cover violates the espresso contract"
    sbits = pla.state_bits
    if fsm.has_symbolic_input:
        input_sets = [
            (symbol_enc.as_bits(fsm.symbol_index(sym))[::-1], sym)
            for sym in fsm.symbolic_input_values
        ]
    else:
        input_sets = [("".join(bits), None)
                      for bits in itertools.product("01",
                                                    repeat=fsm.num_inputs)]
    for state in fsm.states:
        code = enc.code_of(fsm.state_index(state))
        for input_bits, sym in input_sets:
            expected = fsm.next_state_of(state, "" if sym else input_bits,
                                         symbol=sym)
            if expected is None:
                continue  # unspecified: any behaviour is legal
            nxt, outs = expected
            got = eval_cover(pla, input_bits, code)
            got_state = got & ((1 << sbits) - 1)
            want_state = enc.code_of(fsm.state_index(nxt)) if nxt != "*" \
                else None
            if want_state is not None:
                assert got_state == want_state, (
                    f"{name}: {state}/{input_bits} -> wrong next code"
                )
            for j, ch in enumerate(outs):
                bit = (got >> (sbits + j)) & 1
                if ch == "1":
                    assert bit == 1, f"{name}: output {j} should be 1"
                elif ch == "0":
                    assert bit == 0, f"{name}: output {j} should be 0"


class TestInstantiate:
    def test_layout(self):
        fsm = benchmark("lion")
        enc = Encoding(2, [0, 1, 2, 3])
        on, dc, off, input_bits, state_bits, out_bits = instantiate(fsm, enc)
        assert input_bits == 2 and state_bits == 2 and out_bits == 0
        assert len(on) > 0

    def test_size_mismatch_rejected(self):
        fsm = benchmark("lion")
        with pytest.raises(ValueError):
            instantiate(fsm, Encoding(2, [0, 1, 2]))

    def test_symbolic_machine_needs_symbol_encoding(self):
        fsm = benchmark("dk27")
        enc = Encoding(3, list(range(7)))
        with pytest.raises(ValueError):
            instantiate(fsm, enc)

    def test_unused_codes_become_dc(self):
        fsm = benchmark("lion9")  # 9 states -> 4 bits, 7 unused codes
        enc = Encoding(4, list(range(9)))
        on, dc, off, _, _, _ = instantiate(fsm, enc)
        assert len(dc) > 0

    def test_area_formula(self):
        fsm = benchmark("lion")
        pla = evaluate_encoding(fsm, Encoding(2, [0, 1, 2, 3]))
        expected = (2 * (2 + 2) + 2 + 1) * pla.num_cubes
        assert pla.area == expected


class TestSimulationEquivalence:
    def test_lion_sequential_codes(self):
        check_simulation("lion", Encoding(2, [0, 1, 2, 3]))

    def test_lion_random_codes(self):
        rng = random.Random(3)
        check_simulation("lion", random_code(4, rng=rng))

    def test_shiftreg_identity_codes(self):
        check_simulation("shiftreg", Encoding(3, list(range(8))))

    def test_bbtas_wide_codes(self):
        check_simulation("bbtas", Encoding(4, [0, 3, 5, 9, 12, 15]))

    def test_train4(self):
        check_simulation("train4", Encoding(2, [2, 0, 1, 3]))

    def test_symbolic_machine_dk27(self):
        enc = Encoding(3, [0, 1, 2, 3, 4, 5, 6])
        sym = Encoding(1, [0, 1])
        check_simulation("dk27", enc, sym)

    def test_nova_encodings_simulate_correctly(self):
        from repro.encoding.nova import encode_fsm

        for name in ("lion", "train4", "bbtas"):
            for alg in ("ihybrid", "igreedy", "iohybrid"):
                r = encode_fsm(benchmark(name), alg)
                check_simulation(name, r.state_encoding, r.symbol_encoding)
