"""Tests for igreedy_code."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.input_constraints import ConstraintSet
from repro.encoding.base import constraint_satisfied
from repro.encoding.igreedy import igreedy_code
from repro.fsm.machine import minimum_code_length

from tests.conftest import PAPER_WEIGHTS, paper_constraint_masks


def cs_from(masks, n, weights=None):
    cs = ConstraintSet(n)
    for i, m in enumerate(masks):
        cs.add(m, weights[i] if weights else 1)
    return cs


class TestIgreedy:
    def test_complete_injective_encoding(self):
        cs = cs_from(paper_constraint_masks(), 7, PAPER_WEIGHTS)
        enc = igreedy_code(cs)
        assert enc.nbits == 3
        assert len(set(enc.codes)) == 7

    def test_deterministic(self):
        cs = cs_from(paper_constraint_masks(), 7, PAPER_WEIGHTS)
        assert igreedy_code(cs).codes == igreedy_code(cs).codes

    def test_satisfies_easy_instances(self):
        cs = cs_from([0b0011, 0b1100], 4)
        enc = igreedy_code(cs)
        assert constraint_satisfied(enc, 0b0011)
        assert constraint_satisfied(enc, 0b1100)

    def test_common_subconstraints_priority(self):
        """{2,3} = {1,2,3} ∩ {2,3,4} must be satisfied (deepest first)."""
        masks = [0b0111, 0b1110]
        cs = cs_from(masks, 4)
        enc = igreedy_code(cs)
        assert constraint_satisfied(enc, 0b0110)

    def test_no_constraints(self):
        cs = ConstraintSet(6)
        enc = igreedy_code(cs)
        assert enc.nbits == minimum_code_length(6)
        assert len(set(enc.codes)) == 6

    def test_user_code_length_respected(self):
        cs = cs_from(paper_constraint_masks(), 7, PAPER_WEIGHTS)
        enc = igreedy_code(cs, nbits=4)
        assert enc.nbits == 4

    def test_nbits_below_minimum_clamped(self):
        cs = ConstraintSet(7)
        enc = igreedy_code(cs, nbits=1)
        assert enc.nbits == minimum_code_length(7)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_igreedy_always_produces_valid_encoding(seed):
    rng = random.Random(seed)
    n = rng.randrange(3, 10)
    cs = ConstraintSet(n)
    for _ in range(rng.randrange(0, 6)):
        cs.add(rng.randrange(1, 1 << n), rng.randrange(1, 5))
    enc = igreedy_code(cs)
    assert len(set(enc.codes)) == n
    assert all(0 <= c < (1 << enc.nbits) for c in enc.codes)
