"""Tests for state minimization."""

import itertools

from repro.fsm.benchmarks import benchmark
from repro.fsm.machine import FSM, Transition
from repro.fsm.reduce import equivalent_state_classes, minimize_states


def redundant_fsm() -> FSM:
    """b and c are behaviourally identical."""
    rows = [
        Transition("0", "a", "b", "0"),
        Transition("1", "a", "c", "0"),
        Transition("0", "b", "a", "1"),
        Transition("1", "b", "b", "0"),
        Transition("0", "c", "a", "1"),
        Transition("1", "c", "c", "0"),
    ]
    return FSM("red", 1, 1, ["a", "b", "c"], rows, reset="a")


class TestClasses:
    def test_redundant_pair_found(self):
        classes = equivalent_state_classes(redundant_fsm())
        assert sorted(map(tuple, classes)) == [("a",), ("b", "c")]

    def test_distinct_states_not_merged(self):
        classes = equivalent_state_classes(benchmark("shiftreg"))
        assert all(len(c) == 1 for c in classes)

    def test_modulo12_is_minimal(self):
        classes = equivalent_state_classes(benchmark("modulo12"))
        assert len(classes) == 12

    def test_output_difference_splits(self):
        rows = [
            Transition("-", "a", "a", "0"),
            Transition("-", "b", "b", "1"),
        ]
        fsm = FSM("o", 1, 1, ["a", "b"], rows)
        assert len(equivalent_state_classes(fsm)) == 2


class TestMinimize:
    def test_merges_redundant(self):
        small = minimize_states(redundant_fsm())
        assert small.num_states == 2
        assert small.reset == "a"
        # behaviour preserved on every reachable (state, input)
        big = redundant_fsm()
        assert small.next_state_of("a", "0")[1] == \
            big.next_state_of("a", "0")[1]

    def test_behaviour_preserved_exhaustively(self):
        big = redundant_fsm()
        small = minimize_states(big)
        rep = {"a": "a", "b": "b", "c": "b"}
        for state in big.states:
            for bits in itertools.product("01", repeat=1):
                b = big.next_state_of(state, "".join(bits))
                s = small.next_state_of(rep[state], "".join(bits))
                assert s[1] == b[1]
                assert s[0] == rep[b[0]]

    def test_already_minimal_returned_unchanged(self):
        fsm = benchmark("lion")
        assert minimize_states(fsm) is fsm

    def test_idempotent(self):
        small = minimize_states(redundant_fsm())
        assert minimize_states(small) is small

    def test_benchmarks_mostly_minimal(self):
        """The suite's machines should be (close to) state-minimal, as
        the paper's benchmarks are."""
        for name in ("lion", "bbtas", "train11", "beecount", "dk27"):
            fsm = benchmark(name)
            small = minimize_states(fsm)
            assert small.num_states >= fsm.num_states - 1, name
