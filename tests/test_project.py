"""Tests for project_code: Proposition 4.2.1 and the greedy loop."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.input_constraints import ConstraintSet
from repro.encoding.base import Encoding, constraint_satisfied, satisfied_masks
from repro.encoding.onehot import random_code
from repro.encoding.project import project_code, raise_for_constraint, satisfy_all


def cs_from(masks, n):
    cs = ConstraintSet(n)
    for m in masks:
        cs.add(m)
    return cs


class TestRaise:
    def test_target_becomes_satisfied(self):
        enc = Encoding(2, [0, 1, 2, 3])
        mask = 0b1001  # states 0 and 3: not a face of the 2-cube
        assert not constraint_satisfied(enc, mask)
        grown = raise_for_constraint(enc, mask)
        assert grown.nbits == 3
        assert constraint_satisfied(grown, mask)

    def test_codes_distinct_after_raise(self):
        enc = Encoding(2, [0, 1, 2, 3])
        grown = raise_for_constraint(enc, 0b0101)
        assert len(set(grown.codes)) == 4


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=100, deadline=None)
def test_proposition_4_2_1(seed):
    """Raising preserves every satisfied constraint and adds the target."""
    rng = random.Random(seed)
    n = rng.randrange(3, 8)
    enc = random_code(n, rng=rng)
    masks = []
    for _ in range(rng.randrange(1, 5)):
        m = rng.randrange(1, 1 << n)
        if bin(m).count("1") >= 2 and m != (1 << n) - 1:
            masks.append(m)
    if not masks:
        return
    satisfied_before = set(satisfied_masks(enc, masks))
    target = rng.choice(masks)
    grown = raise_for_constraint(enc, target)
    satisfied_after = set(satisfied_masks(grown, masks))
    assert constraint_satisfied(grown, target)
    assert satisfied_before <= satisfied_after


class TestProjectCode:
    def test_moves_heaviest_first(self):
        cs = ConstraintSet(4)
        cs.add(0b1001, 5)
        cs.add(0b0110, 1)
        enc = Encoding(2, [0, 1, 2, 3])
        ric = [m for m in cs.masks() if not constraint_satisfied(enc, m)]
        grown, newly = project_code(enc, [], ric, cs)
        assert 0b1001 in newly

    def test_satisfy_all_terminates_with_all_satisfied(self):
        n = 6
        cs = cs_from([0b000011, 0b001100, 0b110000, 0b011110, 0b100001], n)
        enc = Encoding(3, [0, 1, 2, 3, 4, 5])
        sic = satisfied_masks(enc, cs.masks())
        ric = [m for m in cs.masks() if m not in set(sic)]
        enc2, sic2, ric2 = satisfy_all(enc, sic, ric, cs)
        assert not ric2
        for m in cs.masks():
            assert constraint_satisfied(enc2, m)

    def test_satisfy_all_respects_bit_budget(self):
        n = 6
        cs = cs_from([0b100001, 0b010010, 0b001100, 0b110001, 0b011010], n)
        enc = Encoding(3, [0, 1, 2, 3, 4, 5])
        sic = satisfied_masks(enc, cs.masks())
        ric = [m for m in cs.masks() if m not in set(sic)]
        enc2, _, _ = satisfy_all(enc, sic, ric, cs, max_bits=4)
        assert enc2.nbits <= 4

    def test_each_call_raises_one_dimension(self):
        cs = cs_from([0b1001], 4)
        enc = Encoding(2, [0, 1, 2, 3])
        grown, _ = project_code(enc, [], [0b1001], cs)
        assert grown.nbits == enc.nbits + 1

    def test_requires_nonempty_ric(self):
        import pytest

        cs = cs_from([0b0011], 4)
        enc = Encoding(2, [0, 1, 2, 3])
        with pytest.raises(ValueError):
            project_code(enc, [], [], cs)
