"""Tests for the unate-recursive paradigm: tautology and complement."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.logic import urp
from repro.logic.cover import Cover, from_strings
from repro.logic.cube import Format
from repro.logic.urp import complement, tautology

from tests.conftest import cover_minterms, enumerate_minterms, random_cover


class TestTautology:
    def test_empty_cover_is_not_taut(self):
        assert not tautology(Cover(Format([2, 2])))

    def test_universe_cube(self):
        fmt = Format([2, 2])
        assert tautology(Cover(fmt, [fmt.universe]))

    def test_complementary_pair(self):
        fmt = Format([2, 2])
        assert tautology(from_strings(fmt, ["0 -", "1 -"]))

    def test_missing_column(self):
        fmt = Format([2, 2])
        assert not tautology(from_strings(fmt, ["0 -", "1 0"]))

    def test_mv_variable_split(self):
        fmt = Format([3, 2])
        f = Cover(fmt, [
            fmt.cube_from_fields([0b011, 3]),
            fmt.cube_from_fields([0b100, 1]),
            fmt.cube_from_fields([0b100, 2]),
        ])
        assert tautology(f)

    def test_output_column_not_covered(self):
        fmt = Format([2, 3])
        f = Cover(fmt, [fmt.cube_from_fields([3, 0b011])])
        assert not tautology(f)


class TestComplement:
    def test_empty_cover(self):
        fmt = Format([2, 2])
        comp = complement(Cover(fmt))
        assert comp.cubes == [fmt.universe]

    def test_universe(self):
        fmt = Format([2, 2])
        assert complement(Cover(fmt, [fmt.universe])).cubes == []

    def test_single_cube_de_morgan(self):
        fmt = Format([2, 2])
        f = from_strings(fmt, ["1 1"])
        comp = complement(f)
        assert cover_minterms(comp) == (
            set(enumerate_minterms(fmt)) - cover_minterms(f)
        )

    def test_mv_complement(self):
        fmt = Format([4, 2])
        f = Cover(fmt, [fmt.cube_from_fields([0b0011, 3])])
        comp = complement(f)
        assert cover_minterms(comp) == (
            set(enumerate_minterms(fmt)) - cover_minterms(f)
        )


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=80, deadline=None)
def test_complement_exact(seed):
    """complement(F) covers exactly the minterms F misses."""
    rng = random.Random(seed)
    fmt = Format(rng.choice([[2, 2, 2], [3, 2], [2, 4], [2, 2, 3]]))
    f = random_cover(fmt, rng.randrange(0, 6), rng)
    comp = complement(f)
    universe = set(enumerate_minterms(fmt))
    assert cover_minterms(comp) == universe - cover_minterms(f)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=80, deadline=None)
def test_tautology_exact(seed):
    rng = random.Random(seed)
    fmt = Format(rng.choice([[2, 2, 2], [3, 2], [2, 4]]))
    f = random_cover(fmt, rng.randrange(0, 7), rng)
    brute = cover_minterms(f) == set(enumerate_minterms(fmt))
    assert tautology(f) == brute


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=50, deadline=None)
def test_double_complement_identity(seed):
    rng = random.Random(seed)
    fmt = Format([2, 2, 2])
    f = random_cover(fmt, rng.randrange(0, 5), rng)
    assert cover_minterms(complement(complement(f))) == cover_minterms(f)


class TestSplitVarSelection:
    def test_binate_beats_more_frequent_unate(self):
        # var 0 is unate (always the same non-full field, 3 cubes);
        # var 1 is binate (two different non-full fields, 2 cubes):
        # ESPRESSO's rule splits on the binate variable
        fmt = Format([2, 2, 2])
        f = from_strings(fmt, ["0 0 -", "0 1 -", "0 - 1"])
        assert urp._select_split_var(f) == 1

    def test_unate_fallback_most_frequent(self):
        # fully unate cover: fall back to the most frequently non-full
        fmt = Format([2, 2, 2])
        f = from_strings(fmt, ["0 - -", "0 0 -", "- 0 1"])
        assert urp._select_split_var(f) in (0, 1)  # both non-full twice
        g = from_strings(fmt, ["0 - -", "0 0 -", "0 - 1"])
        assert urp._select_split_var(g) == 0

    def test_all_full_returns_none(self):
        fmt = Format([2, 2])
        f = from_strings(fmt, ["- -"])
        assert urp._select_split_var(f) is None

    def test_binate_tie_prefers_more_parts(self):
        # vars 0 and 2 both binate in 2 cubes; var 2 has 3 parts
        fmt = Format([2, 2, 3])
        f = Cover(fmt, [
            fmt.cube_from_fields([0b01, 0b11, 0b011]),
            fmt.cube_from_fields([0b10, 0b11, 0b101]),
        ])
        assert urp._select_split_var(f) == 2


class TestUnateReduction:
    def test_unate_cover_needs_no_splits(self):
        # a unate non-tautology resolves by repeated weakest-branch
        # cofactoring: recursion count stays linear in the variables
        fmt = Format([2, 2, 2])
        f = from_strings(fmt, ["0 - -", "- 0 -", "- - 0"])

        def recursions(flag):
            old = urp.UNATE_REDUCTION
            urp.UNATE_REDUCTION = flag
            try:
                with perf.collect() as stats:
                    assert not tautology(f)
                return stats.urp_recursions, stats.unate_reductions
            finally:
                urp.UNATE_REDUCTION = old

        plain_rec, plain_red = recursions(False)
        fast_rec, fast_red = recursions(True)
        assert plain_red == 0
        assert fast_red >= 1
        assert fast_rec < plain_rec

    def test_reduction_preserves_results(self):
        rng = random.Random(99)
        fmt = Format([2, 3, 2])
        old = urp.UNATE_REDUCTION
        try:
            for _ in range(40):
                f = random_cover(fmt, rng.randrange(0, 6), rng)
                urp.UNATE_REDUCTION = True
                taut_on = tautology(f)
                comp_on = cover_minterms(complement(f))
                urp.UNATE_REDUCTION = False
                assert tautology(f) == taut_on
                assert cover_minterms(complement(f)) == comp_on
        finally:
            urp.UNATE_REDUCTION = old
