"""Property tests for the output encoder on random dominance DAGs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.output_constraints import edges_satisfied
from repro.encoding.out_encoder import out_encoder


def random_dag(n: int, density: float, rng: random.Random):
    """Edges (u, v) with u > v in a fixed topological order: acyclic."""
    edges = []
    for u in range(n):
        for v in range(u):
            if rng.random() < density:
                edges.append((u, v))
    return edges


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=100, deadline=None)
def test_out_encoder_satisfies_every_edge(seed):
    rng = random.Random(seed)
    n = rng.randrange(2, 12)
    edges = random_dag(n, rng.choice([0.1, 0.3, 0.6]), rng)
    enc = out_encoder(n, edges)
    assert len(set(enc.codes)) == n
    assert edges_satisfied({i: enc.codes[i] for i in range(n)}, edges)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=50, deadline=None)
def test_out_encoder_code_width_reasonable(seed):
    """The dense packer should stay near the information-theoretic width
    for shallow DAGs (chains force depth+1 distinct popcount levels)."""
    rng = random.Random(seed)
    n = rng.randrange(2, 10)
    edges = random_dag(n, 0.2, rng)
    enc = out_encoder(n, edges)
    # longest chain gives a lower bound; n codes need ceil(log2 n) bits
    assert enc.nbits <= n  # never worse than 1-hot-ish
    assert (1 << enc.nbits) >= n


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=50, deadline=None)
def test_out_encoder_transitive_consistency(seed):
    """Covering is transitive: chains hold end to end."""
    rng = random.Random(seed)
    n = rng.randrange(3, 9)
    chain = [(i + 1, i) for i in range(n - 1)]
    enc = out_encoder(n, chain)
    for hi in range(n):
        for lo in range(hi):
            assert enc.codes[lo] & ~enc.codes[hi] == 0
