"""Tests for the benchmark suite and the synthetic generator."""

import random

import pytest

from repro.fsm.benchmarks import (
    _SPECS,
    PAPER30,
    SMALL,
    TABLE5,
    TABLE7,
    benchmark,
    benchmark_names,
    benchmark_table,
    is_low_effort,
)
from repro.fsm.generator import _split_input_space, generate_fsm
from repro.fsm.symbolic_cover import build_symbolic_cover


class TestGenerator:
    def test_deterministic(self):
        a = generate_fsm("x", 3, 2, 5, 20)
        b = generate_fsm("x", 3, 2, 5, 20)
        assert [t for t in a.transitions] == [t for t in b.transitions]

    def test_interface_statistics(self):
        fsm = generate_fsm("y", 4, 3, 9, 36)
        assert fsm.num_inputs == 4
        assert fsm.num_outputs == 3
        assert fsm.num_states == 9
        assert abs(len(fsm.transitions) - 36) <= 9

    def test_symbolic_machines_fully_specified(self):
        fsm = generate_fsm("z", 0, 2, 5, 0, symbolic_values=3)
        assert len(fsm.transitions) == 15
        assert fsm.has_symbolic_input

    def test_input_space_partition(self):
        rng = random.Random(0)
        pats = _split_input_space(4, 6, rng)
        # disjoint and covering: total minterms = 16
        total = sum(2 ** p.count("-") for p in pats)
        assert total == 16
        for i, a in enumerate(pats):
            for b in pats[i + 1:]:
                clash = all(x == "-" or y == "-" or x == y
                            for x, y in zip(a, b))
                assert not clash

    def test_zero_inputs(self):
        rng = random.Random(0)
        assert _split_input_space(0, 3, rng) == [""]

    def test_rows_are_disjoint(self):
        """The explicit-off construction relies on disjoint rows."""
        for name in ("ex3", "bbara", "iofsm", "dk27"):
            fsm = benchmark(name)
            by_state = {}
            for t in fsm.transitions:
                by_state.setdefault((t.present, t.symbol), []).append(t.inputs)
            for pats in by_state.values():
                for i, a in enumerate(pats):
                    for b in pats[i + 1:]:
                        clash = all(x == "-" or y == "-" or x == y
                                    for x, y in zip(a, b))
                        assert not clash, name


class TestBenchmarks:
    def test_all_machines_build(self):
        for name in benchmark_names("all"):
            fsm = benchmark(name)
            assert fsm.num_states >= 2

    def test_cached(self):
        assert benchmark("lion") is benchmark("lion")

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            benchmark("nope")

    def test_subsets_well_formed(self):
        assert len(PAPER30) == 30
        assert len(TABLE5) == 19
        assert len(TABLE7) == 24
        assert set(SMALL) <= set(benchmark_names("all"))
        with pytest.raises(ValueError):
            benchmark_names("bogus")

    def test_specs_match_built_machines(self):
        for name, (ni, sym, no, ns, _np) in _SPECS.items():
            fsm = benchmark(name)
            assert fsm.num_inputs == ni, name
            assert len(fsm.symbolic_input_values) == sym, name
            assert fsm.num_outputs == no, name
            assert fsm.num_states == ns, name

    def test_paper30_ordered_by_states(self):
        states = [benchmark(n).num_states for n in PAPER30]
        assert states == sorted(states)

    def test_structured_machines_exact(self):
        sr = benchmark("shiftreg")
        assert sr.num_states == 8 and len(sr.transitions) == 16
        # shift semantics: from state 3 (011) on input 1 -> state 7 (111)
        nxt, out = sr.next_state_of("s3", "1")
        assert nxt == "s7" and out == "0"
        m12 = benchmark("modulo12")
        assert m12.num_states == 12 and len(m12.transitions) == 24
        nxt, out = m12.next_state_of("s11", "1")
        assert nxt == "s0" and out == "1"

    def test_sensor_counters_behave(self):
        lion = benchmark("lion")
        assert lion.next_state_of("st0", "01")[0] == "st1"
        assert lion.next_state_of("st1", "10")[0] == "st0"
        assert lion.next_state_of("st0", "00") == ("st0", "0")

    def test_on_off_disjoint(self):
        """The explicit off-set must never clash with the on-set."""
        for name in ("lion", "bbtas", "dk27", "shiftreg", "ex3", "beecount"):
            sc = build_symbolic_cover(benchmark(name))
            for on_cube in sc.on.cubes:
                for off_cube in sc.off.cubes:
                    assert not sc.fmt.intersects(on_cube, off_cube), name

    def test_benchmark_table(self):
        rows = benchmark_table("small")
        assert len(rows) == len(SMALL)
        assert all({"name", "inputs", "outputs", "states", "products"}
                   <= set(r) for r in rows)

    def test_low_effort_flags(self):
        assert is_low_effort("scf")
        assert not is_low_effort("lion")
