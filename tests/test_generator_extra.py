"""Additional generator properties: repair pass, clusters, Moore outputs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsm.analysis import is_deterministic, unreachable_states
from repro.fsm.generator import _repair_reachability, generate_fsm


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_generated_machines_always_reachable_and_deterministic(seed):
    rng = random.Random(seed)
    n_states = rng.randrange(3, 15)
    fsm = generate_fsm(
        f"g{seed}",
        num_inputs=rng.randrange(1, 5),
        num_outputs=rng.randrange(1, 5),
        num_states=n_states,
        num_products=n_states * rng.randrange(1, 5),
        seed=seed,
    )
    assert unreachable_states(fsm) == []
    assert is_deterministic(fsm)
    assert fsm.is_completely_specified()


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=30, deadline=None)
def test_generated_symbolic_machines(seed):
    rng = random.Random(seed)
    n_states = rng.randrange(3, 10)
    vals = rng.randrange(2, 6)
    fsm = generate_fsm(f"s{seed}", 0, rng.randrange(1, 4), n_states,
                       0, symbolic_values=vals, seed=seed)
    assert len(fsm.transitions) == n_states * vals
    assert unreachable_states(fsm) == []


def test_repair_pass_direct():
    """An island machine gets reconnected by redirecting one row."""
    rng = random.Random(0)
    # states 0,1 loop among themselves; 2,3 unreachable
    nxt = [[0, 1], [1, 0], [3, 2], [2, 3]]
    cluster_of = [0, 0, 1, 1]
    _repair_reachability(nxt, cluster_of, {}, rng)
    # recompute reachability
    seen = {0}
    stack = [0]
    while stack:
        s = stack.pop()
        for n in nxt[s]:
            if n not in seen:
                seen.add(n)
                stack.append(n)
    assert seen == {0, 1, 2, 3}


def test_moore_outputs_uniform_per_next_state():
    """Rows converging on one next state mostly share outputs (DC aside),
    which is what lets the MV minimizer group present states."""
    fsm = generate_fsm("moore", 3, 3, 8, 32, seed=99)
    by_next = {}
    for t in fsm.transitions:
        by_next.setdefault(t.next, []).append(t.outputs)
    uniform = 0
    for outs in by_next.values():
        base = outs[0]
        if all(all(x == y or "-" in (x, y) for x, y in zip(o, base))
               for o in outs):
            uniform += 1
    assert uniform >= len(by_next) - 1  # at most one DC-induced outlier
