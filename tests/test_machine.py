"""Tests for the FSM data structure."""

import pytest

from repro.fsm.machine import FSM, Transition, minimum_code_length


def simple_fsm(**kwargs) -> FSM:
    rows = [
        Transition("0", "a", "a", "0"),
        Transition("1", "a", "b", "1"),
        Transition("-", "b", "a", "0"),
    ]
    defaults = dict(name="t", num_inputs=1, num_outputs=1,
                    states=["a", "b"], transitions=rows, reset="a")
    defaults.update(kwargs)
    return FSM(**defaults)


class TestValidation:
    def test_valid_machine(self):
        fsm = simple_fsm()
        assert fsm.num_states == 2
        assert fsm.state_index("b") == 1

    def test_duplicate_states_rejected(self):
        with pytest.raises(ValueError):
            simple_fsm(states=["a", "a"])

    def test_unknown_reset_rejected(self):
        with pytest.raises(ValueError):
            simple_fsm(reset="zz")

    def test_wrong_input_width_rejected(self):
        rows = [Transition("00", "a", "a", "0")]
        with pytest.raises(ValueError):
            FSM("t", 1, 1, ["a"], rows)

    def test_wrong_output_width_rejected(self):
        rows = [Transition("0", "a", "a", "00")]
        with pytest.raises(ValueError):
            FSM("t", 1, 1, ["a"], rows)

    def test_unknown_state_rejected(self):
        rows = [Transition("0", "zz", "a", "0")]
        with pytest.raises(ValueError):
            FSM("t", 1, 1, ["a"], rows)

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            Transition("2", "a", "a", "0")

    def test_symbolic_input_needs_symbol(self):
        rows = [Transition("", "a", "a", "0")]
        with pytest.raises(ValueError):
            FSM("t", 0, 1, ["a"], rows, symbolic_input_values=["x", "y"])

    def test_symbol_on_nonsymbolic_machine_rejected(self):
        rows = [Transition("0", "a", "a", "0", symbol="x")]
        with pytest.raises(ValueError):
            FSM("t", 1, 1, ["a"], rows)

    def test_star_present_and_next_allowed(self):
        rows = [Transition("0", "*", "*", "0"),
                Transition("1", "a", "a", "1")]
        fsm = FSM("t", 1, 1, ["a"], rows)
        assert fsm.num_states == 1


class TestBehaviour:
    def test_next_state_of(self):
        fsm = simple_fsm()
        assert fsm.next_state_of("a", "1") == ("b", "1")
        assert fsm.next_state_of("b", "0") == ("a", "0")
        assert fsm.next_state_of("b", "1") == ("a", "0")  # matches '-'

    def test_next_state_of_unspecified(self):
        rows = [Transition("0", "a", "a", "0")]
        fsm = FSM("t", 1, 1, ["a"], rows)
        assert fsm.next_state_of("a", "1") is None

    def test_stats(self):
        fsm = simple_fsm()
        assert fsm.stats() == {"inputs": 1, "outputs": 1, "states": 2,
                               "products": 3}

    def test_stats_counts_symbolic_input(self):
        rows = [Transition("", "a", "a", "0", symbol="x")]
        fsm = FSM("t", 0, 1, ["a"], rows, symbolic_input_values=["x", "y"])
        assert fsm.stats()["inputs"] == 1

    def test_is_completely_specified(self):
        fsm = simple_fsm()
        assert fsm.is_completely_specified()
        rows = [Transition("0", "a", "a", "0")]
        partial = FSM("t", 1, 1, ["a"], rows)
        assert not partial.is_completely_specified()


class TestMinimumCodeLength:
    def test_values(self):
        assert minimum_code_length(1) == 1
        assert minimum_code_length(2) == 1
        assert minimum_code_length(3) == 2
        assert minimum_code_length(4) == 2
        assert minimum_code_length(5) == 3
        assert minimum_code_length(16) == 4
        assert minimum_code_length(17) == 5
        assert minimum_code_length(121) == 7
