"""The benchmark observatory: specs, timing, trajectory, the gate.

Everything here runs without timing anything real: the timer takes an
injectable clock, :func:`repro.bench.run_sweep` takes a
``runner_factory``, and trajectory/gate tests build records by hand.
The one invariant worth stating up front: **an injected >20% slowdown
must trip ``nova bench gate --max-regress 20`` with exit code 1** —
that is the CI contract the whole subsystem exists to enforce.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import bench
from repro.bench import (
    BenchRecord,
    SampleStats,
    SweepSpec,
    load_spec,
    mad_reject,
    measure,
    run_sweep,
    summarize,
)
from repro.bench.timing import best_of
from repro.cli import main as cli_main


# ----------------------------------------------------------------------
# shared builders
# ----------------------------------------------------------------------
def stats(mean, std=0.0, n=3):
    return SampleStats(mean=mean, std=std, min=mean, median=mean,
                       samples=n)


def record(suite, means, label="", schema=1, timestamp=None):
    """A BenchRecord with one unit per (key, mean) pair."""
    return BenchRecord(
        suite=suite,
        units={k: stats(m) for k, m in means.items()},
        schema=schema,
        label=label,
        timestamp=timestamp,
    )


class FakeClock:
    """A deterministic perf counter: the timer reads it twice per
    sample (open/close), so precompute the tick sequence that makes
    sample i measure exactly ``durations[i]``."""

    def __init__(self, durations):
        self.ticks = []
        t = 0.0
        for d in durations:
            self.ticks += [t, t + d]
            t += d

    def __call__(self):
        return self.ticks.pop(0)


# ----------------------------------------------------------------------
# timing: fake clock, no sleeps
# ----------------------------------------------------------------------
class TestTiming:
    def test_measure_returns_scripted_samples(self):
        clock = FakeClock([0.5, 0.25, 0.125])
        ran = []
        samples = measure(lambda: ran.append(1), repeats=3, warmup=2,
                          clock=clock)
        assert samples == [0.5, 0.25, 0.125]
        assert len(ran) == 5  # 2 warmup + 3 timed

    def test_measure_validates_counts(self):
        with pytest.raises(ValueError, match="repeats"):
            measure(lambda: None, repeats=0)
        with pytest.raises(ValueError, match="warmup"):
            measure(lambda: None, repeats=1, warmup=-1)

    def test_best_of_is_min_and_records_stats(self):
        clock = FakeClock([0.3, 0.1, 0.2])
        book = {}
        best = best_of(lambda: None, repeats=3, warmup=0, clock=clock,
                       stats=book, label="unit")
        assert best == pytest.approx(0.1)
        assert book["unit"]["min"] == pytest.approx(0.1)
        assert book["unit"]["samples"] == 3

    def test_mad_rejects_the_gc_pause(self):
        kept = mad_reject([1.0, 1.1, 0.9, 1.05, 50.0])
        assert 50.0 not in kept
        assert len(kept) == 4

    def test_mad_keeps_everything_under_three_samples(self):
        assert mad_reject([1.0, 99.0]) == [1.0, 99.0]

    def test_mad_keeps_everything_on_zero_spread(self):
        # a fake clock returning identical durations has MAD 0; nothing
        # may be dropped on a degenerate dispersion estimate
        assert mad_reject([2.0, 2.0, 2.0, 7.0]) == [2.0, 2.0, 2.0, 7.0]

    def test_mad_cut_is_scaled(self):
        # median 1.0, MAD 0.1 -> cut 3.5 * 1.4826 * 0.1 ~= 0.519:
        # 1.5 survives, 1.6 does not
        base = [0.9, 1.0, 1.1]
        assert 1.5 in mad_reject(base + [1.5])
        assert 1.6 not in mad_reject(base + [1.6])

    def test_summarize_population_stats(self):
        s = summarize([1.0, 2.0, 3.0], reject_outliers=False)
        assert s.mean == 2.0
        assert s.median == 2.0
        assert s.min == 1.0
        assert s.std == pytest.approx(math.sqrt(2.0 / 3.0))
        assert s.samples == 3 and s.rejected == 0

    def test_summarize_counts_rejections(self):
        s = summarize([1.0, 1.1, 0.9, 50.0])
        assert s.rejected == 1
        assert s.samples == 3
        assert s.mean == pytest.approx(1.0)

    def test_summarize_refuses_zero_samples(self):
        with pytest.raises(ValueError, match="zero samples"):
            summarize([])

    def test_sample_stats_round_trip(self):
        s = summarize([0.1, 0.2, 0.3])
        again = SampleStats.from_dict(s.to_dict())
        assert again.mean == pytest.approx(s.mean)
        assert again.std == pytest.approx(s.std)
        assert (again.min, again.median) == \
            (pytest.approx(s.min), pytest.approx(s.median))
        assert (again.samples, again.rejected) == (3, 0)
        assert set(s.to_dict()) == {"mean", "std", "min", "median",
                                    "samples", "rejected"}


# ----------------------------------------------------------------------
# sweep specs: validation and round-trips
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_minimal_encode_spec(self):
        spec = SweepSpec(name="s", machines=("lion",))
        assert spec.kind == "encode"
        assert spec.cache == "off"  # timing must opt *in* to caching

    @pytest.mark.parametrize("kwargs,needle", [
        (dict(name=""), "name"),
        (dict(name="s", machines=("a",), kind="race"), "kind"),
        (dict(name="s"), "exactly one"),
        (dict(name="s", machines=("a",), subset="small"), "exactly one"),
        (dict(name="s", machines=("a",), kind="table"), "table"),
        (dict(name="s", machines=("a",), table=3), "kind 'table'"),
        (dict(name="s", machines=("a",), algorithms=()), "algorithm"),
        (dict(name="s", machines=("a",), algorithms=("quantum",)),
         "quantum"),
        (dict(name="s", machines=("a",), repeats=0), "repeats"),
        (dict(name="s", machines=("a",), warmup=-1), "warmup"),
        (dict(name="s", machines=("a",), cache="maybe"), "cache"),
        (dict(name="s", machines=("a",), task_timeout=0), "task_timeout"),
        (dict(name="s", machines=("a",), seeds=(True,)), "seeds"),
    ])
    def test_eager_validation(self, kwargs, needle):
        with pytest.raises(ValueError, match=needle):
            SweepSpec(**kwargs)

    def test_unit_grid_without_seeds(self):
        spec = SweepSpec(name="s", machines=("a", "b"),
                         algorithms=("ihybrid", "kiss"))
        keys = [u[0] for u in spec.units()]
        assert keys == ["a/ihybrid", "a/kiss", "b/ihybrid", "b/kiss"]

    def test_unit_grid_with_seeds(self):
        spec = SweepSpec(name="s", machines=("a",),
                         algorithms=("random",), seeds=(1, 2))
        assert [u[0] for u in spec.units()] == ["a/random/s1",
                                                "a/random/s2"]
        assert spec.units()[0][3] == 1

    def test_units_machine_override(self):
        spec = SweepSpec(name="s", subset="small")
        assert [u[0] for u in spec.units(["x"])] == ["x/ihybrid"]

    def test_round_trip_via_dict(self):
        spec = SweepSpec(name="s", machines=("a",), seeds=(3,),
                         options={"effort": "low"}, repeats=5)
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="machnes"):
            SweepSpec.from_dict({"name": "s", "machnes": ["a"]})

    def test_load_spec_json(self, tmp_path):
        p = tmp_path / "s.json"
        p.write_text(json.dumps({"name": "s", "machines": ["lion"],
                                 "repeats": 2}), encoding="utf-8")
        spec = load_spec(p)
        assert spec.machines == ("lion",) and spec.repeats == 2

    def test_load_spec_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        p = tmp_path / "s.toml"
        p.write_text('name = "s"\nmachines = ["lion"]\nwarmup = 0\n',
                     encoding="utf-8")
        assert load_spec(p).warmup == 0

    def test_load_spec_rejects_other_formats(self, tmp_path):
        p = tmp_path / "s.yaml"
        p.write_text("name: s\n", encoding="utf-8")
        with pytest.raises(ValueError, match="unsupported"):
            load_spec(p)

    def test_checked_in_specs_parse(self):
        # the observatory's own suite definitions must stay loadable
        from pathlib import Path
        spec_dir = Path(__file__).parent.parent / "benchmarks" / "specs"
        names = set()
        for path in sorted(spec_dir.glob("*.json")):
            names.add(load_spec(path).name)
        assert {"substrate", "table3", "table6", "table7"} <= names


# ----------------------------------------------------------------------
# records
# ----------------------------------------------------------------------
class TestBenchRecord:
    def test_round_trip(self):
        r = record("substrate", {"lion/ihybrid": 0.5}, label="PR9",
                   timestamp=1000.0)
        again = BenchRecord.from_dict(r.to_dict())
        assert again.suite == "substrate"
        assert again.units["lion/ihybrid"].mean == 0.5
        assert again.label == "PR9" and again.timestamp == 1000.0

    def test_from_dict_tolerates_unknown_keys_and_defaults_schema_0(self):
        r = BenchRecord.from_dict({"suite": "x", "units": {},
                                   "future_field": 1})
        assert r.schema == 0

    def test_newer_schema_rejected(self):
        with pytest.raises(ValueError, match="newer"):
            record("s", {"u": 1.0}, schema=bench.SCHEMA_VERSION + 1)

    def test_schema1_requires_units(self):
        with pytest.raises(ValueError, match="unit"):
            BenchRecord(suite="s", units={})
        # schema 0 (legacy) may be sparse
        assert BenchRecord(suite="s", units={}, schema=0).schema == 0

    def test_environment_capture_names_the_substrate(self):
        env = bench.capture_environment()
        assert env["substrate"] in ("python", "numpy")
        assert "python" in env and "repro_version" in env


# ----------------------------------------------------------------------
# trajectory store + comparison
# ----------------------------------------------------------------------
class TestTrajectory:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / "traj.json"
        bench.append_record(path, record("s", {"u": 1.0}, label="a"))
        history = bench.append_record(path, record("s", {"u": 0.5},
                                                   label="b"))
        assert [r.label for r in history] == ["a", "b"]
        assert [r.label for r in bench.load_trajectory(path)] == ["a", "b"]

    def test_load_missing_is_empty(self, tmp_path):
        assert bench.load_trajectory(tmp_path / "absent.json") == []

    def test_load_rejects_non_trajectory_files(self, tmp_path):
        p = tmp_path / "junk.json"
        p.write_text("[1]", encoding="utf-8")
        with pytest.raises(ValueError, match="records"):
            bench.load_trajectory(p)

    def test_load_rejects_newer_trajectory_schema(self, tmp_path):
        p = tmp_path / "t.json"
        p.write_text(json.dumps({"schema": bench.TRAJECTORY_SCHEMA + 1,
                                 "records": []}), encoding="utf-8")
        with pytest.raises(ValueError, match="newer"):
            bench.load_trajectory(p)

    def test_compare_statuses(self):
        assert bench.compare_suite([], "s").status == "no-record"
        only = [record("s", {"u": 1.0})]
        assert bench.compare_suite(only, "s").status == "no-baseline"

    def test_compare_speedup_and_geomean(self):
        history = [record("s", {"a": 2.0, "b": 1.0}, label="old"),
                   record("s", {"a": 1.0, "b": 2.0}, label="new")]
        comp = bench.compare_suite(history, "s")
        assert comp.status == "ok"
        assert comp.unit_speedups == {"a": 2.0, "b": 0.5}
        # ratios: a 2x win exactly cancels a 2x loss
        assert comp.geomean_speedup == pytest.approx(1.0)
        assert comp.baseline_label == "old"
        assert comp.current_label == "new"

    def test_compare_skips_disjoint_baselines(self):
        history = [record("s", {"x": 1.0}, label="renamed-away"),
                   record("s", {"u": 1.0}, label="mid"),
                   record("s", {"u": 2.0}, label="new")]
        comp = bench.compare_suite(history, "s")
        assert comp.baseline_label == "mid"
        assert comp.unit_speedups["u"] == 0.5

    def test_legacy_schema0_records_are_never_baselines(self):
        history = [record("s", {"u": 1.0}, schema=0, label="legacy"),
                   record("s", {"u": 99.0}, label="live")]
        assert bench.compare_suite(history, "s").status == "no-baseline"

    def test_gate_pass_and_regress_boundary(self):
        def verdict(cur_mean):
            hist = [record("substrate", {"u": 1.0}),
                    record("substrate", {"u": cur_mean})]
            return bench.gate(hist, 20.0, suites=("substrate",))

        assert verdict(1.19).ok            # 0.84x, above the 0.80 floor
        assert not verdict(1.30).ok        # 0.77x: regression
        assert verdict(1.30).regressions == ("substrate",)

    def test_gate_reports_missing_baselines(self):
        result = bench.gate([record("substrate", {"u": 1.0})], 20.0,
                            suites=("substrate", "table3"))
        assert result.ok  # missing is the caller's policy, not a failure
        assert set(result.missing) == {"substrate", "table3"}

    def test_gate_rejects_negative_threshold(self):
        with pytest.raises(ValueError, match="max_regress_pct"):
            bench.gate([], -1.0)


# ----------------------------------------------------------------------
# legacy import
# ----------------------------------------------------------------------
LEGACY_PR6 = {
    "cover_kernels": {
        "lion": {"ops": {"tautology": {
            "before_s": {"mean": 0.2, "std": 0.01, "samples": 5},
            "after_s": {"mean": 0.1, "std": 0.01, "samples": 5}}}}},
    "tables_wall_clock_s": {
        "table3": {"before": {"mean": 10.0, "std": 1.0, "samples": 3}}},
}
LEGACY_PR7 = {
    "cold": {"mean_ms": 100.0, "p50_ms": 90.0, "n": 8},
    "warm": {"mean_ms": 5.0, "p50_ms": 4.0, "n": 8},
    "uncoalesced": {"clients": 8, "wall_ms": 900.0, "worker_spawns": 8},
    "coalesced": {"mean_ms": 120.0, "p50_ms": 110.0, "clients": 8},
    "overload": {"reject_latency_ms": {"mean_ms": 2.0, "p50_ms": 1.5,
                                       "n": 4}},
}
LEGACY_PR8 = {
    "scaling": [{"claimants": 1, "wall_s": 30.0},
                {"claimants": 4, "wall_s": 9.0}],
    "reclaim": {"wall_s": 12.0},
    "machines": ["lion", "dk14"],
}


class TestLegacyImport:
    @pytest.fixture
    def legacy_root(self, tmp_path):
        for name, blob in [("BENCH_PR6.json", LEGACY_PR6),
                           ("BENCH_PR7.json", LEGACY_PR7),
                           ("BENCH_PR8.json", LEGACY_PR8)]:
            (tmp_path / name).write_text(json.dumps(blob),
                                         encoding="utf-8")
        return tmp_path

    def test_imports_every_report_as_schema0(self, legacy_root):
        records = bench.import_legacy(legacy_root)
        suites = {r.suite for r in records}
        assert suites == {"legacy-pr6-cover-kernels", "legacy-pr6-tables",
                          "legacy-pr7-encode-service", "legacy-pr8-steal"}
        assert all(r.schema == 0 for r in records)
        assert all(r.suite.startswith("legacy-") for r in records)

    def test_unit_reconstruction(self, legacy_root):
        by_suite = {r.suite: r for r in bench.import_legacy(legacy_root)}
        kernels = by_suite["legacy-pr6-cover-kernels"].units
        assert kernels["lion/tautology/before"].mean == 0.2
        assert kernels["lion/tautology/after"].mean == 0.1
        service = by_suite["legacy-pr7-encode-service"].units
        assert set(service) == {"cold", "warm", "uncoalesced",
                                "coalesced", "overload"}
        assert service["cold"].mean == pytest.approx(0.1)   # ms -> s
        steal = by_suite["legacy-pr8-steal"].units
        assert steal["claimants4"].mean == 9.0
        assert steal["reclaim"].mean == 12.0

    def test_import_is_idempotent(self, legacy_root, tmp_path):
        traj = tmp_path / "traj.json"
        bench.import_legacy(legacy_root, traj)
        first = len(bench.load_trajectory(traj))
        bench.import_legacy(legacy_root, traj)
        assert len(bench.load_trajectory(traj)) == first == 4

    def test_missing_files_are_fine(self, tmp_path):
        assert bench.import_legacy(tmp_path) == []


# ----------------------------------------------------------------------
# run_sweep against a fake runner (no subprocesses, no timing)
# ----------------------------------------------------------------------
class FakeReport:
    def __init__(self, entries):
        self.entries = entries


class FakeRunner:
    """Stands in for BatchRunner: replays scripted per-task entries."""

    instances = []

    def __init__(self, tasks, run_dir, *, seconds=None, broken=(),
                 **kwargs):
        self.tasks = tasks
        self.run_dir = run_dir
        self.kwargs = kwargs
        self.seconds = seconds or {}
        self.broken = set(broken)
        FakeRunner.instances.append(self)

    def run(self):
        entries = []
        for t in self.tasks:
            unit = t.task_id.rsplit("@", 1)[0]
            if unit in self.broken:
                entries.append({"task": t.task_id, "status": "failed"})
                continue
            entries.append({
                "task": t.task_id,
                "status": "ok",
                "cache_hit": False,
                "record": {"seconds": self.seconds.get(unit, 1.0)},
                "attempts": [{"elapsed": self.seconds.get(unit, 1.0)}],
            })
        return FakeReport(entries)


def factory(**fake_kwargs):
    def make(tasks, run_dir, **kwargs):
        return FakeRunner(tasks, run_dir, **fake_kwargs, **kwargs)
    return make


class TestRunSweep:
    @pytest.fixture(autouse=True)
    def _fresh(self):
        FakeRunner.instances = []

    def test_compile_tasks_units_times_runs(self):
        spec = SweepSpec(name="s", machines=("a", "b"), repeats=3,
                         warmup=1)
        tasks = bench.compile_tasks(spec)
        assert len(tasks) == 2 * (3 + 1)
        ids = [t.task_id for t in tasks]
        assert "a/ihybrid@w0" in ids and "a/ihybrid@r2" in ids
        # encode tasks carry the spec's cache policy into the worker
        assert all(t.options["cache"] == "off" for t in tasks)

    def test_sweep_summarizes_per_unit(self, tmp_path):
        spec = SweepSpec(name="s", machines=("a", "b"), repeats=3)
        rec = run_sweep(spec, tmp_path / "run", timestamp=123.0,
                        label="PR9",
                        runner_factory=factory(
                            seconds={"a/ihybrid": 0.25, "b/ihybrid": 2.0}))
        assert rec.suite == "s"
        assert rec.units["a/ihybrid"].mean == 0.25
        assert rec.units["a/ihybrid"].samples == 3
        assert rec.timestamp == 123.0 and rec.label == "PR9"

    def test_sweep_pins_retries_zero_and_force(self, tmp_path):
        # the degradation ladder must never time a different algorithm
        # under the unit's name, and cached journals must not be reused
        spec = SweepSpec(name="s", machines=("a",))
        run_sweep(spec, tmp_path / "run", runner_factory=factory())
        kwargs = FakeRunner.instances[0].kwargs
        assert kwargs["retries"] == 0
        assert kwargs["force"] is True

    def test_warmup_tasks_are_run_but_never_sampled(self, tmp_path):
        spec = SweepSpec(name="s", machines=("a",), repeats=2, warmup=3)
        rec = run_sweep(spec, tmp_path / "run", runner_factory=factory())
        assert len(FakeRunner.instances[0].tasks) == 5
        assert rec.units["a/ihybrid"].samples == 2

    def test_failed_samples_dropped_and_counted(self, tmp_path):
        spec = SweepSpec(name="s", machines=("a", "b"), repeats=2)
        rec = run_sweep(spec, tmp_path / "run",
                        runner_factory=factory(broken={"b/ihybrid"}))
        assert "b/ihybrid" not in rec.units
        assert rec.notes["dropped_samples"] == {"b/ihybrid": 2}

    def test_all_failed_raises(self, tmp_path):
        spec = SweepSpec(name="s", machines=("a",))
        with pytest.raises(ValueError, match="no usable samples"):
            run_sweep(spec, tmp_path / "run",
                      runner_factory=factory(broken={"a/ihybrid"}))

    def test_limit_caps_machines_and_is_recorded(self, tmp_path):
        spec = SweepSpec(name="s", machines=("a", "b", "c"))
        lines = []
        rec = run_sweep(spec, tmp_path / "run", limit=2,
                        progress=lines.append, runner_factory=factory())
        assert set(rec.units) == {"a/ihybrid", "b/ihybrid"}
        assert rec.notes["machines_dropped_by_limit"] == 1
        assert rec.spec["limit"] == 2
        assert any("dropped" in line for line in lines)

    def test_repeats_override_recorded_in_spec_snapshot(self, tmp_path):
        spec = SweepSpec(name="s", machines=("a",), repeats=5)
        rec = run_sweep(spec, tmp_path / "run", repeats=2,
                        runner_factory=factory())
        assert rec.units["a/ihybrid"].samples == 2
        assert rec.spec["repeats"] == 2

    def test_table_sweep_forces_cache_env_and_restores(
            self, tmp_path, monkeypatch):
        import os
        monkeypatch.setenv("NOVA_CACHE", "on")
        seen = {}

        def snooping(tasks, run_dir, **kwargs):
            seen["cache"] = os.environ.get("NOVA_CACHE")
            return FakeRunner(tasks, run_dir, **kwargs)

        spec = SweepSpec(name="t", kind="table", table=3,
                         machines=("a",), cache="off")
        run_sweep(spec, tmp_path / "run", runner_factory=snooping)
        # the spec's policy reached the (spawned) workers via the env...
        assert seen["cache"] == "off"
        # ...and the caller's environment came back untouched
        assert os.environ["NOVA_CACHE"] == "on"


# ----------------------------------------------------------------------
# the CLI: exit codes are the CI contract
# ----------------------------------------------------------------------
class TestBenchCli:
    def test_gate_passes_on_steady_trajectory(self, tmp_path, capsys):
        traj = tmp_path / "t.json"
        bench.save_trajectory(traj, [record("substrate", {"u": 1.00}),
                                     record("substrate", {"u": 1.02})])
        rc = cli_main(["bench", "gate", "--trajectory", str(traj),
                       "--max-regress", "20", "--suites", "substrate"])
        assert rc == 0
        assert "pass" in capsys.readouterr().out

    def test_gate_fails_on_injected_slowdown(self, tmp_path, capsys):
        # the acceptance scenario: >20% injected regression -> exit 1
        traj = tmp_path / "t.json"
        bench.save_trajectory(traj, [
            record("substrate", {"u": 1.0, "v": 1.0}),
            record("substrate", {"u": 1.4, "v": 1.3}),  # ~26% slower
        ])
        rc = cli_main(["bench", "gate", "--trajectory", str(traj),
                       "--max-regress", "20", "--suites", "substrate"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "FAIL" in out

    def test_gate_exit_3_when_baseline_required_and_missing(
            self, tmp_path, capsys):
        traj = tmp_path / "t.json"
        bench.save_trajectory(traj, [record("substrate", {"u": 1.0})])
        rc = cli_main(["bench", "gate", "--trajectory", str(traj),
                       "--require-baseline", "--suites",
                       "substrate,table3"])
        assert rc == 3
        assert "no comparable baseline" in capsys.readouterr().err

    def test_gate_missing_baseline_passes_by_default(self, tmp_path):
        rc = cli_main(["bench", "gate", "--trajectory",
                       str(tmp_path / "empty.json")])
        assert rc == 0

    def test_run_usage_error_is_exit_2(self, capsys):
        assert cli_main(["bench", "run"]) == 2

    def test_run_invalid_spec_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "s", "machines": ["a"],
                                   "repeats": 0}), encoding="utf-8")
        rc = cli_main(["bench", "run", str(bad), "--trajectory",
                       str(tmp_path / "t.json")])
        assert rc == 2
        assert "repeats" in capsys.readouterr().err

    def test_compare_reports_geomean(self, tmp_path, capsys):
        traj = tmp_path / "t.json"
        bench.save_trajectory(traj, [record("s", {"u": 1.0}),
                                     record("s", {"u": 0.5})])
        rc = cli_main(["bench", "compare", "--trajectory", str(traj),
                       "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["geomean_speedup"] == pytest.approx(2.0)

    def test_import_cli(self, tmp_path, capsys, monkeypatch):
        (tmp_path / "BENCH_PR8.json").write_text(json.dumps(LEGACY_PR8),
                                                 encoding="utf-8")
        traj = tmp_path / "t.json"
        rc = cli_main(["bench", "import", "--root", str(tmp_path),
                       "--trajectory", str(traj)])
        assert rc == 0
        assert "imported 1" in capsys.readouterr().out
        assert bench.load_trajectory(traj)[0].suite == "legacy-pr8-steal"

    def test_committed_trajectory_passes_the_ci_gate(self):
        # the repo's own trajectory must satisfy the observatory job
        from pathlib import Path
        traj = Path(__file__).parent.parent / "BENCH_TRAJECTORY.json"
        if not traj.exists():
            pytest.skip("no committed trajectory yet")
        records = bench.load_trajectory(traj)
        result = bench.gate(records, 20.0)
        assert result.ok, f"committed trajectory regressed: {result.to_dict()}"
