"""Tests for Cover: container behaviour and cover algebra."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.logic.cover import Cover, from_strings
from repro.logic.cube import Format

from tests.conftest import cover_minterms, random_cover


class TestContainer:
    def test_append_drops_empty(self):
        fmt = Format([2, 2])
        c = Cover(fmt)
        c.append(0)
        assert len(c) == 0
        c.append(fmt.universe)
        assert len(c) == 1

    def test_init_from_iterable(self):
        fmt = Format([2, 2])
        c = Cover(fmt, [fmt.universe, 0, fmt.universe])
        assert len(c) == 2

    def test_concat_checks_format(self):
        a = Cover(Format([2, 2]))
        b = Cover(Format([2, 3]))
        with pytest.raises(ValueError):
            a + b

    def test_concat_and_copy_independent(self):
        fmt = Format([2, 2])
        a = Cover(fmt, [fmt.universe])
        b = a.copy()
        b.append(fmt.cube_from_fields([1, 1]))
        assert len(a) == 1 and len(b) == 2

    def test_iteration_and_indexing(self):
        fmt = Format([2, 2])
        cube = fmt.cube_from_fields([1, 2])
        c = Cover(fmt, [cube])
        assert list(c) == [cube]
        assert c[0] == cube


class TestAlgebra:
    def setup_method(self):
        self.fmt = Format([2, 2, 2])

    def test_cofactor_drops_disjoint(self):
        fmt = self.fmt
        f = from_strings(fmt, ["0 0 -", "1 1 -"])
        cof = f.cofactor(fmt.cube_from_str("0 - -"))
        assert len(cof) == 1

    def test_intersect_cube(self):
        fmt = self.fmt
        f = from_strings(fmt, ["- - -", "1 1 -"])
        g = f.intersect_cube(fmt.cube_from_str("0 - -"))
        assert len(g) == 1  # the 1 1 - cube dies

    def test_single_cube_containment(self):
        fmt = self.fmt
        f = from_strings(fmt, ["- - -", "1 1 -", "0 - 1"])
        assert len(f.single_cube_containment()) == 1

    def test_contains_cube_via_tautology(self):
        fmt = self.fmt
        f = from_strings(fmt, ["0 - -", "1 0 -"])
        assert f.contains_cube(fmt.cube_from_str("- 0 -"))
        assert not f.contains_cube(fmt.cube_from_str("1 1 -"))

    def test_covers(self):
        fmt = self.fmt
        f = from_strings(fmt, ["0 - -", "1 - -"])
        g = from_strings(fmt, ["- - 0", "- - 1"])
        assert f.covers(g) and g.covers(f)

    def test_literal_cost(self):
        # input planes charge excluded values, the output plane (last
        # variable) charges asserted outputs -- espresso convention
        fmt = Format([2, 2])
        f = from_strings(fmt, ["0 -", "- 1"])
        assert f.literal_cost() == (1 + 2) + (0 + 1)
        assert from_strings(fmt, ["- -"]).literal_cost() == 2

    def test_literal_cost_output_plane(self):
        # a cube asserting 2 of 3 outputs is charged 2 output literals
        fmt = Format([2, 2, 3])
        f = Cover(fmt, [fmt.cube_from_fields([1, 3, 0b011])])
        assert f.literal_cost() == 1 + 0 + 2
        # asserting a single output costs 1
        g = Cover(fmt, [fmt.cube_from_fields([1, 3, 0b100])])
        assert g.literal_cost() == 1 + 0 + 1

    def test_cost_ordering(self):
        fmt = Format([2, 2])
        small = from_strings(fmt, ["- -"])
        big = from_strings(fmt, ["0 -", "1 -"])
        assert small.cost() < big.cost()


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50)
def test_scc_preserves_function(seed):
    rng = random.Random(seed)
    fmt = Format([2, 2, 3])
    f = random_cover(fmt, rng.randrange(1, 6), rng)
    g = f.single_cube_containment()
    assert cover_minterms(f) == cover_minterms(g)
    # no cube of g is contained in another
    for i, a in enumerate(g.cubes):
        for j, b in enumerate(g.cubes):
            if i != j:
                assert not (a & ~b == 0)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50)
def test_cofactor_semantics(seed):
    """m in cofactor(F, p) iff (m restricted into p) in F, for m in p."""
    rng = random.Random(seed)
    fmt = Format([2, 2, 2])
    f = random_cover(fmt, rng.randrange(1, 5), rng)
    p = random_cover(fmt, 1, rng).cubes[0]
    cof = f.cofactor(p)
    f_minterms = cover_minterms(f)
    cof_minterms = cover_minterms(cof)
    from tests.conftest import enumerate_minterms

    for m in enumerate_minterms(fmt):
        if m & ~p == 0:  # minterm inside p
            assert (m in f_minterms) == (m in cof_minterms)
