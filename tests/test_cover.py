"""Tests for Cover: container behaviour and cover algebra."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro import perf
from repro.logic import cover as cover_mod
from repro.logic.cover import Cover, contains_memo_scope, from_strings
from repro.logic.cube import Format

from tests.conftest import cover_minterms, random_cover


class TestContainer:
    def test_append_drops_empty(self):
        fmt = Format([2, 2])
        c = Cover(fmt)
        c.append(0)
        assert len(c) == 0
        c.append(fmt.universe)
        assert len(c) == 1

    def test_init_from_iterable(self):
        fmt = Format([2, 2])
        c = Cover(fmt, [fmt.universe, 0, fmt.universe])
        assert len(c) == 2

    def test_concat_checks_format(self):
        a = Cover(Format([2, 2]))
        b = Cover(Format([2, 3]))
        with pytest.raises(ValueError):
            a + b

    def test_concat_and_copy_independent(self):
        fmt = Format([2, 2])
        a = Cover(fmt, [fmt.universe])
        b = a.copy()
        b.append(fmt.cube_from_fields([1, 1]))
        assert len(a) == 1 and len(b) == 2

    def test_iteration_and_indexing(self):
        fmt = Format([2, 2])
        cube = fmt.cube_from_fields([1, 2])
        c = Cover(fmt, [cube])
        assert list(c) == [cube]
        assert c[0] == cube


class TestAlgebra:
    def setup_method(self):
        self.fmt = Format([2, 2, 2])

    def test_cofactor_drops_disjoint(self):
        fmt = self.fmt
        f = from_strings(fmt, ["0 0 -", "1 1 -"])
        cof = f.cofactor(fmt.cube_from_str("0 - -"))
        assert len(cof) == 1

    def test_intersect_cube(self):
        fmt = self.fmt
        f = from_strings(fmt, ["- - -", "1 1 -"])
        g = f.intersect_cube(fmt.cube_from_str("0 - -"))
        assert len(g) == 1  # the 1 1 - cube dies

    def test_single_cube_containment(self):
        fmt = self.fmt
        f = from_strings(fmt, ["- - -", "1 1 -", "0 - 1"])
        assert len(f.single_cube_containment()) == 1

    def test_contains_cube_via_tautology(self):
        fmt = self.fmt
        f = from_strings(fmt, ["0 - -", "1 0 -"])
        assert f.contains_cube(fmt.cube_from_str("- 0 -"))
        assert not f.contains_cube(fmt.cube_from_str("1 1 -"))

    def test_covers(self):
        fmt = self.fmt
        f = from_strings(fmt, ["0 - -", "1 - -"])
        g = from_strings(fmt, ["- - 0", "- - 1"])
        assert f.covers(g) and g.covers(f)

    def test_literal_cost(self):
        # input planes charge excluded values, the output plane (last
        # variable) charges asserted outputs -- espresso convention
        fmt = Format([2, 2])
        f = from_strings(fmt, ["0 -", "- 1"])
        assert f.literal_cost() == (1 + 2) + (0 + 1)
        assert from_strings(fmt, ["- -"]).literal_cost() == 2

    def test_literal_cost_output_plane(self):
        # a cube asserting 2 of 3 outputs is charged 2 output literals
        fmt = Format([2, 2, 3])
        f = Cover(fmt, [fmt.cube_from_fields([1, 3, 0b011])])
        assert f.literal_cost() == 1 + 0 + 2
        # asserting a single output costs 1
        g = Cover(fmt, [fmt.cube_from_fields([1, 3, 0b100])])
        assert g.literal_cost() == 1 + 0 + 1

    def test_cost_ordering(self):
        fmt = Format([2, 2])
        small = from_strings(fmt, ["- -"])
        big = from_strings(fmt, ["0 -", "1 -"])
        assert small.cost() < big.cost()


class TestSccDeterminism:
    """The equal-minterm-count tie-break is by cube value (regression:
    the order used to come from set iteration, which depends on
    insertion history)."""

    def setup_method(self):
        self.fmt = Format([2, 2, 2])
        # four pairwise-incomparable cubes, all with minterm count 4
        self.ties = [self.fmt.cube_from_str(s)
                     for s in ("0 - -", "1 - -", "- 0 -", "- 1 -")]

    def test_output_independent_of_insertion_order(self):
        results = set()
        for perm in ((0, 1, 2, 3), (3, 2, 1, 0), (2, 0, 3, 1)):
            f = Cover(self.fmt)
            f.cubes = [self.ties[i] for i in perm]
            results.add(tuple(f.single_cube_containment().cubes))
        assert len(results) == 1

    def test_ties_sorted_by_cube_value(self):
        f = Cover(self.fmt)
        f.cubes = list(reversed(self.ties))
        out = f.single_cube_containment().cubes
        assert out == sorted(self.ties)

    def test_containers_still_come_first(self):
        f = Cover(self.fmt)
        small = self.fmt.cube_from_str("0 0 -")
        f.cubes = [small] + self.ties
        out = f.single_cube_containment().cubes
        assert small not in out  # contained in "0 - -"
        assert out == sorted(self.ties)

    def test_nova_lint_catches_nondeterministic_variant(self, tmp_path):
        """A tie-break via the module-level random generator (one easy
        way to reintroduce order dependence) trips NV005 in logic/."""
        from repro.analysis import lint_paths

        target = tmp_path / "logic" / "cover.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "import random\n"
            "def single_cube_containment(cubes, mc):\n"
            "    order = sorted(set(cubes), key=mc, reverse=True)\n"
            "    random.shuffle(order)\n"
            "    return order\n")
        result = lint_paths([tmp_path], display_root=tmp_path)
        hits = [f for f in result.findings if f.rule == "NV005"]
        assert hits, "nondeterministic scc variant went unflagged"
        assert "random.shuffle" in hits[0].message


class TestContainsMemoScope:
    def setup_method(self):
        self.fmt = Format([2, 2])
        self.f = from_strings(self.fmt, ["0 -", "1 -"])
        cover_mod.clear_contains_memo()

    def teardown_method(self):
        cover_mod.clear_contains_memo()

    def test_repeat_queries_hit_within_scope(self):
        with perf.collect() as stats:
            with contains_memo_scope():
                self.f.contains_cube(self.fmt.cube_from_str("- 0"))
                self.f.contains_cube(self.fmt.cube_from_str("- 0"))
        assert stats.contains_memo_hits == 1

    def test_scope_exit_clears_the_memo(self):
        with contains_memo_scope():
            self.f.contains_cube(self.fmt.cube_from_str("- 0"))
            assert cover_mod._contains_memo
        assert not cover_mod._contains_memo

    def test_scope_entry_clears_leaked_state(self):
        # a query outside any scope leaves entries behind; the next
        # scoped run must not see them
        self.f.contains_cube(self.fmt.cube_from_str("- 0"))
        assert cover_mod._contains_memo
        with perf.collect() as stats:
            with contains_memo_scope():
                assert not cover_mod._contains_memo
                self.f.contains_cube(self.fmt.cube_from_str("- 0"))
        assert stats.contains_memo_hits == 0

    def test_nested_scopes_keep_the_intra_run_hit_rate(self):
        with perf.collect() as stats:
            with contains_memo_scope():
                self.f.contains_cube(self.fmt.cube_from_str("- 0"))
                with contains_memo_scope():  # e.g. a fallback re-encode
                    self.f.contains_cube(self.fmt.cube_from_str("- 0"))
                self.f.contains_cube(self.fmt.cube_from_str("- 0"))
        assert stats.contains_memo_hits == 2


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50)
def test_scc_preserves_function(seed):
    rng = random.Random(seed)
    fmt = Format([2, 2, 3])
    f = random_cover(fmt, rng.randrange(1, 6), rng)
    g = f.single_cube_containment()
    assert cover_minterms(f) == cover_minterms(g)
    # no cube of g is contained in another
    for i, a in enumerate(g.cubes):
        for j, b in enumerate(g.cubes):
            if i != j:
                assert not (a & ~b == 0)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50)
def test_cofactor_semantics(seed):
    """m in cofactor(F, p) iff (m restricted into p) in F, for m in p."""
    rng = random.Random(seed)
    fmt = Format([2, 2, 2])
    f = random_cover(fmt, rng.randrange(1, 5), rng)
    p = random_cover(fmt, 1, rng).cubes[0]
    cof = f.cofactor(p)
    f_minterms = cover_minterms(f)
    cof_minterms = cover_minterms(cof)
    from tests.conftest import enumerate_minterms

    for m in enumerate_minterms(fmt):
        if m & ~p == 0:  # minterm inside p
            assert (m in f_minterms) == (m in cof_minterms)
