"""Tests for the public encoding verifier."""

import pytest

from repro.encoding.base import Encoding
from repro.encoding.nova import encode_fsm
from repro.encoding.verify import verify_encoded_machine
from repro.eval.instantiate import EncodedPLA
from repro.fsm.benchmarks import benchmark
from repro.logic.cover import Cover


class TestVerifier:
    def test_good_encodings_pass(self):
        for name in ("lion", "train4", "bbtas"):
            fsm = benchmark(name)
            r = encode_fsm(fsm, "ihybrid")
            report = verify_encoded_machine(fsm, r.state_encoding, r.pla,
                                            r.symbol_encoding)
            assert report
            assert report.checked_pairs > 0
            assert not report.mismatches

    def test_symbolic_machine(self):
        fsm = benchmark("dk27")
        r = encode_fsm(fsm, "igreedy")
        report = verify_encoded_machine(fsm, r.state_encoding, r.pla,
                                        r.symbol_encoding)
        assert report

    def test_symbolic_machine_requires_symbol_encoding(self):
        fsm = benchmark("dk27")
        r = encode_fsm(fsm, "igreedy")
        with pytest.raises(ValueError):
            verify_encoded_machine(fsm, r.state_encoding, r.pla, None)

    def test_corrupted_cover_detected(self):
        fsm = benchmark("lion")
        r = encode_fsm(fsm, "ihybrid")
        pla = r.pla
        broken = EncodedPLA(
            fsm=pla.fsm, state_bits=pla.state_bits,
            input_bits=pla.input_bits,
            cover=Cover(pla.cover.fmt, pla.cover.cubes[:-1]),  # drop a cube
            on=pla.on, dc=pla.dc, off=pla.off,
        )
        report = verify_encoded_machine(fsm, r.state_encoding, broken)
        assert not report.ok
        assert report.mismatches

    def test_wrong_codes_detected(self):
        fsm = benchmark("lion")
        good = encode_fsm(fsm, "ihybrid")
        # evaluate with one encoding, verify against a different one
        other = Encoding(good.state_encoding.nbits,
                         list(reversed(good.state_encoding.codes)))
        report = verify_encoded_machine(fsm, other, good.pla)
        assert not report.ok

    def test_pair_budget_respected(self):
        fsm = benchmark("bbtas")
        r = encode_fsm(fsm, "ihybrid")
        report = verify_encoded_machine(fsm, r.state_encoding, r.pla,
                                        max_pairs=3)
        assert report.checked_pairs <= 3
