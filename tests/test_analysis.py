"""Tests for FSM static analysis."""

from repro.fsm.analysis import (
    analyze,
    is_deterministic,
    nondeterministic_pairs,
    reachable_states,
    specification_coverage,
    to_dot,
    transition_graph,
    unreachable_states,
)
from repro.fsm.benchmarks import benchmark
from repro.fsm.machine import FSM, Transition


def island_fsm() -> FSM:
    """Machine with an unreachable state."""
    rows = [
        Transition("0", "a", "a", "0"),
        Transition("1", "a", "b", "0"),
        Transition("-", "b", "a", "1"),
        Transition("-", "c", "c", "0"),  # island
    ]
    return FSM("island", 1, 1, ["a", "b", "c"], rows, reset="a")


class TestReachability:
    def test_full_reachability_on_benchmarks(self):
        for name in ("lion", "bbtas", "shiftreg", "modulo12", "ex2",
                     "dk27", "planet", "mark1", "iofsm", "donfile"):
            fsm = benchmark(name)
            assert reachable_states(fsm) == set(fsm.states), name
            assert unreachable_states(fsm) == []

    def test_island_detected(self):
        assert unreachable_states(island_fsm()) == ["c"]

    def test_custom_start(self):
        assert reachable_states(island_fsm(), start="c") == {"c"}

    def test_transition_graph(self):
        adj = transition_graph(island_fsm())
        assert adj["a"] == {"a", "b"}
        assert adj["c"] == {"c"}


class TestDeterminism:
    def test_benchmarks_deterministic(self):
        for name in ("lion", "bbtas", "ex3", "dk27", "train11"):
            assert is_deterministic(benchmark(name)), name

    def test_conflict_detected(self):
        rows = [
            Transition("0-", "a", "a", "0"),
            Transition("-0", "a", "b", "0"),  # overlaps 00, different next
        ]
        fsm = FSM("nd", 2, 1, ["a", "b"], rows)
        assert not is_deterministic(fsm)
        assert len(nondeterministic_pairs(fsm)) == 1

    def test_compatible_overlap_allowed(self):
        rows = [
            Transition("0-", "a", "b", "-"),
            Transition("-0", "a", "b", "1"),  # overlap agrees
        ]
        fsm = FSM("ok", 2, 1, ["a", "b"], rows)
        assert is_deterministic(fsm)


class TestCoverage:
    def test_fully_specified(self):
        assert specification_coverage(benchmark("shiftreg")) == 1.0

    def test_partial(self):
        rows = [Transition("0", "a", "a", "0")]
        fsm = FSM("p", 1, 1, ["a"], rows)
        assert specification_coverage(fsm) == 0.5

    def test_symbolic_machines(self):
        assert specification_coverage(benchmark("dk27")) == 1.0


class TestAnalyze:
    def test_stats_shape(self):
        stats = analyze(benchmark("lion9"))
        assert stats.states == 9
        assert stats.reachable == 9
        assert stats.deterministic
        assert stats.max_fan_out >= 2
        assert 0 < stats.coverage <= 1.0

    def test_self_loops_counted(self):
        stats = analyze(benchmark("modulo12"))
        assert stats.self_loops == 12  # hold rows on input 0


class TestDot:
    def test_dot_output(self):
        text = to_dot(benchmark("lion"))
        assert text.startswith("digraph")
        assert '"st0" -> "st1"' in text
        assert "doublecircle" in text

    def test_symbolic_labels(self):
        text = to_dot(benchmark("dk27"))
        assert "v0" in text or "v1" in text
