"""Shared fixtures and helpers for the NOVA reproduction test-suite."""

from __future__ import annotations

import itertools
import random
from typing import List, Set

import pytest

from repro.logic.cover import Cover
from repro.logic.cube import Format


def enumerate_minterms(fmt: Format):
    """All minterm cubes of a format (one part chosen per variable)."""
    choices = [[1 << p for p in range(parts)] for parts in fmt.parts]
    for combo in itertools.product(*choices):
        yield fmt.cube_from_fields(list(combo))


def cover_minterms(cover: Cover) -> Set[int]:
    """The set of minterms a cover contains (small formats only)."""
    fmt = cover.fmt
    out = set()
    for m in enumerate_minterms(fmt):
        for c in cover.cubes:
            if m & ~c == 0:
                out.add(m)
                break
    return out


def random_cover(fmt: Format, n_cubes: int, rng: random.Random) -> Cover:
    """A random cover: each variable keeps a random non-empty part set."""
    cover = Cover(fmt)
    for _ in range(n_cubes):
        fields = []
        for parts in fmt.parts:
            field = rng.randrange(1, 1 << parts)
            fields.append(field)
        cover.append(fmt.cube_from_fields(fields))
    return cover


@pytest.fixture(autouse=True)
def _isolated_encode_cache(monkeypatch):
    """Keep the suite hermetic: no test reads or writes ~/.cache/nova.

    The default ``auto`` cache policy resolves to the two-tier cache;
    a warm blob left by one test (or a previous run) would mask real
    recomputation in the next, so every test runs with ``auto`` -> off
    and a cleared in-process cache registry.  Cache tests opt back in
    with an explicit ``cache="on"`` policy plus a tmp NOVA_CACHE_DIR.
    """
    from repro import cache

    monkeypatch.setenv("NOVA_CACHE", "off")
    monkeypatch.delenv("NOVA_CACHE_DIR", raising=False)
    cache.reset()
    yield
    cache.reset()


@pytest.fixture(autouse=True)
def _crash_consistency_sanitizer(request):
    """Arm the durability interposer when NOVA_SANITIZE asks for it.

    Off by default (zero overhead); CI runs the suite a second time
    with the sanitizer on, and any tmp-write -> fsync -> replace drift
    or orphaned temp file fails the offending test by name.  Tests that
    exercise the sanitizer itself (and so violate the protocol on
    purpose) opt out with ``@pytest.mark.sanitizer_internal``.
    """
    from repro import config as config_mod
    from repro.testing import sanitize

    if (not config_mod.sanitize_enabled()
            or request.node.get_closest_marker("sanitizer_internal")):
        yield
        return
    san = sanitize.AtomicWriteSanitizer()
    with san:
        yield
    assert not san.reports, (
        "crash-consistency sanitizer reports:\n"
        + "\n".join(str(r) for r in san.reports))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


def paper_constraint_masks() -> List[int]:
    """The running example of §3: six constraints over seven states.

    Constraint strings in the paper put state 1 leftmost; here bit i
    stands for state i+1.
    """

    def m(*xs: int) -> int:
        return sum(1 << (x - 1) for x in xs)

    return [m(1, 2, 3), m(2, 3, 4), m(5, 6, 7), m(1, 5, 6), m(6, 7),
            m(3, 4)]


PAPER_WEIGHTS = [4, 2, 3, 5, 1, 1]
