"""Tests for the KISS, MUSTANG, and random baselines."""

import pytest

from repro.baselines.kiss import kiss_code
from repro.baselines.mustang import MUSTANG_OPTIONS, _pair_weights, mustang_code
from repro.baselines.random_search import best_random, random_assignments
from repro.constraints.input_constraints import ConstraintSet, \
    extract_input_constraints
from repro.encoding.base import constraint_satisfied
from repro.fsm.benchmarks import benchmark
from repro.fsm.machine import minimum_code_length
from repro.fsm.symbolic_cover import build_symbolic_cover

from tests.conftest import PAPER_WEIGHTS, paper_constraint_masks


class TestKissBaseline:
    def test_satisfies_all_constraints_paper_example(self):
        cs = ConstraintSet(7)
        for m, w in zip(paper_constraint_masks(), PAPER_WEIGHTS):
            cs.add(m, w)
        enc = kiss_code(cs)
        for m in cs.masks():
            assert constraint_satisfied(enc, m)

    def test_satisfies_all_on_real_machines(self):
        for name in ("lion", "bbtas", "dk27", "ex3", "beecount"):
            sc = build_symbolic_cover(benchmark(name))
            cs = extract_input_constraints(sc).state_constraints
            enc = kiss_code(cs)
            for m in cs.masks():
                assert constraint_satisfied(enc, m), name

    def test_code_length_at_least_minimum(self):
        cs = ConstraintSet(7)
        for m in paper_constraint_masks():
            cs.add(m)
        enc = kiss_code(cs)
        assert enc.nbits >= minimum_code_length(7)

    def test_no_constraints_minimum_bits(self):
        enc = kiss_code(ConstraintSet(5))
        assert enc.nbits == minimum_code_length(5)


class TestMustang:
    def test_all_options_produce_valid_encodings(self):
        fsm = benchmark("bbtas")
        for opt in MUSTANG_OPTIONS:
            enc = mustang_code(fsm, option=opt)
            assert len(set(enc.codes)) == fsm.num_states
            assert enc.nbits == minimum_code_length(fsm.num_states)

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError):
            mustang_code(benchmark("lion"), option="zz")

    def test_weights_symmetric_keys(self):
        fsm = benchmark("train4")
        for opt in MUSTANG_OPTIONS:
            w = _pair_weights(fsm, opt)
            for (a, b), val in w.items():
                assert a < b
                assert val > 0

    def test_attracted_pairs_get_close_codes(self):
        """States funnelling into the same next state should sit nearby."""
        fsm = benchmark("lion9")
        enc = mustang_code(fsm, option="p")
        w = _pair_weights(fsm, "p")
        if not w:
            return
        (a, b), _ = max(w.items(), key=lambda kv: kv[1])
        dist = bin(enc.codes[a] ^ enc.codes[b]).count("1")
        assert dist <= 2  # heaviest pair must be near-adjacent

    def test_explicit_code_length(self):
        enc = mustang_code(benchmark("lion"), option="n", nbits=3)
        assert enc.nbits == 3

    def test_deterministic(self):
        fsm = benchmark("beecount")
        assert mustang_code(fsm, "p").codes == mustang_code(fsm, "p").codes


class TestRandomBaseline:
    def test_default_trial_count(self):
        encs = random_assignments(6)
        assert len(encs) == 6
        for e in encs:
            assert len(set(e.codes)) == 6

    def test_deterministic_seeding(self):
        a = random_assignments(5, seed=7)
        b = random_assignments(5, seed=7)
        assert [e.codes for e in a] == [e.codes for e in b]

    def test_best_random(self):
        encs = random_assignments(4, trials=5)
        best, avg = best_random(encs, lambda e: sum(e.codes))
        assert best <= avg
