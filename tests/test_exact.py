"""Tests for the exact minimizer, and espresso-vs-exact quality checks."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.logic.cover import Cover, from_strings
from repro.logic.cube import Format
from repro.logic.espresso import espresso
from repro.logic.exact import TooLarge, all_primes, exact_minimize
from repro.logic.verify import verify_minimization

from tests.conftest import cover_minterms, enumerate_minterms, random_cover


def brute_force_primes(on: Cover) -> set:
    """All maximal implicant cubes of a (small) cover, by enumeration."""
    fmt = on.fmt
    minterms = cover_minterms(on)
    # enumerate every cube (every choice of non-empty field per variable)
    import itertools

    choices = [range(1, 1 << p) for p in fmt.parts]
    implicants = []
    for combo in itertools.product(*choices):
        cube = fmt.cube_from_fields(list(combo))
        if all(m in minterms for m in enumerate_minterms(fmt)
               if m & ~cube == 0):
            implicants.append(cube)
    return {c for c in implicants
            if not any(c != d and c & ~d == 0 for d in implicants)}


class TestAllPrimes:
    def test_classic(self):
        # f = a' + b over (a, b): primes are a' and b
        fmt = Format([2, 2, 1])
        on = from_strings(fmt, ["0 0 1", "0 1 1", "1 1 1"])
        primes = all_primes(on)
        assert set(primes.cubes) == {fmt.cube_from_str("0 - 1"),
                                     fmt.cube_from_str("- 1 1")}

    def test_with_dc(self):
        fmt = Format([2, 2, 1])
        on = from_strings(fmt, ["0 0 1"])
        dc = from_strings(fmt, ["0 1 1"])
        primes = all_primes(on, dc)
        assert fmt.cube_from_str("0 - 1") in primes.cubes

    def test_size_guard(self):
        fmt = Format([2] * 12 + [1])
        rng = random.Random(0)
        on = random_cover(fmt, 40, rng)
        with pytest.raises(TooLarge):
            all_primes(on, max_cubes=10)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_primes_match_bruteforce(seed):
    rng = random.Random(seed)
    fmt = Format(rng.choice([[2, 2, 1], [2, 2, 2], [3, 2, 1]]))
    on = random_cover(fmt, rng.randrange(1, 5), rng)
    got = set(all_primes(on).cubes)
    want = brute_force_primes(on)
    assert got == want


class TestExactMinimize:
    def test_classic(self):
        fmt = Format([2, 2, 1])
        on = from_strings(fmt, ["0 0 1", "0 1 1", "1 1 1"])
        m = exact_minimize(on)
        assert len(m) == 2
        assert verify_minimization(m, on)

    def test_empty(self):
        fmt = Format([2, 1])
        assert len(exact_minimize(Cover(fmt))) == 0

    def test_cyclic_core(self):
        """The classic cyclic function needs branch and bound."""
        fmt = Format([2, 2, 2, 1])
        # f with a cyclic prime structure: xor-ish corners
        on = from_strings(fmt, [
            "0 0 0 1", "0 0 1 1", "0 1 1 1", "1 1 1 1", "1 1 0 1",
            "1 0 0 1",
        ])
        m = exact_minimize(on)
        assert verify_minimization(m, on)
        assert len(m) == 3

    def test_minterm_guard(self):
        fmt = Format([2] * 14 + [1])
        on = Cover(fmt, [fmt.universe])
        with pytest.raises(TooLarge):
            exact_minimize(on, max_minterms=100)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=30, deadline=None)
def test_espresso_close_to_exact(seed):
    """Heuristic result is correct and within 1 cube of the optimum on
    small random functions (espresso's published behaviour)."""
    rng = random.Random(seed)
    fmt = Format(rng.choice([[2, 2, 1], [2, 2, 2], [2, 2, 2, 1]]))
    on = random_cover(fmt, rng.randrange(1, 6), rng)
    dc = random_cover(fmt, rng.randrange(0, 2), rng)
    exact = exact_minimize(on, dc)
    heur = espresso(on, dc)
    assert verify_minimization(heur, on, dc)
    assert len(exact) <= len(heur) <= len(exact) + 1
    # the exact cover is itself a correct cover
    assert verify_minimization(exact, on, dc)
