"""End-to-end integration tests: the full paper pipeline on real machines.

These tie every subsystem together and assert the directional results
the paper's evaluation is built on.
"""


import pytest

from repro import benchmark, encode_fsm, parse_kiss, to_kiss
from repro.constraints.input_constraints import extract_input_constraints
from repro.encoding.base import constraint_satisfied, satisfied_weight
from repro.eval.multilevel import multilevel_literals
from repro.fsm.symbolic_cover import build_symbolic_cover
from repro.logic.verify import verify_minimization


class TestPipelineCorrectness:
    @pytest.mark.parametrize("name", ["lion", "train4", "bbtas", "dk27",
                                      "beecount", "dol"])
    def test_minimized_encoded_cover_is_verified(self, name):
        r = encode_fsm(benchmark(name), "ihybrid")
        pla = r.pla
        assert verify_minimization(pla.cover, pla.on, pla.dc,
                                   pla.off if len(pla.off) else None)

    def test_encoded_cover_never_larger_than_onehot(self):
        """A good encoding can't do worse than the symbolic upper bound
        by much; the MV cover size is the 1-hot reference."""
        for name in ("lion", "bbtas", "shiftreg", "lion9"):
            r = encode_fsm(benchmark(name), "ihybrid")
            assert r.cubes <= r.mv_cover_size + max(3, r.mv_cover_size // 3)

    def test_roundtrip_through_kiss_preserves_results(self):
        fsm = benchmark("bbtas")
        again = parse_kiss(to_kiss(fsm), name="bbtas2")
        a = encode_fsm(fsm, "igreedy")
        b = encode_fsm(again, "igreedy")
        assert a.cubes == b.cubes and a.area == b.area

    def test_satisfying_more_weight_reduces_cubes(self):
        """The premise of the whole paper: constraint weight ~ cubes saved."""
        fsm = benchmark("lion9")
        sc = build_symbolic_cover(fsm)
        cs = extract_input_constraints(sc).state_constraints
        runs = []
        for s in range(8):
            r = encode_fsm(fsm, "random", seed=500 + s)
            w = satisfied_weight(r.state_encoding, cs)
            runs.append((w, r.cubes))
        best_w = max(runs)[0]
        worst_w = min(runs)[0]
        if best_w > worst_w:
            avg_high = sum(c for w, c in runs if w == best_w) / \
                len([1 for w, c in runs if w == best_w])
            avg_low = sum(c for w, c in runs if w == worst_w) / \
                len([1 for w, c in runs if w == worst_w])
            assert avg_high <= avg_low + 2


class TestDirectionalClaims:
    def test_nova_beats_kiss_in_total(self):
        total_nova = 0
        total_kiss = 0
        for name in ("bbtas", "lion9", "ex3", "ex5", "beecount"):
            fsm = benchmark(name)
            nova = min(encode_fsm(fsm, a).area
                       for a in ("ihybrid", "igreedy"))
            total_nova += nova
            total_kiss += encode_fsm(fsm, "kiss").area
        assert total_nova < total_kiss

    def test_iohybrid_helps_somewhere(self):
        """Output constraints must win on at least one machine (paper:
        iohybrid's totals beat ihybrid/igreedy on several rows)."""
        wins = 0
        for name in ("lion", "train11", "bbtas", "dk27", "beecount"):
            fsm = benchmark(name)
            io = encode_fsm(fsm, "iohybrid").area
            ih = min(encode_fsm(fsm, a).area for a in ("ihybrid", "igreedy"))
            if io <= ih:
                wins += 1
        assert wins >= 1

    def test_multilevel_literals_track_two_level_quality(self):
        """Table VII's observation: good two-level encodings give good
        factored-form literal counts too."""
        fsm = benchmark("lion9")
        nova = encode_fsm(fsm, "ihybrid")
        rand_lits = [
            multilevel_literals(encode_fsm(fsm, "random", seed=s).pla)
            for s in range(17, 23)
        ]
        nova_lits = multilevel_literals(nova.pla)
        assert nova_lits <= max(rand_lits)

    def test_symbolic_input_machines_full_pipeline(self):
        for name in ("dk27", "dk15"):
            fsm = benchmark(name)
            r = encode_fsm(fsm, "ihybrid")
            assert r.symbol_encoding is not None
            assert r.area > 0
            # both variables' constraints contribute to the bit count
            assert r.bits >= r.state_encoding.nbits + 1


class TestConstraintSemantics:
    def test_all_sic_constraints_truly_satisfied(self):
        """Whatever ihybrid reports satisfied must hold for the codes."""
        from repro.encoding.ihybrid import HybridStats, ihybrid_code

        for name in ("bbtas", "ex3", "lion9", "beecount"):
            sc = build_symbolic_cover(benchmark(name))
            cs = extract_input_constraints(sc).state_constraints
            stats = HybridStats()
            enc = ihybrid_code(cs, nbits=cs.n, stats=stats)
            for m in stats.satisfied:
                assert constraint_satisfied(enc, m), name

    def test_kiss_guarantee_on_pipeline(self):
        for name in ("bbtas", "ex5", "lion9"):
            sc = build_symbolic_cover(benchmark(name))
            cs = extract_input_constraints(sc).state_constraints
            from repro.baselines.kiss import kiss_code

            enc = kiss_code(cs)
            assert all(constraint_satisfied(enc, m) for m in cs.masks())
