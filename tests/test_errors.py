"""Tests for the error taxonomy and the Budget exhaustion semantics."""

import json
import pickle
import time

import pytest

from repro.errors import (
    BudgetExhausted,
    ConstraintError,
    EncodingInfeasible,
    ParseError,
    ReproError,
    VerificationError,
    error_from_dict,
    error_to_dict,
    exit_code_for,
)
from repro.perf.budget import Budget, BudgetExceeded


class StrictError(ReproError):
    """Test double with an extra *required* positional parameter — the
    shape that breaks ``BaseException``'s default pickling (it replays
    ``cls(*args)`` with only the original ``args``)."""

    def __init__(self, message, code, **context):
        super().__init__(message, **context)
        self.code = code


class TestTaxonomy:
    def test_hierarchy(self):
        for cls in (ParseError, ConstraintError, BudgetExhausted,
                    EncodingInfeasible, VerificationError):
            assert issubclass(cls, ReproError)
        # classes replacing historical ValueError sites stay catchable
        assert issubclass(ParseError, ValueError)
        assert issubclass(ConstraintError, ValueError)
        assert issubclass(EncodingInfeasible, ValueError)

    def test_context_rendering(self):
        exc = BudgetExhausted("work limit 10 exceeded", limit="work",
                              work=11, max_work=10, stage="iexact",
                              machine="dk16")
        s = str(exc)
        assert "work=11/10" in s
        assert "stage=iexact" in s
        assert "machine=dk16" in s

    def test_parse_error_line_and_token(self):
        exc = ParseError("bad row", line=7, token="xyz")
        assert exc.line == 7
        assert exc.token == "xyz"
        assert "line 7" in str(exc)
        assert "'xyz'" in str(exc)

    def test_plain_message_without_context(self):
        assert str(ReproError("boom")) == "boom"

    def test_exit_codes_are_distinct(self):
        codes = [exit_code_for(cls("x")) for cls in
                 (ParseError, ConstraintError, BudgetExhausted,
                  EncodingInfeasible, VerificationError)]
        assert codes == [3, 4, 5, 6, 7]
        assert exit_code_for(ReproError("x")) == 1

    def test_budget_exceeded_is_an_alias(self):
        # historical name still works at every catch site
        assert BudgetExceeded is BudgetExhausted


#: One fully-loaded instance per taxonomy class, for transport tests.
LOADED = [
    ReproError("base", stage="encode", machine="dk16", elapsed=1.5),
    ParseError("bad row", line=7, token="xyz", stage="parse"),
    ConstraintError("cycle", stage="mv_min", machine="lion"),
    BudgetExhausted("over", limit="work", work=11, max_work=10,
                    stage="iexact"),
    EncodingInfeasible("no embedding", stage="encode", machine="dk27"),
    VerificationError("mismatch", mismatches=["a", "b"], stage="verify"),
]


class TestPickleTransport:
    """Exceptions must survive ``multiprocessing`` result transport."""

    @pytest.mark.parametrize("exc", LOADED,
                             ids=lambda e: type(e).__name__)
    def test_round_trip_preserves_class_and_context(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)
        assert clone.__dict__ == exc.__dict__

    def test_subclass_with_required_init_arg(self):
        """The documented failure mode: extra required ``__init__``
        parameters must not break transport."""
        exc = StrictError("boom", 42, stage="encode")
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is StrictError
        assert clone.code == 42
        assert clone.stage == "encode"
        assert str(clone) == str(exc)


class TestJsonTransport:
    """The journal stores errors as JSON, not pickles."""

    @pytest.mark.parametrize("exc", LOADED,
                             ids=lambda e: type(e).__name__)
    def test_round_trip_through_json(self, exc):
        d = json.loads(json.dumps(error_to_dict(exc)))
        clone = error_from_dict(d)
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)

    def test_rendered_form_is_kept(self):
        d = error_to_dict(BudgetExhausted("over", limit="work", work=2,
                                          max_work=1))
        assert d["rendered"] == "over [work=2/1]"

    def test_non_taxonomy_errors_are_representable(self):
        d = error_to_dict(ValueError("plain"))
        assert d["type"] == "ValueError"
        clone = error_from_dict(d)
        assert isinstance(clone, ReproError)
        assert "ValueError" in str(clone)

    def test_unknown_type_degrades_to_base(self):
        clone = error_from_dict({"type": "FutureError", "message": "x"})
        assert type(clone) is ReproError
        assert "FutureError" in str(clone)


class TestBudget:
    def test_work_exhaustion_carries_counters(self):
        b = Budget(work=3, stage="encode")
        with pytest.raises(BudgetExhausted) as exc_info:
            for _ in range(10):
                b.charge()
        exc = exc_info.value
        assert exc.limit == "work"
        assert exc.work == 4 and exc.max_work == 3
        assert exc.stage == "encode"

    def test_time_exhaustion_has_time_limit_kind(self):
        b = Budget(seconds=0.0, stage="evaluate")
        time.sleep(0.002)
        with pytest.raises(BudgetExhausted) as exc_info:
            b.check_time()
        assert exc_info.value.limit == "time"
        assert exc_info.value.stage == "evaluate"

    def test_child_fraction_of_time(self):
        b = Budget(seconds=10.0)
        child = b.child(0.5)
        remaining = child.remaining_seconds()
        assert remaining is not None
        assert 4.0 < remaining <= 5.0
        # parent deadline unchanged
        assert b.remaining_seconds() > 9.0

    def test_child_fraction_of_work(self):
        b = Budget(work=100)
        b.work = 20
        child = b.child(0.25)
        assert child.max_work == 20  # 25% of the remaining 80
        assert child.work == 0

    def test_child_of_unbounded_is_unbounded(self):
        child = Budget().child(0.5)
        assert child.deadline is None and child.max_work is None

    def test_child_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            Budget().child(0.0)
        with pytest.raises(ValueError):
            Budget().child(1.5)

    def test_child_inherits_stage(self):
        b = Budget(seconds=1.0, stage="pipeline")
        assert b.child(0.5).stage == "pipeline"
        assert b.child(0.5, stage="encode").stage == "encode"

    def test_sub_shares_deadline(self):
        b = Budget(seconds=5.0)
        assert b.sub(work=10).deadline == b.deadline
