"""Tests for the error taxonomy and the Budget exhaustion semantics."""

import time

import pytest

from repro.errors import (
    BudgetExhausted,
    ConstraintError,
    EncodingInfeasible,
    ParseError,
    ReproError,
    VerificationError,
    exit_code_for,
)
from repro.perf.budget import Budget, BudgetExceeded


class TestTaxonomy:
    def test_hierarchy(self):
        for cls in (ParseError, ConstraintError, BudgetExhausted,
                    EncodingInfeasible, VerificationError):
            assert issubclass(cls, ReproError)
        # classes replacing historical ValueError sites stay catchable
        assert issubclass(ParseError, ValueError)
        assert issubclass(ConstraintError, ValueError)
        assert issubclass(EncodingInfeasible, ValueError)

    def test_context_rendering(self):
        exc = BudgetExhausted("work limit 10 exceeded", limit="work",
                              work=11, max_work=10, stage="iexact",
                              machine="dk16")
        s = str(exc)
        assert "work=11/10" in s
        assert "stage=iexact" in s
        assert "machine=dk16" in s

    def test_parse_error_line_and_token(self):
        exc = ParseError("bad row", line=7, token="xyz")
        assert exc.line == 7
        assert exc.token == "xyz"
        assert "line 7" in str(exc)
        assert "'xyz'" in str(exc)

    def test_plain_message_without_context(self):
        assert str(ReproError("boom")) == "boom"

    def test_exit_codes_are_distinct(self):
        codes = [exit_code_for(cls("x")) for cls in
                 (ParseError, ConstraintError, BudgetExhausted,
                  EncodingInfeasible, VerificationError)]
        assert codes == [3, 4, 5, 6, 7]
        assert exit_code_for(ReproError("x")) == 1

    def test_budget_exceeded_is_an_alias(self):
        # historical name still works at every catch site
        assert BudgetExceeded is BudgetExhausted


class TestBudget:
    def test_work_exhaustion_carries_counters(self):
        b = Budget(work=3, stage="encode")
        with pytest.raises(BudgetExhausted) as exc_info:
            for _ in range(10):
                b.charge()
        exc = exc_info.value
        assert exc.limit == "work"
        assert exc.work == 4 and exc.max_work == 3
        assert exc.stage == "encode"

    def test_time_exhaustion_has_time_limit_kind(self):
        b = Budget(seconds=0.0, stage="evaluate")
        time.sleep(0.002)
        with pytest.raises(BudgetExhausted) as exc_info:
            b.check_time()
        assert exc_info.value.limit == "time"
        assert exc_info.value.stage == "evaluate"

    def test_child_fraction_of_time(self):
        b = Budget(seconds=10.0)
        child = b.child(0.5)
        remaining = child.remaining_seconds()
        assert remaining is not None
        assert 4.0 < remaining <= 5.0
        # parent deadline unchanged
        assert b.remaining_seconds() > 9.0

    def test_child_fraction_of_work(self):
        b = Budget(work=100)
        b.work = 20
        child = b.child(0.25)
        assert child.max_work == 20  # 25% of the remaining 80
        assert child.work == 0

    def test_child_of_unbounded_is_unbounded(self):
        child = Budget().child(0.5)
        assert child.deadline is None and child.max_work is None

    def test_child_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            Budget().child(0.0)
        with pytest.raises(ValueError):
            Budget().child(1.5)

    def test_child_inherits_stage(self):
        b = Budget(seconds=1.0, stage="pipeline")
        assert b.child(0.5).stage == "pipeline"
        assert b.child(0.5, stage="encode").stage == "encode"

    def test_sub_shares_deadline(self):
        b = Budget(seconds=5.0)
        assert b.sub(work=10).deadline == b.deadline
