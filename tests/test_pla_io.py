"""Tests for the espresso PLA-format reader/writer."""

import pytest

from repro.logic.cover import from_strings
from repro.logic.cube import Format
from repro.logic.espresso import espresso
from repro.logic.pla_io import PLA, parse_pla, write_pla
from repro.logic.verify import covers_equivalent

SIMPLE = """
# a 2-input 2-output example
.i 2
.o 2
.p 3
01 10
1- 01
-- 0-
.e
"""


class TestParse:
    def test_binary_pla(self):
        pla = parse_pla(SIMPLE)
        assert pla.num_binary == 2
        assert pla.num_outputs == 2
        assert len(pla.on) == 2
        assert len(pla.dc) == 1  # the '-' output of the third row

    def test_type_f_ignores_dc(self):
        text = ".i 1\n.o 1\n.type f\n0 1\n1 -\n.e\n"
        pla = parse_pla(text)
        assert len(pla.on) == 1
        assert len(pla.dc) == 0

    def test_type_fr_collects_off(self):
        text = ".i 1\n.o 2\n.type fr\n0 10\n1 01\n.e\n"
        pla = parse_pla(text)
        assert len(pla.off) == 2

    def test_mv_pla(self):
        text = ".mv 3 1 4 2\n0 0110 10\n- 1000 01\n.e\n"
        pla = parse_pla(text)
        assert pla.fmt.parts == (2, 4, 2)
        assert len(pla.on) == 2
        assert pla.fmt.field(pla.on.cubes[0], 1) == 0b0110

    def test_labels(self):
        text = ".i 1\n.o 1\n.ilb a\n.ob f\n1 1\n.e\n"
        pla = parse_pla(text)
        assert pla.input_labels == ["a"]
        assert pla.output_labels == ["f"]

    def test_missing_directives(self):
        with pytest.raises(ValueError):
            parse_pla("01 1\n")

    def test_unknown_directive(self):
        with pytest.raises(ValueError):
            parse_pla(".i 1\n.o 1\n.zzz\n1 1\n")

    def test_bad_row_width(self):
        with pytest.raises(ValueError):
            parse_pla(".i 2\n.o 1\n011 1\n")

    def test_bad_characters(self):
        with pytest.raises(ValueError):
            parse_pla(".i 1\n.o 1\nx 1\n")
        with pytest.raises(ValueError):
            parse_pla(".i 1\n.o 1\n1 z\n")


class TestRoundTrip:
    def test_binary_roundtrip(self):
        pla = parse_pla(SIMPLE)
        text = write_pla(pla.on, pla.num_binary, dc=pla.dc)
        again = parse_pla(text)
        assert covers_equivalent(pla.on, again.on)
        assert covers_equivalent(pla.dc, again.dc)

    def test_mv_roundtrip(self):
        fmt = Format([2, 2, 5, 3])
        cover = from_strings(fmt, ["0 - 01100 110", "1 1 10000 001"])
        text = write_pla(cover, 2)
        again = parse_pla(text)
        assert again.fmt == fmt
        assert covers_equivalent(cover, again.on)

    def test_minimize_from_file_like_text(self):
        pla = parse_pla(SIMPLE)
        m = espresso(pla.on, pla.dc)
        assert len(m) <= len(pla.on)
        out = write_pla(m, pla.num_binary)
        assert ".e" in out
