"""Tests for the runtime crash-consistency sanitizer.

The sanitizer is the dynamic half of the durability story: NV003/NV007
prove the tmp + fsync + replace shape statically, and
:class:`repro.testing.sanitize.AtomicWriteSanitizer` verifies at run
time that every rename-publish carried its bytes to disk first.  These
tests drive the shims directly with both compliant and violating write
sequences; the ones that violate on purpose carry
``@pytest.mark.sanitizer_internal`` so a ``NOVA_SANITIZE=1`` outer run
does not double-report them.
"""

from __future__ import annotations

import asyncio
import os
import time

import pytest

from repro import config as config_mod
from repro.testing.sanitize import (
    AtomicWriteSanitizer,
    SanitizerReport,
    watched_run,
)


class TestAtomicWriteSanitizer:
    def test_compliant_protocol_is_clean(self, tmp_path):
        target = tmp_path / "manifest.json"
        tmp = tmp_path / "manifest.json.tmp"
        with AtomicWriteSanitizer() as san:
            with open(tmp, "w") as fh:
                fh.write("{}")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        assert san.reports == []
        assert target.read_text() == "{}"

    @pytest.mark.sanitizer_internal
    def test_unsynced_replace_is_reported(self, tmp_path):
        target = tmp_path / "manifest.json"
        tmp = tmp_path / "manifest.json.tmp"
        with AtomicWriteSanitizer() as san:
            with open(tmp, "w") as fh:
                fh.write("{}")
            os.replace(tmp, target)
        kinds = [r.kind for r in san.reports]
        assert kinds == ["unsynced-replace"]
        assert san.reports[0].path.endswith("manifest.json.tmp")
        assert "fsync" in san.reports[0].detail

    @pytest.mark.sanitizer_internal
    def test_orphaned_tmp_is_reported(self, tmp_path):
        stranded = tmp_path / "shard-0.jsonl.tmp"
        with AtomicWriteSanitizer() as san:
            with open(stranded, "w") as fh:
                fh.write("row\n")
                fh.flush()
                os.fsync(fh.fileno())
        kinds = [r.kind for r in san.reports]
        assert kinds == ["orphaned-tmp"]
        assert san.reports[0].path.endswith("shard-0.jsonl.tmp")
        stranded.unlink()  # tidy up for any outer watch

    def test_cleaned_up_tmp_is_not_an_orphan(self, tmp_path):
        tmp = tmp_path / "probe.tmp"
        with AtomicWriteSanitizer() as san:
            with open(tmp, "w") as fh:
                fh.write("x")
            os.unlink(tmp)
        assert san.reports == []

    def test_rename_aside_of_existing_file_is_fine(self, tmp_path):
        # quarantine pattern: os.replace moves a corrupt *existing*
        # file aside.  There is no staged data to lose, so no fsync is
        # demanded of non-.tmp sources.
        corrupt = tmp_path / "blob.zst"
        with AtomicWriteSanitizer() as san:
            with open(corrupt, "w") as fh:
                fh.write("garbage")
            os.replace(corrupt, tmp_path / "blob.zst.corrupt")
        assert san.reports == []

    def test_non_write_opens_are_ignored(self, tmp_path):
        probe = tmp_path / "data.txt"
        probe.write_text("hello")
        with AtomicWriteSanitizer() as san:
            with open(probe) as fh:
                assert fh.read() == "hello"
        assert san.reports == []

    def test_shims_are_restored_on_exit(self):
        import builtins

        before = (builtins.open, os.fsync, os.replace, os.unlink)
        with AtomicWriteSanitizer():
            assert builtins.open is not before[0]
        assert (builtins.open, os.fsync, os.replace,
                os.unlink) == before

    def test_report_renders_kind_and_path(self):
        report = SanitizerReport("orphaned-tmp", "/tmp/x.tmp", "why")
        assert "orphaned-tmp" in str(report)
        assert "/tmp/x.tmp" in str(report)


class TestWatchedRun:
    def test_clean_coroutine_returns_value(self):
        async def quick():
            await asyncio.sleep(0)
            return 42

        assert watched_run(quick()) == 42

    def test_blocking_callback_raises(self):
        async def blocker():
            time.sleep(0.05)  # parked on the loop: the NV008 sin
            return "done"

        with pytest.raises(AssertionError, match="event loop blocked"):
            watched_run(blocker(), threshold=0.01)


class TestGating:
    def test_config_scope_drives_sanitize_enabled(self):
        with config_mod.config_scope(sanitize=True):
            assert config_mod.sanitize_enabled() is True
        with config_mod.config_scope(sanitize=False):
            assert config_mod.sanitize_enabled() is False

    def test_env_gate(self, monkeypatch):
        monkeypatch.delenv("NOVA_CONFIG", raising=False)
        monkeypatch.setenv("NOVA_SANITIZE", "1")
        assert config_mod.sanitize_enabled() is True
        monkeypatch.setenv("NOVA_SANITIZE", "0")
        assert config_mod.sanitize_enabled() is False
