"""The encode service: coalescing, admission, degradation, shutdown.

Most tests drive :class:`EncodeService` directly (deterministic: the
single-flight map is installed synchronously, so coroutines gathered in
one event-loop tick coalesce by construction); the HTTP layer gets its
own transport tests; the SIGTERM drain runs ``nova serve`` as a real
subprocess and asserts no orphaned spawn workers by pid.
"""

from __future__ import annotations

import asyncio
import copy
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.encoding.nova import encode_fsm
from repro.encoding.options import EncodeOptions
from repro.errors import (
    DeadlineExceeded,
    OverloadError,
    ServiceError,
    exit_code_for,
)
from repro.fsm.benchmarks import benchmark
from repro import config as config_mod
from repro.server import EncodeService, ServerApp
from repro.testing import faults, sanitize


def run(coro):
    """Every event-loop test funnels through here; under NOVA_SANITIZE
    the loop runs in debug mode with the slow-callback detector armed,
    so synchronous work parked on the loop fails the test by name."""
    if config_mod.sanitize_enabled():
        return sanitize.watched_run(coro)
    return asyncio.run(coro)


def make_service(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("queue_limit", 4)
    kw.setdefault("cache_policy", "memory")
    return EncodeService(**kw)


def strip_provenance(record):
    """A record minus run-specific provenance (timings, cache marks)."""
    out = copy.deepcopy(record)
    out.pop("seconds", None)
    report = out.get("report") or {}
    report.pop("stage_seconds", None)
    report.pop("cache_hit", None)
    return out


SLEEP_FAULT = {"stage": "encode", "action": "sleep", "seconds": 30.0,
               "match": {"algorithm": "iexact"}}


# ----------------------------------------------------------------------
# single-flight coalescing
# ----------------------------------------------------------------------
def test_coalesced_clients_one_spawn_identical_responses():
    """N concurrent identical requests: one worker, N equal answers,
    bit-identical to a solo ``encode_fsm`` run."""
    svc = make_service()
    body = {"machine": "dk27", "options": {"algorithm": "igreedy",
                                           "cache": "memory"}}
    n = 6

    async def burst():
        try:
            return await asyncio.gather(
                *[svc.handle_encode(dict(body)) for _ in range(n)])
        finally:
            svc.shutdown()

    responses = run(burst())
    assert [r.status for r in responses] == [200] * n
    assert svc.stats.worker_spawns == 1
    assert svc.stats.leaders == 1
    assert svc.stats.coalesced == n - 1
    records = [r.body["record"] for r in responses]
    assert all(rec == records[0] for rec in records[1:])
    flags = sorted(r.body["coalesced"] for r in responses)
    assert flags == [False] + [True] * (n - 1)

    solo = encode_fsm(benchmark("dk27"),
                      options=EncodeOptions(algorithm="igreedy",
                                            cache="off"))
    assert strip_provenance(records[0]) == strip_provenance(
        solo.to_record())


def test_waiter_cancellation_detaches_without_killing_leader():
    svc = make_service()
    body = {"machine": "dk27", "options": {"algorithm": "igreedy",
                                           "cache": "memory"}}

    async def scenario():
        try:
            leader = asyncio.ensure_future(svc.handle_encode(dict(body)))
            await asyncio.sleep(0)  # let the leader install the flight
            waiter = asyncio.ensure_future(svc.handle_encode(dict(body)))
            await asyncio.sleep(0.05)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            return await leader
        finally:
            svc.shutdown()

    response = run(scenario())
    assert response.status == 200
    assert svc.stats.worker_spawns == 1
    assert svc.stats.coalesced == 1


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
def test_queue_full_is_prompt_429_with_retry_after():
    svc = make_service(workers=1, queue_limit=0,
                       worker_faults=[SLEEP_FAULT], kill_grace=0.2)

    async def scenario():
        try:
            # distinct fingerprints: no coalescing, all want the queue
            blocker = asyncio.ensure_future(svc.handle_encode({
                "machine": "dk27",
                "options": {"algorithm": "iexact", "cache": "memory",
                            "timeout": 5.0}}))
            await asyncio.sleep(0.3)  # blocker holds the worker slot
            t0 = time.monotonic()
            refused = await svc.handle_encode({
                "machine": "bbara",
                "options": {"algorithm": "igreedy", "cache": "memory"}})
            promptness = time.monotonic() - t0
            blocker.cancel()
            return refused, promptness
        finally:
            svc.shutdown()

    refused, promptness = run(scenario())
    assert refused.status == 429
    assert refused.body["error"]["type"] == "OverloadError"
    assert float(refused.headers["Retry-After"]) >= 1.0
    assert promptness < 0.5  # refusal never waits on the cold path
    assert svc.stats.queue_rejects == 1
    assert svc.stats.overloads == 1


def test_deadline_expires_while_queued():
    svc = make_service(workers=1, queue_limit=2,
                       worker_faults=[SLEEP_FAULT], kill_grace=0.2)

    async def scenario():
        try:
            blocker = asyncio.ensure_future(svc.handle_encode({
                "machine": "dk27",
                "options": {"algorithm": "iexact", "cache": "memory",
                            "timeout": 5.0}}))
            await asyncio.sleep(0.3)
            queued = await svc.handle_encode({
                "machine": "bbara", "options": {
                    "algorithm": "igreedy", "cache": "memory",
                    "timeout": 0.4}})
            blocker.cancel()
            return queued
        finally:
            svc.shutdown()

    queued = run(scenario())
    assert queued.status == 504
    assert queued.body["error"]["type"] == "DeadlineExceeded"
    assert svc.stats.deadline_expired == 1


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------
def test_tiny_timeout_degrades_with_provenance_not_error():
    svc = make_service()

    async def scenario():
        try:
            return await svc.handle_encode({
                "machine": "dk16", "options": {
                    "algorithm": "iexact", "cache": "memory",
                    "timeout": 0.02}})
        finally:
            svc.shutdown()

    response = run(scenario())
    assert response.status == 200
    assert response.body["status"] == "degraded"
    report = response.body["record"]["report"]
    assert report["degraded"] is True
    assert report["requested_algorithm"] == "iexact"
    assert report["degradation_reason"]
    assert svc.stats.degraded == 1


def test_hung_worker_is_killed_and_ladder_rescues():
    """A worker stuck past the cooperative budget is hard-killed; the
    server walks to the next rung and still answers 200."""
    svc = make_service(workers=1, queue_limit=2, kill_grace=0.2,
                       rescue_timeout=5.0,
                       worker_faults=[SLEEP_FAULT])

    async def scenario():
        try:
            return await svc.handle_encode({
                "machine": "dk27", "options": {
                    "algorithm": "iexact", "cache": "memory",
                    "timeout": 0.5}})
        finally:
            svc.shutdown()

    response = run(scenario())
    assert response.status == 200
    attempts = response.body["attempts"]
    assert attempts[0]["algorithm"] == "iexact"
    assert attempts[0]["status"] == "killed"
    assert attempts[1]["status"] in ("ok", "degraded")
    assert svc.stats.worker_kills == 1
    assert svc.stats.ladder_retries >= 1


def test_worker_crash_mid_coalesce_propagates_to_all_waiters():
    crash = {"stage": "encode", "action": "exit", "exit_code": 11,
             "match": {"algorithm": "igreedy"}}
    svc = make_service(workers=1, queue_limit=2, kill_grace=0.2,
                       worker_faults=[crash])
    body = {"machine": "dk27", "options": {
        "algorithm": "igreedy", "cache": "memory", "fallback": False,
        "timeout": 2.0}}

    async def scenario():
        try:
            return await asyncio.gather(
                *[svc.handle_encode(dict(body)) for _ in range(3)])
        finally:
            svc.shutdown()

    responses = run(scenario())
    # fallback=False: a single rung, crashed -> the same 500 for all
    assert {r.status for r in responses} == {500}
    assert {r.body["error"]["type"] for r in responses} == {"ServiceError"}
    assert svc.stats.worker_spawns == 1
    assert svc.stats.worker_crashes == 1


# ----------------------------------------------------------------------
# warm path / load shedding
# ----------------------------------------------------------------------
def test_warm_requests_are_served_while_saturated():
    svc = make_service(workers=1, queue_limit=0,
                       worker_faults=[SLEEP_FAULT], kill_grace=0.2)
    warm_body = {"machine": "dk27", "options": {"algorithm": "igreedy",
                                                "cache": "memory"}}

    async def scenario():
        try:
            first = await svc.handle_encode(dict(warm_body))
            blocker = asyncio.ensure_future(svc.handle_encode({
                "machine": "bbara", "options": {
                    "algorithm": "iexact", "cache": "memory",
                    "timeout": 5.0}}))
            await asyncio.sleep(0.3)
            warm = await svc.handle_encode(dict(warm_body))
            cold = await svc.handle_encode({
                "machine": "dk16", "options": {"algorithm": "igreedy",
                                               "cache": "memory"}})
            blocker.cancel()
            return first, warm, cold
        finally:
            svc.shutdown()

    first, warm, cold = run(scenario())
    assert first.status == 200 and first.body["cache"] is None
    assert warm.status == 200 and warm.body["cache"] == "memory"
    assert strip_provenance(warm.body["record"]) == strip_provenance(
        first.body["record"])
    assert cold.status == 429  # cold path saturated...
    assert svc.stats.shed >= 1  # ...but the warm answer still went out


def test_degraded_results_are_not_cached():
    svc = make_service()
    body = {"machine": "dk16", "options": {
        "algorithm": "iexact", "cache": "memory", "timeout": 0.02}}

    async def scenario():
        try:
            a = await svc.handle_encode(dict(body))
            b = await svc.handle_encode(dict(body))
            return a, b
        finally:
            svc.shutdown()

    a, b = run(scenario())
    assert a.body["status"] == "degraded"
    assert b.body["cache"] is None  # recomputed, not replayed
    assert svc.stats.cache_misses == 2


# ----------------------------------------------------------------------
# fault injection at the server stages (satellite: faults.py extension)
# ----------------------------------------------------------------------
def test_injected_admit_fault_maps_to_429():
    svc = make_service()
    fault = faults.Fault(stage="admit", exc=OverloadError, times=1)
    with faults.inject(fault):
        response = run(svc.handle_encode({
            "machine": "dk27", "options": {"algorithm": "igreedy",
                                           "cache": "off"}}))
    svc.shutdown()
    assert response.status == 429
    assert svc.stats.overloads == 1


def test_injected_dispatch_fault_maps_to_500():
    svc = make_service()
    fault = faults.Fault(stage="dispatch", exc=ServiceError, times=1)
    with faults.inject(fault):
        response = run(svc.handle_encode({
            "machine": "dk27", "options": {"algorithm": "igreedy",
                                           "cache": "off"}}))
    svc.shutdown()
    assert response.status == 500
    assert response.body["error"]["type"] == "ServiceError"
    assert svc.stats.server_errors == 1


def test_injected_respond_fault_still_answers_json():
    async def scenario():
        svc = make_service()
        app = ServerApp(svc, port=0)
        host, port = await app.start()
        try:
            fault = faults.Fault(stage="respond", exc=ServiceError,
                                 times=1)
            with faults.inject(fault):
                status, body, _headers = await http_request(
                    host, port, "POST", "/encode", {
                        "machine": "dk27", "options": {
                            "algorithm": "igreedy", "cache": "off"}})
            return status, body
        finally:
            await app.shutdown()

    status, body = run(scenario())
    assert status == 500
    assert body["error"]["type"] == "ServiceError"


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
async def http_request(host, port, method, path, payload=None,
                       raw: bytes = None):
    reader, writer = await asyncio.open_connection(host, port)
    if raw is not None:
        writer.write(raw)
    else:
        body = b"" if payload is None else json.dumps(payload).encode()
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Content-Length: {len(body)}\r\n\r\n").encode()
        writer.write(head + body)
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    headers = {}
    for line in head.decode().split("\r\n")[1:]:
        if ":" in line:
            k, v = line.split(":", 1)
            headers[k.strip().lower()] = v.strip()
    return status, json.loads(body) if body else {}, headers


def test_http_routes_and_errors():
    async def scenario():
        svc = make_service()
        app = ServerApp(svc, port=0)
        host, port = await app.start()
        try:
            out = {}
            out["healthz"] = await http_request(host, port, "GET",
                                                "/healthz")
            out["stats"] = await http_request(host, port, "GET", "/stats")
            out["notfound"] = await http_request(host, port, "GET",
                                                 "/nope")
            out["badmethod"] = await http_request(host, port, "GET",
                                                  "/encode")
            out["badjson"] = await http_request(
                host, port, "POST", "/encode",
                raw=b"POST /encode HTTP/1.1\r\nContent-Length: 3\r\n"
                    b"\r\n{{{")
            out["badmachine"] = await http_request(
                host, port, "POST", "/encode", {"machine": "nope"})
            out["badopts"] = await http_request(
                host, port, "POST", "/encode",
                {"machine": "dk27", "options": {"algorithm": "wat"}})
            out["encode"] = await http_request(
                host, port, "POST", "/encode",
                {"machine": "dk27", "options": {"algorithm": "igreedy",
                                                "cache": "memory"}})
            return out
        finally:
            await app.shutdown()

    out = run(scenario())
    assert out["healthz"][0] == 200 and out["healthz"][1]["status"] == "ok"
    assert out["stats"][0] == 200 and "requests" in out["stats"][1]
    assert out["notfound"][0] == 404
    assert out["badmethod"][0] == 405
    assert out["badjson"][0] == 400
    assert out["badmachine"][0] == 400
    assert out["badmachine"][1]["error"]["type"] == "ParseError"
    assert out["badopts"][0] == 400
    assert out["badopts"][1]["error"]["type"] == "ConstraintError"
    assert out["encode"][0] == 200
    assert out["encode"][1]["record"]["machine"] == "dk27"


def test_slow_client_gets_408_and_connection_survives():
    async def scenario():
        svc = make_service()
        app = ServerApp(svc, port=0, read_timeout=0.2)
        host, port = await app.start()
        try:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"POST /encode HTTP/1.1\r\n")  # then stall
            await writer.drain()
            data = await asyncio.wait_for(reader.read(), timeout=5.0)
            writer.close()
            # a well-behaved request still works afterwards
            ok = await http_request(host, port, "GET", "/healthz")
            return data, ok, svc.stats.slow_clients
        finally:
            await app.shutdown()

    data, ok, slow = run(scenario())
    assert b"408" in data.split(b"\r\n", 1)[0]
    assert ok[0] == 200
    assert slow == 1


def test_wedged_drain_is_bounded_and_counted(capsys):
    # regression (found by NV008): writer.drain() was awaited with no
    # deadline, so a peer that stopped reading while our send buffer
    # was full held the handler — and its admission slot — forever
    class WedgedWriter:
        def __init__(self):
            self.closed = False
            self.data = b""

        def write(self, data):
            self.data += data

        async def drain(self):
            await asyncio.sleep(30)

        def close(self):
            self.closed = True

    async def scenario():
        from repro.server.service import EncodeResponse

        svc = make_service()
        app = ServerApp(svc, port=0, drain_timeout=0.05,
                        log_stream=sys.stderr)
        writer = WedgedWriter()
        response = EncodeResponse(200, {"status": "ok"},
                                  log={"outcome": "ok"})
        # bounded: without the wait_for this would sit the full 30s
        await asyncio.wait_for(
            app._write_response(writer, response, "GET", "/healthz",
                                time.monotonic()),
            timeout=5.0)
        return writer, svc.stats.slow_clients

    writer, slow = run(scenario())
    assert slow == 1
    assert writer.closed
    assert writer.data.startswith(b"HTTP/1.1 200")


def test_stats_hook_failure_does_not_leak_admission_slot():
    # regression (found by NV009): the queue-wait stats hook ran
    # between the semaphore acquire and the releasing try, so a raise
    # there leaked the slot and shrank capacity for the process's life
    from repro.server.admission import AdmissionController

    class BoomStats:
        queue_rejects = 0

        def __init__(self):
            self.fail = True

        def record_queue_wait(self, seconds):
            if self.fail:
                raise RuntimeError("stats sink went away")

    async def scenario():
        stats = BoomStats()
        ctl = AdmissionController(workers=1, queue_limit=2, stats=stats)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                async with ctl.admit():
                    pass  # pragma: no cover - never reached
        stats.fail = False
        # the sole slot must have survived both failures: this admit
        # would hit its deadline if either raise had leaked the slot
        async with ctl.admit(deadline=time.monotonic() + 0.2) as wait:
            return wait, ctl.running

    wait, running = run(scenario())
    assert wait >= 0.0
    assert running == 1


# ----------------------------------------------------------------------
# environment validation (satellite: NOVA_CACHE / NOVA_SUBSTRATE)
# ----------------------------------------------------------------------
def test_unknown_nova_cache_is_rejected(monkeypatch):
    from repro import cache

    monkeypatch.setenv("NOVA_CACHE", "disk")
    with pytest.raises(ValueError, match="NOVA_CACHE"):
        cache.resolve_policy("auto")
    with pytest.raises(ValueError, match="NOVA_CACHE"):
        cache.check_environment()
    monkeypatch.setenv("NOVA_CACHE", "off")
    monkeypatch.setenv("NOVA_CACHE_MAX_BYTES", "lots")
    with pytest.raises(ValueError, match="NOVA_CACHE_MAX_BYTES"):
        cache.check_environment()


def test_serve_refuses_to_boot_with_bad_cache_env(monkeypatch, capsys):
    from repro import cli

    monkeypatch.setenv("NOVA_CACHE", "disk")
    rc = cli.main(["serve", "--port", "0"])
    assert rc == 2
    assert "NOVA_CACHE" in capsys.readouterr().err


def test_unknown_nova_substrate_fails_import():
    env = dict(os.environ)
    env["NOVA_SUBSTRATE"] = "bogus"
    env["PYTHONPATH"] = "src"
    proc = subprocess.run(
        [sys.executable, "-c", "import repro.logic.backend"],
        capture_output=True, text=True, env=env,
        cwd=str(Path(__file__).resolve().parents[1]))
    assert proc.returncode != 0
    assert "bogus" in proc.stderr


# ----------------------------------------------------------------------
# error taxonomy additions
# ----------------------------------------------------------------------
def test_service_errors_in_taxonomy():
    from repro.errors import error_from_dict, error_to_dict

    exc = OverloadError("full", retry_after=7.5, queued=8, limit=8)
    clone = error_from_dict(error_to_dict(exc))
    assert isinstance(clone, OverloadError)
    assert exit_code_for(exc) == 8
    assert exit_code_for(DeadlineExceeded("late")) == 8
    assert exit_code_for(ServiceError("boom")) == 8
    assert OverloadError.http_status == 429
    assert DeadlineExceeded.http_status == 504


# ----------------------------------------------------------------------
# SIGTERM drain (subprocess, real signal, orphan check by pid)
# ----------------------------------------------------------------------
def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover
        return True
    return True


def test_sigterm_mid_burst_drains_and_leaves_no_orphans(tmp_path):
    root = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    env["NOVA_CACHE"] = "off"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", "1", "--queue-limit", "2",
         "--default-timeout", "30", "--drain-timeout", "1.0",
         "--fault", json.dumps(SLEEP_FAULT)],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env, cwd=str(root))
    try:
        ready = json.loads(proc.stdout.readline())
        assert ready["event"] == "listening"
        port = ready["port"]

        def post_cold():
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=10) as s:
                body = json.dumps({
                    "machine": "dk27",
                    "options": {"algorithm": "iexact", "cache": "off",
                                "timeout": 20.0}}).encode()
                s.sendall(b"POST /encode HTTP/1.1\r\nContent-Length: "
                          + str(len(body)).encode() + b"\r\n\r\n" + body)
                s.settimeout(0.5)
                try:
                    s.recv(65536)
                except socket.timeout:
                    pass

        import threading

        t = threading.Thread(target=post_cold, daemon=True)
        t.start()

        # wait until the hung worker is visible in /stats
        worker_pids = []
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=5) as s:
                s.sendall(b"GET /stats HTTP/1.1\r\n\r\n")
                chunks = b""
                while True:
                    chunk = s.recv(65536)
                    if not chunk:
                        break
                    chunks += chunk
            stats = json.loads(chunks.partition(b"\r\n\r\n")[2])
            worker_pids = stats.get("worker_pids") or []
            if worker_pids:
                break
            time.sleep(0.1)
        assert worker_pids, "cold worker never appeared in /stats"
        assert all(_pid_alive(p) for p in worker_pids)

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=15)
        assert rc == 0
        t.join(timeout=5)
        # the drain must have killed the hung spawn worker: no orphans
        deadline = time.monotonic() + 5
        while (time.monotonic() < deadline
               and any(_pid_alive(p) for p in worker_pids)):
            time.sleep(0.1)
        assert not any(_pid_alive(p) for p in worker_pids)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
