"""Tests for the markdown/CSV report writers."""

from repro.eval.report import ratio_summary, to_csv, to_markdown


ROWS = [
    {"example": "lion", "nova": 77, "kiss": 88, "note": None},
    {"example": "bbtas", "nova": 195, "kiss": 456, "note": 1.2345},
]


class TestMarkdown:
    def test_table_structure(self):
        md = to_markdown(ROWS, title="Table III")
        lines = md.splitlines()
        assert lines[0] == "**Table III**"
        assert lines[2].startswith("| example |")
        assert "|---|" in lines[3]
        assert md.count("|") >= 4 * 5

    def test_none_rendered_as_dash(self):
        md = to_markdown(ROWS)
        assert "| - |" in md.replace("  ", " ")

    def test_float_formatting(self):
        md = to_markdown(ROWS, float_digits=1)
        assert "1.2" in md and "1.2345" not in md

    def test_empty(self):
        assert "(no rows)" in to_markdown([], title="T")


class TestCsv:
    def test_roundtrip(self):
        import csv
        import io

        text = to_csv(ROWS)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows[0]["example"] == "lion"
        assert rows[0]["nova"] == "77"
        assert rows[0]["note"] == ""

    def test_empty(self):
        assert to_csv([]) == ""


class TestRatioSummary:
    def test_percentage(self):
        s = ratio_summary(ROWS, "nova", "kiss", label="nova/kiss")
        assert "50%" in s
        assert "2 machines" in s

    def test_skips_missing(self):
        rows = ROWS + [{"example": "x", "nova": None, "kiss": 10}]
        s = ratio_summary(rows, "nova", "kiss")
        assert "2 machines" in s

    def test_all_missing(self):
        assert "n/a" in ratio_summary([{"a": None, "b": 0}], "a", "b")
