"""Smoke tests for the nova CLI."""

import pytest

from repro.cli import main


class TestEncode:
    def test_encode_benchmark(self, capsys):
        assert main(["encode", "--benchmark", "lion"]) == 0
        out = capsys.readouterr().out
        assert "code length" in out
        assert "st0" in out

    def test_encode_symbolic_benchmark(self, capsys):
        assert main(["encode", "--benchmark", "dk27",
                     "--algorithm", "igreedy"]) == 0
        out = capsys.readouterr().out
        assert "input symbol codes" in out

    def test_encode_kiss_file(self, tmp_path, capsys):
        kiss = tmp_path / "m.kiss"
        kiss.write_text(".i 1\n.o 1\n0 a a 0\n1 a b 1\n0 b a 1\n1 b b 0\n")
        assert main(["encode", str(kiss)]) == 0
        assert "cubes" in capsys.readouterr().out

    def test_encode_without_source_fails(self, capsys):
        assert main(["encode"]) == 2

    def test_bits_option(self, capsys):
        assert main(["encode", "--benchmark", "lion9", "--bits", "5"]) == 0


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1", "--subset", "small"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "lion" in out

    def test_unknown_table(self, capsys):
        assert main(["table", "9"]) == 2


class TestList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "shiftreg" in out and "scf" in out


class TestMinimize:
    def test_heuristic(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n00 1\n01 1\n11 1\n.e\n")
        assert main(["minimize", str(pla)]) == 0
        out = capsys.readouterr().out
        assert ".e" in out
        assert out.count("\n") < 10

    def test_exact(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n00 1\n01 1\n11 1\n.e\n")
        assert main(["minimize", "--exact", str(pla)]) == 0


class TestAnalyze:
    def test_benchmark(self, capsys):
        assert main(["analyze", "--benchmark", "lion9"]) == 0
        out = capsys.readouterr().out
        assert "reachable     : 9/9" in out
        assert "deterministic : True" in out

    def test_dot_export(self, tmp_path, capsys):
        dot = tmp_path / "g.dot"
        assert main(["analyze", "--benchmark", "lion", "--dot",
                     str(dot)]) == 0
        assert dot.read_text().startswith("digraph")


class TestVerify:
    def test_verify_benchmark(self, capsys):
        assert main(["verify", "--benchmark", "lion",
                     "--algorithm", "igreedy"]) == 0
        assert "OK" in capsys.readouterr().out
