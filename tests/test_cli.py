"""Smoke tests for the nova CLI."""

import pytest

from repro.cli import main


class TestEncode:
    def test_encode_benchmark(self, capsys):
        assert main(["encode", "--benchmark", "lion"]) == 0
        out = capsys.readouterr().out
        assert "code length" in out
        assert "st0" in out

    def test_encode_symbolic_benchmark(self, capsys):
        assert main(["encode", "--benchmark", "dk27",
                     "--algorithm", "igreedy"]) == 0
        out = capsys.readouterr().out
        assert "input symbol codes" in out

    def test_encode_kiss_file(self, tmp_path, capsys):
        kiss = tmp_path / "m.kiss"
        kiss.write_text(".i 1\n.o 1\n0 a a 0\n1 a b 1\n0 b a 1\n1 b b 0\n")
        assert main(["encode", str(kiss)]) == 0
        assert "cubes" in capsys.readouterr().out

    def test_encode_without_source_fails(self, capsys):
        assert main(["encode"]) == 2

    def test_bits_option(self, capsys):
        assert main(["encode", "--benchmark", "lion9", "--bits", "5"]) == 0


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1", "--subset", "small"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "lion" in out

    def test_unknown_table(self, capsys):
        assert main(["table", "9"]) == 2


class TestList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "shiftreg" in out and "scf" in out


class TestMinimize:
    def test_heuristic(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n00 1\n01 1\n11 1\n.e\n")
        assert main(["minimize", str(pla)]) == 0
        out = capsys.readouterr().out
        assert ".e" in out
        assert out.count("\n") < 10

    def test_exact(self, tmp_path, capsys):
        pla = tmp_path / "f.pla"
        pla.write_text(".i 2\n.o 1\n00 1\n01 1\n11 1\n.e\n")
        assert main(["minimize", "--exact", str(pla)]) == 0


class TestAnalyze:
    def test_benchmark(self, capsys):
        assert main(["analyze", "--benchmark", "lion9"]) == 0
        out = capsys.readouterr().out
        assert "reachable     : 9/9" in out
        assert "deterministic : True" in out

    def test_dot_export(self, tmp_path, capsys):
        dot = tmp_path / "g.dot"
        assert main(["analyze", "--benchmark", "lion", "--dot",
                     str(dot)]) == 0
        assert dot.read_text().startswith("digraph")


class TestVerify:
    def test_verify_benchmark(self, capsys):
        assert main(["verify", "--benchmark", "lion",
                     "--algorithm", "igreedy"]) == 0
        assert "OK" in capsys.readouterr().out


class TestFailureBehavior:
    """Exit codes, --timeout/--no-fallback, and degradation summaries."""

    def test_parse_error_exit_code_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.kiss"
        bad.write_text(".i 1\n.o 1\n0 a a\n")  # truncated row
        assert main(["encode", str(bad)]) == 3
        err = capsys.readouterr().err
        assert "ParseError" in err
        assert "Traceback" not in err

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["encode", "/no/such/file.kiss"]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_fallback_maps_infeasible_to_exit_6(self, capsys):
        # lion9's constraints are iexact-infeasible under the default
        # caps; --no-fallback surfaces that as EncodingInfeasible
        assert main(["encode", "--benchmark", "lion9",
                     "--algorithm", "iexact", "--no-fallback"]) == 6
        err = capsys.readouterr().err
        assert "EncodingInfeasible" in err
        assert "Traceback" not in err

    def test_fallback_prints_degradation_summary(self, capsys):
        assert main(["encode", "--benchmark", "lion9",
                     "--algorithm", "iexact"]) == 0
        captured = capsys.readouterr()
        assert "degraded:" in captured.err
        assert captured.err.count("degraded:") == 1  # one line, no traceback
        assert "ihybrid" in captured.out  # the fallback that served

    def test_timeout_flag_degrades_not_crashes(self, capsys):
        assert main(["encode", "--benchmark", "bbtas",
                     "--algorithm", "ihybrid", "--timeout", "0.001"]) == 0
        assert "area" in capsys.readouterr().out

    def test_verified_line_printed(self, capsys):
        assert main(["encode", "--benchmark", "lion"]) == 0
        assert "verified   : True" in capsys.readouterr().out

    def test_budget_exhausted_exit_code_5(self, capsys):
        # deterministic: inject the exhaustion rather than racing a
        # real wall-clock deadline against a fast machine
        from repro.errors import BudgetExhausted
        from repro.testing import faults

        with faults.inject(faults.Fault("encode", BudgetExhausted,
                                        match={"algorithm": "ihybrid"})):
            assert main(["encode", "--benchmark", "bbtas", "--algorithm",
                         "ihybrid", "--no-fallback"]) == 5
        assert "BudgetExhausted" in capsys.readouterr().err


class TestCacheCommand:
    """nova cache info|clear|prune and the --cache/--seed encode flags."""

    @pytest.fixture(autouse=True)
    def _private_cache(self, tmp_path, monkeypatch):
        from repro import cache

        monkeypatch.setenv("NOVA_CACHE_DIR", str(tmp_path / "nova-cache"))
        cache.reset()
        yield
        cache.reset()

    def test_info_is_json(self, capsys):
        import json

        assert main(["cache", "info"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["entries"] == 0 and info["bytes"] == 0
        assert "dir" in info and "max_bytes" in info

    def test_encode_cache_flag_round_trip(self, capsys):
        assert main(["encode", "--benchmark", "lion", "--cache", "on"]) == 0
        cold = capsys.readouterr().out
        assert "cache      : hit" not in cold
        assert main(["encode", "--benchmark", "lion", "--cache", "on"]) == 0
        warm = capsys.readouterr().out
        assert "cache      : hit" in warm
        # every non-provenance line is identical
        strip = lambda s: [l for l in s.splitlines()
                           if not l.startswith(("seconds", "cache "))]
        assert strip(cold) == strip(warm)

    def test_clear_then_prune(self, capsys):
        import json

        assert main(["encode", "--benchmark", "lion", "--cache", "on"]) == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 1
        assert main(["cache", "clear"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 1
        assert main(["cache", "prune", "--max-bytes", "0"]) == 0
        assert json.loads(capsys.readouterr().out)["removed"] == 0

    def test_seed_flag(self, capsys):
        assert main(["encode", "--benchmark", "lion",
                     "--algorithm", "random", "--seed", "7"]) == 0
        a = capsys.readouterr().out
        assert main(["encode", "--benchmark", "lion",
                     "--algorithm", "random", "--seed", "7"]) == 0
        b = capsys.readouterr().out
        strip = lambda s: [l for l in s.splitlines()
                           if not l.startswith("seconds")]
        assert strip(a) == strip(b)
