"""Unit and property tests for positional-cube algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.logic.cube import Format, binary_format

from tests.conftest import enumerate_minterms


def small_formats() -> st.SearchStrategy:
    return st.lists(st.integers(min_value=1, max_value=4), min_size=1,
                    max_size=4).map(Format)


def cubes_for(fmt: Format) -> st.SearchStrategy:
    fields = [st.integers(min_value=1, max_value=(1 << p) - 1)
              for p in fmt.parts]
    return st.tuples(*fields).map(lambda fs: fmt.cube_from_fields(list(fs)))


fmt_and_two_cubes = small_formats().flatmap(
    lambda fmt: st.tuples(st.just(fmt), cubes_for(fmt), cubes_for(fmt))
)


class TestFormat:
    def test_layout(self):
        fmt = Format([2, 3, 4])
        assert fmt.width == 9
        assert fmt.offsets == (0, 2, 5)
        assert fmt.universe == (1 << 9) - 1
        assert fmt.num_vars == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Format([])

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            Format([2, 0])

    def test_field_roundtrip(self):
        fmt = Format([2, 3, 2])
        cube = fmt.cube_from_fields([1, 5, 2])
        assert fmt.field(cube, 0) == 1
        assert fmt.field(cube, 1) == 5
        assert fmt.field(cube, 2) == 2

    def test_with_field(self):
        fmt = Format([2, 3])
        cube = fmt.cube_from_fields([3, 7])
        assert fmt.field(fmt.with_field(cube, 1, 2), 1) == 2
        assert fmt.field(fmt.with_field(cube, 1, 2), 0) == 3

    def test_cube_from_fields_range_check(self):
        fmt = Format([2, 2])
        with pytest.raises(ValueError):
            fmt.cube_from_fields([4, 1])
        with pytest.raises(ValueError):
            fmt.cube_from_fields([1])

    def test_literal(self):
        fmt = Format([2, 3])
        lit = fmt.literal(1, (0, 2))
        assert fmt.field(lit, 0) == 3
        assert fmt.field(lit, 1) == 0b101

    def test_literal_range_check(self):
        fmt = Format([2, 3])
        with pytest.raises(ValueError):
            fmt.literal(1, (3,))

    def test_var_of_bit(self):
        fmt = Format([2, 3])
        assert [fmt.var_of_bit(b) for b in range(5)] == [0, 0, 1, 1, 1]

    def test_equality_and_hash(self):
        assert Format([2, 2]) == Format([2, 2])
        assert Format([2, 2]) != Format([2, 3])
        assert hash(Format([2, 2])) == hash(Format([2, 2]))

    def test_binary_format(self):
        fmt = binary_format(3, 2)
        assert fmt.parts == (2, 2, 2, 2)


class TestCubeAlgebra:
    def setup_method(self):
        self.fmt = Format([2, 2, 3])

    def test_empty_detection(self):
        fmt = self.fmt
        assert fmt.is_empty(0)
        cube = fmt.cube_from_fields([1, 2, 4])
        assert not fmt.is_empty(cube)
        assert fmt.is_empty(cube & ~fmt.masks[1])

    def test_intersection(self):
        fmt = self.fmt
        a = fmt.cube_from_fields([3, 1, 7])
        b = fmt.cube_from_fields([1, 3, 5])
        c = fmt.intersect(a, b)
        assert fmt.field(c, 0) == 1
        assert fmt.field(c, 1) == 1
        assert fmt.field(c, 2) == 5
        assert fmt.intersects(a, b)

    def test_disjoint(self):
        fmt = self.fmt
        a = fmt.cube_from_fields([1, 3, 7])
        b = fmt.cube_from_fields([2, 3, 7])
        assert not fmt.intersects(a, b)
        assert fmt.distance(a, b) == 1

    def test_containment(self):
        fmt = self.fmt
        big = fmt.cube_from_fields([3, 3, 7])
        small = fmt.cube_from_fields([1, 2, 3])
        assert fmt.contains(big, small)
        assert not fmt.contains(small, big)

    def test_cofactor_disjoint_is_empty(self):
        fmt = self.fmt
        a = fmt.cube_from_fields([1, 3, 7])
        b = fmt.cube_from_fields([2, 3, 7])
        assert fmt.cofactor(a, b) == 0

    def test_cofactor_rule(self):
        fmt = self.fmt
        a = fmt.cube_from_fields([1, 3, 3])
        p = fmt.cube_from_fields([1, 1, 7])
        cof = fmt.cofactor(a, p)
        assert fmt.field(cof, 0) == 3  # raised where p cares
        assert fmt.field(cof, 1) == 3
        assert fmt.field(cof, 2) == 3

    def test_consensus_distance0(self):
        fmt = self.fmt
        a = fmt.cube_from_fields([3, 1, 7])
        b = fmt.cube_from_fields([1, 3, 7])
        assert fmt.consensus(a, b) == fmt.intersect(a, b)

    def test_consensus_distance1(self):
        fmt = self.fmt
        a = fmt.cube_from_fields([1, 1, 7])
        b = fmt.cube_from_fields([2, 1, 7])
        c = fmt.consensus(a, b)
        assert fmt.field(c, 0) == 3

    def test_consensus_distance2_empty(self):
        fmt = self.fmt
        a = fmt.cube_from_fields([1, 1, 7])
        b = fmt.cube_from_fields([2, 2, 7])
        assert fmt.consensus(a, b) == 0

    def test_minterm_count(self):
        fmt = self.fmt
        assert fmt.minterm_count(fmt.universe) == 2 * 2 * 3
        assert fmt.minterm_count(fmt.cube_from_fields([1, 2, 4])) == 1

    def test_supercube(self):
        fmt = self.fmt
        a = fmt.cube_from_fields([1, 1, 1])
        b = fmt.cube_from_fields([2, 1, 2])
        s = fmt.supercube(a, b)
        assert fmt.contains(s, a) and fmt.contains(s, b)

    def test_full_vars(self):
        fmt = self.fmt
        assert fmt.full_vars(fmt.universe) == 3
        assert fmt.full_vars(fmt.cube_from_fields([3, 1, 7])) == 2


class TestTextIO:
    def test_binary_rendering(self):
        fmt = Format([2, 2, 2])
        cube = fmt.cube_from_fields([1, 2, 3])
        assert fmt.cube_to_str(cube) == "0 1 -"

    def test_mv_rendering_roundtrip(self):
        fmt = Format([2, 5])
        cube = fmt.cube_from_fields([2, 0b10110])
        assert fmt.cube_from_str(fmt.cube_to_str(cube)) == cube

    def test_parse_errors(self):
        fmt = Format([2, 3])
        with pytest.raises(ValueError):
            fmt.cube_from_str("0")
        with pytest.raises(ValueError):
            fmt.cube_from_str("0 01")  # wrong MV token width

    def test_empty_binary_field_renders_tilde(self):
        fmt = Format([2, 2])
        cube = fmt.cube_from_fields([0, 3])
        assert fmt.cube_to_str(cube) == "~ -"
        assert fmt.cube_from_str("~ -") == cube

    def test_mv_bit_strings_are_lsb_first(self):
        # part 0 is the leftmost character of an MV token
        fmt = Format([3])
        assert fmt.cube_to_str(fmt.cube_from_fields([0b001])) == "100"
        assert fmt.cube_to_str(fmt.cube_from_fields([0b100])) == "001"
        assert fmt.cube_from_str("110") == fmt.cube_from_fields([0b011])


def text_io_formats() -> st.SearchStrategy:
    # mixed binary / MV parts; MV radixes above 2 exercise the
    # reversed bit-string token path
    return st.lists(st.sampled_from([2, 2, 3, 5, 7]), min_size=1,
                    max_size=5).map(Format)


@given(st.data())
@settings(max_examples=200)
def test_cube_str_roundtrip(data):
    """cube_from_str inverts cube_to_str for every field value,
    including empty fields (binary ``~``, all-zero MV tokens)."""
    fmt = data.draw(text_io_formats())
    fields = [data.draw(st.integers(min_value=0, max_value=(1 << p) - 1))
              for p in fmt.parts]
    cube = fmt.cube_from_fields(fields)
    text = fmt.cube_to_str(cube)
    assert fmt.cube_from_str(text) == cube
    # rendering is canonical: a second round-trip is a fixpoint
    assert fmt.cube_to_str(fmt.cube_from_str(text)) == text


@given(st.data())
@settings(max_examples=100)
def test_cube_str_tokens_match_parts(data):
    fmt = data.draw(text_io_formats())
    fields = [data.draw(st.integers(min_value=0, max_value=(1 << p) - 1))
              for p in fmt.parts]
    tokens = fmt.cube_to_str(fmt.cube_from_fields(fields)).split()
    assert len(tokens) == fmt.num_vars
    for tok, p in zip(tokens, fmt.parts):
        if p == 2:
            assert tok in ("0", "1", "-", "~")
        else:
            assert len(tok) == p and set(tok) <= {"0", "1"}


class TestVarValidation:
    """literal/field/with_field validate the variable index (regression:
    out-of-range and negative indices used to address wrong mask slots
    or raise bare IndexError deep in the mask arithmetic)."""

    def setup_method(self):
        self.fmt = Format([2, 3, 2])

    @pytest.mark.parametrize("var", [-1, 3, 100])
    def test_literal_rejects_bad_var(self, var):
        with pytest.raises(ValueError, match=f"variable index {var} "):
            self.fmt.literal(var, [0])

    @pytest.mark.parametrize("var", [-1, 3, 100])
    def test_field_rejects_bad_var(self, var):
        with pytest.raises(ValueError, match=f"variable index {var} "):
            self.fmt.field(self.fmt.universe, var)

    @pytest.mark.parametrize("var", [-1, 3, 100])
    def test_with_field_rejects_bad_var(self, var):
        with pytest.raises(ValueError, match=f"variable index {var} "):
            self.fmt.with_field(self.fmt.universe, var, 1)

    def test_message_names_the_format(self):
        with pytest.raises(ValueError, match=r"3 variables"):
            self.fmt.field(self.fmt.universe, 7)

    def test_valid_indices_unaffected(self):
        assert self.fmt.field(self.fmt.universe, 2) == 3
        lit = self.fmt.literal(1, [0, 2])
        assert self.fmt.field(lit, 1) == 0b101


@given(fmt_and_two_cubes)
@settings(max_examples=200)
def test_intersection_commutes(data):
    fmt, a, b = data
    assert fmt.intersect(a, b) == fmt.intersect(b, a)


@given(fmt_and_two_cubes)
@settings(max_examples=200)
def test_intersects_iff_shared_minterm(data):
    fmt, a, b = data
    shared = any(m & ~a == 0 and m & ~b == 0 for m in enumerate_minterms(fmt))
    assert fmt.intersects(a, b) == shared


@given(fmt_and_two_cubes)
@settings(max_examples=200)
def test_containment_is_minterm_subset(data):
    fmt, a, b = data
    subset = all(m & ~a == 0 for m in enumerate_minterms(fmt)
                 if m & ~b == 0)
    assert fmt.contains(a, b) == subset


@given(fmt_and_two_cubes)
@settings(max_examples=200)
def test_supercube_contains_both(data):
    fmt, a, b = data
    s = fmt.supercube(a, b)
    assert fmt.contains(s, a)
    assert fmt.contains(s, b)


@given(fmt_and_two_cubes)
@settings(max_examples=100)
def test_cofactor_covering_identity(data):
    """b covers a  iff  cofactor(a, b) keeps every minterm of the quotient.

    Weaker but useful identity: if cofactor is empty the cubes are
    disjoint, and cofactoring a cube by itself yields the universe.
    """
    fmt, a, b = data
    assert fmt.cofactor(a, a) == fmt.universe
    if fmt.cofactor(a, b) == 0:
        assert not fmt.intersects(a, b)
