"""Tests for KISS2 parsing and serialization."""

import pytest

from repro.fsm.kiss import parse_kiss, to_kiss
from repro.fsm.machine import Transition

LION_KISS = """
# a classic cattle-crossing controller
.i 2
.o 1
.s 4
.p 4
.r st0
00 st0 st0 0
01 st0 st1 0
-1 st1 st1 1
10 st1 st0 0
.e
"""


class TestParse:
    def test_basic(self):
        fsm = parse_kiss(LION_KISS, name="lion")
        assert fsm.num_inputs == 2
        assert fsm.num_outputs == 1
        assert fsm.states == ["st0", "st1"]
        assert fsm.reset == "st0"
        assert len(fsm.transitions) == 4

    def test_comments_stripped(self):
        fsm = parse_kiss(".i 1\n.o 1\n# comment\n0 a a 0 # trailing\n")
        assert len(fsm.transitions) == 1

    def test_reset_state_first(self):
        text = ".i 1\n.o 1\n.r b\n0 a a 0\n1 a b 1\n0 b a 0\n"
        fsm = parse_kiss(text)
        assert fsm.states[0] == "b"

    def test_missing_io_directives(self):
        with pytest.raises(ValueError):
            parse_kiss("0 a a 0\n")

    def test_unknown_directive(self):
        with pytest.raises(ValueError):
            parse_kiss(".i 1\n.o 1\n.zz 3\n0 a a 0\n")

    def test_wrong_field_count(self):
        with pytest.raises(ValueError):
            parse_kiss(".i 1\n.o 1\n0 a a\n")

    def test_symbolic_extension(self):
        text = ".i 0\n.o 1\n.sym u v\nu - a a 0\nv - a b 1\nu - b b 0\nv - b a 1\n"
        fsm = parse_kiss(text)
        assert fsm.symbolic_input_values == ["u", "v"]
        assert fsm.transitions[0].symbol == "u"
        assert fsm.transitions[0].inputs == ""

    def test_star_states(self):
        text = ".i 1\n.o 1\n0 * a 0\n1 a * 1\n"
        fsm = parse_kiss(text)
        assert fsm.transitions[0].present == "*"
        assert fsm.transitions[1].next == "*"


class TestRoundTrip:
    def test_roundtrip_plain(self):
        fsm = parse_kiss(LION_KISS, name="lion")
        again = parse_kiss(to_kiss(fsm), name="lion")
        assert again.states == fsm.states
        assert again.transitions == fsm.transitions
        assert again.reset == fsm.reset

    def test_roundtrip_symbolic(self):
        text = ".i 0\n.o 2\n.sym u v\nu - a b 01\nv - a a 10\nu - b a 00\nv - b b 11\n"
        fsm = parse_kiss(text)
        again = parse_kiss(to_kiss(fsm))
        assert again.transitions == fsm.transitions
        assert again.symbolic_input_values == fsm.symbolic_input_values

    def test_roundtrip_benchmarks(self):
        from repro.fsm.benchmarks import benchmark

        for name in ("lion", "bbtas", "dk27", "shiftreg"):
            fsm = benchmark(name)
            again = parse_kiss(to_kiss(fsm), name=name)
            assert again.num_inputs == fsm.num_inputs
            assert again.num_outputs == fsm.num_outputs
            assert set(again.states) == set(fsm.states)
            assert len(again.transitions) == len(fsm.transitions)
