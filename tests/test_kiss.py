"""Tests for KISS2 parsing and serialization."""

import pytest

from repro.fsm.kiss import parse_kiss, to_kiss

LION_KISS = """
# a classic cattle-crossing controller
.i 2
.o 1
.s 4
.p 4
.r st0
00 st0 st0 0
01 st0 st1 0
-1 st1 st1 1
10 st1 st0 0
.e
"""


class TestParse:
    def test_basic(self):
        fsm = parse_kiss(LION_KISS, name="lion")
        assert fsm.num_inputs == 2
        assert fsm.num_outputs == 1
        assert fsm.states == ["st0", "st1"]
        assert fsm.reset == "st0"
        assert len(fsm.transitions) == 4

    def test_comments_stripped(self):
        fsm = parse_kiss(".i 1\n.o 1\n# comment\n0 a a 0 # trailing\n")
        assert len(fsm.transitions) == 1

    def test_reset_state_first(self):
        text = ".i 1\n.o 1\n.r b\n0 a a 0\n1 a b 1\n0 b a 0\n"
        fsm = parse_kiss(text)
        assert fsm.states[0] == "b"

    def test_missing_io_directives(self):
        with pytest.raises(ValueError):
            parse_kiss("0 a a 0\n")

    def test_unknown_directive(self):
        with pytest.raises(ValueError):
            parse_kiss(".i 1\n.o 1\n.zz 3\n0 a a 0\n")

    def test_wrong_field_count(self):
        with pytest.raises(ValueError):
            parse_kiss(".i 1\n.o 1\n0 a a\n")

    def test_symbolic_extension(self):
        text = ".i 0\n.o 1\n.sym u v\nu - a a 0\nv - a b 1\nu - b b 0\nv - b a 1\n"
        fsm = parse_kiss(text)
        assert fsm.symbolic_input_values == ["u", "v"]
        assert fsm.transitions[0].symbol == "u"
        assert fsm.transitions[0].inputs == ""

    def test_star_states(self):
        text = ".i 1\n.o 1\n0 * a 0\n1 a * 1\n"
        fsm = parse_kiss(text)
        assert fsm.transitions[0].present == "*"
        assert fsm.transitions[1].next == "*"


class TestRoundTrip:
    def test_roundtrip_plain(self):
        fsm = parse_kiss(LION_KISS, name="lion")
        again = parse_kiss(to_kiss(fsm), name="lion")
        assert again.states == fsm.states
        assert again.transitions == fsm.transitions
        assert again.reset == fsm.reset

    def test_roundtrip_symbolic(self):
        text = ".i 0\n.o 2\n.sym u v\nu - a b 01\nv - a a 10\nu - b a 00\nv - b b 11\n"
        fsm = parse_kiss(text)
        again = parse_kiss(to_kiss(fsm))
        assert again.transitions == fsm.transitions
        assert again.symbolic_input_values == fsm.symbolic_input_values

    def test_roundtrip_benchmarks(self):
        from repro.fsm.benchmarks import benchmark

        for name in ("lion", "bbtas", "dk27", "shiftreg"):
            fsm = benchmark(name)
            again = parse_kiss(to_kiss(fsm), name=name)
            assert again.num_inputs == fsm.num_inputs
            assert again.num_outputs == fsm.num_outputs
            assert set(again.states) == set(fsm.states)
            assert len(again.transitions) == len(fsm.transitions)


class TestHardening:
    """Parser robustness: line/token diagnostics, duplicate rejection,
    whitespace tolerance."""

    def test_parse_error_carries_line_and_token(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError) as exc_info:
            parse_kiss(".i 1\n.o 1\n0 a a 0\n.zz 3\n")
        assert exc_info.value.line == 4
        assert exc_info.value.token == ".zz"

    def test_bad_row_reports_line(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError) as exc_info:
            parse_kiss(".i 1\n.o 1\n0 a a 0\n0 b b\n")
        assert exc_info.value.line == 4
        assert "4 fields" in str(exc_info.value)

    def test_non_integer_directive_argument(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError) as exc_info:
            parse_kiss(".i one\n.o 1\n0 a a 0\n")
        assert exc_info.value.line == 1
        assert exc_info.value.token == "one"

    def test_directive_missing_argument(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_kiss(".i\n.o 1\n0 a a 0\n")
        with pytest.raises(ParseError):
            parse_kiss(".i 1\n.o 1\n.r\n0 a a 0\n")

    def test_duplicate_transition_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError) as exc_info:
            parse_kiss(".i 1\n.o 1\n0 a a 0\n0 a a 0\n")
        assert "duplicate" in str(exc_info.value)
        assert "line 3" in str(exc_info.value)  # points at the original

    def test_contradictory_transition_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError) as exc_info:
            parse_kiss(".i 1\n.o 1\n0 a a 0\n0 a b 1\n")
        assert "contradictory" in str(exc_info.value)

    def test_crlf_and_trailing_whitespace_tolerated(self):
        text = ".i 2\r\n.o 1\t \r\n00 a a 0   \r\n01 a b 1\r\n"
        fsm = parse_kiss(text)
        assert fsm.num_inputs == 2
        assert len(fsm.transitions) == 2
        assert fsm.transitions[0].inputs == "00"

    def test_bom_tolerated(self):
        fsm = parse_kiss("\ufeff.i 1\n.o 1\n0 a a 0\n")
        assert fsm.num_inputs == 1

    def test_parse_errors_are_still_value_errors(self):
        with pytest.raises(ValueError):
            parse_kiss(".i 1\n.o 1\n.zz\n")
