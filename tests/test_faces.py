"""Tests for the face algebra on the encoding k-cube."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.constraints.faces import (
    Face,
    count_faces_of_level,
    faces_of_level,
    min_level,
    subfaces,
)


def faces(k_max: int = 4) -> st.SearchStrategy:
    return st.integers(min_value=1, max_value=k_max).flatmap(
        lambda k: st.tuples(
            st.just(k),
            st.integers(min_value=0, max_value=(1 << k) - 1),
            st.integers(min_value=0, max_value=(1 << k) - 1),
        )
    ).map(lambda t: Face(t[0], t[1], t[2]))


class TestFaceBasics:
    def test_str_roundtrip(self):
        f = Face.from_str("x0x1")
        assert str(f) == "x0x1"
        assert f.level == 2
        assert f.cardinality == 4

    def test_bad_str(self):
        with pytest.raises(ValueError):
            Face.from_str("x02")

    def test_vertex(self):
        v = Face.vertex(3, 0b101)
        assert v.level == 0
        assert list(v.vertices()) == [0b101]

    def test_universe(self):
        u = Face.universe(3)
        assert u.level == 3
        assert len(list(u.vertices())) == 8

    def test_value_normalized(self):
        assert Face(3, 0b001, 0b111) == Face(3, 0b001, 0b001)

    def test_care_width_check(self):
        with pytest.raises(ValueError):
            Face(2, 0b100, 0)

    def test_contains_code(self):
        f = Face.from_str("1x0")
        assert f.contains_code(0b100)
        assert f.contains_code(0b110)
        assert not f.contains_code(0b101)

    def test_inclusion(self):
        big = Face.from_str("xx0")
        small = Face.from_str("1x0")
        assert big.contains(small)
        assert not small.contains(big)
        assert big.contains(big)

    def test_inclusion_dimension_mismatch(self):
        with pytest.raises(ValueError):
            Face.universe(2).contains(Face.universe(3))

    def test_intersection(self):
        a = Face.from_str("1xx")
        b = Face.from_str("x0x")
        i = a.intersect(b)
        assert str(i) == "10x"

    def test_disjoint_intersection(self):
        assert Face.from_str("1xx").intersect(Face.from_str("0xx")) is None

    def test_spanning(self):
        f = Face.spanning(3, [0b000, 0b010])
        assert str(f) == "0x0"
        with pytest.raises(ValueError):
            Face.spanning(3, [])


class TestEnumeration:
    def test_faces_of_level_count(self):
        for k in range(1, 5):
            for lvl in range(k + 1):
                got = list(faces_of_level(k, lvl))
                assert len(got) == count_faces_of_level(k, lvl)
                assert len(set(got)) == len(got)

    def test_faces_of_level_out_of_range(self):
        assert list(faces_of_level(3, 4)) == []
        assert list(faces_of_level(3, -1)) == []

    def test_3cube_face_poset_size(self):
        """The 3-cube face-poset of Fig. 3 has 8 + 12 + 6 + 1 faces."""
        total = sum(count_faces_of_level(3, l) for l in range(4))
        assert total == 27
        assert count_faces_of_level(3, 0) == 8
        assert count_faces_of_level(3, 1) == 12
        assert count_faces_of_level(3, 2) == 6
        assert count_faces_of_level(3, 3) == 1

    def test_subfaces_all_inside(self):
        parent = Face.from_str("x1xx")
        subs = list(subfaces(parent, 1))
        assert subs
        for s in subs:
            assert s.level == 1
            assert parent.contains(s)
        # C(3,2) placements * 2^2 values = 12
        assert len(subs) == 12

    def test_subfaces_level_too_high(self):
        assert list(subfaces(Face.from_str("1x"), 2)) == []


class TestMinLevel:
    def test_values(self):
        assert min_level(0) == 0
        assert min_level(1) == 0
        assert min_level(2) == 1
        assert min_level(3) == 2
        assert min_level(4) == 2
        assert min_level(5) == 3


@given(faces(), faces())
@settings(max_examples=200)
def test_intersection_matches_vertex_sets(a, b):
    if a.k != b.k:
        return
    inter = a.intersect(b)
    va, vb = set(a.vertices()), set(b.vertices())
    if inter is None:
        assert not (va & vb)
    else:
        assert set(inter.vertices()) == va & vb


@given(faces(), faces())
@settings(max_examples=200)
def test_inclusion_matches_vertex_sets(a, b):
    if a.k != b.k:
        return
    assert a.contains(b) == (set(b.vertices()) <= set(a.vertices()))


@given(faces())
@settings(max_examples=100)
def test_spanning_own_vertices_is_identity(f):
    assert Face.spanning(f.k, list(f.vertices())) == f
