"""The lease table and the fencing merge: claims, steals, heartbeats.

Everything here is deterministic and in-process: staleness is driven
through the ``now`` parameter instead of sleeping, and the zombie
scenario journals through two :class:`LeaseDir`/:class:`Journal` pairs
directly — no subprocesses.  The end-to-end chaos version (real
claimant processes, SIGKILL/SIGSTOP) lives in ``test_runner_chaos.py``.
"""

import json
import os
import time

import pytest

from repro.errors import JournalError
from repro.runner import (
    Journal,
    LeaseDir,
    lease_stats,
    merge_results,
    shard_name,
)
from repro.runner.lease import task_key


class TestTaskKey:
    def test_filesystem_safe_and_collision_free(self):
        a, b = task_key("ihybrid:a/b"), task_key("ihybrid:a:b")
        assert "/" not in a and ":" not in a
        # sanitization maps both to the same stem; the hash keeps them
        # distinct claim files
        assert a != b

    def test_stable(self):
        assert task_key("x") == task_key("x")


class TestLeaseDir:
    def test_fresh_claim_is_epoch_zero(self, tmp_path):
        ld = LeaseDir(tmp_path, "alice", ttl=10.0)
        lease = ld.acquire("t1")
        assert lease is not None and lease.epoch == 0
        assert lease.claimant == "alice"
        assert ld.path_for("t1").exists()
        assert ld.claims == 1 and ld.steals == 0

    def test_live_claim_blocks_other_claimants(self, tmp_path):
        LeaseDir(tmp_path, "alice", ttl=10.0).acquire("t1")
        bob = LeaseDir(tmp_path, "bob", ttl=10.0)
        assert bob.acquire("t1") is None
        assert bob.claims == 0

    def test_own_live_claim_renews_at_same_epoch(self, tmp_path):
        ld = LeaseDir(tmp_path, "alice", ttl=10.0)
        first = ld.acquire("t1")
        again = ld.acquire("t1")
        assert again is not None and again.epoch == first.epoch == 0
        assert ld.steals == 0

    def test_expired_claim_is_stolen_at_epoch_plus_one(self, tmp_path):
        alice = LeaseDir(tmp_path, "alice", ttl=5.0)
        alice.acquire("t1")
        bob = LeaseDir(tmp_path, "bob", ttl=5.0)
        stolen = bob.acquire("t1", now=time.time() + 100)
        assert stolen is not None
        assert stolen.epoch == 1 and stolen.claimant == "bob"
        assert bob.steals == 1

    def test_heartbeat_renews_and_refuses_after_steal(self, tmp_path):
        alice = LeaseDir(tmp_path, "alice", ttl=5.0)
        lease = alice.acquire("t1")
        renewed = alice.heartbeat(lease)
        assert renewed is not None and renewed.epoch == 0
        assert renewed.expires_at >= lease.expires_at
        # bob steals while alice is "paused"
        bob = LeaseDir(tmp_path, "bob", ttl=5.0)
        assert bob.acquire("t1", now=time.time() + 100) is not None
        # the woken zombie must not clobber bob's claim
        assert alice.heartbeat(renewed) is None
        assert alice.lost == 1
        current = alice.read("t1")
        assert current.claimant == "bob" and current.epoch == 1

    def test_release_makes_the_task_stealable(self, tmp_path):
        alice = LeaseDir(tmp_path, "alice", ttl=1000.0)
        lease = alice.acquire("t1")
        alice.release(lease)
        bob = LeaseDir(tmp_path, "bob", ttl=1000.0)
        stolen = bob.acquire("t1")
        assert stolen is not None and stolen.epoch == 1

    def test_release_does_not_touch_a_stolen_claim(self, tmp_path):
        alice = LeaseDir(tmp_path, "alice", ttl=5.0)
        lease = alice.acquire("t1")
        bob = LeaseDir(tmp_path, "bob", ttl=5.0)
        bob.acquire("t1", now=time.time() + 100)
        alice.release(lease)  # stale handle: must be a no-op
        current = bob.read("t1")
        assert current.claimant == "bob" and not current.expired()

    def test_undecodable_claim_is_stealable_by_mtime(self, tmp_path):
        ld = LeaseDir(tmp_path, "alice", ttl=5.0)
        path = ld.path_for("t1")
        path.write_text("{ not json")
        # too young: treated as an anonymous live claim
        assert ld.acquire("t1") is None
        old = time.time() - 60
        os.utime(path, (old, old))
        lease = ld.acquire("t1")
        assert lease is not None and lease.epoch == 1

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="ttl"):
            LeaseDir(tmp_path, "alice", ttl=0.0)

    def test_lease_stats_counts_steals(self, tmp_path):
        alice = LeaseDir(tmp_path, "alice", ttl=5.0)
        alice.acquire("t1")
        alice.acquire("t2")
        bob = LeaseDir(tmp_path, "bob", ttl=5.0)
        bob.acquire("t1", now=time.time() + 100)
        stats = lease_stats(tmp_path)
        assert stats["leases"] == 2
        assert stats["total_epoch"] == 1  # exactly one published steal
        assert set(stats["claimants"]) == {"alice", "bob"}


def _shard_entry(task, claimant, epoch, payload):
    return {"task": task, "status": "ok", "claimant": claimant,
            "epoch": epoch, "record": payload}


class TestMerge:
    def test_highest_epoch_wins_and_loser_is_named(self, tmp_path):
        """The zombie scenario, deterministically: alice claims, stalls
        past her TTL, bob steals and journals at epoch 1, then the woken
        alice journals her stale-epoch result anyway."""
        alice = LeaseDir(tmp_path, "alice", ttl=5.0)
        lease = alice.acquire("t1")
        bob = LeaseDir(tmp_path, "bob", ttl=5.0)
        assert bob.acquire("t1", now=time.time() + 100).epoch == 1
        with Journal(tmp_path / shard_name("bob")) as j:
            j.append(_shard_entry("t1", "bob", 1, {"area": 10}))
        assert alice.heartbeat(lease) is None  # zombie notices too late
        with Journal(tmp_path / shard_name("alice")) as j:
            j.append(_shard_entry("t1", "alice", 0, {"area": 99}))
        merged = merge_results(tmp_path)
        assert merged.task_ids == ["t1"]
        assert merged.records[0]["claimant"] == "bob"
        assert merged.records[0]["record"] == {"area": 10}
        assert len(merged.rejected) == 1
        rej = merged.rejected[0]
        assert rej["task"] == "t1" and rej["claimant"] == "alice"
        assert rej["shard"] == shard_name("alice")
        assert "stale epoch 0 < 1" in rej["reason"]

    def test_epoch_ties_break_by_claimant_id(self, tmp_path):
        """Two racing stealers at the same epoch are allowed; the merge
        must still be deterministic."""
        for claimant in ("alice", "bob"):
            with Journal(tmp_path / shard_name(claimant)) as j:
                j.append(_shard_entry("t1", claimant, 1, {"by": claimant}))
        merged = merge_results(tmp_path)
        assert merged.records[0]["claimant"] == "bob"  # lexicographic max
        assert merged.rejected[0]["claimant"] == "alice"
        assert "tie at epoch 1" in merged.rejected[0]["reason"]

    def test_serial_records_sort_as_epoch_zero(self, tmp_path):
        with Journal(tmp_path / "results.jsonl") as j:
            j.append({"task": "t1", "status": "ok", "record": {"v": "old"}})
        with Journal(tmp_path / shard_name("bob")) as j:
            j.append(_shard_entry("t1", "bob", 1, {"v": "stolen"}))
        merged = merge_results(tmp_path)
        assert merged.records[0]["record"] == {"v": "stolen"}

    def test_torn_tails_in_two_of_three_shards(self, tmp_path):
        """Simultaneous mid-append SIGKILLs in two shards: the merge
        keeps every complete record and reports both torn tails."""
        for claimant, tasks in (("a", ["t1"]), ("b", ["t2"]),
                                ("c", ["t3"])):
            with Journal(tmp_path / shard_name(claimant)) as j:
                for t in tasks:
                    j.append(_shard_entry(t, claimant, 0, {}))
        for claimant in ("a", "c"):
            with open(tmp_path / shard_name(claimant), "a") as fh:
                fh.write('{"task": "torn-' + claimant + '", "sta')
        merged = merge_results(tmp_path)
        assert merged.task_ids == ["t1", "t2", "t3"]
        assert set(merged.torn_tails) == {shard_name("a"), shard_name("c")}
        assert merged.rejected == []

    def test_merged_order_is_independent_of_shard_layout(self, tmp_path):
        """The same record set split differently across shards must
        produce the identical merged view."""
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        entries = [_shard_entry(f"t{i}", "x", 0, {"i": i}) for i in range(6)]
        for d, split in ((a_dir, 2), (b_dir, 4)):
            d.mkdir()
            with Journal(d / shard_name("p")) as j:
                for e in entries[:split]:
                    j.append(e)
            with Journal(d / shard_name("q")) as j:
                for e in entries[split:]:
                    j.append(e)
        va, vb = merge_results(a_dir), merge_results(b_dir)
        assert va.records == vb.records

    def test_mid_file_corruption_raises_journal_error(self, tmp_path):
        shard = tmp_path / shard_name("a")
        shard.write_text('{"task": "t1", "status": "ok"}\n'
                         'garbage line\n'
                         '{"task": "t2", "status": "ok"}\n')
        with pytest.raises(JournalError, match="line 2"):
            merge_results(tmp_path)

    def test_record_for_lookup(self, tmp_path):
        with Journal(tmp_path / shard_name("a")) as j:
            j.append(_shard_entry("t1", "a", 0, {"v": 1}))
        merged = merge_results(tmp_path)
        assert merged.record_for("t1")["record"] == {"v": 1}
        assert merged.record_for("missing") is None
        assert json.dumps(merged.rejected) == "[]"
