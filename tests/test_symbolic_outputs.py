"""Tests for the symbolic proper-output extension (§VII future work)."""

import pytest

from repro.encoding.nova import encode_fsm
from repro.encoding.osym import out_symbol_encoding, output_symbol_dominance
from repro.encoding.verify import verify_encoded_machine
from repro.fsm.kiss import parse_kiss, to_kiss
from repro.fsm.machine import FSM, Transition
from repro.fsm.symbolic_cover import build_symbolic_cover

# a microcode-style controller whose output is a symbolic command
KISS_TEXT = """
.i 2
.o 1
.symout NOP LOAD STORE HALT
.r fetch
00 fetch fetch  0 NOP
01 fetch decode 0 LOAD
1- fetch halt   0 HALT
0- decode exec  1 LOAD
1- decode fetch 0 STORE
-- exec  fetch  1 STORE
-- halt  halt   0 HALT
"""


def controller() -> FSM:
    return parse_kiss(KISS_TEXT, name="micro")


class TestModel:
    def test_parse_and_validate(self):
        fsm = controller()
        assert fsm.symbolic_output_values == ["NOP", "LOAD", "STORE", "HALT"]
        assert fsm.transitions[0].out_symbol == "NOP"
        assert fsm.stats()["outputs"] == 2  # 1 binary + 1 symbolic

    def test_kiss_roundtrip(self):
        fsm = controller()
        again = parse_kiss(to_kiss(fsm), name="micro")
        assert again.transitions == fsm.transitions
        assert again.symbolic_output_values == fsm.symbolic_output_values

    def test_missing_out_symbol_rejected(self):
        rows = [Transition("0", "a", "a", "0")]
        with pytest.raises(ValueError):
            FSM("t", 1, 1, ["a"], rows, symbolic_output_values=["X", "Y"])

    def test_out_symbol_on_plain_machine_rejected(self):
        rows = [Transition("0", "a", "a", "0", out_symbol="X")]
        with pytest.raises(ValueError):
            FSM("t", 1, 1, ["a"], rows)


class TestCover:
    def test_output_columns_extended(self):
        fsm = controller()
        sc = build_symbolic_cover(fsm)
        assert sc.num_out_symbol_parts == 4
        # output var: 4 states + 1 output + 4 symbols
        assert sc.fmt.parts[sc.output_var] == 4 + 1 + 4

    def test_rows_assert_their_symbol_column(self):
        fsm = controller()
        sc = build_symbolic_cover(fsm)
        cube = sc.on.cubes[0]  # the NOP row
        out = sc.fmt.field(cube, sc.output_var)
        base = sc.num_next_parts + fsm.num_outputs
        assert (out >> base) & 0b1111 == 0b0001


class TestEncoding:
    def test_dominance_edges_well_formed(self):
        sc = build_symbolic_cover(controller())
        edges = output_symbol_dominance(sc)
        for u, v in edges:
            assert 0 <= u < 4 and 0 <= v < 4 and u != v

    def test_out_symbol_encoding_injective(self):
        sc = build_symbolic_cover(controller())
        enc = out_symbol_encoding(sc)
        assert len(set(enc.codes)) == 4
        assert enc.nbits >= 2

    def test_requires_symbolic_output(self):
        from repro.fsm.benchmarks import benchmark

        sc = build_symbolic_cover(benchmark("lion"))
        with pytest.raises(ValueError):
            out_symbol_encoding(sc)

    @pytest.mark.parametrize("alg", ["ihybrid", "igreedy", "iohybrid"])
    def test_full_pipeline_and_simulation(self, alg):
        fsm = controller()
        r = encode_fsm(fsm, alg)
        assert r.out_symbol_encoding is not None
        assert r.pla.out_bits == r.out_symbol_encoding.nbits
        report = verify_encoded_machine(
            fsm, r.state_encoding, r.pla,
            out_symbol_enc=r.out_symbol_encoding,
        )
        assert report.ok, report.mismatches

    def test_area_counts_symbol_columns(self):
        fsm = controller()
        r = encode_fsm(fsm, "ihybrid")
        cols = 2 * (2 + r.state_encoding.nbits) + r.state_encoding.nbits \
            + 1 + r.out_symbol_encoding.nbits
        assert r.area == cols * r.cubes

    def test_verifier_needs_symbol_encoding(self):
        fsm = controller()
        r = encode_fsm(fsm, "ihybrid")
        with pytest.raises(ValueError):
            verify_encoded_machine(fsm, r.state_encoding, r.pla)
