"""Tests for symbolic minimization (§6.1)."""

from repro.fsm import benchmark, build_symbolic_cover
from repro.fsm.machine import FSM, Transition
from repro.symbolic.symbolic_min import symbolic_minimize


def tiny_fsm() -> FSM:
    """Two-state toggle with an output — trivially minimizable."""
    rows = [
        Transition("0", "a", "a", "0"),
        Transition("1", "a", "b", "1"),
        Transition("0", "b", "b", "1"),
        Transition("1", "b", "a", "0"),
    ]
    return FSM("toggle", 1, 1, ["a", "b"], rows)


class TestSymbolicMinimize:
    def test_runs_on_tiny_machine(self):
        sc = build_symbolic_cover(tiny_fsm())
        res = symbolic_minimize(sc)
        assert res.final_cover_size >= 1
        assert res.output_constraints.n == 2

    def test_dag_is_acyclic(self):
        for name in ("lion", "bbtas", "train4", "dk27", "beecount"):
            sc = build_symbolic_cover(benchmark(name))
            res = symbolic_minimize(sc)
            assert res.output_constraints.check_acyclic(), name

    def test_cluster_weights_positive_when_stage_accepted(self):
        sc = build_symbolic_cover(benchmark("lion9"))
        res = symbolic_minimize(sc)
        for cl in res.output_constraints.clusters:
            if cl.edges:
                assert cl.weight >= 1

    def test_final_cover_not_larger_than_input(self):
        for name in ("lion", "bbtas", "shiftreg"):
            fsm = benchmark(name)
            sc = build_symbolic_cover(fsm)
            res = symbolic_minimize(sc)
            assert res.final_cover_size <= len(sc.on)

    def test_constraints_are_nontrivial_groups(self):
        sc = build_symbolic_cover(benchmark("bbtas"))
        res = symbolic_minimize(sc)
        n = benchmark("bbtas").num_states
        universe = (1 << n) - 1
        for m in res.input_constraints.masks():
            assert m != universe
            assert bin(m).count("1") >= 2

    def test_companion_ics_relate_to_clusters(self):
        sc = build_symbolic_cover(benchmark("lion9"))
        res = symbolic_minimize(sc)
        n = benchmark("lion9").num_states
        for cl in res.output_constraints.clusters:
            assert 0 <= cl.next_state < n
            for m in cl.companion_ic:
                assert 0 < m < (1 << n)

    def test_symbol_constraints_for_symbolic_input_machines(self):
        sc = build_symbolic_cover(benchmark("dk27"))
        res = symbolic_minimize(sc)
        assert res.symbol_constraints is not None
        assert res.symbol_constraints.n == 2

    def test_edges_reference_valid_states(self):
        sc = build_symbolic_cover(benchmark("train11"))
        res = symbolic_minimize(sc)
        n = benchmark("train11").num_states
        for u, v in res.output_constraints.all_edges():
            assert 0 <= u < n and 0 <= v < n and u != v
