"""Tests for input-constraint extraction and the ConstraintSet type."""

from repro.constraints.input_constraints import (
    ConstraintSet,
    extract_input_constraints,
)
from repro.fsm.benchmarks import benchmark
from repro.fsm.symbolic_cover import build_symbolic_cover


class TestConstraintSet:
    def test_add_accumulates_weight(self):
        cs = ConstraintSet(4)
        cs.add(0b0011)
        cs.add(0b0011, 2)
        assert cs.weights[0b0011] == 3

    def test_singletons_dropped(self):
        cs = ConstraintSet(4)
        cs.add(0b0001)
        assert len(cs) == 0

    def test_universe_dropped(self):
        cs = ConstraintSet(4)
        cs.add(0b1111)
        assert len(cs) == 0

    def test_by_weight_order_deterministic(self):
        cs = ConstraintSet(4)
        cs.add(0b0011, 1)
        cs.add(0b1100, 5)
        cs.add(0b0110, 5)
        order = [m for m, _ in cs.by_weight()]
        assert order[0] == 0b0110  # same weight: smaller mask first
        assert order[1] == 0b1100
        assert order[2] == 0b0011

    def test_members(self):
        cs = ConstraintSet(5)
        assert list(cs.members(0b10101)) == [0, 2, 4]

    def test_total_weight_and_contains(self):
        cs = ConstraintSet(4)
        cs.add(0b0011, 2)
        cs.add(0b1100, 3)
        assert cs.total_weight() == 5
        assert 0b0011 in cs
        assert 0b0110 not in cs


class TestExtraction:
    def test_lion_constraints(self):
        """Lion's counter structure produces pair constraints."""
        sc = build_symbolic_cover(benchmark("lion"))
        res = extract_input_constraints(sc)
        cs = res.state_constraints
        assert len(cs) >= 2
        for m in cs.masks():
            assert bin(m).count("1") >= 2
        assert res.minimized_cover_size <= len(sc.on)

    def test_symbolic_input_constraints_extracted(self):
        sc = build_symbolic_cover(benchmark("dk14"))
        res = extract_input_constraints(sc)
        assert res.symbol_constraints is not None
        assert res.symbol_constraints.n == 8

    def test_no_symbol_constraints_for_binary_machines(self):
        sc = build_symbolic_cover(benchmark("lion"))
        assert extract_input_constraints(sc).symbol_constraints is None

    def test_weights_count_cover_multiplicity(self):
        """Every constraint's weight equals its cube multiplicity, so the
        total weight never exceeds the minimized cover size."""
        for name in ("bbtas", "ex3", "beecount"):
            sc = build_symbolic_cover(benchmark(name))
            res = extract_input_constraints(sc)
            assert res.state_constraints.total_weight() <= \
                res.minimized_cover_size

    def test_clustered_machines_have_heavy_constraints(self):
        """The generator's cluster structure must yield weights > 1
        somewhere (the effect the paper's Table VI documents)."""
        heavy = 0
        for name in ("ex2", "donfile", "keyb"):
            sc = build_symbolic_cover(benchmark(name))
            res = extract_input_constraints(sc, effort="low")
            if any(w > 1 for w in res.state_constraints.weights.values()):
                heavy += 1
        assert heavy >= 1

    def test_low_effort_extraction_valid(self):
        sc = build_symbolic_cover(benchmark("ex3"))
        full = extract_input_constraints(sc, effort="full")
        low = extract_input_constraints(sc, effort="low")
        assert low.minimized_cover_size >= full.minimized_cover_size
