"""Tests for the experiment harness (table/figure regeneration)."""

from repro.eval.tables import (
    CAPPUCCINO,
    format_table,
    random_columns,
    ratio_series,
    table1_rows,
    table2_row,
    table3_row,
    table4_row,
    table5_row,
    table6_row,
    table7_row,
    totals,
)
from repro.fsm.benchmarks import benchmark_names


class TestTable1:
    def test_rows_for_small_subset(self):
        rows = table1_rows("small")
        assert len(rows) == len(benchmark_names("small"))
        for r in rows:
            assert r["states"] >= 2
            assert r["products"] >= r["states"] - 1


class TestTableRows:
    def test_table2_row(self):
        row = table2_row("shiftreg")
        assert row["ihybrid_bits"] == 3
        assert row["onehot_cubes"] > 0
        assert row["ihybrid_area"] > 0
        assert row["igreedy_area"] > 0

    def test_table2_row_without_iexact(self):
        row = table2_row("lion9", include_iexact=False)
        assert "iexact_bits" not in row

    def test_table2_iexact_failure_becomes_none(self):
        row = table2_row("lion9")  # triangle constraints: iexact gives up
        assert "iexact_bits" in row  # key present, possibly None

    def test_table3_row(self):
        row = table3_row("bbtas", trials=3)
        assert row["nova_alg"] in ("ihybrid", "igreedy")
        assert row["nova_area"] > 0
        assert row["kiss_area"] > 0
        assert row["random_best"] <= row["random_avg"]

    def test_table4_row(self):
        row = table4_row("lion", trials=3)
        assert row["nova_area"] <= row["iohybrid_area"]
        assert row["nova_area"] <= row["ih_area"]

    def test_table5_row(self):
        row = table5_row("lion")
        assert row["cappuccino_area"] == CAPPUCCINO["lion"][2]
        assert row["iohybrid_area"] > 0

    def test_table6_row(self):
        row = table6_row("bbtas")
        assert row["wsat"] >= 0
        assert row["clength"] >= row["min_clength"]
        assert row["time"] >= 0

    def test_table7_row(self):
        row = table7_row("train4", trials=2)
        assert row["mustang_cubes"] > 0
        assert row["nova_cubes"] > 0
        assert row["nova_lits"] >= 0
        assert row["random_lits"] > 0


class TestHelpers:
    def test_random_columns_deterministic(self):
        a = random_columns("lion", trials=4)
        b = random_columns("lion", trials=4)
        assert a == b
        assert a["best"] <= a["avg"]

    def test_ratio_series(self):
        rows = [{"a": 2, "b": 4}, {"a": 1, "b": 3}, {"a": None, "b": 3}]
        assert ratio_series(rows, "b", "a") == [2.0, 3.0, None]

    def test_format_table(self):
        text = format_table([{"x": 1, "y": "ab"}], title="T")
        assert "T" in text and "x" in text and "ab" in text
        assert format_table([], title="E").startswith("E")

    def test_totals_skips_incomplete_rows(self):
        rows = [{"a": 1, "b": 2}, {"a": None, "b": 5}, {"a": 3, "b": 4}]
        assert totals(rows, ["a", "b"]) == {"a": 4, "b": 6}

    def test_cappuccino_covers_table5(self):
        assert set(benchmark_names("table5")) == set(CAPPUCCINO)
