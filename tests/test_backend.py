"""Tests for :mod:`repro.logic.backend` — selection and bit-identity.

The numpy substrate is an optional accelerator: every kernel must
return exactly what the pure-python reference kernels return, including
list ordering (the bit-identity contract of DESIGN.md §6.9).  The
property tests drive both kernel sets over random multiple-valued
formats — binary and wide MV parts, single- and multi-word packings,
fields straddling 64-bit word boundaries — and random covers on both
sides of the ``MIN_BATCH`` dispatch threshold.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import backend
from repro.logic.backend import MIN_BATCH, PythonKernels
from repro.logic.cover import Cover
from repro.logic.cube import Format

HAVE_NUMPY = "numpy" in backend.available_backends()
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not installed")

if HAVE_NUMPY:
    from repro.logic.backend import _build_numpy_kernels
    NUMPY_KERNELS = _build_numpy_kernels()


class TestSelection:
    def test_python_always_available(self):
        assert "python" in backend.available_backends()

    def test_select_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown substrate"):
            backend.select("fortran")

    def test_use_restores_previous_backend(self):
        before = backend.ACTIVE
        with backend.use("python"):
            assert backend.ACTIVE == "python"
        assert backend.ACTIVE == before

    @needs_numpy
    def test_use_numpy_switches_kernels(self):
        with backend.use("numpy"):
            assert backend.ACTIVE == "numpy"
            assert backend.kernels is not PythonKernels
        assert backend.kernels is getattr(
            backend, "_NUMPY_KERNELS") or backend.kernels is PythonKernels


# ---------------------------------------------------------------------------
# property tests: python vs numpy kernel equivalence
# ---------------------------------------------------------------------------

# parts chosen so draws cover binary vars, odd MV radixes, one-word
# formats, multi-word formats, and fields straddling word boundaries
PART_CHOICES = (2, 2, 2, 3, 4, 5, 17, 40)


@st.composite
def fmt_and_cover(draw, max_cubes=3 * MIN_BATCH):
    parts = draw(st.lists(st.sampled_from(PART_CHOICES),
                          min_size=1, max_size=5))
    fmt = Format(parts)

    bits = draw(st.randoms(use_true_random=False))

    def cube():
        c = 0
        for v, p in enumerate(parts):
            f = bits.getrandbits(p)
            if f == 0 and bits.random() < 0.7:
                # mostly non-empty, but keep some empty fields so the
                # kernels see degenerate cubes too
                f = 1 << (bits.getrandbits(16) % p)
            c |= f << fmt.offsets[v]
        return c

    n = draw(st.integers(min_value=0, max_value=max_cubes))
    cubes = [cube() for _ in range(n)]
    probe = cube()
    return fmt, cubes, probe


@needs_numpy
class TestKernelEquivalence:
    """Each numpy kernel must be bit-identical to the python reference."""

    @given(fmt_and_cover())
    @settings(max_examples=120, deadline=None)
    def test_intersect_contains_distance(self, data):
        fmt, cubes, probe = data
        py, nk = PythonKernels, NUMPY_KERNELS
        packed = nk.pack(fmt, cubes)
        assert py.intersect_cube(fmt, cubes, probe) == \
            nk.intersect_cube(fmt, packed, probe)
        assert py.cofactor(fmt, cubes, probe) == \
            nk.cofactor(fmt, packed, probe)
        assert py.contain_any(fmt, cubes, probe) == \
            nk.contain_any(fmt, packed, probe)
        assert py.any_intersects(fmt, cubes, probe) == \
            nk.any_intersects(fmt, packed, probe)
        assert py.contained_mask(fmt, cubes, probe) == \
            nk.contained_mask(fmt, cubes, probe)
        assert py.distances(fmt, cubes, probe) == \
            nk.distances(fmt, cubes, probe)
        assert py.minterm_counts(fmt, cubes) == \
            nk.minterm_counts(fmt, cubes)

    @given(fmt_and_cover())
    @settings(max_examples=80, deadline=None)
    def test_batch_and_scan_kernels(self, data):
        fmt, cubes, probe = data
        py, nk = PythonKernels, NUMPY_KERNELS
        packed = nk.pack(fmt, cubes)
        probes = cubes[::3] + [probe]
        assert py.intersect_counts(fmt, cubes, probes) == \
            nk.intersect_counts(fmt, packed, probes)
        assert py.single_cube_containment(fmt, cubes) == \
            nk.single_cube_containment(fmt, cubes)
        assert py.var_profile(fmt, cubes) == nk.var_profile(fmt, cubes)
        assert py.consensus_scan(fmt, cubes, probe) == \
            nk.consensus_scan(fmt, packed, probe)

    @given(fmt_and_cover())
    @settings(max_examples=60, deadline=None)
    def test_cover_ops_identical_under_both_backends(self, data):
        """Cover-level results (the public surface) match across backends."""
        fmt, cubes, probe = data
        cover = Cover(fmt)
        cover.cubes = list(cubes)
        with backend.use("python"):
            a = (cover.cofactor(probe).cubes,
                 cover.intersect_cube(probe).cubes,
                 cover.single_cube_containment().cubes,
                 cover.contain_any(probe),
                 cover.any_intersects(probe))
        with backend.use("numpy"):
            b = (cover.cofactor(probe).cubes,
                 cover.intersect_cube(probe).cubes,
                 cover.single_cube_containment().cubes,
                 cover.contain_any(probe),
                 cover.any_intersects(probe))
        assert a == b

    @given(st.integers(min_value=1, max_value=10),
           st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_face_kernels(self, k, rng):
        py, nk = PythonKernels, NUMPY_KERNELS
        n = rng.randrange(1, 40)
        states = list(range(n))
        codes = [rng.getrandbits(k) for _ in states]
        ic = sum(1 << s for s in states if rng.random() < 0.5)
        care = rng.getrandbits(k)
        val = rng.getrandbits(k) & care
        assert py.face_members_ok(states, codes, ic, care, val) == \
            nk.face_members_ok(states, codes, ic, care, val)
        assert py.face_vertices(k, care, val) == \
            nk.face_vertices(k, care, val)


@needs_numpy
class TestPacked:
    def test_slice_shares_arrays(self):
        fmt = Format([2, 3, 2])
        cubes = [fmt.universe - (i % 3) for i in range(1, 40)]
        pool = NUMPY_KERNELS.pack(fmt, cubes)
        tail = pool[5:]
        assert len(tail) == len(cubes) - 5
        assert tail.cubes == cubes[5:]
        assert NUMPY_KERNELS.cofactor(fmt, tail, fmt.universe) == \
            PythonKernels.cofactor(fmt, cubes[5:], fmt.universe)

    def test_slice_propagates_cached_complement(self):
        fmt = Format([2, 2])
        cubes = [fmt.universe] * 20
        pool = NUMPY_KERNELS.pack(fmt, cubes)
        pool.inv  # materialize the cache
        assert pool[3:]._inv is not None

    def test_non_slice_indexing_rejected(self):
        fmt = Format([2, 2])
        pool = NUMPY_KERNELS.pack(fmt, [fmt.universe])
        with pytest.raises(TypeError):
            pool[0]


class TestEmptyCubeScc:
    def test_empty_subset_of_empty_is_kept_like_python(self):
        """Regression: all empty cubes tie at minterm count 0, so a
        bitwise subset can precede its container in canonical order and
        the sequential reference keeps BOTH — the batched kernel must
        not drop it via an all-pairs containment test."""
        fmt = Format([2, 2])
        sub = 0b0001  # empty (var 1 field is 0), subset of the next
        sup = 0b0011  # empty as well, strictly more bits
        # padding lifts the list over MIN_BATCH without containing the
        # empties (bit 0 is clear, so sub/sup are not its subsets)
        cubes = [sub, sup] + [0b1110] * 40
        expect = PythonKernels.single_cube_containment(fmt, cubes)
        assert sub in expect and sup in expect
        if HAVE_NUMPY:
            got = NUMPY_KERNELS.single_cube_containment(fmt, cubes)
            assert got == expect
