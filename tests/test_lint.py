"""Tests for the ``nova lint`` static-analysis subsystem.

Three layers: the engine (suppressions, NV000, JSON shape), each rule
against a bad/clean fixture pair under ``tests/fixtures/lint/``, and
the self-check — the shipping tree must lint clean, and reverting a
checked invariant in a copy of the real sources must trip the linter.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    REGISTRY,
    default_config,
    instantiate_rules,
    lint_paths,
    parse_suppressions,
)
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

ALL_RULES = ("NV001", "NV002", "NV003", "NV004", "NV005", "NV006",
             "NV007", "NV008", "NV009", "NV010")


def lint_tree(root):
    return lint_paths([root], display_root=Path(root))


class TestRegistry:
    def test_ships_at_least_six_rules(self):
        assert set(ALL_RULES) <= set(REGISTRY)
        assert len(REGISTRY) >= 6

    def test_every_rule_has_a_title(self):
        for rule in instantiate_rules():
            assert rule.title, rule.id

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError, match="NV999"):
            instantiate_rules(["NV999"])


class TestFixtures:
    def test_bad_tree_trips_every_rule(self):
        result = lint_tree(FIXTURES / "bad")
        assert not result.ok
        tripped = {f.rule for f in result.findings}
        assert tripped == set(ALL_RULES)

    def test_clean_tree_passes(self):
        result = lint_tree(FIXTURES / "clean")
        assert result.ok, [f.render() for f in result.findings]
        assert result.files >= 6

    def test_findings_name_file_and_line(self):
        result = lint_tree(FIXTURES / "bad")
        # findings are sorted by path: keep the first per rule so the
        # mapping is deterministic even when a fixture trips a second
        # rule incidentally (the raw shard write in runner/steal.py is
        # also an NV003 atomic-write violation, by design)
        by_rule = {}
        for f in result.findings:
            by_rule.setdefault(f.rule, f)
        assert by_rule["NV001"].path.endswith("encoding/options.py")
        assert "'timeout'" in by_rule["NV001"].message
        assert by_rule["NV002"].path.endswith("encoding/iexact.py")
        assert by_rule["NV003"].path.endswith("cache/store.py")
        assert by_rule["NV004"].path.endswith("encoding/igreedy.py")
        assert by_rule["NV005"].path.endswith("encoding/onehot.py")
        assert by_rule["NV006"].path.endswith("runner/worker.py")
        assert by_rule["NV007"].path.endswith("runner/steal.py")
        assert by_rule["NV008"].path.endswith("server/handler.py")
        assert by_rule["NV009"].path.endswith("server/resources.py")
        assert by_rule["NV010"].path.endswith("bench/env.py")
        for f in result.findings:
            assert f.line >= 1
            assert f.message

    def test_nv007_catches_all_five_shapes(self):
        result = lint_tree(FIXTURES / "bad")
        messages = [f.message for f in result.findings
                    if f.rule == "NV007"]
        assert len(messages) == 5
        assert any("None-guard" in m for m in messages)
        assert any("heartbeat" in m for m in messages)
        assert any("ordering comparison" in m for m in messages)
        assert any("half the fencing key" in m for m in messages)
        assert any("raw write" in m for m in messages)

    def test_nv008_blocking_and_unbounded_awaits(self):
        result = lint_tree(FIXTURES / "bad")
        messages = [f.message for f in result.findings
                    if f.rule == "NV008"]
        assert len(messages) == 3
        assert any("no deadline" in m for m in messages)
        assert any("coroutine 'handle'" in m for m in messages)
        # the sync helper is flagged through the call graph
        assert any("reachable from a coroutine" in m for m in messages)

    def test_nv008_to_thread_reference_is_not_an_edge(self):
        # the clean handler hands render_page (containing time.sleep)
        # to asyncio.to_thread by *reference*: no call edge, no finding
        result = lint_tree(FIXTURES / "clean")
        assert not [f for f in result.findings if f.rule == "NV008"]

    def test_nv009_slot_and_handle_shapes(self):
        result = lint_tree(FIXTURES / "bad")
        messages = [f.message for f in result.findings
                    if f.rule == "NV009"]
        assert len(messages) == 2
        assert any("acquire()" in m for m in messages)
        assert any("leaks the handle" in m for m in messages)

    def test_nv010_resolves_key_through_constant(self):
        result = lint_tree(FIXTURES / "bad")
        hits = [f for f in result.findings if f.rule == "NV010"]
        assert len(hits) == 2
        # one read hides the key behind a module constant; the
        # dataflow layer resolves it anyway
        assert any("NOVA_BENCH_SET" in f.message for f in hits)
        assert any("NOVA_CACHE" in f.message for f in hits)

    def test_nv004_catches_all_three_shapes(self):
        result = lint_tree(FIXTURES / "bad")
        messages = [f.message for f in result.findings if f.rule == "NV004"]
        assert len(messages) == 3
        assert any("bare" in m for m in messages)
        assert any("swallows" in m for m in messages)
        assert any("ValueError" in m for m in messages)

    def test_rules_subset_only_runs_those(self):
        rules = instantiate_rules(["NV005"])
        result = lint_paths([FIXTURES / "bad"], rules=rules,
                            display_root=FIXTURES / "bad")
        assert {f.rule for f in result.findings} == {"NV005"}


class TestSuppressions:
    def write(self, tmp_path, rel, source):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return tmp_path

    def test_inline_suppression_with_reason(self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "import time\n"
            "def f():\n"
            "    return time.time()"
            "  # nova-lint: disable=NV005 -- wall clock wanted here\n"
        ))
        result = lint_tree(root)
        assert result.ok
        assert result.suppressed == 1

    def test_standalone_suppression_covers_next_code_line(self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "import time\n"
            "def f():\n"
            "    # nova-lint: disable=NV005 -- wall clock wanted here,\n"
            "    # with a justification spanning two comment lines\n"
            "    return time.time()\n"
        ))
        result = lint_tree(root)
        assert result.ok
        assert result.suppressed == 1

    def test_standalone_suppression_covers_decorated_statement(
            self, tmp_path):
        # a directive above a decorator stack must cover the whole
        # decorated statement — here the violation sits in the SECOND
        # decorator, two lines below the comment, where the plain
        # next-line scope never reached
        root = self.write(tmp_path, "encoding/onehot.py", (
            "import functools\n"
            "import time\n"
            "# nova-lint: disable=NV005 -- decoration stamp is wall "
            "clock on purpose\n"
            "@functools.lru_cache(maxsize=None)\n"
            "@mark(stamp=time.time())\n"
            "def f():\n"
            "    return 1\n"
        ))
        result = lint_tree(root)
        assert result.ok, [f.render() for f in result.findings]
        assert result.suppressed == 1

    def test_decorated_coverage_does_not_bleed_past_the_statement(
            self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "import functools\n"
            "import time\n"
            "# nova-lint: disable=NV005 -- decoration stamp is wall "
            "clock on purpose\n"
            "@functools.lru_cache(maxsize=None)\n"
            "@mark(stamp=time.time())\n"
            "def f():\n"
            "    return 1\n"
            "def g():\n"
            "    return time.time()\n"
        ))
        result = lint_tree(root)
        # the decorator violation is covered; g's body (after the
        # decorated statement) is not
        assert [f.rule for f in result.findings] == ["NV005"]
        assert result.findings[0].line == 9

    def test_suppression_without_reason_is_rejected(self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "import time\n"
            "def f():\n"
            "    return time.time()  # nova-lint: disable=NV005\n"
        ))
        result = lint_tree(root)
        rules = sorted(f.rule for f in result.findings)
        # the finding survives AND the directive itself is flagged
        assert rules == ["NV000", "NV005"]

    def test_suppression_for_other_rule_does_not_cover(self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "import time\n"
            "def f():\n"
            "    return time.time()  # nova-lint: disable=NV002 -- nope\n"
        ))
        result = lint_tree(root)
        assert [f.rule for f in result.findings] == ["NV005"]

    def test_unknown_rule_id_in_directive(self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "x = 1  # nova-lint: disable=NV42 -- typo'd id\n"
        ))
        result = lint_tree(root)
        assert [f.rule for f in result.findings] == ["NV000"]
        assert "NV42" in result.findings[0].message

    def test_parse_suppressions(self):
        sups = parse_suppressions(
            "a = 1  # nova-lint: disable=NV001,NV002 -- because\n"
            "# nova-lint: disable=NV003 -- standalone\n"
            "b = 2\n"
        )
        assert len(sups) == 2
        assert sups[0].rules == ("NV001", "NV002")
        assert sups[0].reason == "because"
        assert not sups[0].standalone
        assert sups[1].standalone

    def test_unparseable_file_is_a_finding(self, tmp_path):
        root = self.write(tmp_path, "encoding/broken.py", "def f(:\n")
        result = lint_tree(root)
        assert [f.rule for f in result.findings] == ["NV000"]
        assert "could not parse" in result.findings[0].message


class TestSelfCheck:
    """The shipping tree holds its own invariants."""

    def test_src_repro_is_lint_clean(self):
        result = lint_paths([REPO_SRC])
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert result.files > 50

    def test_every_suppression_in_tree_has_a_reason(self):
        for path in sorted(REPO_SRC.rglob("*.py")):
            for sup in parse_suppressions(path.read_text()):
                assert sup.reason, f"{path}:{sup.line} lacks a reason"

    def test_removing_fingerprint_field_is_caught(self, tmp_path):
        source = (REPO_SRC / "encoding" / "options.py").read_text()
        needle = "if f.name not in NON_FINGERPRINT_FIELDS"
        assert needle in source
        broken = source.replace(
            needle, needle + '\n            and f.name != "seed"')
        target = tmp_path / "encoding" / "options.py"
        target.parent.mkdir(parents=True)
        target.write_text(broken)
        result = lint_tree(tmp_path)
        hits = [f for f in result.findings if f.rule == "NV001"]
        assert hits, "dropping 'seed' from the fingerprint went unnoticed"
        assert "'seed'" in hits[0].message
        assert hits[0].path.endswith("encoding/options.py")
        assert hits[0].line >= 1

    def test_deleting_budget_tick_is_caught(self, tmp_path):
        source = (REPO_SRC / "encoding" / "iexact.py").read_text()
        assert "        tick()\n" in source
        broken = source.replace("        tick()\n", "", 1)
        target = tmp_path / "encoding" / "iexact.py"
        target.parent.mkdir(parents=True)
        target.write_text(broken)
        result = lint_tree(tmp_path)
        hits = [f for f in result.findings if f.rule == "NV002"]
        assert hits, "deleting a budget tick went unnoticed"
        assert hits[0].path.endswith("encoding/iexact.py")
        assert hits[0].line >= 1

    def test_deleting_lease_heartbeat_is_caught(self, tmp_path):
        # revert detection: a claim loop that stops heartbeating would
        # look dead to every peer, so its tasks get stolen mid-run
        source = (REPO_SRC / "runner" / "batch.py").read_text()
        needle = "renewed = leases.heartbeat(a.lease)"
        assert needle in source
        broken = source.replace(needle, "renewed = a.lease", 1)
        target = tmp_path / "runner" / "batch.py"
        target.parent.mkdir(parents=True)
        target.write_text(broken)
        result = lint_tree(tmp_path)
        hits = [f for f in result.findings if f.rule == "NV007"]
        assert hits, "deleting the lease heartbeat went unnoticed"
        assert "heartbeat" in hits[0].message
        assert hits[0].path.endswith("runner/batch.py")
        assert hits[0].line >= 1

    def test_blocking_call_in_coroutine_is_caught(self, tmp_path):
        source = (REPO_SRC / "server" / "app.py").read_text()
        needle = ("t0 = time.monotonic()\n        try:\n"
                  "            method, path")
        assert needle in source
        broken = source.replace(
            needle,
            "t0 = time.monotonic()\n        time.sleep(0.01)\n"
            "        try:\n            method, path", 1)
        target = tmp_path / "server" / "app.py"
        target.parent.mkdir(parents=True)
        target.write_text(broken)
        result = lint_tree(tmp_path)
        hits = [f for f in result.findings if f.rule == "NV008"]
        assert hits, "time.sleep in a coroutine went unnoticed"
        assert "time.sleep" in hits[0].message
        assert hits[0].path.endswith("server/app.py")
        assert hits[0].line >= 1

    def test_dropping_slot_release_is_caught(self, tmp_path):
        # revert detection: losing the finally-release leaks a slot on
        # every error path until the server stops admitting anyone
        source = (REPO_SRC / "server" / "admission.py").read_text()
        needle = "self._slots.release()"
        assert needle in source
        broken = source.replace(needle, "self._noop()", 1)
        target = tmp_path / "server" / "admission.py"
        target.parent.mkdir(parents=True)
        target.write_text(broken)
        result = lint_tree(tmp_path)
        hits = [f for f in result.findings if f.rule == "NV009"]
        assert hits, "dropping the slot release went unnoticed"
        assert hits[0].path.endswith("server/admission.py")
        assert hits[0].line >= 1

    def test_direct_env_read_is_caught(self, tmp_path):
        source = (REPO_SRC / "bench" / "discover.py").read_text()
        needle = "value = config_mod.bench_set()"
        assert needle in source
        broken = source.replace(
            needle, 'value = os.environ.get("NOVA_BENCH_SET")', 1)
        target = tmp_path / "bench" / "discover.py"
        target.parent.mkdir(parents=True)
        target.write_text(broken)
        result = lint_tree(tmp_path)
        hits = [f for f in result.findings if f.rule == "NV010"]
        assert hits, "a direct NOVA_* env read went unnoticed"
        assert "NOVA_BENCH_SET" in hits[0].message
        assert hits[0].path.endswith("bench/discover.py")
        assert hits[0].line >= 1

    def test_default_config_scopes_every_rule(self):
        cfg = default_config()
        for rule_id in ("NV001", "NV002", "NV003", "NV005", "NV006",
                        "NV007", "NV008", "NV009"):
            assert cfg.rule_paths.get(rule_id)
        assert cfg.rule_paths.get("NV004-stages")
        # NV010 is deliberately unscoped: a NOVA_* env read is a policy
        # leak no matter which package it hides in
        assert "NV010" not in cfg.rule_paths
        assert cfg.config_modules == ("config.py",)

    def test_server_modules_are_in_scope(self):
        # nova serve spawns workers and raises over HTTP: the server
        # package must honour both the spawn-safety and the
        # raise-taxonomy invariants, service errors included
        cfg = default_config()
        assert "server/*.py" in cfg.rule_paths["NV006"]
        assert "server/*.py" in cfg.rule_paths["NV004-stages"]
        for name in ("ServiceError", "OverloadError", "DeadlineExceeded"):
            assert name in cfg.allowed_raises


class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "clean")]) == 0
        err = capsys.readouterr().err
        assert "0 finding(s)" in err

    def test_lint_bad_tree_exits_one(self, capsys):
        assert main(["lint", str(FIXTURES / "bad")]) == 1
        out = capsys.readouterr().out
        assert "NV001" in out
        assert "encoding/options.py" in out

    def test_lint_json_output(self, capsys):
        assert main(["lint", str(FIXTURES / "bad"), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files"] >= 6
        assert set(payload["counts"]) == set(ALL_RULES)
        assert set(payload["rules"]) == set(ALL_RULES)
        first = payload["findings"][0]
        assert {"rule", "path", "line", "col", "message",
                "severity"} <= set(first)

    def test_lint_rules_filter(self, capsys):
        assert main(["lint", str(FIXTURES / "bad"),
                     "--rules", "NV006", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["counts"]) == {"NV006"}

    def test_lint_unknown_rule_exits_two(self, capsys):
        assert main(["lint", str(FIXTURES / "bad"),
                     "--rules", "NV999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_lint_empty_rules_exits_two(self, capsys):
        # regression: '--rules " , "' used to select zero rules and
        # exit 0, silently passing a tree nothing had checked
        assert main(["lint", str(FIXTURES / "bad"),
                     "--rules", " , "]) == 2
        err = capsys.readouterr().err
        assert "selected no rules" in err
        for rule_id in ALL_RULES:
            assert rule_id in err

    def test_lint_explain_known_rule(self, capsys):
        assert main(["lint", "--explain", "NV007"]) == 0
        out = capsys.readouterr().out
        assert "NV007" in out
        assert "fencing" in out.lower()

    def test_lint_explain_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--explain", "NV042"]) == 2
        err = capsys.readouterr().err
        assert "NV042" in err
        assert "NV001" in err

    def test_lint_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "lint-baseline.json"
        assert main(["lint", str(FIXTURES / "bad"),
                     "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        payload = json.loads(baseline.read_text())
        assert payload["schema"] == 1
        assert payload["findings"]

        # every recorded finding is now tolerated: exit goes 1 -> 0
        assert main(["lint", str(FIXTURES / "bad"),
                     "--baseline", str(baseline), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["baselined"] == len(payload["findings"])

        # a novel finding still fails even under the baseline
        extra = tmp_path / "tree" / "encoding" / "late.py"
        extra.parent.mkdir(parents=True)
        extra.write_text("import time\n\n\ndef stamp():\n"
                         "    return time.time()\n")
        assert main(["lint", str(FIXTURES / "bad"), str(tmp_path / "tree"),
                     "--baseline", str(baseline), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in report["findings"]] == ["NV005"]

    def test_lint_update_baseline_requires_baseline(self, capsys):
        assert main(["lint", str(FIXTURES / "bad"),
                     "--update-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_lint_without_paths_exits_two(self, capsys):
        assert main(["lint"]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULES:
            assert rule_id in out

    def test_real_tree_through_cli(self, capsys):
        assert main(["lint", str(REPO_SRC), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []
        # a clean tree still reports which rules ran: "no findings"
        # must be distinguishable from "nothing was checked"
        assert set(payload["rules"]) == set(ALL_RULES)
