"""Tests for the ``nova lint`` static-analysis subsystem.

Three layers: the engine (suppressions, NV000, JSON shape), each rule
against a bad/clean fixture pair under ``tests/fixtures/lint/``, and
the self-check — the shipping tree must lint clean, and reverting a
checked invariant in a copy of the real sources must trip the linter.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    REGISTRY,
    default_config,
    instantiate_rules,
    lint_paths,
    parse_suppressions,
)
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "lint"
REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

ALL_RULES = ("NV001", "NV002", "NV003", "NV004", "NV005", "NV006")


def lint_tree(root):
    return lint_paths([root], display_root=Path(root))


class TestRegistry:
    def test_ships_at_least_six_rules(self):
        assert set(ALL_RULES) <= set(REGISTRY)
        assert len(REGISTRY) >= 6

    def test_every_rule_has_a_title(self):
        for rule in instantiate_rules():
            assert rule.title, rule.id

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError, match="NV999"):
            instantiate_rules(["NV999"])


class TestFixtures:
    def test_bad_tree_trips_every_rule(self):
        result = lint_tree(FIXTURES / "bad")
        assert not result.ok
        tripped = {f.rule for f in result.findings}
        assert tripped == set(ALL_RULES)

    def test_clean_tree_passes(self):
        result = lint_tree(FIXTURES / "clean")
        assert result.ok, [f.render() for f in result.findings]
        assert result.files >= 6

    def test_findings_name_file_and_line(self):
        result = lint_tree(FIXTURES / "bad")
        by_rule = {f.rule: f for f in result.findings}
        assert by_rule["NV001"].path.endswith("encoding/options.py")
        assert "'timeout'" in by_rule["NV001"].message
        assert by_rule["NV002"].path.endswith("encoding/iexact.py")
        assert by_rule["NV003"].path.endswith("cache/store.py")
        assert by_rule["NV004"].path.endswith("encoding/igreedy.py")
        assert by_rule["NV005"].path.endswith("encoding/onehot.py")
        assert by_rule["NV006"].path.endswith("runner/worker.py")
        for f in result.findings:
            assert f.line >= 1
            assert f.message

    def test_nv004_catches_all_three_shapes(self):
        result = lint_tree(FIXTURES / "bad")
        messages = [f.message for f in result.findings if f.rule == "NV004"]
        assert len(messages) == 3
        assert any("bare" in m for m in messages)
        assert any("swallows" in m for m in messages)
        assert any("ValueError" in m for m in messages)

    def test_rules_subset_only_runs_those(self):
        rules = instantiate_rules(["NV005"])
        result = lint_paths([FIXTURES / "bad"], rules=rules,
                            display_root=FIXTURES / "bad")
        assert {f.rule for f in result.findings} == {"NV005"}


class TestSuppressions:
    def write(self, tmp_path, rel, source):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return tmp_path

    def test_inline_suppression_with_reason(self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "import time\n"
            "def f():\n"
            "    return time.time()"
            "  # nova-lint: disable=NV005 -- wall clock wanted here\n"
        ))
        result = lint_tree(root)
        assert result.ok
        assert result.suppressed == 1

    def test_standalone_suppression_covers_next_code_line(self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "import time\n"
            "def f():\n"
            "    # nova-lint: disable=NV005 -- wall clock wanted here,\n"
            "    # with a justification spanning two comment lines\n"
            "    return time.time()\n"
        ))
        result = lint_tree(root)
        assert result.ok
        assert result.suppressed == 1

    def test_suppression_without_reason_is_rejected(self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "import time\n"
            "def f():\n"
            "    return time.time()  # nova-lint: disable=NV005\n"
        ))
        result = lint_tree(root)
        rules = sorted(f.rule for f in result.findings)
        # the finding survives AND the directive itself is flagged
        assert rules == ["NV000", "NV005"]

    def test_suppression_for_other_rule_does_not_cover(self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "import time\n"
            "def f():\n"
            "    return time.time()  # nova-lint: disable=NV002 -- nope\n"
        ))
        result = lint_tree(root)
        assert [f.rule for f in result.findings] == ["NV005"]

    def test_unknown_rule_id_in_directive(self, tmp_path):
        root = self.write(tmp_path, "encoding/onehot.py", (
            "x = 1  # nova-lint: disable=NV42 -- typo'd id\n"
        ))
        result = lint_tree(root)
        assert [f.rule for f in result.findings] == ["NV000"]
        assert "NV42" in result.findings[0].message

    def test_parse_suppressions(self):
        sups = parse_suppressions(
            "a = 1  # nova-lint: disable=NV001,NV002 -- because\n"
            "# nova-lint: disable=NV003 -- standalone\n"
            "b = 2\n"
        )
        assert len(sups) == 2
        assert sups[0].rules == ("NV001", "NV002")
        assert sups[0].reason == "because"
        assert not sups[0].standalone
        assert sups[1].standalone

    def test_unparseable_file_is_a_finding(self, tmp_path):
        root = self.write(tmp_path, "encoding/broken.py", "def f(:\n")
        result = lint_tree(root)
        assert [f.rule for f in result.findings] == ["NV000"]
        assert "could not parse" in result.findings[0].message


class TestSelfCheck:
    """The shipping tree holds its own invariants."""

    def test_src_repro_is_lint_clean(self):
        result = lint_paths([REPO_SRC])
        assert result.ok, "\n".join(f.render() for f in result.findings)
        assert result.files > 50

    def test_every_suppression_in_tree_has_a_reason(self):
        for path in sorted(REPO_SRC.rglob("*.py")):
            for sup in parse_suppressions(path.read_text()):
                assert sup.reason, f"{path}:{sup.line} lacks a reason"

    def test_removing_fingerprint_field_is_caught(self, tmp_path):
        source = (REPO_SRC / "encoding" / "options.py").read_text()
        needle = "if f.name not in NON_FINGERPRINT_FIELDS"
        assert needle in source
        broken = source.replace(
            needle, needle + '\n            and f.name != "seed"')
        target = tmp_path / "encoding" / "options.py"
        target.parent.mkdir(parents=True)
        target.write_text(broken)
        result = lint_tree(tmp_path)
        hits = [f for f in result.findings if f.rule == "NV001"]
        assert hits, "dropping 'seed' from the fingerprint went unnoticed"
        assert "'seed'" in hits[0].message
        assert hits[0].path.endswith("encoding/options.py")
        assert hits[0].line >= 1

    def test_deleting_budget_tick_is_caught(self, tmp_path):
        source = (REPO_SRC / "encoding" / "iexact.py").read_text()
        assert "        tick()\n" in source
        broken = source.replace("        tick()\n", "", 1)
        target = tmp_path / "encoding" / "iexact.py"
        target.parent.mkdir(parents=True)
        target.write_text(broken)
        result = lint_tree(tmp_path)
        hits = [f for f in result.findings if f.rule == "NV002"]
        assert hits, "deleting a budget tick went unnoticed"
        assert hits[0].path.endswith("encoding/iexact.py")
        assert hits[0].line >= 1

    def test_default_config_scopes_every_rule(self):
        cfg = default_config()
        for rule_id in ("NV001", "NV002", "NV003", "NV005", "NV006"):
            assert cfg.rule_paths.get(rule_id)
        assert cfg.rule_paths.get("NV004-stages")

    def test_server_modules_are_in_scope(self):
        # nova serve spawns workers and raises over HTTP: the server
        # package must honour both the spawn-safety and the
        # raise-taxonomy invariants, service errors included
        cfg = default_config()
        assert "server/*.py" in cfg.rule_paths["NV006"]
        assert "server/*.py" in cfg.rule_paths["NV004-stages"]
        for name in ("ServiceError", "OverloadError", "DeadlineExceeded"):
            assert name in cfg.allowed_raises


class TestCli:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "clean")]) == 0
        err = capsys.readouterr().err
        assert "0 finding(s)" in err

    def test_lint_bad_tree_exits_one(self, capsys):
        assert main(["lint", str(FIXTURES / "bad")]) == 1
        out = capsys.readouterr().out
        assert "NV001" in out
        assert "encoding/options.py" in out

    def test_lint_json_output(self, capsys):
        assert main(["lint", str(FIXTURES / "bad"), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["files"] >= 6
        assert set(payload["counts"]) == set(ALL_RULES)
        first = payload["findings"][0]
        assert {"rule", "path", "line", "col", "message",
                "severity"} <= set(first)

    def test_lint_rules_filter(self, capsys):
        assert main(["lint", str(FIXTURES / "bad"),
                     "--rules", "NV006", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["counts"]) == {"NV006"}

    def test_lint_unknown_rule_exits_two(self, capsys):
        assert main(["lint", str(FIXTURES / "bad"),
                     "--rules", "NV999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_lint_without_paths_exits_two(self, capsys):
        assert main(["lint"]) == 2

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULES:
            assert rule_id in out

    def test_real_tree_through_cli(self, capsys):
        assert main(["lint", str(REPO_SRC), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []
