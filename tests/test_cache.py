"""The content-addressed encode cache: keys, tiers, transparency.

The autouse ``_isolated_encode_cache`` fixture (conftest) forces the
``auto`` policy to *off* for the whole suite; every test here opts back
in explicitly with ``cache="on"`` plus a tmp ``NOVA_CACHE_DIR``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro import cache as cache_mod
from repro import perf
from repro.cache.codec import CacheDecodeError, decode_result, encode_result
from repro.cache.store import DiskStore, MemoryLRU
from repro.encoding.nova import encode_fsm
from repro.encoding.options import EncodeOptions
from repro.fsm.benchmarks import benchmark, benchmark_names


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A private disk tier for one test; returns its root path."""
    root = tmp_path / "nova-cache"
    monkeypatch.setenv("NOVA_CACHE_DIR", str(root))
    cache_mod.reset()
    return root


def comparable(result):
    """A result's journal record minus provenance (the cache_hit flag).

    Timing fields are deliberately *kept*: a hit rehydrates the original
    run's seconds, so even those must match bit-for-bit.
    """
    rec = result.to_record()
    if rec["report"] is not None:
        rec["report"] = dict(rec["report"])
        rec["report"].pop("cache_hit")
    return rec


def comparable_untimed(result):
    """Like :func:`comparable` but with timing dropped, for comparing
    two independent *live* computes (where wall-clock always differs)."""
    rec = comparable(result)
    rec.pop("seconds", None)
    if rec["report"] is not None:
        rec["report"].pop("seconds", None)
        rec["report"].pop("stage_seconds", None)
    return rec


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable(self):
        fsm = benchmark("lion")
        o = EncodeOptions()
        assert cache_mod.fingerprint(fsm, o) == cache_mod.fingerprint(fsm, o)

    def test_machine_sensitive(self):
        o = EncodeOptions()
        assert (cache_mod.fingerprint(benchmark("lion"), o)
                != cache_mod.fingerprint(benchmark("lion9"), o))

    def test_options_sensitive(self):
        fsm = benchmark("lion")
        assert (cache_mod.fingerprint(fsm, EncodeOptions(algorithm="iexact"))
                != cache_mod.fingerprint(fsm, EncodeOptions()))
        assert (cache_mod.fingerprint(fsm, EncodeOptions(seed=1))
                != cache_mod.fingerprint(fsm, EncodeOptions(seed=2)))

    def test_cache_policy_not_in_key(self):
        fsm = benchmark("lion")
        assert (cache_mod.fingerprint(fsm, EncodeOptions(cache="on"))
                == cache_mod.fingerprint(fsm, EncodeOptions(cache="off")))

    def test_version_salt(self, monkeypatch):
        from repro import _version

        fsm = benchmark("lion")
        o = EncodeOptions()
        before = cache_mod.fingerprint(fsm, o)
        monkeypatch.setattr(_version, "__version__", "999.0.0")
        assert cache_mod.fingerprint(fsm, o) != before

    def test_transition_order_matters(self):
        # KISS semantics are first-match: reordered rows are a
        # different machine and must not share a key
        fsm = benchmark("lion")
        import copy

        other = copy.deepcopy(fsm)
        other.transitions = list(reversed(other.transitions))
        o = EncodeOptions()
        assert cache_mod.fingerprint(fsm, o) != cache_mod.fingerprint(other, o)


# ----------------------------------------------------------------------
# tiers
# ----------------------------------------------------------------------
class TestMemoryLRU:
    def test_eviction_order(self):
        lru = MemoryLRU(max_entries=2)
        lru.put("a", {"v": 1})
        lru.put("b", {"v": 2})
        assert lru.get("a")  # refresh a
        lru.put("c", {"v": 3})
        assert lru.get("b") is None  # b was least recent
        assert lru.get("a") and lru.get("c")


class TestDiskStore:
    def test_round_trip_and_info(self, tmp_path):
        store = DiskStore(tmp_path)
        n = store.put("ab" + "0" * 62, {"x": 1})
        assert n > 0
        payload, nbytes = store.get("ab" + "0" * 62)
        assert payload == {"x": 1} and nbytes == n
        info = store.info()
        assert info["entries"] == 1 and info["bytes"] == n

    def test_missing_is_miss(self, tmp_path):
        assert DiskStore(tmp_path).get("ff" + "0" * 62) == (None, 0)

    def test_corrupt_blob_quarantined(self, tmp_path):
        store = DiskStore(tmp_path)
        key = "cd" + "0" * 62
        store.put(key, {"x": 1})
        store.path_for(key).write_bytes(b'{"x": 1')  # torn write
        assert store.get(key) == (None, 0)
        assert not store.path_for(key).exists()
        assert store.path_for(key).with_suffix(".corrupt").exists()

    def test_prune_oldest_first(self, tmp_path):
        store = DiskStore(tmp_path, max_bytes=0)
        keys = [f"{i:02x}" + "0" * 62 for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, {"pad": "y" * 100})
            os.utime(store.path_for(key), (i, i))  # distinct mtimes
        out = store.prune(max_bytes=store.path_for(keys[0]).stat().st_size)
        assert out["removed"] == 2
        assert not store.path_for(keys[0]).exists()
        assert store.path_for(keys[2]).exists()

    def test_clear(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("ab" + "0" * 62, {"x": 1})
        assert store.clear() == 1
        assert store.info()["entries"] == 0


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_round_trip(self):
        fsm = benchmark("dk27")
        r = encode_fsm(fsm, "ihybrid")
        payload = json.loads(json.dumps(encode_result(r)))  # via JSON
        back = decode_result(fsm, payload)
        assert back.state_encoding == r.state_encoding
        assert back.symbol_encoding == r.symbol_encoding
        assert back.area == r.area and back.cubes == r.cubes
        assert back.pla.cover.cubes == r.pla.cover.cubes
        assert back.pla.cover.fmt.parts == r.pla.cover.fmt.parts
        assert comparable(back) == comparable(r)

    def test_wrong_machine_rejected(self):
        r = encode_fsm(benchmark("lion"), "ihybrid")
        with pytest.raises(CacheDecodeError, match="machine"):
            decode_result(benchmark("lion9"), encode_result(r))

    @pytest.mark.parametrize("mutate", [
        lambda p: p.update(v=999),
        lambda p: p.update(state_encoding=None),
        lambda p: p.update(cubes="not-an-int"),
        lambda p: p.pop("algorithm"),
    ])
    def test_malformed_payload_rejected(self, mutate):
        fsm = benchmark("lion")
        payload = encode_result(encode_fsm(fsm, "ihybrid"))
        mutate(payload)
        with pytest.raises(CacheDecodeError):
            decode_result(fsm, payload)

    def test_decoded_objects_are_fresh(self):
        fsm = benchmark("lion")
        payload = encode_result(encode_fsm(fsm, "ihybrid"))
        a = decode_result(fsm, payload)
        b = decode_result(fsm, payload)
        assert a.pla is not b.pla and a.report is not b.report


# ----------------------------------------------------------------------
# policy resolution
# ----------------------------------------------------------------------
class TestPolicy:
    def test_off_policy(self):
        assert cache_mod.get_cache("off") is None

    def test_memory_policy_no_disk(self):
        c = cache_mod.get_cache("memory")
        assert c is not None and c.disk is None

    def test_auto_follows_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("NOVA_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("NOVA_CACHE", "off")
        assert cache_mod.get_cache("auto") is None
        monkeypatch.setenv("NOVA_CACHE", "memory")
        assert cache_mod.get_cache("auto").disk is None
        monkeypatch.delenv("NOVA_CACHE")
        assert cache_mod.get_cache("auto").disk is not None

    def test_shared_instance(self, cache_dir):
        assert cache_mod.get_cache("on") is cache_mod.get_cache("on")

    def test_max_bytes_env(self, cache_dir, monkeypatch):
        monkeypatch.setenv("NOVA_CACHE_MAX_BYTES", "12345")
        assert cache_mod.get_cache("on").disk.max_bytes == 12345


# ----------------------------------------------------------------------
# end-to-end transparency: warm == cold, bit for bit
# ----------------------------------------------------------------------
# all four chain algorithms; iexact restricted to machines whose
# constraints are known to embed quickly
WARM_MATRIX = (
    [("ihybrid", name) for name in benchmark_names("small")]
    + [("igreedy", name) for name in benchmark_names("small")]
    + [("onehot", name) for name in benchmark_names("small")]
    + [("iexact", name) for name in ("lion", "train4", "shiftreg", "tav")]
)


class TestTransparency:
    @pytest.mark.parametrize("algorithm,name", WARM_MATRIX,
                             ids=[f"{a}-{n}" for a, n in WARM_MATRIX])
    def test_cold_vs_warm_bit_identity(self, cache_dir, algorithm, name):
        fsm = benchmark(name)
        cold = encode_fsm(fsm, algorithm, cache="on")
        warm = encode_fsm(fsm, algorithm, cache="on")
        assert not cold.report.cache_hit
        assert warm.report.cache_hit
        assert comparable(cold) == comparable(warm)
        assert warm.pla.cover.cubes == cold.pla.cover.cubes
        assert warm.pla.on.cubes == cold.pla.on.cubes
        assert warm.pla.dc.cubes == cold.pla.dc.cubes
        # rehydrated, not re-timed (payload stores microsecond precision)
        assert warm.seconds == round(cold.seconds, 6)

    def test_disk_tier_survives_process_memory(self, cache_dir):
        fsm = benchmark("lion")
        cold = encode_fsm(fsm, "ihybrid", cache="on")
        cache_mod.reset()  # drop the memory tier, keep the blobs
        warm = encode_fsm(fsm, "ihybrid", cache="on")
        assert warm.report.cache_hit
        assert comparable(cold) == comparable(warm)

    def test_seeded_random_cached(self, cache_dir):
        fsm = benchmark("lion")
        cold = encode_fsm(fsm, "random", seed=3, cache="on")
        warm = encode_fsm(fsm, "random", seed=3, cache="on")
        assert warm.report.cache_hit
        assert warm.state_encoding == cold.state_encoding

    def test_unseeded_random_never_cached(self, cache_dir):
        fsm = benchmark("lion")
        encode_fsm(fsm, "random", cache="on")
        r = encode_fsm(fsm, "random", cache="on")
        assert not r.report.cache_hit

    def test_timeout_is_part_of_the_key(self, cache_dir):
        fsm = benchmark("lion")
        encode_fsm(fsm, "ihybrid", cache="on")  # fill (untimed)
        r = encode_fsm(fsm, "ihybrid", timeout=60.0, cache="on")
        assert not r.report.cache_hit  # different fingerprint

    def test_clean_timed_run_caches(self, cache_dir):
        # a generous timeout that never fires: the result is the pure
        # deterministic answer and is stored + served normally
        fsm = benchmark("lion")
        cold = encode_fsm(fsm, "ihybrid", timeout=600.0, cache="on")
        assert not cold.report.degraded
        warm = encode_fsm(fsm, "ihybrid", timeout=600.0, cache="on")
        assert warm.report.cache_hit
        assert comparable(warm) == comparable(cold)

    def test_degraded_timed_run_not_stored(self, cache_dir):
        # wall-clock shaped the outcome: never fill the cache with it
        fsm = benchmark("bbtas")
        r = encode_fsm(fsm, "ihybrid", timeout=0.0001, cache="on")
        assert r.report.degraded
        again = encode_fsm(fsm, "ihybrid", timeout=0.0001, cache="on")
        assert not again.report.cache_hit

    def test_armed_faults_bypass_cache(self, cache_dir):
        from repro.errors import EncodingInfeasible
        from repro.testing import faults

        fsm = benchmark("lion")
        encode_fsm(fsm, "ihybrid", cache="on")  # fill
        with faults.inject(faults.Fault("encode", EncodingInfeasible,
                                        match={"algorithm": "ihybrid"})):
            r = encode_fsm(fsm, "ihybrid", cache="on")
        assert not r.report.cache_hit
        assert r.report.degraded  # the fault really fired

    def test_version_bump_invalidates(self, cache_dir, monkeypatch):
        from repro import _version

        fsm = benchmark("lion")
        encode_fsm(fsm, "ihybrid", cache="on")
        monkeypatch.setattr(_version, "__version__", "999.0.0")
        r = encode_fsm(fsm, "ihybrid", cache="on")
        assert not r.report.cache_hit

    def test_corrupt_blob_recomputes_and_quarantines(self, cache_dir):
        fsm = benchmark("lion")
        opts = EncodeOptions(algorithm="ihybrid", cache="on")
        cold = encode_fsm(fsm, options=opts)
        key = cache_mod.fingerprint(fsm, opts)
        store = cache_mod.get_cache("on").disk
        store.path_for(key).write_bytes(b"\x00garbage not json")
        cache_mod.reset()  # force the disk read
        again = encode_fsm(fsm, options=opts)
        assert not again.report.cache_hit
        assert comparable_untimed(again) == comparable_untimed(cold)
        quarantined = store.path_for(key).with_suffix(".corrupt")
        assert quarantined.exists()
        # ... and the recompute re-published a valid blob
        cache_mod.reset()
        assert encode_fsm(fsm, options=opts).report.cache_hit

    def test_undecodable_payload_recomputes(self, cache_dir):
        # valid JSON object, wrong shape: decode fails, entry is
        # invalidated, the run falls back to a recompute
        fsm = benchmark("lion")
        opts = EncodeOptions(algorithm="ihybrid", cache="on")
        cold = encode_fsm(fsm, options=opts)
        key = cache_mod.fingerprint(fsm, opts)
        cache_mod.get_cache("on").disk.put(key, {"v": -1})
        cache_mod.reset()
        again = encode_fsm(fsm, options=opts)
        assert not again.report.cache_hit
        assert comparable_untimed(again) == comparable_untimed(cold)

    def test_perf_counters(self, cache_dir):
        fsm = benchmark("lion")
        with perf.collect() as stats:
            encode_fsm(fsm, "ihybrid", cache="on")
            encode_fsm(fsm, "ihybrid", cache="on")
        assert stats.cache_hit == 1
        assert stats.cache_miss == 1
        assert stats.cache_bytes > 0
        assert stats.as_dict()["cache_hit"] == 1

    def test_cache_info_clear(self, cache_dir):
        fsm = benchmark("lion")
        encode_fsm(fsm, "ihybrid", cache="on")
        info = cache_mod.cache_info()
        assert info["stores"] == 1 and info["entries"] == 1
        out = cache_mod.cache_clear()
        assert out["removed"] == 1
        assert cache_mod.cache_info()["entries"] == 0


# ----------------------------------------------------------------------
# concurrency: two independent processes racing on the same key
# ----------------------------------------------------------------------
_WORKER_SCRIPT = """
import sys
from repro.encoding.nova import encode_fsm
from repro.fsm.benchmarks import benchmark
r = encode_fsm(benchmark("train4"), "ihybrid", cache="on")
sys.stdout.write(f"{r.area}")
"""


class TestConcurrentWriters:
    def test_two_processes_fill_same_key(self, cache_dir, tmp_path):
        repo_root = os.path.dirname(os.path.dirname(__file__))
        env = dict(os.environ,
                   NOVA_CACHE_DIR=str(cache_dir),
                   PYTHONPATH=os.path.join(repo_root, "src") + os.pathsep
                              + os.environ.get("PYTHONPATH", ""))
        procs = [subprocess.Popen([sys.executable, "-c", _WORKER_SCRIPT],
                                  stdout=subprocess.PIPE, env=env,
                                  cwd=repo_root)
                 for _ in range(2)]
        outs = [p.communicate(timeout=120)[0] for p in procs]
        assert all(p.returncode == 0 for p in procs)
        assert outs[0] == outs[1] and outs[0]  # same area from both
        # exactly one valid blob for the key; no temp litter
        blobs = list(cache_dir.rglob("*.json"))
        assert len(blobs) == 1
        json.loads(blobs[0].read_bytes())
        assert not list(cache_dir.rglob("*.tmp"))
        # ... and this process now hits it
        warm = encode_fsm(benchmark("train4"), "ihybrid", cache="on")
        assert warm.report.cache_hit
        assert f"{warm.area}".encode() == outs[0]


# ----------------------------------------------------------------------
# batch-runner integration: a warm sweep short-circuits every task
# ----------------------------------------------------------------------
class TestBatchWarm:
    def test_warm_batch_hits_and_matches(self, cache_dir, tmp_path):
        from repro.runner import BatchRunner, read_results
        from repro.runner.batch import tasks_for_benchmarks

        def strip(rec):
            rec = dict(rec)
            for k in ("attempts", "elapsed", "perf", "cache_hit"):
                rec.pop(k, None)
            if rec.get("record") and rec["record"].get("report"):
                rec["record"] = dict(rec["record"])
                rec["record"]["report"] = {
                    k: v for k, v in rec["record"]["report"].items()
                    if k not in ("cache_hit", "stage_seconds")}
            return rec

        names = ("lion", "train4", "dk27")
        tasks = lambda: [t for t in tasks_for_benchmarks(
            "small", "ihybrid", {"cache": "on"}) if t.machine in names]
        cold = BatchRunner(tasks(), tmp_path / "cold", jobs=2).run()
        assert cold.ok
        warm = BatchRunner(tasks(), tmp_path / "warm", jobs=2).run()
        assert warm.ok
        cold_recs = {r["task"]: r for r in
                     read_results(tmp_path / "cold/results.jsonl").records}
        warm_recs = {r["task"]: r for r in
                     read_results(tmp_path / "warm/results.jsonl").records}
        assert set(cold_recs) == set(warm_recs) == {
            f"ihybrid:{n}" for n in names}
        for task_id in cold_recs:
            assert warm_recs[task_id]["cache_hit"] is True
            assert cold_recs[task_id]["cache_hit"] is False
            assert strip(cold_recs[task_id]) == strip(warm_recs[task_id])
            # even the run seconds are rehydrated bit-for-bit
            assert (warm_recs[task_id]["record"]["seconds"]
                    == cold_recs[task_id]["record"]["seconds"])
