"""Fault-injection suite: the pipeline must degrade, never crash.

Every test arms a deterministic fault at one pipeline stage and asserts
that ``encode_fsm`` still returns a valid — possibly degraded —
encoding whose :class:`RunReport` names the fallback taken, and that
the returned area is backed by an actually-verified PLA.
"""

import pytest

from repro.encoding.nova import ALGORITHMS, FALLBACK_CHAIN, encode_fsm
from repro.encoding.verify import verify_encoded_machine
from repro.errors import (
    BudgetExhausted,
    ParseError,
    VerificationError,
)
from repro.fsm.benchmarks import benchmark, benchmark_names
from repro.fsm.kiss import parse_kiss, to_kiss
from repro.testing import faults

SMALL = benchmark_names("small")


def assert_valid(result, fsm):
    """The invariants every returned result must satisfy."""
    assert result.state_encoding.n == fsm.num_states
    assert len(set(result.state_encoding.codes)) == fsm.num_states
    assert result.report is not None
    assert result.report.machine == fsm.name
    if result.pla is not None:
        # the area the caller sees must be backed by a correct PLA
        vr = verify_encoded_machine(fsm, result.state_encoding, result.pla,
                                    result.symbol_encoding,
                                    result.out_symbol_encoding)
        assert vr.ok, vr.mismatches[:3]


class TestStageFaults:
    """One fault per stage, on every small benchmark machine."""

    @pytest.mark.parametrize("name", SMALL)
    def test_encode_stage_budget_fault(self, name):
        fsm = benchmark(name)
        with faults.inject(faults.Fault("encode", BudgetExhausted,
                                        match={"algorithm": "ihybrid"})) as plan:
            r = encode_fsm(fsm, "ihybrid")
        assert plan.fired
        assert_valid(r, fsm)
        assert r.report.degraded
        assert r.report.fallbacks[0].algorithm == "ihybrid"
        assert r.algorithm in FALLBACK_CHAIN

    @pytest.mark.parametrize("name", SMALL)
    def test_mv_min_stage_fault_degrades_to_last_resort(self, name):
        fsm = benchmark(name)
        with faults.inject(faults.Fault("mv_min", BudgetExhausted)):
            r = encode_fsm(fsm, "ihybrid")
        assert_valid(r, fsm)
        assert r.algorithm == "onehot"
        assert r.report.verified is True
        assert any(e.algorithm == "ihybrid" for e in r.report.fallbacks)

    @pytest.mark.parametrize("name", SMALL)
    def test_minimize_stage_fault_reports_unminimized(self, name):
        fsm = benchmark(name)
        with faults.inject(faults.Fault("minimize", BudgetExhausted)):
            r = encode_fsm(fsm, "ihybrid")
        assert_valid(r, fsm)
        assert r.algorithm == "ihybrid"  # the encoding itself survived
        assert r.report.unminimized
        assert r.report.degraded
        assert r.cubes > 0

    @pytest.mark.parametrize("name", SMALL)
    def test_verify_stage_transient_fault_falls_back(self, name):
        fsm = benchmark(name)
        with faults.inject(faults.Fault("verify", VerificationError,
                                        times=1)) as plan:
            r = encode_fsm(fsm, "ihybrid")
        assert plan.fired
        assert_valid(r, fsm)
        assert r.report.degraded
        assert r.report.verified is True  # the fallback re-verified

    def test_persistent_verify_fault_still_returns(self):
        # even a verification gate that always fails must not crash the
        # pipeline; the report owns up to the unverified result
        fsm = benchmark("lion")
        with faults.inject(faults.Fault("verify", VerificationError)):
            r = encode_fsm(fsm, "ihybrid")
        assert r.state_encoding.n == fsm.num_states
        assert r.report.verified is False

    def test_fault_at_every_stage_simultaneously(self):
        fsm = benchmark("dk27")
        with faults.inject(
            faults.Fault("mv_min", BudgetExhausted),
            faults.Fault("encode", BudgetExhausted,
                         match={"algorithm": "ihybrid"}),
            faults.Fault("minimize", BudgetExhausted, times=1),
            faults.Fault("verify", VerificationError, times=1),
        ):
            r = encode_fsm(fsm, "ihybrid")
        assert r.state_encoding.n == fsm.num_states
        assert r.report.degraded

    def test_no_fallback_raises_the_structured_error(self):
        fsm = benchmark("lion")
        with faults.inject(faults.Fault("encode", BudgetExhausted,
                                        match={"algorithm": "ihybrid"})):
            with pytest.raises(BudgetExhausted):
                encode_fsm(fsm, "ihybrid", fallback=False)

    def test_injection_off_is_clean(self):
        r = encode_fsm(benchmark("lion"), "ihybrid")
        assert not r.report.degraded
        assert r.report.verified is True
        assert r.report.fallbacks == []


class TestParserFaults:
    def test_parse_trip_site(self):
        with faults.inject(faults.Fault("parse", ParseError)):
            with pytest.raises(ParseError):
                parse_kiss(".i 1\n.o 1\n0 a a 0\n")

    @pytest.mark.parametrize("mode", ["truncate_row", "bad_directive",
                                      "duplicate_row"])
    def test_corrupted_kiss_raises_parse_error(self, mode):
        text = to_kiss(benchmark("lion"))
        with pytest.raises(ParseError) as exc_info:
            parse_kiss(faults.corrupt_kiss(text, mode))
        assert exc_info.value.line is not None or mode == "bad_directive"


class TestDegradationUnderTinyBudget:
    """Satellite: under a tiny budget every algorithm either succeeds
    or falls back — and the reported area is still verified-correct."""

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_tiny_budget_never_crashes(self, alg):
        fsm = benchmark("bbtas")
        r = encode_fsm(fsm, alg, timeout=0.001, seed=0)
        assert_valid(r, fsm)
        if r.algorithm != alg:
            assert r.report.degraded
            assert r.report.fallbacks, "fallback must be on record"

    @pytest.mark.parametrize("alg", ALGORITHMS)
    def test_generous_budget_matches_unbudgeted(self, alg):
        fsm = benchmark("lion")
        a = encode_fsm(fsm, alg, seed=0)
        b = encode_fsm(fsm, alg, timeout=300.0, seed=0)
        assert a.algorithm == b.algorithm
        assert a.area == b.area


class TestRunReport:
    def test_stage_timings_cover_the_pipeline(self):
        r = encode_fsm(benchmark("lion"), "ihybrid")
        stages = r.report.stage_seconds
        for key in ("mv_min", "encode:ihybrid", "evaluate", "verify"):
            assert key in stages and stages[key] >= 0.0

    def test_summary_names_the_fallback(self):
        with faults.inject(faults.Fault("encode", BudgetExhausted,
                                        match={"algorithm": "iexact"})):
            r = encode_fsm(benchmark("lion"), "iexact")
        s = r.report.summary()
        assert "degraded" in s and "iexact" in s and r.algorithm in s

    def test_report_attached_even_on_clean_runs(self):
        r = encode_fsm(benchmark("train4"), "igreedy")
        assert r.report.requested_algorithm == "igreedy"
        assert r.report.algorithm == "igreedy"
        assert r.report.timeout is None


class TestFaultHarness:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            faults.Fault("no_such_stage")

    def test_times_bounds_firing(self):
        fault = faults.Fault("encode", BudgetExhausted, times=2)
        with faults.inject(fault) as plan:
            for _ in range(2):
                with pytest.raises(BudgetExhausted):
                    faults.trip("encode")
            faults.trip("encode")  # third trip: disarmed
        assert fault.fired == 2
        assert len(plan.fired) == 2

    def test_match_filters_context(self):
        with faults.inject(faults.Fault("encode", BudgetExhausted,
                                        match={"algorithm": "iexact"})):
            faults.trip("encode", algorithm="ihybrid")  # no match, no raise
            with pytest.raises(BudgetExhausted):
                faults.trip("encode", algorithm="iexact")

    def test_plans_nest_and_restore(self):
        with faults.inject(faults.Fault("parse", ParseError)):
            with faults.inject():
                faults.trip("parse")  # inner empty plan masks the outer
            with pytest.raises(ParseError):
                faults.trip("parse")
        faults.trip("parse")  # everything disarmed again

    def test_errors_propagate_out_of_reporoerror_scope(self):
        # a non-ReproError injected at a stage is NOT swallowed by the
        # fallback chain: only structured pipeline errors degrade
        with faults.inject(faults.Fault("encode", KeyboardInterrupt,
                                        match={"algorithm": "ihybrid"})):
            with pytest.raises(KeyboardInterrupt):
                encode_fsm(benchmark("lion"), "ihybrid")
