"""Tests for FSM -> multiple-valued cover translation."""

import pytest

from repro.fsm.benchmarks import benchmark
from repro.fsm.machine import FSM, Transition
from repro.fsm.symbolic_cover import build_symbolic_cover


def tiny(rows, **kw):
    defaults = dict(name="t", num_inputs=1, num_outputs=1,
                    states=["a", "b"], transitions=rows)
    defaults.update(kw)
    return FSM(**defaults)


class TestLayout:
    def test_variable_layout_binary_inputs(self):
        fsm = benchmark("lion")
        sc = build_symbolic_cover(fsm)
        # 2 binary inputs + state var + output var
        assert sc.fmt.parts == (2, 2, 4, 4 + 1)
        assert sc.state_var == 2
        assert sc.output_var == 3
        assert sc.symbol_var is None

    def test_variable_layout_symbolic_input(self):
        fsm = benchmark("dk27")
        sc = build_symbolic_cover(fsm)
        assert sc.fmt.parts == (2, 7, 7 + 2)
        assert sc.symbol_var == 0
        assert sc.state_var == 1

    def test_row_translation(self):
        rows = [Transition("1", "a", "b", "1"),
                Transition("0", "a", "a", "0")]
        sc = build_symbolic_cover(tiny(rows))
        assert len(sc.on) == 2
        cube = sc.on.cubes[0]
        assert sc.state_field(cube) == 0b01  # present state a
        assert sc.next_state_of_cube(cube) == 1  # next state b
        # output bit 1 asserted alongside the next state
        assert sc.fmt.field(cube, sc.output_var) >> 2 == 0b1

    def test_star_present_state(self):
        rows = [Transition("1", "*", "a", "1"),
                Transition("0", "a", "a", "0"),
                Transition("0", "b", "b", "0")]
        sc = build_symbolic_cover(tiny(rows))
        assert sc.state_field(sc.on.cubes[0]) == 0b11

    def test_unspecified_next_state_goes_to_dc(self):
        rows = [Transition("1", "a", "*", "1"),
                Transition("0", "a", "a", "0"),
                Transition("-", "b", "b", "0")]
        sc = build_symbolic_cover(tiny(rows))
        assert len(sc.dc) == 1
        # the dc cube covers all next-state columns
        dc_out = sc.fmt.field(sc.dc.cubes[0], sc.output_var)
        assert dc_out & 0b11 == 0b11

    def test_dash_output_goes_to_dc(self):
        rows = [Transition("1", "a", "b", "-"),
                Transition("0", "a", "a", "0"),
                Transition("-", "b", "b", "0")]
        sc = build_symbolic_cover(tiny(rows))
        assert len(sc.dc) == 1

    def test_off_set_construction(self):
        rows = [Transition("1", "a", "b", "1"),
                Transition("0", "a", "a", "0"),
                Transition("-", "b", "b", "0")]
        sc = build_symbolic_cover(tiny(rows))
        # row 1: off asserts "not next state a" and nothing else (out=1)
        off0 = sc.fmt.field(sc.off.cubes[0], sc.output_var)
        assert off0 & 0b01  # next state a is denied
        assert not off0 & 0b10

    def test_next_state_of_cube_errors_on_multiple(self):
        fsm = benchmark("lion")
        sc = build_symbolic_cover(fsm)
        bad = sc.fmt.with_field(sc.on.cubes[0], sc.output_var, 0b11)
        with pytest.raises(ValueError):
            sc.next_state_of_cube(bad)

    def test_on_off_disjoint_for_deterministic_machines(self):
        for name in ("lion", "bbtas", "ex2", "dk14"):
            sc = build_symbolic_cover(benchmark(name))
            for a in sc.on.cubes:
                for b in sc.off.cubes:
                    assert not sc.fmt.intersects(a, b), name
