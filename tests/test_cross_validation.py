"""Cross-validation between independent implementations in the library.

These tests pit different code paths that must agree against each
other — the strongest kind of check available without the original
tool chain.
"""

import random

import pytest

from repro.fsm.benchmarks import benchmark
from repro.fsm.symbolic_cover import build_symbolic_cover
from repro.logic.espresso import espresso
from repro.logic.exact import TooLarge, exact_minimize
from repro.logic.urp import complement, tautology
from repro.logic.verify import verify_minimization


class TestOracleAgreement:
    """Espresso's two EXPAND oracles must produce equivalent covers."""

    @pytest.mark.parametrize("name", ["lion", "bbtas", "train4", "dol"])
    def test_offset_vs_tautology_oracle(self, name):
        sc = build_symbolic_cover(benchmark(name))
        with_off = espresso(sc.on, sc.dc, off=sc.off)
        without = espresso(sc.on, sc.dc)
        # both must cover the on-set; the off-based result may be larger
        # as a function (it may absorb unspecified space), never smaller
        assert verify_minimization(with_off, sc.on, sc.dc, sc.off)
        assert verify_minimization(without, sc.on, sc.dc)
        up = with_off + sc.dc
        assert up.covers(sc.on)

    def test_mv_off_equals_complement_region(self):
        """For a fully specified machine, on+dc+off covers everything."""
        sc = build_symbolic_cover(benchmark("shiftreg"))
        total = sc.on + sc.dc + sc.off
        # the symbolic cover leaves only genuinely unspecified points out;
        # shiftreg is fully specified so the function space is covered for
        # every reachable input column
        comp = complement(total)
        for cube in comp.cubes:
            # anything uncovered must involve no asserted output at all
            assert sc.fmt.field(cube, sc.output_var) != 0


class TestExactVsHeuristicOnMachines:
    @pytest.mark.parametrize("name", ["lion", "train4"])
    def test_exact_bound_on_encoded_cover(self, name):
        """Exact minimization lower-bounds the heuristic on tiny PLAs."""
        from repro.encoding.base import Encoding
        from repro.eval.instantiate import instantiate

        fsm = benchmark(name)
        enc = Encoding(2, [0, 1, 2, 3])
        on, dc, off, _, _, _ = instantiate(fsm, enc)
        heur = espresso(on, dc, off=off if len(off) else None)
        try:
            exact = exact_minimize(on, dc)
        except TooLarge:
            pytest.skip("too large for the exact solver")
        assert len(exact) <= len(heur)
        assert verify_minimization(exact, on, dc)


class TestTautologyVsComplement:
    def test_taut_iff_empty_complement(self):
        rng = random.Random(42)
        from repro.logic.cube import Format
        from tests.conftest import random_cover

        for _ in range(30):
            fmt = Format([2, 2, 3])
            f = random_cover(fmt, rng.randrange(0, 7), rng)
            assert tautology(f) == (len(complement(f)) == 0)
