"""NV001 fixture: every field fingerprinted or explicitly whitelisted."""

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional, Tuple

NON_FINGERPRINT_FIELDS = frozenset({"cache"})


@dataclass(frozen=True)
class EncodeOptions:
    algorithm: str = "ihybrid"
    seed: Optional[int] = None
    timeout: Optional[float] = None
    cache: str = "auto"

    def fingerprint_fields(self) -> Tuple[Tuple[str, Any], ...]:
        return tuple(
            (f.name, getattr(self, f.name))
            for f in dataclasses.fields(self)
            if f.name not in NON_FINGERPRINT_FIELDS
        )
