"""NV005 fixture: randomness flows through an explicitly seeded object."""

import random


def random_code(n, seed):
    rng = random.Random(seed)
    codes = list(range(n))
    rng.shuffle(codes)
    return codes
