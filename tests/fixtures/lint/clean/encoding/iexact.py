"""NV002 fixture: the same loop, metered by the ambient budget."""

from repro.perf.budget import tick


def search(candidates, expand_face):
    best = None
    for face in candidates:
        tick()
        grown = expand_face(face)
        if best is None or grown < best:
            best = grown
    return best
