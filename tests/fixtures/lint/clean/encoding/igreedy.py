"""NV004 fixture: errors stay inside the ReproError taxonomy."""

from repro.errors import ConstraintError, EncodingInfeasible


def igreedy_code(cs, nbits):
    if nbits < 1:
        raise EncodingInfeasible("nbits must be positive")
    return _solve(cs, nbits)


def _solve(cs, nbits):
    try:
        return cs.solve(nbits)
    except Exception as exc:
        raise ConstraintError(str(exc)) from exc
