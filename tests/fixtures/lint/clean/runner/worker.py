"""NV006 fixture: an import-clean worker module."""

import os

DEFAULT_TIMEOUT = 30.0
_KINDS = frozenset({"encode", "table"})


def child_main(conn):
    return os.getpid()


if __name__ == "__main__":
    child_main(None)
