"""Fixture: a claim loop that honours the lease/fencing protocol."""

from repro.runner.journal import Journal


def claim_all(leases, tasks):
    while True:
        for task_id in tasks:
            lease = leases.acquire(task_id)
            if lease is None:
                continue  # another claimant holds it
            run_task(task_id, lease)
            renewed = leases.heartbeat(lease)
            if renewed is None:
                continue  # stolen out from under us; let it go


def is_stale(epoch, claimant, other_epoch, other_claimant):
    # precedence is always the full fencing tuple
    return (epoch, claimant) < (other_epoch, other_claimant)


def journal_final(journal: Journal, task_id, lease):
    entry = {"task": task_id, "status": "ok"}
    entry["epoch"] = lease.epoch
    entry["claimant"] = lease.claimant
    journal.append(entry)  # rows reach disk fsync'd, fully stamped


def run_task(task_id, lease):
    pass
