"""Fixture: a handler that keeps blocking work off the loop."""

import asyncio
import time


async def handle(reader, writer):
    # referenced, not called: to_thread runs it off-loop, so the
    # time.sleep inside is not an event-loop hazard
    data = await asyncio.to_thread(render_page)
    writer.write(data)
    await asyncio.wait_for(writer.drain(), timeout=5.0)


def render_page():
    time.sleep(0.5)
    return b"ok"
