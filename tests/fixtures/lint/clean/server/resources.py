"""Fixture: resource lifetimes that dominate every exit path."""


class SlotPool:
    def __init__(self, sem):
        self._sem = sem
        self._running = 0

    def admit(self, record):
        self._sem.acquire()
        try:  # entered immediately: no code between acquire and try
            record()
            self._running += 1
            try:
                return self._running
            finally:
                self._running -= 1
        finally:
            self._sem.release()


def read_rows(path):
    with open(path) as fh:
        return fh.read().splitlines()
