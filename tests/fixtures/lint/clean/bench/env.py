"""Fixture: benchmark helper reading knobs through the config."""

from repro import config


def active_slice():
    value = config.bench_set()
    return value if value is not None else "small"


def cache_policy():
    return config.cache_policy()
