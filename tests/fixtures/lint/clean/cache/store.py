"""NV003 fixture: atomic publish inside the blessed DiskStore.put."""

import json
import os


class DiskStore:
    def put(self, path, payload):
        data = json.dumps(payload)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return len(data)
