"""NV004 fixture: a stage module leaking non-taxonomy errors."""


def igreedy_code(cs, nbits):
    if nbits < 1:
        raise ValueError("nbits must be positive")
    try:
        return _solve(cs, nbits)
    except:
        return None


def _solve(cs, nbits):
    try:
        return cs.solve(nbits)
    except Exception:
        return None
