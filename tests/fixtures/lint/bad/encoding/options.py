"""NV001 fixture: the fingerprint silently drops a result-affecting field."""

import dataclasses
from dataclasses import dataclass
from typing import Any, Optional, Tuple

NON_FINGERPRINT_FIELDS = frozenset({"cache"})


@dataclass(frozen=True)
class EncodeOptions:
    algorithm: str = "ihybrid"
    seed: Optional[int] = None
    timeout: Optional[float] = None
    cache: str = "auto"

    def fingerprint_fields(self) -> Tuple[Tuple[str, Any], ...]:
        # "timeout" is excluded here but never whitelisted: a timeout
        # change would serve stale cache entries.
        return tuple(
            (f.name, getattr(self, f.name))
            for f in dataclasses.fields(self)
            if f.name not in {"cache", "timeout"}
        )
