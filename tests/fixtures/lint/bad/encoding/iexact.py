"""NV002 fixture: a search loop that never polls the budget."""


def search(candidates, expand_face):
    best = None
    for face in candidates:
        grown = expand_face(face)
        if best is None or grown < best:
            best = grown
    return best
