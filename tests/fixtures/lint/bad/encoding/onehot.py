"""NV005 fixture: a baseline seeding itself from ambient state."""

import random
import time


def random_code(n):
    rng = random.Random()
    codes = list(range(n))
    random.shuffle(codes)
    return codes, rng, time.time()
