"""Fixture: resource acquisitions with leak windows on the error path."""


class SlotPool:
    def __init__(self, sem):
        self._sem = sem
        self._running = 0

    def admit(self, record):
        self._sem.acquire()
        record()  # leak window: a raise here loses the slot forever
        self._running += 1
        try:
            return self._running
        finally:
            self._running -= 1
            self._sem.release()


def read_rows(path):
    fh = open(path)  # no with, no finally: an exception leaks the handle
    rows = fh.read().splitlines()
    fh.close()
    return rows
