"""Fixture: a coroutine handler that parks work on the event loop."""

import time


async def handle(reader, writer):
    data = render_page()  # sync helper called ON the loop
    writer.write(data)
    await writer.drain()  # unbounded: a dead peer wedges this handler
    time.sleep(0.1)  # blocking call inside a coroutine


def render_page():
    time.sleep(0.5)  # reachable from handle() -> runs on the loop
    return b"ok"
