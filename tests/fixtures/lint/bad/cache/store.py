"""NV003 fixture: a blob published with a raw truncating write."""

import json


def dump_blob(path, payload):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
