"""Fixture: a work-stealing claim loop that breaks every NV007 invariant."""

from repro.runner.journal import Journal

RESULTS_NAME = "results.claimant.jsonl"


def claim_all(leases, tasks):
    for task_id in tasks:
        lease = leases.acquire(task_id)  # unguarded: None means "not ours"
        run_task(task_id, lease)  # ...and the loop never heartbeats


def is_stale(epoch, other_epoch):
    return epoch < other_epoch  # bare epoch: loses the claimant tie-break


def journal_final(journal: Journal, task_id, lease):
    entry = {"task": task_id, "status": "ok"}
    entry["epoch"] = lease.epoch  # torn stamp: claimant never written
    journal.append(entry)


def publish_shard(run_dir, rows):
    with open(run_dir / RESULTS_NAME, "a") as fh:  # raw shard write
        for row in rows:
            fh.write(row + "\n")


def run_task(task_id, lease):
    pass
