"""NV006 fixture: a worker module with import-time side effects."""

import os

CONFIG = os.environ.copy()

print("worker module loaded")


def child_main(conn):
    return CONFIG
