"""Fixture: benchmark helper reading its knobs straight off the env."""

import os

SLICE_VAR = "NOVA_BENCH_SET"


def active_slice():
    # the constant resolves through the dataflow layer: still a finding
    return os.environ.get(SLICE_VAR, "small")


def cache_policy():
    return os.getenv("NOVA_CACHE", "on")
