"""The parallel batch runner: isolation, hard kills, retry, resume.

The process-spawning tests stay on tiny machines so the whole module
runs in tens of seconds; the kill-and-resume integration test drives a
real child Python process and SIGKILLs it mid-run.
"""

import json
import os
from pathlib import Path
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.fsm.benchmarks import SMALL
from repro.runner import BatchRunner, BatchTask, read_manifest, read_results
from repro.runner.batch import tasks_for_benchmarks, tasks_for_kiss_dir
from repro.testing.faults import Fault

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    return env


class TestTaskModel:
    def test_task_ids_are_stable_and_unique(self):
        a = BatchTask(machine="lion", algorithm="ihybrid")
        b = BatchTask(machine="lion", algorithm="igreedy")
        t = BatchTask(machine="lion", kind="table", table=3)
        assert a.task_id == "ihybrid:lion"
        assert len({a.task_id, b.task_id, t.task_id}) == 3

    def test_spec_round_trip(self):
        t = BatchTask(machine="dk27", algorithm="iexact",
                      options={"effort": "low"},
                      faults=[Fault("encode", action="sleep",
                                    seconds=1.0).to_dict()])
        t2 = BatchTask.from_spec(json.loads(json.dumps(t.spec())))
        assert t2 == t

    def test_ladder_follows_degradation_chain(self):
        assert BatchTask(machine="x", algorithm="iexact").ladder() == \
            ("iexact", "ihybrid", "igreedy", "onehot")
        # table tasks have no ladder: a retry repeats the same row
        assert BatchTask(machine="x", kind="table", table=6).ladder() == \
            ("ihybrid",)

    def test_duplicate_ids_rejected(self, tmp_path):
        tasks = [BatchTask(machine="lion"), BatchTask(machine="lion")]
        with pytest.raises(ValueError, match="duplicate"):
            BatchRunner(tasks, tmp_path)

    def test_builders(self, tmp_path):
        tasks = tasks_for_benchmarks("small")
        assert {t.machine for t in tasks} == set(SMALL)
        assert all(t.options.get("effort") for t in tasks)
        (tmp_path / "m.kiss").write_text(
            ".i 1\n.o 1\n.s 2\n0 a a 0\n1 a b 1\n0 b b 1\n1 b a 0\n")
        tasks = tasks_for_kiss_dir(tmp_path)
        assert len(tasks) == 1 and tasks[0].machine.endswith("m.kiss")
        with pytest.raises(FileNotFoundError):
            tasks_for_kiss_dir(tmp_path / "empty")


class TestBatchRunner:
    def test_small_batch_parallel_ok(self, tmp_path):
        tasks = [BatchTask(machine=m) for m in ("lion", "train4", "dk27")]
        report = BatchRunner(tasks, tmp_path / "run", jobs=2,
                             task_timeout=120).run()
        assert report.ok and report.completed == 3
        assert report.status_counts["ok"] == 3
        assert report.verified == 3
        entries = read_results(tmp_path / "run" / "results.jsonl").records
        assert {e["task"] for e in entries} == {t.task_id for t in tasks}
        # worker perf counters came back across the process boundary
        assert report.perf.tautology_calls > 0
        assert read_manifest(tmp_path / "run")["status"] == "complete"

    def test_results_match_in_process_encode(self, tmp_path):
        """Worker isolation must not change the encoding itself."""
        from repro.encoding.nova import encode_fsm
        from repro.fsm.benchmarks import benchmark

        report = BatchRunner([BatchTask(machine="dk27")],
                             tmp_path / "run", jobs=1).run()
        rec = report.records()[0]
        direct = encode_fsm(benchmark("dk27"), "ihybrid", effort="full")
        assert rec["state_encoding"]["codes"] == \
            list(direct.state_encoding.codes)
        assert (rec["area"], rec["cubes"]) == (direct.area, direct.cubes)

    def test_hard_timeout_kills_and_retries_down_ladder(self, tmp_path):
        """A hang the cooperative Budget cannot interrupt: the planted
        sleep never checks any deadline.  The parent must SIGKILL the
        worker and retry at the next ladder rung."""
        hang = Fault("encode", action="sleep", seconds=60,
                     match={"algorithm": "iexact"}).to_dict()
        task = BatchTask(machine="lion", algorithm="iexact", faults=[hang])
        t0 = time.monotonic()
        report = BatchRunner([task], tmp_path / "run", jobs=1,
                             task_timeout=1.5, retries=2).run()
        assert time.monotonic() - t0 < 30  # killed, not waited out
        assert report.ok
        entry = report.entry_for(task.task_id)
        assert entry["status"] == "ok"
        first, second = entry["attempts"][:2]
        assert first["algorithm"] == "iexact"
        assert first["status"] == "killed"
        assert first["killed"] == "timeout"
        assert second["algorithm"] == "ihybrid"
        assert second["status"] == "ok"
        assert report.kill_reasons["timeout"] == 1

    def test_worker_crash_is_retried(self, tmp_path):
        """os._exit models an OOM kill: no exception, no result, just a
        dead process; the parent classifies it and retries."""
        crash = Fault("encode", action="exit", exit_code=9,
                      match={"algorithm": "ihybrid"}).to_dict()
        task = BatchTask(machine="dk27", algorithm="ihybrid", faults=[crash])
        report = BatchRunner([task], tmp_path / "run", jobs=1,
                             retries=1).run()
        entry = report.entry_for(task.task_id)
        assert entry["status"] == "ok"
        assert entry["attempts"][0]["status"] == "crashed"
        assert entry["attempts"][0]["exitcode"] == 9
        assert entry["attempts"][1]["algorithm"] == "igreedy"
        assert report.crashes == 1

    def test_taxonomy_error_is_transported_and_retried(self, tmp_path):
        # fault state is per-attempt (each worker arms a fresh plan), so
        # a transient fault is expressed by matching the first rung
        boom = Fault("encode", exc=ValueError,
                     match={"algorithm": "ihybrid"}).to_dict()
        task = BatchTask(machine="lion", faults=[boom])
        report = BatchRunner([task], tmp_path / "run", retries=1).run()
        entry = report.entry_for(task.task_id)
        assert entry["status"] == "ok"
        assert entry["attempts"][0]["status"] == "error"
        assert entry["attempts"][0]["error"]["type"] == "ValueError"

    def test_retries_exhausted_is_an_explicit_failure(self, tmp_path):
        crash = Fault("encode", action="exit").to_dict()  # every attempt
        task = BatchTask(machine="lion", faults=[crash])
        report = BatchRunner([task], tmp_path / "run", retries=1).run()
        assert not report.ok
        entry = report.entry_for(task.task_id)
        assert entry["status"] == "failed"
        assert len(entry["attempts"]) == 2
        assert read_manifest(tmp_path / "run")["status"] == "failed"

    def test_fail_fast_stops_the_batch(self, tmp_path):
        crash = Fault("encode", action="exit").to_dict()
        tasks = [BatchTask(machine="lion", faults=[crash])] + \
            [BatchTask(machine=m) for m in SMALL[1:7]]
        report = BatchRunner(tasks, tmp_path / "run", jobs=1, retries=0,
                             fail_fast=True).run()
        assert report.interrupted and not report.ok
        assert report.completed < len(tasks)
        assert read_manifest(tmp_path / "run")["status"] == "failed"

    def test_resume_skips_journaled_tasks(self, tmp_path):
        tasks = [BatchTask(machine=m) for m in ("lion", "dk27")]
        run_dir = tmp_path / "run"
        BatchRunner(tasks, run_dir, jobs=1).run()
        before = (run_dir / "results.jsonl").read_text()
        report = BatchRunner.resume(run_dir).run()
        assert report.ok and report.completed == 2
        assert (run_dir / "results.jsonl").read_text() == before

    def test_live_run_dir_is_refused_without_force(self, tmp_path):
        """A second parent journaling into a live run dir would write
        duplicate rows; the manifest pid guard refuses it."""
        from repro.runner import RunDirBusy
        from repro.runner.journal import write_manifest

        run_dir = tmp_path / "run"
        run_dir.mkdir()
        sleeper = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            write_manifest(run_dir, {"status": "running",
                                     "pid": sleeper.pid, "tasks": []})
            with pytest.raises(RunDirBusy, match=str(sleeper.pid)):
                BatchRunner([BatchTask(machine="lion")], run_dir,
                            jobs=1).run()
            # --force overrides a false positive (e.g. pid reuse)
            report = BatchRunner([BatchTask(machine="lion")], run_dir,
                                 jobs=1, force=True).run()
            assert report.ok
        finally:
            sleeper.kill()
            sleeper.wait()

    def test_dead_pid_in_manifest_does_not_block_resume(self, tmp_path):
        from repro.runner.journal import write_manifest

        run_dir = tmp_path / "run"
        run_dir.mkdir()
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        write_manifest(run_dir, {"status": "running", "pid": dead.pid,
                                 "tasks": []})
        report = BatchRunner([BatchTask(machine="lion")], run_dir,
                             jobs=1).run()
        assert report.ok

    def test_shuffle_does_not_change_the_result_set(self, tmp_path):
        names = ("lion", "train4", "dk27")
        plain = BatchRunner([BatchTask(machine=m) for m in names],
                            tmp_path / "a", jobs=2).run()
        shuffled = BatchRunner([BatchTask(machine=m) for m in names],
                               tmp_path / "b", jobs=2,
                               shuffle_seed=7).run()
        key = lambda r: r["machine"]
        a = sorted((r["machine"], r["state_encoding"])
                   for r in plain.records())
        b = sorted((r["machine"], r["state_encoding"])
                   for r in shuffled.records())
        assert a == b


DRIVER = textwrap.dedent("""
    import sys
    from repro.runner import BatchRunner, BatchTask
    from repro.testing.faults import Fault

    def main():
        run_dir, names = sys.argv[1], sys.argv[2].split(",")
        # pace each task so the parent can be killed mid-run: the sleep
        # fires inside the worker's encode stage and then continues
        pace = Fault("encode", action="sleep", seconds=0.3).to_dict()
        tasks = [BatchTask(machine=n, faults=[pace]) for n in names]
        BatchRunner(tasks, run_dir, jobs=2, task_timeout=120,
                    retries=1).run()

    if __name__ == "__main__":
        main()
""")


class TestKillAndResume:
    def test_sigkill_parent_then_resume_completes_identically(self, tmp_path):
        """The acceptance scenario: SIGKILL the parent mid-batch, resume,
        and the union of journaled results must equal an uninterrupted
        serial run — same task ids, no duplicates, bit-identical
        encodings."""
        names = SMALL[:10]
        driver = tmp_path / "driver.py"
        driver.write_text(DRIVER)
        run_dir = tmp_path / "run"
        proc = subprocess.Popen(
            [sys.executable, str(driver), str(run_dir), ",".join(names)],
            env=_env(), cwd=str(tmp_path))
        journal = run_dir / "results.jsonl"
        deadline = time.monotonic() + 120
        try:
            while time.monotonic() < deadline:
                if journal.exists() and \
                        len(journal.read_text().splitlines()) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("first journal lines never appeared")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        interrupted = read_results(journal)
        assert 0 < len(interrupted.records) < len(names)

        resumed = BatchRunner.resume(run_dir).run()
        assert resumed.ok
        final = read_results(journal)
        ids = final.task_ids
        assert len(ids) == len(set(ids)) == len(names)  # complete, no dupes
        # the pre-kill rows survived untouched
        assert final.records[:len(interrupted.records)] == \
            interrupted.records

        # identical to an uninterrupted serial baseline, bit for bit
        baseline = BatchRunner(
            [BatchTask(machine=n) for n in names],
            tmp_path / "baseline", jobs=1, task_timeout=120).run()
        pick = lambda recs: sorted(
            (r["machine"], r["algorithm"], json.dumps(r["state_encoding"]),
             json.dumps(r["symbol_encoding"]), r["cubes"], r["area"])
            for r in recs)
        assert pick(resumed.records()) == pick(baseline.records())


class TestBatchCLI:
    def test_cli_sweep_produces_parseable_journal(self, tmp_path):
        """The CI acceptance check: a small --jobs 2 sweep exits 0 and
        every journal line parses."""
        run_dir = tmp_path / "run"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "batch", "--set", "small",
             "--jobs", "2", "--task-timeout", "120", "--out", str(run_dir)],
            env=_env(), cwd=str(tmp_path), capture_output=True, text=True,
            timeout=600)
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr
        lines = (run_dir / "results.jsonl").read_text().splitlines()
        assert len(lines) == len(SMALL)
        for line in lines:
            entry = json.loads(line)
            assert entry["status"] in ("ok", "degraded")
        assert "batch:" in proc.stdout
        assert read_manifest(run_dir)["status"] == "complete"

    def test_cli_join_then_status(self, tmp_path):
        """--join on a fresh dir creates the run, claims through leases,
        and journals into a claimant shard; 'batch status' then renders
        the merged durable state and exits 0 for a complete clean run."""
        (tmp_path / "m.kiss").write_text(
            ".i 1\n.o 1\n.s 2\n0 a a 0\n1 a b 1\n0 b b 1\n1 b a 0\n")
        run_dir = tmp_path / "run"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "batch", str(tmp_path),
             "--join", str(run_dir), "--claimant", "w1",
             "--lease-ttl", "30"],
            env=_env(), cwd=str(tmp_path), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert (run_dir / "results.w1.jsonl").exists()
        assert read_manifest(run_dir)["status"] == "complete"
        assert read_manifest(run_dir)["config"]["lease_ttl"] == 30.0

        status = subprocess.run(
            [sys.executable, "-m", "repro.cli", "batch", "status",
             str(run_dir), "--json"],
            env=_env(), capture_output=True, text=True, timeout=120)
        assert status.returncode == 0, status.stderr
        view = json.loads(status.stdout)
        assert view["planned"] == view["completed"] == 1
        assert view["remaining"] == [] and view["failed"] == 0
        assert view["shards"] == ["results.w1.jsonl"]
        assert view["rejected"] == []

    def test_cli_status_without_run_dir_is_a_usage_error(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "batch", "status"],
            env=_env(), capture_output=True, text=True, timeout=120)
        assert proc.returncode == 2
        assert "RUN_DIR" in proc.stderr

    def test_cli_resume_of_fresh_dir_fails_cleanly(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "batch", "--resume",
             str(tmp_path / "nope")],
            env=_env(), capture_output=True, text=True, timeout=120)
        assert proc.returncode == 2
        assert "manifest.json" in proc.stderr
