"""Tests for the perf counter/timer layer and the unified Budget."""

import time

import pytest

from repro import perf
from repro.logic import cover as cover_mod
from repro.logic.cover import from_strings
from repro.logic.cube import Format
from repro.logic.espresso import espresso
from repro.logic.urp import complement, tautology
from repro.perf.budget import Budget, BudgetExceeded


class TestPerfStats:
    def test_disabled_by_default(self):
        assert perf.STATS is None or perf.enabled()

    def test_collect_installs_and_restores(self):
        prev = perf.STATS
        with perf.collect() as stats:
            assert perf.STATS is stats
            assert perf.enabled()
        assert perf.STATS is prev

    def test_collect_nesting(self):
        with perf.collect() as outer:
            fmt = Format([2, 2])
            tautology(from_strings(fmt, ["- -"]))
            with perf.collect() as inner:
                tautology(from_strings(fmt, ["- -"]))
            tautology(from_strings(fmt, ["- -"]))
        assert outer.tautology_calls == 2
        assert inner.tautology_calls == 1

    def test_counters_move(self):
        fmt = Format([2, 2])
        f = from_strings(fmt, ["0 -", "1 0"])
        with perf.collect() as stats:
            tautology(f)
            complement(f)
        assert stats.tautology_calls == 1
        assert stats.complement_calls == 1
        assert stats.urp_recursions >= 2
        assert stats.urp_max_depth >= 1

    def test_timer_accumulates(self):
        with perf.collect() as stats:
            with perf.timer("block"):
                time.sleep(0.01)
            with perf.timer("block"):
                pass
        assert stats.timers["block"] >= 0.01

    def test_timer_noop_when_disabled(self):
        prev = perf.STATS
        try:
            perf.STATS = None
            with perf.timer("ignored"):
                pass
        finally:
            perf.STATS = prev

    def test_as_dict_and_summary(self):
        with perf.collect() as stats:
            stats.tautology_calls = 3
            stats.add_time("reduce", 0.5)
        d = stats.as_dict()
        assert d["tautology_calls"] == 3
        assert d["time_reduce"] == 0.5
        assert "tautology_calls" in stats.summary()

    def test_snapshot(self):
        assert perf.snapshot() is None or isinstance(perf.snapshot(), dict)
        with perf.collect():
            assert isinstance(perf.snapshot(), dict)

    def test_espresso_pass_counters(self):
        fmt = Format([2, 2, 2])
        on = from_strings(fmt, ["0 0 -", "0 1 -", "1 1 -"])
        with perf.collect() as stats:
            espresso(on)
        assert stats.espresso_passes >= 1
        assert stats.expand_cubes >= 1
        assert "espresso" in stats.timers


class TestContainsMemo:
    def setup_method(self):
        cover_mod.clear_contains_memo()

    def teardown_method(self):
        cover_mod.clear_contains_memo()

    def test_memo_hit_counted(self):
        fmt = Format([2, 2])
        f = from_strings(fmt, ["0 -", "1 -"])
        cube = fmt.cube_from_str("- -")
        with perf.collect() as stats:
            assert f.contains_cube(cube)
            assert f.contains_cube(cube)
        assert stats.contains_calls == 2
        assert stats.contains_memo_hits == 1

    def test_memo_keyed_on_cubes(self):
        fmt = Format([2, 2])
        f = from_strings(fmt, ["0 -", "1 -"])
        cube = fmt.cube_from_str("- -")
        assert f.contains_cube(cube)
        f.cubes = f.cubes[:1]  # mutate: the memo key changes with cubes
        assert not f.contains_cube(cube)

    def test_memo_capacity_reset(self):
        old = cover_mod._CONTAINS_MEMO_MAX
        cover_mod._CONTAINS_MEMO_MAX = 2
        try:
            fmt = Format([2, 2])
            f = from_strings(fmt, ["0 -", "1 -"])
            for s in ("- -", "0 -", "1 -", "- 0"):
                f.contains_cube(fmt.cube_from_str(s))
            assert len(cover_mod._contains_memo) <= 2
        finally:
            cover_mod._CONTAINS_MEMO_MAX = old

    def test_kill_switch(self):
        old = cover_mod.CONTAINS_MEMO
        cover_mod.CONTAINS_MEMO = False
        try:
            fmt = Format([2, 2])
            f = from_strings(fmt, ["0 -", "1 -"])
            cube = fmt.cube_from_str("- -")
            with perf.collect() as stats:
                f.contains_cube(cube)
                f.contains_cube(cube)
            assert stats.contains_memo_hits == 0
        finally:
            cover_mod.CONTAINS_MEMO = old


class TestBudget:
    def test_unbounded_never_raises(self):
        b = Budget()
        b.charge(10_000)
        assert not b.expired()

    def test_work_limit(self):
        b = Budget(work=5)
        b.charge(5)
        with pytest.raises(BudgetExceeded):
            b.charge()
        assert b.expired()

    def test_deadline(self):
        b = Budget(seconds=0.0)
        assert b.expired()
        with pytest.raises(BudgetExceeded):
            # polled every 256 charges, so charge enough to hit a poll
            for _ in range(512):
                b.charge()

    def test_sub_shares_deadline_not_work(self):
        parent = Budget(seconds=100.0, work=1)
        child = parent.sub(work=10)
        assert child.deadline == parent.deadline
        child.charge(10)  # child has its own meter
        assert parent.work == 0
        with pytest.raises(BudgetExceeded):
            child.charge()

    def test_remaining_seconds(self):
        assert Budget().remaining_seconds() is None
        b = Budget(seconds=60.0)
        r = b.remaining_seconds()
        assert r is not None and 0 < r <= 60.0
