"""Tests for iohybrid_code / iovariant_code / out_encoder."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.constraints.input_constraints import ConstraintSet
from repro.constraints.output_constraints import (
    OutputCluster,
    OutputConstraints,
    edges_satisfied,
)
from repro.encoding.base import constraint_satisfied
from repro.encoding.iohybrid import IoStats, io_semiexact_code, iohybrid_code, \
    iovariant_code
from repro.encoding.out_encoder import out_encoder


def _codes_dict(enc):
    return {i: enc.codes[i] for i in range(enc.n)}


class TestOutEncoder:
    def test_simple_chain(self):
        # 2 covers 1, 1 covers 0
        enc = out_encoder(3, [(2, 1), (1, 0)])
        c = enc.codes
        assert c[1] & ~c[2] == 0 and c[1] != c[2]
        assert c[0] & ~c[1] == 0 and c[0] != c[1]

    def test_paper_example_6_2_2_1_constraints(self):
        """All states cover state 1 (index 0); 6>2, 7>3, 8>4, 6/7/8>5."""
        edges = [(u, 0) for u in range(1, 8)]
        edges += [(5, 1), (6, 2), (7, 3)]
        edges += [(5, 4), (6, 4), (7, 4)]
        enc = out_encoder(8, edges)
        assert edges_satisfied(_codes_dict(enc), edges)

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            out_encoder(2, [(0, 1), (1, 0)])

    def test_no_edges(self):
        enc = out_encoder(4, [])
        assert len(set(enc.codes)) == 4


class TestOutputConstraints:
    def test_acyclicity_check(self):
        good = OutputConstraints(3, [OutputCluster(0, [(1, 0), (2, 0)], 1)])
        assert good.check_acyclic()
        bad = OutputConstraints(
            2, [OutputCluster(0, [(1, 0)], 1), OutputCluster(1, [(0, 1)], 1)]
        )
        assert not bad.check_acyclic()

    def test_by_weight_order(self):
        oc = OutputConstraints(3, [
            OutputCluster(0, [(1, 0)], 1),
            OutputCluster(1, [(2, 1)], 5),
        ])
        assert [c.next_state for c in oc.by_weight()] == [1, 0]

    def test_edges_satisfied_requires_strictness(self):
        assert not edges_satisfied({0: 3, 1: 3}, [(0, 1)])
        assert edges_satisfied({0: 3, 1: 1}, [(0, 1)])
        assert not edges_satisfied({0: 1, 1: 2}, [(0, 1)])


class TestIoSemiexact:
    def test_edges_enforced(self):
        edges = [(1, 0)]  # code(1) covers code(0)
        enc = io_semiexact_code([], edges, 4, 2)
        assert enc is not None
        assert edges_satisfied(_codes_dict(enc), edges)

    def test_infeasible_edge_combo_returns_none_or_valid(self):
        # a covering cycle can never be satisfied
        edges = [(0, 1), (1, 0)]
        enc = io_semiexact_code([], edges, 3, 2)
        assert enc is None


class TestIohybrid:
    def _simple_instance(self):
        cs = ConstraintSet(4)
        cs.add(0b0011, 3)
        oc = OutputConstraints(4, [
            OutputCluster(0, [(1, 0), (2, 0)], 2, companion_ic=[0b0011]),
        ])
        return cs, oc

    def test_input_and_output_satisfied(self):
        cs, oc = self._simple_instance()
        stats = IoStats()
        enc = iohybrid_code(cs, oc, stats=stats)
        assert constraint_satisfied(enc, 0b0011)
        assert 0 in stats.satisfied_clusters
        assert edges_satisfied(_codes_dict(enc), oc.clusters[0].edges)

    def test_empty_ic_dispatches_to_out_encoder(self):
        cs = ConstraintSet(4)
        oc = OutputConstraints(4, [OutputCluster(0, [(1, 0)], 1)])
        enc = iohybrid_code(cs, oc)
        assert edges_satisfied(_codes_dict(enc), [(1, 0)])

    def test_empty_everything(self):
        enc = iohybrid_code(ConstraintSet(4), OutputConstraints(4))
        assert len(set(enc.codes)) == 4

    def test_paper_example_6_2_2_1(self):
        """The clustered instance of Example 6.2.2.1 has a 3-bit solution."""
        cs = ConstraintSet(8)
        # IC_o = 01010101 reading state 1 leftmost: states {2,4,6,8}
        ic_o = sum(1 << s for s in (1, 3, 5, 7))
        cs.add(ic_o, 1)
        cs.add(0b00001100, 1)  # {3,4}
        cs.add(0b00110000, 2)  # {5,6}
        cs.add(0b11000000, 1)  # {7,8}
        clusters = [
            OutputCluster(0, [(u, 0) for u in range(1, 8)], 4),
            OutputCluster(1, [(5, 1)], 1, companion_ic=[0b00001100]),
            OutputCluster(2, [(6, 2)], 2, companion_ic=[0b00110000]),
            OutputCluster(3, [(7, 3)], 1, companion_ic=[0b11000000]),
            OutputCluster(4, [(5, 4), (6, 4), (7, 4)], 1),
        ]
        oc = OutputConstraints(8, clusters, free_ic=[ic_o])
        for coder in (iohybrid_code, iovariant_code):
            enc = coder(cs, oc, nbits=3)
            assert enc.nbits == 3
            assert len(set(enc.codes)) == 8

    def test_iovariant_couples_clusters(self):
        cs, oc = self._simple_instance()
        stats = IoStats()
        enc = iovariant_code(cs, oc, stats=stats)
        if 0 in stats.satisfied_clusters:
            assert constraint_satisfied(enc, 0b0011)
            assert edges_satisfied(_codes_dict(enc), oc.clusters[0].edges)


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=25, deadline=None)
def test_iohybrid_always_valid(seed):
    rng = random.Random(seed)
    n = rng.randrange(4, 8)
    cs = ConstraintSet(n)
    for _ in range(rng.randrange(0, 4)):
        cs.add(rng.randrange(1, 1 << n), rng.randrange(1, 5))
    clusters = []
    for i in range(rng.randrange(0, 3)):
        head = rng.randrange(n)
        tails = [u for u in range(n) if u != head and rng.random() < 0.3]
        if tails:
            clusters.append(OutputCluster(head, [(u, head) for u in tails],
                                          rng.randrange(1, 4)))
    oc = OutputConstraints(n, clusters)
    for coder in (iohybrid_code, iovariant_code):
        enc = coder(cs, oc)
        assert len(set(enc.codes)) == n
