"""Tests for iexact_code / semiexact_code and the counting lower bounds."""

from itertools import permutations
import random

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.constraints.input_constraints import ConstraintSet
from repro.constraints.poset import InputGraph
from repro.encoding.base import Encoding, constraint_satisfied
from repro.encoding.iexact import (
    count_cond1,
    count_cond2,
    count_cond3,
    iexact_code,
    mincube_dim,
    pos_equiv,
    semiexact_code,
)
from repro.fsm.machine import minimum_code_length

from tests.conftest import paper_constraint_masks


def cs_from(masks, n, weights=None):
    cs = ConstraintSet(n)
    for i, m in enumerate(masks):
        cs.add(m, weights[i] if weights else 1)
    return cs


class TestCountingBounds:
    def test_paper_example_3_3_2_2_1(self):
        """count_cond1/2 give 3, count_cond3 raises to 4."""
        ig = InputGraph(7, paper_constraint_masks())
        k12 = count_cond2(ig, count_cond1(ig))
        assert k12 == 3
        assert count_cond3(ig, k12) == 4
        assert mincube_dim(ig) == 4

    def test_no_constraints(self):
        ig = InputGraph(5, [])
        assert mincube_dim(ig) == minimum_code_length(5)

    def test_power_of_two_constraints_no_cond3_bump(self):
        ig = InputGraph(4, [0b0011, 0b1100])
        k = mincube_dim(ig)
        assert k == 2

    def test_many_fathers_forces_dimension(self):
        # a singleton with f fathers needs k >= f
        masks = [0b00011, 0b00101, 0b01001, 0b10001]
        ig = InputGraph(5, masks)
        assert mincube_dim(ig) >= 4


class TestPosEquiv:
    def test_paper_example_k4(self):
        ig = InputGraph(7, paper_constraint_masks())
        enc = pos_equiv(ig, 4)
        assert enc is not None
        for mask in paper_constraint_masks():
            assert constraint_satisfied(enc, mask)

    def test_k3_infeasible_for_paper_example(self):
        ig = InputGraph(7, paper_constraint_masks())
        assert pos_equiv(ig, 3) is None

    def test_no_constraints_any_k(self):
        ig = InputGraph(4, [])
        enc = pos_equiv(ig, 2)
        assert enc is not None
        assert len(set(enc.codes)) == 4


class TestIexact:
    def test_paper_example_minimum_is_4(self):
        cs = cs_from(paper_constraint_masks(), 7)
        enc = iexact_code(cs)
        assert enc is not None
        assert enc.nbits == 4
        for mask in cs.masks():
            assert constraint_satisfied(enc, mask)

    def test_trivial_single_constraint(self):
        cs = cs_from([0b0011], 4)
        enc = iexact_code(cs)
        assert enc.nbits == 2
        assert constraint_satisfied(enc, 0b0011)

    def test_disjoint_pair(self):
        cs = cs_from([0b0011, 0b1100], 4)
        enc = iexact_code(cs)
        assert enc.nbits == 2
        assert constraint_satisfied(enc, 0b0011)
        assert constraint_satisfied(enc, 0b1100)

    def test_chain_of_nested(self):
        cs = cs_from([0b0011, 0b0111, 0b1111], 4)  # universe dropped
        enc = iexact_code(cs)
        assert enc is not None
        for m in cs.masks():
            assert constraint_satisfied(enc, m)

    def test_gives_up_within_budget(self):
        # heavy instance + tiny budgets: must give up quickly — either
        # None (search caps exhausted) or BudgetExhausted (out of wall
        # clock) — but never hang
        from repro.errors import BudgetExhausted

        rng = random.Random(7)
        masks = [rng.randrange(1, 1 << 12) for _ in range(14)]
        cs = cs_from([m for m in masks if bin(m).count("1") > 1], 12)
        try:
            enc = iexact_code(cs, max_work=50, max_vectors=2,
                              time_budget=2.0)
        except BudgetExhausted as exc:
            assert exc.limit == "time"
        else:
            assert enc is None or isinstance(enc, Encoding)

    def test_time_exhaustion_raises_structured_error(self):
        from repro.errors import BudgetExhausted

        rng = random.Random(7)
        masks = [rng.randrange(1, 1 << 12) for _ in range(14)]
        cs = cs_from([m for m in masks if bin(m).count("1") > 1], 12)
        with pytest.raises(BudgetExhausted):
            iexact_code(cs, max_work=None, max_vectors=64,
                        time_budget=0.0)


def brute_force_min_k(masks, n, k_max=4):
    """Smallest k admitting codes satisfying all constraints (brute)."""
    for k in range(minimum_code_length(n), k_max + 1):
        for combo in permutations(range(1 << k), n):
            ok = True
            enc = Encoding(k, list(combo))
            for m in masks:
                if not constraint_satisfied(enc, m):
                    ok = False
                    break
            if ok:
                return k
    return None


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_iexact_matches_brute_force_minimum(seed):
    """On tiny instances, iexact finds the true minimum code length."""
    rng = random.Random(seed)
    n = rng.randrange(3, 5)
    masks = []
    for _ in range(rng.randrange(1, 3)):
        m = rng.randrange(1, 1 << n)
        if bin(m).count("1") >= 2 and m != (1 << n) - 1:
            masks.append(m)
    cs = cs_from(masks, n)
    enc = iexact_code(cs)
    brute = brute_force_min_k(masks, n)
    assert brute is not None
    assert enc is not None
    assert enc.nbits == brute
    for m in masks:
        assert constraint_satisfied(enc, m)


class TestSemiexact:
    def test_satisfies_when_feasible(self):
        masks = [0b0011, 0b1100]
        enc = semiexact_code(masks, 4, 2)
        assert enc is not None
        for m in masks:
            assert constraint_satisfied(enc, m)

    def test_none_when_minbits_too_small(self):
        # paper example needs 4 bits; semiexact at 3 must fail
        enc = semiexact_code(paper_constraint_masks(), 7, 3)
        assert enc is None

    def test_subset_selection_works(self):
        # a satisfiable subset of the paper constraints at 3 bits
        masks = [paper_constraint_masks()[3]]  # {1,5,6}
        enc = semiexact_code(masks, 7, 3)
        assert enc is not None
        assert constraint_satisfied(enc, masks[0])

    def test_io_check_veto(self):
        # forbid state 0 from getting code 0: the veto must be respected
        def veto(state, code, codes):
            return not (state == 0 and code == 0)

        enc = semiexact_code([], 4, 2, io_check=veto)
        assert enc is not None
        assert enc.codes[0] != 0
