"""Tests for the input poset / input graph, against the paper's examples."""

from repro.constraints.poset import InputGraph, closure_intersection

from tests.conftest import paper_constraint_masks


def m(*xs: int) -> int:
    return sum(1 << (x - 1) for x in xs)


class TestClosure:
    def test_paper_example_3_1_2(self):
        """Closure of the running example (Example 3.1.2)."""
        masks = paper_constraint_masks()
        closed = closure_intersection(7, masks)
        expected = {
            m(1, 2, 3), m(2, 3, 4), m(5, 6, 7), m(1, 5, 6), m(6, 7),
            m(3, 4), m(2, 3), m(5, 6), m(1), m(2), m(3), m(4), m(5),
            m(6), m(7),
        }
        # our closure iterates to a fixpoint, so it may contain deeper
        # intersections as well -- it must contain the paper's set
        assert expected <= closed

    def test_contains_singletons(self):
        closed = closure_intersection(4, [0b1100])
        for i in range(4):
            assert (1 << i) in closed

    def test_no_empty_element(self):
        closed = closure_intersection(4, [0b1100, 0b0011])
        assert 0 not in closed

    def test_closed_under_intersection(self):
        masks = [0b11100, 0b01110, 0b00111, 0b10101]
        closed = closure_intersection(5, masks)
        for a in closed:
            for b in closed:
                if a & b:
                    assert (a & b) in closed


class TestInputGraph:
    def test_paper_fathers_example_3_2_1(self):
        """Father sets from Example 3.2.1."""
        ig = InputGraph(7, paper_constraint_masks())
        universe = (1 << 7) - 1
        assert ig.fathers[universe] == []
        for primary in (m(1, 2, 3), m(2, 3, 4), m(5, 6, 7), m(1, 5, 6)):
            assert ig.fathers[primary] == [universe]
        assert ig.fathers[m(3, 4)] == [m(2, 3, 4)]
        assert set(ig.fathers[m(2, 3)]) == {m(2, 3, 4), m(1, 2, 3)}
        assert ig.fathers[m(6, 7)] == [m(5, 6, 7)]
        assert set(ig.fathers[m(5, 6)]) == {m(5, 6, 7), m(1, 5, 6)}
        assert set(ig.fathers[m(3)]) == {m(3, 4), m(2, 3)}
        assert ig.fathers[m(4)] == [m(3, 4)]
        assert set(ig.fathers[m(6)]) == {m(6, 7), m(5, 6)}
        assert ig.fathers[m(7)] == [m(6, 7)]
        # the paper's printed F(0000100) is garbled; set logic gives the
        # unique minimal superset {5,6}, consistent with cat({5}) = 3
        # in Example 3.3.1.1
        assert ig.fathers[m(5)] == [m(5, 6)]
        assert ig.fathers[m(2)] == [m(2, 3)]
        assert set(ig.fathers[m(1)]) == {m(1, 2, 3), m(1, 5, 6)}

    def test_paper_categories_example_3_3_1_1(self):
        """Category classification from Example 3.3.1.1."""
        ig = InputGraph(7, paper_constraint_masks())
        for ic in (m(1, 2, 3), m(2, 3, 4), m(5, 6, 7), m(1, 5, 6)):
            assert ig.category(ic) == 1
        for ic in (m(5, 6), m(2, 3), m(3), m(6), m(1)):
            assert ig.category(ic) == 2
        for ic in (m(3, 4), m(6, 7), m(4), m(2), m(7), m(5)):
            assert ig.category(ic) == 3

    def test_children_inverse_of_fathers(self):
        ig = InputGraph(7, paper_constraint_masks())
        for ic in ig.nodes:
            for f in ig.fathers[ic]:
                assert ic in ig.children[f]
            for c in ig.children[ic]:
                assert ic in ig.fathers[c]

    def test_fathers_are_minimal_supersets(self):
        ig = InputGraph(6, [0b111000, 0b011110, 0b000111, 0b110011])
        for ic in ig.non_universe_nodes():
            for f in ig.fathers[ic]:
                assert ic & ~f == 0 and ic != f
                # minimality: no node strictly between ic and f
                for other in ig.nodes:
                    if other in (ic, f):
                        continue
                    between = (ic & ~other == 0) and (other & ~f == 0)
                    assert not between

    def test_primaries_sorted_largest_first(self):
        ig = InputGraph(7, paper_constraint_masks())
        prim = ig.primaries()
        cards = [bin(p).count("1") for p in prim]
        assert cards == sorted(cards, reverse=True)

    def test_share_children(self):
        ig = InputGraph(7, paper_constraint_masks())
        assert ig.share_children(m(1, 2, 3), m(2, 3, 4))  # share {2,3}
        assert not ig.share_children(m(3, 4), m(6, 7))

    def test_universe_always_node(self):
        ig = InputGraph(3, [])
        assert (1 << 3) - 1 in ig.nodes
        assert len(ig.nodes) == 4  # universe + 3 singletons
