"""Table II: iexact vs ihybrid vs igreedy vs 1-hot.

One benchmarked row per machine: code length, product terms, and PLA
area for each input-constraint algorithm, plus the 1-hot cube count.
The paper's structural claims are asserted at the end:

* iexact (when it completes) satisfies all constraints but its areas
  are not smaller overall than ihybrid's — longer codes cost columns;
* every algorithm's cube count is at most the 1-hot count + noise.
"""

import pytest

from repro.eval.tables import table2_row, totals

from conftest import note, record, subset_names

NAMES = subset_names("paper30")
_rows = []


@pytest.mark.parametrize("name", NAMES)
def test_table2_row(benchmark, name):
    row = benchmark.pedantic(table2_row, args=(name,), iterations=1,
                             rounds=1)
    record("table2", row)
    _rows.append(row)
    assert row["ihybrid_area"] > 0
    assert row["igreedy_area"] > 0
    assert row["onehot_cubes"] > 0


def test_table2_headline(benchmark):
    benchmark(lambda: None)
    assert len(_rows) == len(NAMES)
    t = totals(_rows, ["iexact_area", "ihybrid_area"])
    if t["iexact_area"]:
        ratio = t["ihybrid_area"] / t["iexact_area"]
        note("table2", f"ihybrid/iexact area ratio (machines where iexact "
                       f"completed): {ratio:.2f} (paper: < 1.0 -- "
                       f"satisfying every constraint does not pay)")
        assert ratio <= 1.25, "ihybrid should be area-competitive with iexact"
    both = totals(_rows, ["ihybrid_cubes", "onehot_cubes"])
    note("table2", f"ihybrid cubes vs 1-hot cubes: "
                   f"{both['ihybrid_cubes']} vs {both['onehot_cubes']}")
