"""Table I: statistics of the benchmark examples.

Regenerates the inputs/outputs/states/products table for the machines
of the chosen subset, and benchmarks the cost of building the suite
(construction + generation + validation).
"""

from repro.fsm.benchmarks import _CACHE
from repro.fsm.benchmarks import benchmark as get_machine

from conftest import record, subset_names


def _build_all():
    _CACHE.clear()
    for name in subset_names():
        get_machine(name)
    return len(set(subset_names()))


def test_table1_build_suite(benchmark):
    count = benchmark(_build_all)
    assert count == len(set(subset_names()))
    for name in subset_names():
        fsm = get_machine(name)
        row = {"example": name}
        row.update(fsm.stats())
        record("table1", row)
