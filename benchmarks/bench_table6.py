"""Table VI: statistics of ihybrid.

Per machine: total weight of satisfied (wsat) and unsatisfied (wunsat)
input constraints at the minimum code length, the code length at which
ihybrid satisfies everything (clength), and the run time.  Times are
host wall-clock, not VAX 11/8650 CPU seconds — the cross-machine
ordering is the reproducible signal (DESIGN.md §5.5).

Wall-clock timing of this table lives in the observatory now: the
``table6`` suite (``benchmarks/specs/table6.json``, run by
``nova bench run``) times the same rows under the shared
variance-controlled protocol; this harness asserts the *semantics*.
"""

import pytest

from repro.eval.tables import table6_row

from conftest import note, record, subset_names, table_row

NAMES = subset_names("paper30")
_rows = []


@pytest.mark.parametrize("name", NAMES)
def test_table6_row(benchmark, name):
    row = benchmark.pedantic(table_row, args=(6, name, table6_row, NAMES),
                             iterations=1, rounds=1)
    record("table6", row)
    _rows.append(row)
    assert row["wsat"] >= 0 and row["wunsat"] >= 0
    assert row["clength"] >= row["min_clength"]


def test_table6_headline(benchmark):
    benchmark(lambda: None)
    assert len(_rows) == len(NAMES)
    full = sum(1 for r in _rows if r["wunsat"] == 0)
    note("table6", f"{full}/{len(_rows)} machines fully satisfied at the "
                   f"final code length")
