"""Table III: best of ihybrid/igreedy vs KISS vs random assignments.

Headline claim of the paper: NOVA's best input-constraint solution
averages ~20% less area than KISS and ~30% less than the best of a set
of random assignments.  We assert the directions (NOVA <= KISS and
NOVA <= best-random in total) — exact percentages depend on the
machines, which are synthetic stand-ins here (DESIGN.md §5.2).

Wall-clock timing of this table lives in the observatory now: the
``table3`` suite (``benchmarks/specs/table3.json``, run by
``nova bench run``) times the same rows under the shared
variance-controlled protocol; this harness asserts the *semantics*.
"""

import pytest

from repro.eval.tables import table3_row, totals

from conftest import note, record, subset_names, table_row

NAMES = subset_names("paper30")
_rows = []


@pytest.mark.parametrize("name", NAMES)
def test_table3_row(benchmark, name):
    row = benchmark.pedantic(table_row, args=(3, name, table3_row, NAMES),
                             iterations=1, rounds=1)
    record("table3", row)
    _rows.append(row)
    assert row["nova_area"] > 0
    assert row["kiss_area"] > 0


def test_table3_headline(benchmark):
    benchmark(lambda: None)
    assert len(_rows) == len(NAMES)
    t = totals(_rows, ["nova_area", "kiss_area", "random_best",
                       "random_avg"])
    note("table3",
         f"TOTALS  nova={t['nova_area']}  kiss={t['kiss_area']}  "
         f"random-best={t['random_best']:.0f}  "
         f"random-avg={t['random_avg']:.0f}")
    note("table3",
         f"nova/kiss={t['nova_area'] / t['kiss_area']:.2f} (paper ~0.80)  "
         f"nova/random-best={t['nova_area'] / t['random_best']:.2f} "
         f"(paper ~0.70)")
    assert t["nova_area"] <= t["kiss_area"] * 1.02, \
        "NOVA must not lose to KISS overall"
    assert t["nova_area"] <= t["random_best"] * 1.02, \
        "NOVA must not lose to the best random assignment overall"
    assert t["random_best"] <= t["random_avg"]
