"""Tables VIII / IX / X: the paper's summary ratio plots.

The paper plots, over the 30 machines ordered by state count:

* Table VIII: KISS/NOVA and best-random/NOVA area ratios;
* Table IX:   ihybrid/NOVA and iohybrid/NOVA area ratios;
* Table X:    MUSTANG/NOVA cube and literal ratios.

Here each y-series is regenerated as a printed row (one value per
machine, in the paper's x-axis order) and written to
``benchmarks/results/``.  The assertions capture the plots' shape: the
ratio curves sit at or above 1.0 on average, i.e., NOVA anchors the
baseline of every plot.
"""

import pytest

from repro.eval.tables import ratio_series, table3_row, table4_row, table7_row

from conftest import note, record, subset_names

NAMES = subset_names("paper30")
_rows3 = {}
_rows4 = {}
_rows7 = {}


@pytest.mark.parametrize("name", NAMES)
def test_figure_data_row(benchmark, name):
    def compute():
        r3 = table3_row(name, trials=3)
        r4 = table4_row(name, trials=3)
        r7 = table7_row(name, trials=2) \
            if name in set(subset_names("table7")) else None
        return r3, r4, r7

    r3, r4, r7 = benchmark.pedantic(compute, iterations=1, rounds=1)
    _rows3[name] = r3
    _rows4[name] = r4
    if r7:
        _rows7[name] = r7


def test_figures_series(benchmark):
    benchmark(lambda: None)
    assert len(_rows3) == len(NAMES)
    rows3 = [_rows3[n] for n in NAMES]
    rows4 = [_rows4[n] for n in NAMES]

    # Table VIII: kiss/nova and random-best/nova
    kiss_ratio = ratio_series(rows3, "kiss_area", "nova_area")
    rand_ratio = ratio_series(rows3, "random_best", "nova_area")
    for name, k, r in zip(NAMES, kiss_ratio, rand_ratio):
        record("fig_table8", {"example": name, "kiss/nova": k,
                              "random-best/nova": r})
    # Table IX: ihybrid/nova and iohybrid/nova
    ih = ratio_series(rows4, "ih_area", "nova_area")
    io = ratio_series(rows4, "iohybrid_area", "nova_area")
    for name, a, b in zip(NAMES, ih, io):
        record("fig_table9", {"example": name, "ihybrid/nova": a,
                              "iohybrid/nova": b})
    # Table X: mustang/nova cubes and literals
    for name in NAMES:
        if name in _rows7:
            r = _rows7[name]
            record("fig_table10", {
                "example": name,
                "mustang/nova cubes": round(
                    r["mustang_cubes"] / r["nova_cubes"], 3),
                "mustang/nova lits": round(
                    r["mustang_lits"] / max(1, r["nova_lits"]), 3),
            })

    # shape assertions: NOVA is the 1.0 baseline of every plot
    valid_k = [v for v in kiss_ratio if v]
    valid_r = [v for v in rand_ratio if v]
    assert sum(valid_k) / len(valid_k) >= 0.98
    assert sum(valid_r) / len(valid_r) >= 1.0
    valid_ih = [v for v in ih if v]
    valid_io = [v for v in io if v]
    assert min(valid_ih) >= 1.0  # nova is the min of its own algorithms
    assert min(valid_io) >= 1.0
    note("fig_table8", f"mean kiss/nova={sum(valid_k)/len(valid_k):.2f}  "
                       f"mean random/nova={sum(valid_r)/len(valid_r):.2f}")
    note("fig_table9", f"mean ihybrid/nova={sum(valid_ih)/len(valid_ih):.2f} "
                       f"mean iohybrid/nova={sum(valid_io)/len(valid_io):.2f}")
