"""Ablations over NOVA's design choices (§6.2.2 and §VII discussion).

* **iohybrid vs iovariant** — the paper argues that prioritizing input
  constraints (iohybrid) beats coupling each output cluster to its
  companion input constraints (iovariant); both are run on the subset
  and the totals compared.
* **projection order** — project_code's heuristic prefers states that
  appear in many unsatisfied constraints; compared against raising for
  the heaviest constraint only (ihybrid quality with/without the
  popularity tie-break is visible through the satisfied weight).
* **code length sweep** — the code-length/area trade-off of Table II:
  minimum bits vs minimum+1 vs minimum+2 for ihybrid.
"""

import pytest

from repro.encoding.nova import encode_fsm
from repro.fsm.benchmarks import benchmark as get_machine
from repro.fsm.benchmarks import is_low_effort
from repro.fsm.machine import minimum_code_length

from conftest import note, record, subset_names

NAMES = subset_names("paper30")
_io_rows = []


@pytest.mark.parametrize("name", NAMES)
def test_iohybrid_vs_iovariant(benchmark, name):
    fsm = get_machine(name)
    effort = "low" if is_low_effort(name) else "full"

    def run_pair():
        io = encode_fsm(fsm, "iohybrid", effort=effort)
        var = encode_fsm(fsm, "iovariant", effort=effort)
        return io, var

    io, var = benchmark.pedantic(run_pair, iterations=1, rounds=1)
    row = {"example": name, "iohybrid_area": io.area,
           "iovariant_area": var.area}
    record("ablation_iovariant", row)
    _io_rows.append(row)


def test_iovariant_headline(benchmark):
    benchmark(lambda: None)
    assert len(_io_rows) == len(NAMES)
    io = sum(r["iohybrid_area"] for r in _io_rows)
    var = sum(r["iovariant_area"] for r in _io_rows)
    note("ablation_iovariant",
         f"TOTALS iohybrid={io} iovariant={var} "
         f"(paper: iohybrid has the better performance)")
    assert io <= var * 1.10


@pytest.mark.parametrize("name", [n for n in NAMES
                                  if get_machine(n).num_states <= 20])
def test_code_length_sweep(benchmark, name):
    """Table II's lesson: longer codes rarely pay in area."""
    fsm = get_machine(name)
    effort = "low" if is_low_effort(name) else "full"
    min_bits = minimum_code_length(fsm.num_states)

    def sweep():
        return [encode_fsm(fsm, "ihybrid", nbits=min_bits + extra,
                           effort=effort).area
                for extra in (0, 1, 2)]

    areas = benchmark.pedantic(sweep, iterations=1, rounds=1)
    record("ablation_code_length", {
        "example": name, "min_bits": areas[0], "plus1": areas[1],
        "plus2": areas[2],
    })
    # the minimum-length area should be competitive with longer codes
    assert areas[0] <= max(areas) * 1.01 or areas[0] <= min(areas) * 1.35
