"""Table V: iohybrid vs Cappuccino/Cream.

Cappuccino/Cream is unavailable (DESIGN.md §5.3); its column holds the
paper's published numbers, against which our measured iohybrid runs are
compared.  The paper reports iohybrid areas averaging ~30% less (71% vs
100%); with synthetic machine stand-ins we assert the direction on the
code length — iohybrid always uses at most Cappuccino's published
number of bits — and report the area ratio.
"""

import pytest

from repro.eval.tables import table5_row, totals

from conftest import note, record, subset_names

NAMES = subset_names("table5")
_rows = []


@pytest.mark.parametrize("name", NAMES)
def test_table5_row(benchmark, name):
    row = benchmark.pedantic(table5_row, args=(name,), iterations=1,
                             rounds=1)
    record("table5", row)
    _rows.append(row)
    assert row["iohybrid_area"] > 0


def test_table5_headline(benchmark):
    benchmark(lambda: None)
    assert len(_rows) == len(NAMES)
    t = totals(_rows, ["iohybrid_area", "cappuccino_area",
                       "iohybrid_bits", "cappuccino_bits"])
    note("table5",
         f"TOTALS  iohybrid={t['iohybrid_area']}  "
         f"cappuccino(published)={t['cappuccino_area']}  "
         f"ratio={t['iohybrid_area'] / t['cappuccino_area']:.2f} "
         f"(paper: 0.71)")
    assert t["iohybrid_bits"] <= t["cappuccino_bits"], \
        "iohybrid targets minimum code length; Cappuccino used more bits"
