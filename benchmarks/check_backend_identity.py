"""Bit-identity gate: every encode result must be substrate-independent.

Runs the full 91-pair baseline — the 13 SMALL machines under each of
the 7 deterministic NOVA algorithms — once per substrate backend and
compares everything that fingerprints a result: state/symbol codes,
cube count, area, constraint-satisfaction weights, and the emitted PLA
text.  Wall-clock fields are excluded (they are the only thing allowed
to differ).

This is the acceptance check behind ``NOVA_SUBSTRATE``: the numpy
packed kernels are an accelerator, never a different algorithm.  CI
runs ``--quick`` (3 machines x 3 algorithms) on every push; the full
matrix takes a few minutes.

Exit status: 0 when every pair matches, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Tuple

from repro.encoding.nova import encode_fsm
from repro.fsm.benchmarks import benchmark, benchmark_names
from repro.logic import backend

ALGORITHMS = ("iexact", "ihybrid", "igreedy", "iohybrid", "iovariant",
              "kiss", "onehot")


def signature(machine: str, algorithm: str) -> Dict[str, object]:
    """Everything about an encode result that must not depend on the
    substrate."""
    res = encode_fsm(benchmark(machine), algorithm, cache="off")
    return {
        "codes": list(res.state_encoding.codes),
        "nbits": res.state_encoding.nbits,
        "cubes": res.cubes,
        "area": res.area,
        "satisfied_weight": res.satisfied_weight,
        "unsatisfied_weight": res.unsatisfied_weight,
        "mv_cover_size": res.mv_cover_size,
        "pla_cover": list(res.pla.cover.cubes),
    }


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--machines", nargs="*", default=None,
                        help="subset of machines (default: the SMALL set)")
    parser.add_argument("--algorithms", nargs="*", default=None,
                        help=f"subset of algorithms (default: all of "
                             f"{', '.join(ALGORITHMS)})")
    parser.add_argument("--quick", action="store_true",
                        help="3 machines x 3 algorithms (CI smoke)")
    args = parser.parse_args(argv)

    if "numpy" not in backend.available_backends():
        print("check_backend_identity: numpy not installed; "
              "nothing to compare", file=sys.stderr)
        return 0

    machines = args.machines or benchmark_names("small")
    algorithms = tuple(args.algorithms or ALGORITHMS)
    if args.quick:
        machines = machines[:3]
        algorithms = algorithms[:3]

    pairs: List[Tuple[str, str]] = [(m, a) for m in machines
                                    for a in algorithms]
    print(f"comparing {len(pairs)} (machine, algorithm) pairs "
          f"under python vs numpy substrates")
    t0 = time.perf_counter()
    mismatches = []
    for i, (m, a) in enumerate(pairs, 1):
        with backend.use("python"):
            ref = signature(m, a)
        with backend.use("numpy"):
            got = signature(m, a)
        if ref != got:
            bad = sorted(k for k in ref if ref[k] != got[k])
            mismatches.append((m, a, bad))
            print(f"  MISMATCH {m}/{a}: {', '.join(bad)}")
        if i % 10 == 0 or i == len(pairs):
            print(f"  {i}/{len(pairs)} checked "
                  f"({time.perf_counter() - t0:.1f}s)")
    if mismatches:
        print(f"FAIL: {len(mismatches)} of {len(pairs)} pairs differ "
              f"between substrates")
        return 1
    print(f"OK: all {len(pairs)} pairs bit-identical across substrates "
          f"({time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
