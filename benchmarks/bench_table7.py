"""Table VII: MUSTANG vs NOVA — two-level cubes and multilevel literals.

MUSTANG runs with all four weight options (-p/-n/-pt/-nt) at minimum
code length; NOVA contributes its best two-level result; literal counts
come from the quick-factoring estimator standing in for the MIS-II
standard script (DESIGN.md §5.4).  Paper's totals: MUSTANG cubes 124%
of NOVA's, MUSTANG literals 108%, random literals 130%.

Wall-clock timing of this table lives in the observatory now: the
``table7`` suite (``benchmarks/specs/table7.json``, run by
``nova bench run``) times the same rows under the shared
variance-controlled protocol; this harness asserts the *semantics*.
"""

import pytest

from repro.eval.tables import table7_row, totals

from conftest import note, record, subset_names, table_row

NAMES = subset_names("table7")
_rows = []


@pytest.mark.parametrize("name", NAMES)
def test_table7_row(benchmark, name):
    row = benchmark.pedantic(table_row, args=(7, name, table7_row, NAMES),
                             iterations=1, rounds=1)
    record("table7", row)
    _rows.append(row)
    assert row["mustang_cubes"] > 0
    assert row["nova_cubes"] > 0


def test_table7_headline(benchmark):
    benchmark(lambda: None)
    assert len(_rows) == len(NAMES)
    t = totals(_rows, ["mustang_cubes", "nova_cubes", "mustang_lits",
                       "nova_lits", "random_lits"])
    note("table7",
         f"TOTALS  cubes: mustang={t['mustang_cubes']} "
         f"nova={t['nova_cubes']} "
         f"({100 * t['mustang_cubes'] / t['nova_cubes']:.0f}% -- "
         f"paper 124%)")
    note("table7",
         f"        lits : mustang={t['mustang_lits']} "
         f"nova={t['nova_lits']} random={t['random_lits']} "
         f"({100 * t['mustang_lits'] / max(1, t['nova_lits']):.0f}% / "
         f"{100 * t['random_lits'] / max(1, t['nova_lits']):.0f}% -- "
         f"paper 108% / 130%)")
    # structural claims: NOVA's two-level strength carries to cubes, and
    # random encodings trail NOVA on literals
    assert t["nova_cubes"] <= t["mustang_cubes"] * 1.05
    assert t["nova_lits"] <= t["random_lits"] * 1.05
