"""Table IV: iohybrid vs ihybrid/igreedy vs best-of-NOVA vs random.

Adds the symbolic-minimization path (output constraints) to the
comparison.  Asserted structure: best-of-NOVA <= each individual
algorithm, and best-of-NOVA beats the best random assignment in total
(paper: 77% vs 100%).
"""

import pytest

from repro.eval.tables import table4_row, totals

from conftest import note, record, subset_names

NAMES = subset_names("paper30")
_rows = []


@pytest.mark.parametrize("name", NAMES)
def test_table4_row(benchmark, name):
    row = benchmark.pedantic(table4_row, args=(name,), iterations=1,
                             rounds=1)
    record("table4", row)
    _rows.append(row)
    assert row["nova_area"] <= row["iohybrid_area"]
    assert row["nova_area"] <= row["ih_area"]


def test_table4_headline(benchmark):
    benchmark(lambda: None)
    assert len(_rows) == len(NAMES)
    t = totals(_rows, ["iohybrid_area", "ih_area", "nova_area",
                       "random_best"])
    note("table4",
         f"TOTALS  iohybrid={t['iohybrid_area']}  "
         f"ihybrid/igreedy={t['ih_area']}  nova={t['nova_area']}  "
         f"random-best={t['random_best']:.0f}")
    note("table4",
         f"nova/random-best={t['nova_area'] / t['random_best']:.2f} "
         f"(paper ~0.77/1.00)")
    assert t["nova_area"] <= t["random_best"] * 1.02
