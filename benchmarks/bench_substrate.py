"""Substrate micro-benchmarks and ablations.

Not a table of the paper, but the measurements DESIGN.md calls out for
the design choices that make the pure-Python reproduction feasible:

* the cover-kernel suite: per-cube reference loops (the pre-6.x idiom)
  vs the batched :mod:`repro.logic.backend` kernels on four
  representative machines, with a geometric-mean speedup gate when the
  numpy substrate is active (see DESIGN.md §6.9);
* espresso with an explicit off-set vs tautology-based implicant checks
  (the off-set construction from deterministic rows is what keeps the
  encoded-cover minimization fast);
* unate-recursive tautology throughput on MV covers;
* semiexact_code throughput (the inner loop of ihybrid);
* symbolic minimization stage cost.
"""

import math
from typing import Callable, Dict, List, Tuple

import pytest

from repro import perf
from repro.bench.timing import best_of
from repro.constraints.input_constraints import extract_input_constraints
from repro.encoding.iexact import semiexact_code
from repro.encoding.nova import encode_fsm
from repro.fsm.benchmarks import benchmark as get_machine
from repro.fsm.symbolic_cover import build_symbolic_cover
from repro.logic import backend
from repro.logic import cover as cover_mod
from repro.logic import urp
from repro.logic.espresso import espresso
from repro.logic.urp import tautology
from repro.symbolic.symbolic_min import symbolic_minimize

from conftest import note, record

# ---------------------------------------------------------------------------
# cover-kernel suite
# ---------------------------------------------------------------------------

# four machines spanning the format shapes the kernels must cover:
# keyb (1 packed word, large cover), planet (3 words), styr (2 words),
# dk16 (1 word, MV-heavy state variable)
KERNEL_MACHINES = ("keyb", "planet", "styr", "dk16")
KERNEL_REPEATS = 5
KERNEL_MIN_SPEEDUP = 3.0  # geometric mean, numpy substrate only

_kernel_ratios: List[float] = []


def _best_of(fn: Callable[[], object], repeats: int = KERNEL_REPEATS) -> float:
    # shared timing protocol (repro.bench.timing): one warm-up run
    # (also builds packing tables / lazy complements), then best-of-N
    return best_of(fn, repeats, warmup=1)


def _reference_ops(sc) -> Dict[str, Tuple[Callable, Callable]]:
    """(per-cube reference, batched kernel) pairs computing identical work.

    The reference side is the pre-6.x per-cube idiom, inlined verbatim;
    the kernel side is what the substrate's hot callers run now —
    including the pack-once-reuse pattern of espresso's expand and
    all_primes (``K.pack`` outside the timed region, exactly where the
    production callers hold a packed pool across many queries).
    """
    fmt = sc.fmt
    big = sc.on + sc.dc + sc.off
    cubes = big.cubes
    off_cubes = sc.off.cubes
    probes = sc.on.cubes[:32]
    K = backend.kernels
    pool = K.pack(fmt, cubes)
    off_pool = K.pack(fmt, off_cubes)
    raise_mask = fmt.universe
    seed = probes[0]
    raises = [seed | (1 << b) for b in range(fmt.width)
              if not (seed >> b) & 1]

    def ref_cofactor():
        out = []
        for q in probes:
            rm = raise_mask & ~q
            out.append([c | rm for c in cubes if fmt.intersects(c, q)])
        return out

    def new_cofactor():
        return [K.cofactor(fmt, cubes, q) for q in probes]

    def ref_intersect():
        out = []
        for q in probes:
            row = []
            for c in cubes:
                r = c & q
                if not fmt.is_empty(r):
                    row.append(r)
            out.append(row)
        return out

    def new_intersect():
        return [K.intersect_cube(fmt, cubes, q) for q in probes]

    dup = cubes + cubes[: len(cubes) // 2]

    def ref_scc():
        order = sorted(set(dup), key=lambda c: (-fmt.minterm_count(c), c))
        kept: List[int] = []
        kept_pc: List[int] = []
        for c in order:
            pc = c.bit_count()
            for k, kpc in zip(kept, kept_pc):
                if kpc > pc and c & ~k == 0:
                    break
            else:
                kept.append(c)
                kept_pc.append(pc)
        return kept

    def new_scc():
        return K.single_cube_containment(fmt, dup)

    def ref_contain():
        return [any(q & ~k == 0 for k in cubes) for q in cubes]

    def new_contain():
        return [K.contain_any(fmt, pool, q) for q in cubes]

    def ref_intersects():
        return [any(fmt.intersects(q, o) for o in off_cubes) for q in cubes]

    def new_intersects():
        return [K.any_intersects(fmt, off_pool, q) for q in cubes]

    def ref_blocking():
        return [sum(1 for o in off_cubes if fmt.intersects(o, q))
                for q in raises]

    def new_blocking():
        return K.intersect_counts(fmt, off_pool, raises)

    masks = fmt.masks

    def ref_consensus():
        out = []
        for q in probes:
            row: List[int] = []
            for b in cubes:
                inter = q & b
                empty = [m for m in masks if not inter & m]
                if len(empty) > 1:
                    continue
                union = q | b
                if len(empty) == 1:
                    c = (inter & ~empty[0]) | (union & empty[0])
                    if not fmt.is_empty(c):
                        row.append(c)
                    continue
                for m in masks:
                    row.append((inter & ~m) | (union & m))
            out.append(row)
        return out

    def new_consensus():
        return [K.consensus_scan(fmt, pool, q) for q in probes]

    return {
        "cofactor": (ref_cofactor, new_cofactor),
        "intersect": (ref_intersect, new_intersect),
        "scc": (ref_scc, new_scc),
        "contain_any": (ref_contain, new_contain),
        "any_intersects": (ref_intersects, new_intersects),
        "blocking_counts": (ref_blocking, new_blocking),
        "consensus": (ref_consensus, new_consensus),
    }


@pytest.mark.parametrize("machine", KERNEL_MACHINES)
def test_cover_kernel_suite(machine):
    """Bit-identity + speedup of the batched kernels vs per-cube loops."""
    sc = build_symbolic_cover(get_machine(machine))
    row = {"machine": machine, "backend": backend.ACTIVE,
           "n_cubes": len(sc.on) + len(sc.dc) + len(sc.off),
           "width": sc.fmt.width}
    for name, (ref, new) in _reference_ops(sc).items():
        assert ref() == new(), f"{machine}/{name}: kernel result differs"
        t_ref = _best_of(ref)
        t_new = _best_of(new)
        ratio = t_ref / t_new
        row[name] = round(ratio, 2)
        _kernel_ratios.append(ratio)
    record("substrate_kernels", row)


def test_cover_kernel_speedup_gate():
    """Geomean of the suite's ratios must clear KERNEL_MIN_SPEEDUP (numpy)."""
    if backend.ACTIVE != "numpy":
        pytest.skip("speedup gate applies to the numpy substrate only")
    assert _kernel_ratios, "kernel suite did not run first"
    geomean = math.exp(sum(map(math.log, _kernel_ratios))
                       / len(_kernel_ratios))
    note("substrate_kernels",
         f"geomean speedup {geomean:.2f}x over {len(_kernel_ratios)} "
         f"(machine, op) pairs; gate: >= {KERNEL_MIN_SPEEDUP}x")
    assert geomean >= KERNEL_MIN_SPEEDUP


@pytest.fixture(scope="module")
def ex3_cover():
    return build_symbolic_cover(get_machine("ex3"))


def test_espresso_with_explicit_off(benchmark, ex3_cover):
    sc = ex3_cover
    result = benchmark(lambda: espresso(sc.on, sc.dc, off=sc.off))
    assert len(result) <= len(sc.on)
    record("ablation_espresso", {
        "variant": "explicit off-set", "cubes": len(result),
    })


def test_espresso_tautology_oracle(benchmark, ex3_cover):
    sc = ex3_cover
    result = benchmark(lambda: espresso(sc.on, sc.dc))
    assert len(result) <= len(sc.on)
    record("ablation_espresso", {
        "variant": "tautology oracle", "cubes": len(result),
    })


def test_espresso_low_effort(benchmark, ex3_cover):
    sc = ex3_cover
    result = benchmark(lambda: espresso(sc.on, sc.dc, off=sc.off,
                                        effort="low"))
    assert len(result) <= len(sc.on)
    record("ablation_espresso", {
        "variant": "low effort (expand+irredundant)", "cubes": len(result),
    })


def test_tautology_throughput(benchmark, ex3_cover):
    sc = ex3_cover
    cover = sc.on.cofactor(sc.on.cubes[0])
    benchmark(lambda: tautology(cover))


def test_semiexact_throughput(benchmark):
    sc = build_symbolic_cover(get_machine("bbtas"))
    cs = extract_input_constraints(sc).state_constraints
    masks = cs.masks()

    def run():
        return semiexact_code(masks[:2], cs.n, 3)

    enc = benchmark(run)
    assert enc is None or len(set(enc.codes)) == cs.n


def test_symbolic_minimize_cost(benchmark):
    sc = build_symbolic_cover(get_machine("beecount"))
    res = benchmark(lambda: symbolic_minimize(sc))
    assert res.final_cover_size > 0


def test_unate_reduction_ablation(benchmark):
    """URP recursions of a full symbolic minimization, with and without
    the unate reductions (tautology weakest-branch cofactor, complement
    missing-value factoring).

    Symbolic minimization is complement-heavy (every REDUCE computes
    per-cube complements), where the reductions save close to half of
    the Shannon splits: bbara goes from ~4.9k to ~2.6k recursions.
    Results are identical either way — both reductions are exact.
    """
    sc = build_symbolic_cover(get_machine("bbara"))

    def recursions(flag: bool) -> int:
        old = urp.UNATE_REDUCTION
        urp.UNATE_REDUCTION = flag
        cover_mod.clear_contains_memo()  # memo hits bypass tautology
        try:
            with perf.collect() as stats:
                symbolic_minimize(sc)
            return stats.urp_recursions
        finally:
            urp.UNATE_REDUCTION = old

    plain = recursions(False)
    reduced = recursions(True)
    assert reduced < plain
    benchmark(lambda: recursions(True))
    benchmark.extra_info["urp_recursions_plain"] = plain
    benchmark.extra_info["urp_recursions_reduced"] = reduced
    record("ablation_urp", {
        "variant": "shannon split only", "urp_recursions_total": plain,
    })
    record("ablation_urp", {
        "variant": "with unate reduction", "urp_recursions_total": reduced,
    })


def test_full_effort_encode_dk16(benchmark):
    """Full-effort encode of a machine from the LOW_EFFORT list.

    dk16 (27 states, 108 product terms) used to need ``effort='low'``;
    the optimized embedding engine and minimizer finish a full-effort
    ihybrid encode in single-digit seconds.  One round only — the
    wall time and counters go to the report and the benchmark JSON.
    """
    fsm = get_machine("dk16")
    res = benchmark.pedantic(
        lambda: encode_fsm(fsm, "ihybrid", effort="full"),
        rounds=1, iterations=1)
    assert res.area > 0
    record("substrate_full_effort", {
        "machine": "dk16", "algorithm": "ihybrid", "effort": "full",
        "area": res.area, "cubes": res.cubes,
        "seconds": round(res.seconds, 2),
    })
