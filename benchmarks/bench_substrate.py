"""Substrate micro-benchmarks and ablations.

Not a table of the paper, but the measurements DESIGN.md calls out for
the design choices that make the pure-Python reproduction feasible:

* espresso with an explicit off-set vs tautology-based implicant checks
  (the off-set construction from deterministic rows is what keeps the
  encoded-cover minimization fast);
* unate-recursive tautology throughput on MV covers;
* semiexact_code throughput (the inner loop of ihybrid);
* symbolic minimization stage cost.
"""

import pytest

from repro import perf
from repro.constraints.input_constraints import extract_input_constraints
from repro.encoding.iexact import semiexact_code
from repro.encoding.nova import encode_fsm
from repro.fsm.benchmarks import benchmark as get_machine
from repro.fsm.symbolic_cover import build_symbolic_cover
from repro.logic import cover as cover_mod
from repro.logic import urp
from repro.logic.espresso import espresso
from repro.logic.urp import tautology
from repro.symbolic.symbolic_min import symbolic_minimize

from conftest import record


@pytest.fixture(scope="module")
def ex3_cover():
    return build_symbolic_cover(get_machine("ex3"))


def test_espresso_with_explicit_off(benchmark, ex3_cover):
    sc = ex3_cover
    result = benchmark(lambda: espresso(sc.on, sc.dc, off=sc.off))
    assert len(result) <= len(sc.on)
    record("ablation_espresso", {
        "variant": "explicit off-set", "cubes": len(result),
    })


def test_espresso_tautology_oracle(benchmark, ex3_cover):
    sc = ex3_cover
    result = benchmark(lambda: espresso(sc.on, sc.dc))
    assert len(result) <= len(sc.on)
    record("ablation_espresso", {
        "variant": "tautology oracle", "cubes": len(result),
    })


def test_espresso_low_effort(benchmark, ex3_cover):
    sc = ex3_cover
    result = benchmark(lambda: espresso(sc.on, sc.dc, off=sc.off,
                                        effort="low"))
    assert len(result) <= len(sc.on)
    record("ablation_espresso", {
        "variant": "low effort (expand+irredundant)", "cubes": len(result),
    })


def test_tautology_throughput(benchmark, ex3_cover):
    sc = ex3_cover
    cover = sc.on.cofactor(sc.on.cubes[0])
    benchmark(lambda: tautology(cover))


def test_semiexact_throughput(benchmark):
    sc = build_symbolic_cover(get_machine("bbtas"))
    cs = extract_input_constraints(sc).state_constraints
    masks = cs.masks()

    def run():
        return semiexact_code(masks[:2], cs.n, 3)

    enc = benchmark(run)
    assert enc is None or len(set(enc.codes)) == cs.n


def test_symbolic_minimize_cost(benchmark):
    sc = build_symbolic_cover(get_machine("beecount"))
    res = benchmark(lambda: symbolic_minimize(sc))
    assert res.final_cover_size > 0


def test_unate_reduction_ablation(benchmark):
    """URP recursions of a full symbolic minimization, with and without
    the unate reductions (tautology weakest-branch cofactor, complement
    missing-value factoring).

    Symbolic minimization is complement-heavy (every REDUCE computes
    per-cube complements), where the reductions save close to half of
    the Shannon splits: bbara goes from ~4.9k to ~2.6k recursions.
    Results are identical either way — both reductions are exact.
    """
    sc = build_symbolic_cover(get_machine("bbara"))

    def recursions(flag: bool) -> int:
        old = urp.UNATE_REDUCTION
        urp.UNATE_REDUCTION = flag
        cover_mod.clear_contains_memo()  # memo hits bypass tautology
        try:
            with perf.collect() as stats:
                symbolic_minimize(sc)
            return stats.urp_recursions
        finally:
            urp.UNATE_REDUCTION = old

    plain = recursions(False)
    reduced = recursions(True)
    assert reduced < plain
    benchmark(lambda: recursions(True))
    benchmark.extra_info["urp_recursions_plain"] = plain
    benchmark.extra_info["urp_recursions_reduced"] = reduced
    record("ablation_urp", {
        "variant": "shannon split only", "urp_recursions_total": plain,
    })
    record("ablation_urp", {
        "variant": "with unate reduction", "urp_recursions_total": reduced,
    })


def test_full_effort_encode_dk16(benchmark):
    """Full-effort encode of a machine from the LOW_EFFORT list.

    dk16 (27 states, 108 product terms) used to need ``effort='low'``;
    the optimized embedding engine and minimizer finish a full-effort
    ihybrid encode in single-digit seconds.  One round only — the
    wall time and counters go to the report and the benchmark JSON.
    """
    fsm = get_machine("dk16")
    res = benchmark.pedantic(
        lambda: encode_fsm(fsm, "ihybrid", effort="full"),
        rounds=1, iterations=1)
    assert res.area > 0
    record("substrate_full_effort", {
        "machine": "dk16", "algorithm": "ihybrid", "effort": "full",
        "area": res.area, "cubes": res.cubes,
        "seconds": round(res.seconds, 2),
    })
