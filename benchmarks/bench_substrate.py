"""Substrate micro-benchmarks and ablations.

Not a table of the paper, but the measurements DESIGN.md calls out for
the design choices that make the pure-Python reproduction feasible:

* espresso with an explicit off-set vs tautology-based implicant checks
  (the off-set construction from deterministic rows is what keeps the
  encoded-cover minimization fast);
* unate-recursive tautology throughput on MV covers;
* semiexact_code throughput (the inner loop of ihybrid);
* symbolic minimization stage cost.
"""

import pytest

from repro.constraints.input_constraints import extract_input_constraints
from repro.encoding.iexact import semiexact_code
from repro.fsm.benchmarks import benchmark as get_machine
from repro.fsm.symbolic_cover import build_symbolic_cover
from repro.logic.espresso import espresso
from repro.logic.urp import tautology
from repro.symbolic.symbolic_min import symbolic_minimize

from conftest import record


@pytest.fixture(scope="module")
def ex3_cover():
    return build_symbolic_cover(get_machine("ex3"))


def test_espresso_with_explicit_off(benchmark, ex3_cover):
    sc = ex3_cover
    result = benchmark(lambda: espresso(sc.on, sc.dc, off=sc.off))
    assert len(result) <= len(sc.on)
    record("ablation_espresso", {
        "variant": "explicit off-set", "cubes": len(result),
    })


def test_espresso_tautology_oracle(benchmark, ex3_cover):
    sc = ex3_cover
    result = benchmark(lambda: espresso(sc.on, sc.dc))
    assert len(result) <= len(sc.on)
    record("ablation_espresso", {
        "variant": "tautology oracle", "cubes": len(result),
    })


def test_espresso_low_effort(benchmark, ex3_cover):
    sc = ex3_cover
    result = benchmark(lambda: espresso(sc.on, sc.dc, off=sc.off,
                                        effort="low"))
    assert len(result) <= len(sc.on)
    record("ablation_espresso", {
        "variant": "low effort (expand+irredundant)", "cubes": len(result),
    })


def test_tautology_throughput(benchmark, ex3_cover):
    sc = ex3_cover
    cover = sc.on.cofactor(sc.on.cubes[0])
    benchmark(lambda: tautology(cover))


def test_semiexact_throughput(benchmark):
    sc = build_symbolic_cover(get_machine("bbtas"))
    cs = extract_input_constraints(sc).state_constraints
    masks = cs.masks()

    def run():
        return semiexact_code(masks[:2], cs.n, 3)

    enc = benchmark(run)
    assert enc is None or len(set(enc.codes)) == cs.n


def test_symbolic_minimize_cost(benchmark):
    sc = build_symbolic_cover(get_machine("beecount"))
    res = benchmark(lambda: symbolic_minimize(sc))
    assert res.final_cover_size > 0
