"""Work-stealing batch runner scaling snapshot (BENCH_PR8.json).

Runs the same paced task manifest under 1, 2, and 4 cooperating
claimant processes (``BatchRunner.join``) and measures wall clock,
claims, and published steals — then a reclaim scenario: one of two
claimants is SIGKILLed mid-run and the survivor must steal and finish
the dead claimant's work.

The tasks are paced with a planted in-worker sleep so the benchmark
measures the *coordination substrate* (claim/heartbeat/merge traffic,
steal latency) rather than encode CPU: on a single-core runner the
encodes themselves cannot scale, but lease-coordinated waiting can and
should.  The reclaim run reports how much wall clock the death costs
(one lease TTL of limbo plus the re-run) and proves the merged result
set stays complete.

Usage::

    PYTHONPATH=src python benchmarks/bench_steal.py --out BENCH_PR8.json
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
import subprocess
import sys
import tempfile
import textwrap
import time
from typing import Dict, List, Optional

from repro.bench.record import capture_environment
from repro.fsm.benchmarks import benchmark_names
from repro.runner import lease_stats, merge_results, read_results

LEASE_TTL = 2.0
PACE_SLEEP = 0.4

DRIVER = textwrap.dedent("""
    import sys
    from repro.runner import BatchRunner, BatchTask
    from repro.testing.faults import Fault

    def main():
        run_dir, claimant, ttl = sys.argv[1], sys.argv[2], float(sys.argv[3])
        pace = float(sys.argv[4])
        tasks = [BatchTask(machine=name, algorithm="igreedy",
                           faults=[Fault("encode", action="sleep",
                                         seconds=pace).to_dict()])
                 for name in sys.argv[5].split(",")]
        report = BatchRunner.join(run_dir, tasks=tasks, jobs=1,
                                  task_timeout=None, retries=1,
                                  claimant=claimant, lease_ttl=ttl).run()
        sys.exit(0 if report.ok else 1)

    if __name__ == "__main__":
        main()
""")


def _env() -> Dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    env.setdefault("NOVA_CACHE", "off")  # measure real work, not hits
    return env


def _spawn(driver: Path, run_dir: Path, claimant: str,
           machines: List[str]) -> subprocess.Popen:
    run_dir.mkdir(parents=True, exist_ok=True)
    log = open(run_dir / f"claimant.{claimant}.log", "w")
    proc = subprocess.Popen(
        [sys.executable, str(driver), str(run_dir), claimant,
         str(LEASE_TTL), str(PACE_SLEEP), ",".join(machines)],
        env=_env(), stdout=log, stderr=subprocess.STDOUT)
    log.close()
    return proc


def _check_exits(run_dir: Path, claimants: List[str],
                 codes: List[int]) -> None:
    for claimant, code in zip(claimants, codes):
        if code == 0:
            continue
        log = run_dir / f"claimant.{claimant}.log"
        tail = log.read_text()[-2000:] if log.exists() else "<no log>"
        raise RuntimeError(
            f"claimant {claimant} exited {code}; log tail:\n{tail}")


def _wait_for_manifest(run_dir: Path, deadline_s: float = 60.0) -> None:
    t0 = time.monotonic()
    while not (run_dir / "manifest.json").exists():
        if time.monotonic() - t0 > deadline_s:
            raise RuntimeError("manifest never appeared")
        time.sleep(0.02)


def _run_stats(run_dir: Path, wall: float, claimants: int) -> Dict:
    merged = merge_results(run_dir)
    stats = lease_stats(run_dir)
    return {
        "claimants": claimants,
        "wall_s": round(wall, 3),
        "completed": len(merged.records),
        "ok": sum(1 for r in merged.records if r["status"] == "ok"),
        "shards": len(merged.shards),
        "steals_published": stats["total_epoch"],
        "stale_rejected": len(merged.rejected),
    }


def bench_scaling(driver: Path, machines: List[str], root: Path) -> List[Dict]:
    out = []
    for k in (1, 2, 4):
        run_dir = root / f"scale-{k}"
        t0 = time.monotonic()
        procs = [_spawn(driver, run_dir, "w0", machines)]
        _wait_for_manifest(run_dir)
        procs += [_spawn(driver, run_dir, f"w{i}", machines)
                  for i in range(1, k)]
        codes = [p.wait(timeout=600) for p in procs]
        wall = time.monotonic() - t0
        _check_exits(run_dir, [f"w{i}" for i in range(k)], codes)
        row = _run_stats(run_dir, wall, claimants=k)
        assert row["completed"] == len(machines), row
        out.append(row)
    base = out[0]["wall_s"]
    for row in out:
        row["speedup"] = round(base / max(row["wall_s"], 1e-9), 2)
    return out


def bench_reclaim(driver: Path, machines: List[str], root: Path) -> Dict:
    """Kill one of two claimants mid-run; the survivor steals the rest."""
    run_dir = root / "reclaim"
    t0 = time.monotonic()
    victim = _spawn(driver, run_dir, "victim", machines)
    _wait_for_manifest(run_dir)
    survivor = _spawn(driver, run_dir, "survivor", machines)
    # let the victim journal at least one record, then kill it cold
    deadline = time.monotonic() + 120
    victim_shard = run_dir / "results.victim.jsonl"
    while time.monotonic() < deadline:
        if victim_shard.exists() and read_results(victim_shard).records:
            break
        time.sleep(0.02)
    victim.kill()
    victim.wait()
    kill_at = time.monotonic() - t0
    code = survivor.wait(timeout=600)
    wall = time.monotonic() - t0
    _check_exits(run_dir, ["survivor"], [code])
    row = _run_stats(run_dir, wall, claimants=2)
    merged = merge_results(run_dir)
    victim_records = sum(1 for r in merged.records
                         if r.get("claimant") == "victim")
    row.update({
        "killed_after_s": round(kill_at, 3),
        "victim_records": victim_records,
        "survivor_records": row["completed"] - victim_records,
        "reclaimed": row["steals_published"],
        "lease_ttl_s": LEASE_TTL,
    })
    assert row["completed"] == len(machines), row
    assert row["reclaimed"] >= 1, "the survivor never stole anything"
    return row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="write the JSON snapshot here")
    parser.add_argument("--machines", type=int, default=8,
                        help="how many small benchmark machines to sweep")
    args = parser.parse_args(argv)

    machines = benchmark_names("small")[:args.machines]
    with tempfile.TemporaryDirectory(prefix="bench-steal-") as tmp:
        root = Path(tmp)
        driver = root / "claimant.py"
        driver.write_text(DRIVER)
        snapshot = {
            "bench": "work-stealing",
            "machines": machines,
            "pace_sleep_s": PACE_SLEEP,
            "lease_ttl_s": LEASE_TTL,
            "python": sys.version.split()[0],
            "environment": capture_environment(),
            "scaling": bench_scaling(driver, machines, root),
            "reclaim": bench_reclaim(driver, machines, root),
        }
    text = json.dumps(snapshot, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
