"""Shared infrastructure for the table/figure regeneration benchmarks.

Each ``bench_table*.py`` regenerates one table of the paper: every
benchmarked unit computes one row, rows accumulate per table, and at
session teardown the formatted tables are printed and written to
``benchmarks/results/``.  EXPERIMENTS.md records a full run.

The machine subset defaults to the quick ``small`` set; set
``NOVA_BENCH_SET=paper30`` (or ``table5`` / ``table7`` / ``all``) for
the full paper protocol.

Parallelism: ``NOVA_BENCH_JOBS=N`` (N > 1) computes each table's rows
up front through the crash-safe batch runner — one isolated worker
process per row, hard ``NOVA_BENCH_TASK_TIMEOUT``-second kills (default
900), one retry — and the per-row provenance journal lands in
``benchmarks/results/runs/table<N>/results.jsonl``.  The default
``NOVA_BENCH_JOBS=1`` keeps the historical serial in-process path, so
pytest-benchmark timings still measure the row computation itself.
"""

from __future__ import annotations

from collections import defaultdict
from pathlib import Path
import shutil
from typing import Callable, Dict, List, Sequence

import pytest

from repro import perf
from repro.bench import discover
from repro.eval.tables import format_table

SUBSET = discover.bench_subset()
JOBS = discover.bench_jobs()
TASK_TIMEOUT = discover.task_timeout()
RESULTS_DIR = Path(__file__).parent / "results"

# substrate counters appended to every recorded row (compact names keep
# the fixed-width reports readable); totals since the test started, so
# multi-round pytest-benchmark runs accumulate across rounds
PERF_ROW_COUNTERS = {
    "taut": "tautology_calls",
    "urp_rec": "urp_recursions",
    "memo_hit": "contains_memo_hits",
    "exp_raise": "expand_raises",
    "pe_work": "pos_equiv_work",
}

_tables: Dict[str, List[dict]] = defaultdict(list)
_notes: Dict[str, List[str]] = defaultdict(list)


def subset_names(table: str = "paper30") -> List[str]:
    """Machines to run (delegates to :mod:`repro.bench.discover`)."""
    return discover.subset_names(table, subset=SUBSET)


_batch_rows: Dict[int, Dict[str, dict]] = {}


def table_row(table_num: int, name: str, row_fn: Callable[[str], dict],
              names: Sequence[str]) -> dict:
    """One table row — serial, or prefetched in parallel by the runner.

    With ``NOVA_BENCH_JOBS<=1`` this is exactly ``row_fn(name)``.  With
    more jobs, the first call fans the whole table (*names*) out over
    the batch runner and every later call is a journal lookup, so the
    table is reproduced in parallel with per-row provenance.
    """
    if JOBS <= 1:
        return row_fn(name)
    if table_num not in _batch_rows:
        _batch_rows[table_num] = _run_table_batch(table_num, list(names))
    return _batch_rows[table_num][name]


def _run_table_batch(table_num: int, names: List[str]) -> Dict[str, dict]:
    from repro.runner import BatchRunner, BatchTask

    run_dir = RESULTS_DIR / "runs" / f"table{table_num}"
    if run_dir.exists():  # provenance of the *current* run only
        shutil.rmtree(run_dir)
    tasks = [BatchTask(machine=n, kind="table", table=table_num)
             for n in names]
    report = BatchRunner(tasks, run_dir, jobs=JOBS,
                         task_timeout=TASK_TIMEOUT, retries=1).run()
    rows = {}
    for e in report.entries:
        if not e.get("record"):
            continue
        row = e["record"]["row"]
        # the substrate counters were collected *inside* the worker;
        # fold them into the row exactly as record() would in-process
        worker_stats = e.get("perf") or {}
        for col, counter in PERF_ROW_COUNTERS.items():
            row.setdefault(col, worker_stats.get(counter, 0))
        rows[e["machine"]] = row
    missing = [n for n in names if n not in rows]
    if missing:
        failures = {e["machine"]: (e.get("error") or {}).get("rendered")
                    for e in report.entries if e["status"] == "failed"}
        raise RuntimeError(
            f"table{table_num} batch left rows incomplete: {missing}; "
            f"failures: {failures}; journal: {run_dir / 'results.jsonl'}")
    return rows


def record(table: str, row: dict) -> None:
    stats = perf.STATS
    if stats is not None:
        for col, counter in PERF_ROW_COUNTERS.items():
            row.setdefault(col, getattr(stats, counter))
    _tables[table].append(row)


def note(table: str, text: str) -> None:
    _notes[table].append(text)


@pytest.fixture(autouse=True)
def _perf_counters(request):
    """Collect substrate counters per benchmark test.

    ``record()`` reads the live stats when called inside the test; at
    teardown the full counter set lands in ``benchmark.extra_info`` so
    the pytest-benchmark JSON carries it too.
    """
    bench = request.getfixturevalue("benchmark") \
        if "benchmark" in request.fixturenames else None
    with perf.collect() as stats:
        yield stats
    if bench is not None:
        for key, value in stats.as_dict().items():
            if value:
                bench.extra_info[key] = value


@pytest.fixture(scope="session", autouse=True)
def _write_reports():
    yield
    from repro.eval.report import to_csv, to_markdown

    RESULTS_DIR.mkdir(exist_ok=True)
    for table, rows in sorted(_tables.items()):
        text = format_table(rows, title=f"{table} (subset={SUBSET})")
        for extra in _notes.get(table, []):
            text += "\n" + extra
        path = RESULTS_DIR / f"{table}.txt"
        path.write_text(text + "\n")
        md = to_markdown(rows, title=f"{table} (subset={SUBSET})")
        for extra in _notes.get(table, []):
            md += f"\n> {extra}\n"
        (RESULTS_DIR / f"{table}.md").write_text(md)
        (RESULTS_DIR / f"{table}.csv").write_text(to_csv(rows))
        print(f"\n{text}\n[written to {path} (+ .md/.csv)]")
