"""Latency/throughput snapshot of the encode service (BENCH_PR7.json).

Boots the service in-process (real HTTP over loopback, real spawn
workers) and measures the four serving regimes against each other:

* **cold**     — distinct fingerprints, empty cache: every request
  pays admission + one worker spawn + the full pipeline;
* **warm**     — the same requests again: answered from the in-process
  memory tier, no admission, no worker;
* **coalesced**— N concurrent clients, one fresh fingerprint: one
  worker spawn serves all N;
* **uncoalesced baseline** — the same N requests strictly one after
  another with the cache off: what coalescing saves;
* **overload** — a burst of cold requests against one worker and a
  short queue: how fast the 429s come back while the slot is busy.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_PR7.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.fsm.benchmarks import benchmark_names
from repro.server import EncodeService, ServerApp

MACHINES = ("dk27", "dk17", "dk14", "bbara", "dk16", "shiftreg")


async def request(host: str, port: int,
                  payload: Dict) -> Tuple[int, Dict, float]:
    t0 = time.perf_counter()
    reader, writer = await asyncio.open_connection(host, port)
    body = json.dumps(payload).encode()
    writer.write((f"POST /encode HTTP/1.1\r\n"
                  f"Content-Length: {len(body)}\r\n\r\n").encode() + body)
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, raw = data.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, json.loads(raw), time.perf_counter() - t0


def percentiles(samples: List[float]) -> Dict:
    xs = sorted(samples)
    return {
        "n": len(xs),
        "mean_ms": round(statistics.mean(xs) * 1000, 3),
        "p50_ms": round(xs[len(xs) // 2] * 1000, 3),
        "max_ms": round(xs[-1] * 1000, 3),
    }


async def bench(machines: List[str], coalesce_n: int) -> Dict:
    out: Dict = {}

    # --- cold vs warm ------------------------------------------------
    svc = EncodeService(workers=2, queue_limit=8, cache_policy="memory")
    app = ServerApp(svc, port=0, log_stream=open("/dev/null", "w"))
    host, port = await app.start()
    body = lambda m: {"machine": m,                      # noqa: E731
                      "options": {"algorithm": "igreedy",
                                  "cache": "memory"}}
    cold: List[float] = []
    t0 = time.perf_counter()
    for m in machines:
        status, payload, dt = await request(host, port, body(m))
        assert status == 200 and payload["cache"] is None, (m, status)
        cold.append(dt)
    cold_wall = time.perf_counter() - t0
    warm: List[float] = []
    t0 = time.perf_counter()
    for m in machines:
        status, payload, dt = await request(host, port, body(m))
        assert status == 200 and payload["cache"] == "memory", (m, status)
        warm.append(dt)
    warm_wall = time.perf_counter() - t0
    out["cold"] = percentiles(cold)
    out["cold"]["throughput_rps"] = round(len(machines) / cold_wall, 2)
    out["warm"] = percentiles(warm)
    out["warm"]["throughput_rps"] = round(len(machines) / warm_wall, 2)
    out["warm_speedup"] = round(out["cold"]["mean_ms"]
                                / max(out["warm"]["mean_ms"], 1e-9), 1)

    # --- coalesced vs uncoalesced ------------------------------------
    fresh = {"machine": machines[0],
             "options": {"algorithm": "ihybrid", "cache": "memory"}}
    t0 = time.perf_counter()
    results = await asyncio.gather(
        *[request(host, port, dict(fresh)) for _ in range(coalesce_n)])
    coalesced_wall = time.perf_counter() - t0
    assert all(status == 200 for status, _p, _dt in results)
    spawns_for_burst = svc.stats.worker_spawns - len(machines)
    out["coalesced"] = {
        "clients": coalesce_n,
        "worker_spawns": spawns_for_burst,
        "wall_ms": round(coalesced_wall * 1000, 3),
        **{k: v for k, v in percentiles(
            [dt for _s, _p, dt in results]).items() if k != "n"},
    }
    await app.shutdown()

    svc2 = EncodeService(workers=2, queue_limit=8, cache_policy="off")
    app2 = ServerApp(svc2, port=0, log_stream=open("/dev/null", "w"))
    host2, port2 = await app2.start()
    nocache = {"machine": machines[0],
               "options": {"algorithm": "ihybrid", "cache": "off"}}
    t0 = time.perf_counter()
    for _ in range(coalesce_n):
        status, _payload, _dt = await request(host2, port2, dict(nocache))
        assert status == 200
    uncoalesced_wall = time.perf_counter() - t0
    await app2.shutdown()
    out["uncoalesced"] = {
        "clients": coalesce_n,
        "worker_spawns": svc2.stats.worker_spawns,
        "wall_ms": round(uncoalesced_wall * 1000, 3),
    }
    out["coalescing_speedup"] = round(
        uncoalesced_wall / max(coalesced_wall, 1e-9), 1)

    # --- overload ----------------------------------------------------
    svc3 = EncodeService(workers=1, queue_limit=1, cache_policy="off",
                         worker_faults=[{
                             "stage": "encode", "action": "sleep",
                             "seconds": 3.0}],
                         kill_grace=0.5)
    app3 = ServerApp(svc3, port=0, log_stream=open("/dev/null", "w"))
    host3, port3 = await app3.start()
    burst = [{"machine": m,
              "options": {"algorithm": "igreedy", "cache": "off",
                          "timeout": 2.0}} for m in machines]
    results = await asyncio.gather(
        *[request(host3, port3, b) for b in burst])
    statuses = sorted(s for s, _p, _dt in results)
    rejects = [dt for s, _p, dt in results if s == 429]
    out["overload"] = {
        "burst": len(burst),
        "statuses": statuses,
        "rejected": len(rejects),
        "reject_latency_ms": (percentiles(rejects) if rejects else None),
    }
    await app3.shutdown()
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="write the JSON snapshot here")
    parser.add_argument("--coalesce-n", type=int, default=8)
    args = parser.parse_args(argv)

    machines = [m for m in MACHINES if m in benchmark_names("all")]
    snapshot = {
        "bench": "encode-service",
        "machines": machines,
        "python": sys.version.split()[0],
        **asyncio.run(bench(machines, args.coalesce_n)),
    }
    text = json.dumps(snapshot, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
