#!/usr/bin/env python3
"""Sweep the small benchmark machines across every encoding algorithm.

Reproduces, on the quick subset, the comparison the paper's Tables
II-IV make: the four NOVA algorithms against KISS, MUSTANG, 1-hot, and
the best of a set of random assignments.  Prints one row per machine
and the area totals, ending with the paper's headline ratios.

Run:  python examples/benchmark_sweep.py            (small subset)
      python examples/benchmark_sweep.py dk14 ex3   (specific machines)
"""

import random
import sys

from repro import benchmark, benchmark_names, encode_fsm


def sweep(names):
    algorithms = ("ihybrid", "igreedy", "iohybrid", "kiss", "mustang")
    header = f"{'example':10s}" + "".join(f"{a:>10s}" for a in algorithms)
    header += f"{'rand-best':>10s}{'1-hot':>8s}"
    print(header)
    print("-" * len(header))
    totals = {a: 0 for a in algorithms}
    totals["random"] = 0
    for name in names:
        fsm = benchmark(name)
        row = f"{name:10s}"
        for algorithm in algorithms:
            r = encode_fsm(fsm, algorithm)
            totals[algorithm] += r.area
            row += f"{r.area:10d}"
        trial_seeds = random.Random(1989).sample(range(1 << 30),
                                                 min(fsm.num_states, 8))
        rand = min(
            encode_fsm(fsm, "random", seed=s).area for s in trial_seeds
        )
        totals["random"] += rand
        onehot = encode_fsm(fsm, "onehot", evaluate=False)
        row += f"{rand:10d}{onehot.cubes:8d}"
        print(row)
    print("-" * len(header))
    total_row = f"{'TOTAL':10s}"
    for algorithm in algorithms:
        total_row += f"{totals[algorithm]:10d}"
    total_row += f"{totals['random']:10d}"
    print(total_row)

    nova = min(totals["ihybrid"], totals["igreedy"], totals["iohybrid"])
    print(f"\nNOVA best vs KISS    : {nova / totals['kiss']:.2f} "
          f"(paper: about 0.80)")
    print(f"NOVA best vs random  : {nova / totals['random']:.2f} "
          f"(paper: about 0.70)")


def main() -> None:
    names = sys.argv[1:] or benchmark_names("small")
    sweep(names)


if __name__ == "__main__":
    main()
