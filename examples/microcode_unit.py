#!/usr/bin/env python3
"""Symbolic outputs: encoding a microcode sequencer's command field.

The paper closes by flagging "the case when the proper output part is
given symbolically" as future work; this reproduction implements it
(see repro.encoding.osym).  A sequencer that emits symbolic commands
(NOP/FETCH/ALU/MEM/BRANCH/TRAP) gets all three of its symbolic fields
encoded: the states, and the output commands — the latter with
dominance-aware codes so that commands sharing product terms can share
PLA rows.

Run:  python examples/microcode_unit.py
"""

from repro import encode_fsm, parse_kiss
from repro.encoding.verify import verify_encoded_machine

SEQUENCER = """
.i 3
.o 2
.symout NOP FETCH ALU MEM BRANCH TRAP
.r s_if
# cond/irq/mode  ps     ns     valid,busy  command
0--  s_if   s_id   10 FETCH
1--  s_if   s_tr   01 TRAP
-0-  s_id   s_ex   10 ALU
-1-  s_id   s_br   10 BRANCH
--0  s_ex   s_ma   11 ALU
--1  s_ex   s_if   10 NOP
---  s_ma   s_wb   11 MEM
-0-  s_wb   s_if   10 NOP
-1-  s_wb   s_tr   01 TRAP
---  s_br   s_if   10 BRANCH
0--  s_tr   s_tr   01 TRAP
1--  s_tr   s_if   00 NOP
"""


def main() -> None:
    fsm = parse_kiss(SEQUENCER, name="sequencer")
    print(f"machine: {fsm!r}")
    print(f"symbolic commands: {', '.join(fsm.symbolic_output_values)}\n")

    print(f"{'algorithm':10s} {'state bits':>10s} {'cmd bits':>8s} "
          f"{'cubes':>6s} {'area':>6s}")
    best = None
    for algorithm in ("ihybrid", "igreedy", "iohybrid", "onehot"):
        r = encode_fsm(fsm, algorithm)
        print(f"{algorithm:10s} {r.state_encoding.nbits:10d} "
              f"{r.out_symbol_encoding.nbits:8d} {r.cubes:6d} {r.area:6d}")
        if best is None or r.area < best.area:
            best = r

    print(f"\nbest: {best.algorithm}")
    print("state codes:")
    for i, s in enumerate(fsm.states):
        print(f"  {s:8s} {best.state_encoding.as_bits(i)}")
    print("command codes (dominance-aware):")
    for i, s in enumerate(fsm.symbolic_output_values):
        print(f"  {s:8s} {best.out_symbol_encoding.as_bits(i)}")

    report = verify_encoded_machine(
        fsm, best.state_encoding, best.pla,
        out_symbol_enc=best.out_symbol_encoding,
    )
    assert report.ok, report.mismatches
    print(f"\nverified: encoded PLA matches the sequencer on "
          f"{report.checked_pairs} (state, input) pairs")


if __name__ == "__main__":
    main()
