#!/usr/bin/env python3
"""Quickstart: encode a finite state machine with NOVA.

Parses a KISS2 description, runs the default encoding pipeline
(multiple-valued minimization -> ihybrid_code -> re-minimization) and
prints the resulting codes, product-term count, and PLA area — the
numbers the paper's tables report.

Run:  python examples/quickstart.py
"""

from repro import encode_fsm, parse_kiss

# a tiny sequence detector: asserts its output after seeing 1,1,0
DETECTOR = """
.i 1
.o 1
.s 4
.r idle
0 idle idle 0
1 idle one  0
0 one  idle 0
1 one  two  0
1 two  two  0
0 two  hit  1
0 hit  idle 0
1 hit  one  0
"""


def main() -> None:
    fsm = parse_kiss(DETECTOR, name="detector")
    print(f"machine: {fsm!r}\n")

    for algorithm in ("ihybrid", "igreedy", "iohybrid", "onehot"):
        result = encode_fsm(fsm, algorithm)
        print(f"{algorithm:9s}  bits={result.bits}  cubes={result.cubes}  "
              f"area={result.area}")

    best = encode_fsm(fsm, "iohybrid")
    print("\nstate codes (iohybrid):")
    for i, state in enumerate(fsm.states):
        print(f"  {state:6s} {best.state_encoding.as_bits(i)}")

    print("\nminimized encoded cover (inputs | state bits -> "
          "next bits | output):")
    for row in best.pla.cover.to_strings():
        print(f"  {row}")


if __name__ == "__main__":
    main()
