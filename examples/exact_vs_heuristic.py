#!/usr/bin/env python3
"""The paper's central observation: exact constraint satisfaction loses.

Table II shows that iexact — which satisfies *all* input constraints by
growing the code length as far as needed — produces fewer product terms
but consistently **larger areas** than ihybrid, which satisfies only
the constraints that fit in the minimum code length.  Extra code bits
cost PLA columns on every row; saved product terms rarely pay for them.

This example reproduces the effect on machines where the exact search
completes, and also shows the constraint-satisfaction statistics that
Table VI reports.

Run:  python examples/exact_vs_heuristic.py
"""

from repro import benchmark, encode_fsm
from repro.constraints.input_constraints import extract_input_constraints
from repro.encoding.base import satisfied_weight
from repro.encoding.ihybrid import HybridStats, ihybrid_code
from repro.fsm.symbolic_cover import build_symbolic_cover

MACHINES = ["shiftreg", "bbtas", "beecount", "dol", "modulo12"]


def main() -> None:
    print(f"{'example':10s} {'iexact':>22s} {'ihybrid':>22s}")
    print(f"{'':10s} {'bits/cubes/area':>22s} {'bits/cubes/area':>22s}")
    wins = 0
    for name in MACHINES:
        fsm = benchmark(name)
        try:
            exact = encode_fsm(fsm, "iexact")
        except RuntimeError:
            print(f"{name:10s} {'(search gave up)':>22s}")
            continue
        hybrid = encode_fsm(fsm, "ihybrid")
        e = f"{exact.bits}/{exact.cubes}/{exact.area}"
        h = f"{hybrid.bits}/{hybrid.cubes}/{hybrid.area}"
        marker = ""
        if hybrid.area <= exact.area:
            wins += 1
            marker = "   <- ihybrid area wins/ties"
        print(f"{name:10s} {e:>22s} {h:>22s}{marker}")

    print("\nconstraint satisfaction detail (Table VI flavour):")
    print(f"{'example':10s} {'wsat':>6s} {'wunsat':>7s} {'clength':>8s}")
    for name in MACHINES:
        sc = build_symbolic_cover(benchmark(name))
        cs = extract_input_constraints(sc).state_constraints
        stats = HybridStats()
        ihybrid_code(cs, nbits=cs.n, stats=stats)
        print(f"{name:10s} {stats.satisfied_weight:6d} "
              f"{stats.unsatisfied_weight:7d} {stats.final_bits:8d}")


if __name__ == "__main__":
    main()
