#!/usr/bin/env python3
"""Using the logic substrate directly: PLA minimization and exactness.

NOVA sits on a full two-level / multiple-valued minimizer; this example
shows it standing alone — read an espresso-format PLA, minimize it
heuristically and exactly, verify both, and print the factored form
literal estimate.

Run:  python examples/pla_tools.py
"""

from repro.logic import (
    espresso,
    exact_minimize,
    parse_pla,
    verify_minimization,
    write_pla,
)

# a 4-input 3-output PLA with redundancy and don't cares
EXAMPLE = """
.i 4
.o 3
.p 10
0000 100
0001 100
0011 110
0010 1-0
01-- 010
1100 011
1101 011
111- 001
1011 001
1010 00-
.e
"""


def main() -> None:
    pla = parse_pla(EXAMPLE)
    print(f"input: {len(pla.on)} on-cubes, {len(pla.dc)} dc-cubes, "
          f"{pla.num_binary} inputs, {pla.num_outputs} outputs\n")

    heuristic = espresso(pla.on, pla.dc)
    assert verify_minimization(heuristic, pla.on, pla.dc)
    print(f"espresso  : {len(heuristic)} cubes")
    for row in write_pla(heuristic, pla.num_binary).splitlines():
        print(f"  {row}")

    exact = exact_minimize(pla.on, pla.dc)
    assert verify_minimization(exact, pla.on, pla.dc)
    print(f"\nexact     : {len(exact)} cubes "
          f"(heuristic gap: {len(heuristic) - len(exact)})")

    # the same engine handles multiple-valued covers: minimize a function
    # of one 5-valued variable directly
    from repro.logic import Cover, Format

    fmt = Format([5, 2, 1])
    mv = Cover(fmt, [
        fmt.cube_from_fields([0b00001, 1, 1]),
        fmt.cube_from_fields([0b00010, 1, 1]),
        fmt.cube_from_fields([0b00100, 1, 1]),
        fmt.cube_from_fields([0b00100, 2, 1]),
        fmt.cube_from_fields([0b01000, 2, 1]),
    ])
    mv_min = espresso(mv)
    print(f"\nMV cover  : {len(mv)} cubes -> {len(mv_min)} cubes")
    for row in mv_min.to_strings():
        print(f"  {row}")


if __name__ == "__main__":
    main()
