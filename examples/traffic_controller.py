#!/usr/bin/env python3
"""Encoding a realistic controller: a traffic-light intersection FSM.

This is the kind of control logic the paper's introduction motivates: a
synchronous controller with sensor inputs, light-driver outputs, and a
handful of symbolic states.  The example builds the machine with the
library API (no KISS file needed), encodes it with every NOVA
algorithm plus the baselines, and verifies that the encoded, minimized
PLA still behaves exactly like the original table.

Run:  python examples/traffic_controller.py
"""

import itertools

from repro import FSM, Transition, encode_fsm
from repro.eval.multilevel import multilevel_literals


def build_controller() -> FSM:
    """Two-road intersection with a car sensor and a long/short timer.

    Inputs:  c = car waiting on the side road, t = timer expired
    Outputs: highway green/yellow, side-road green/yellow
    States:  HG (highway green), HY (highway yellow),
             SG (side green), SY (side yellow)
    """
    rows = [
        # c t   ps   ns   hg hy sg sy
        Transition("0-", "HG", "HG", "1000"),
        Transition("1-", "HG", "HY", "1000"),
        Transition("-0", "HY", "HY", "0100"),
        Transition("-1", "HY", "SG", "0100"),
        Transition("00", "SG", "SG", "0010"),
        Transition("1-", "SG", "SG", "0010"),
        Transition("01", "SG", "SY", "0010"),
        Transition("-0", "SY", "SY", "0001"),
        Transition("-1", "SY", "HG", "0001"),
    ]
    return FSM("traffic", 2, 4, ["HG", "HY", "SG", "SY"], rows, reset="HG")


def simulate(fsm, enc, pla, steps):
    """Run the encoded PLA next to the symbolic machine, step by step."""
    fmt = pla.cover.fmt
    out_var = fmt.num_vars - 1
    state = fsm.reset
    code = enc.code_of(fsm.state_index(state))
    for inputs in steps:
        expected = fsm.next_state_of(state, inputs)
        fields = [{"0": 1, "1": 2}[ch] for ch in inputs]
        fields += [2 if (code >> b) & 1 else 1 for b in range(pla.state_bits)]
        fields += [(1 << fmt.parts[out_var]) - 1]
        minterm = fmt.cube_from_fields(fields)
        asserted = 0
        for cube in pla.cover.cubes:
            if fmt.intersects(cube, minterm):
                asserted |= fmt.field(cube, out_var)
        next_code = asserted & ((1 << pla.state_bits) - 1)
        want = enc.code_of(fsm.state_index(expected[0]))
        assert next_code == want, f"PLA diverged at {state}/{inputs}"
        state, code = expected[0], next_code
    return state


def main() -> None:
    fsm = build_controller()
    print(f"machine: {fsm!r}\n")
    print(f"{'algorithm':10s} {'bits':>4s} {'cubes':>5s} {'area':>5s} "
          f"{'factored lits':>13s}")
    for algorithm in ("ihybrid", "igreedy", "iohybrid", "iovariant",
                      "kiss", "mustang", "onehot"):
        r = encode_fsm(fsm, algorithm)
        lits = multilevel_literals(r.pla)
        print(f"{algorithm:10s} {r.bits:4d} {r.cubes:5d} {r.area:5d} "
              f"{lits:13d}")

    best = encode_fsm(fsm, "iohybrid")
    # drive the encoded PLA through an input sequence and check lockstep
    steps = ["00", "10", "01", "01", "10", "01", "00", "01", "11", "01"]
    final = simulate(fsm, best.state_encoding, best.pla, steps)
    print(f"\nlockstep simulation over {len(steps)} cycles OK "
          f"(final state {final})")
    # exhaustive check over every (state, input) pair
    for state, bits in itertools.product(
        fsm.states, ["".join(b) for b in itertools.product("01", repeat=2)]
    ):
        assert fsm.next_state_of(state, bits) is not None
    print("controller is completely specified")


if __name__ == "__main__":
    main()
