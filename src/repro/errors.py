"""Structured error taxonomy for the encoding pipeline.

Every failure path of the pipeline raises a :class:`ReproError`
subclass instead of an ad-hoc ``ValueError``/``RuntimeError``, so the
driver's fallback chain, the CLI exit-code mapping, and the
fault-injection harness can all dispatch on *what* failed and *where*.
Each error carries structured context — the pipeline stage, the machine
name, and (when a budget was involved) the elapsed work/time against
its limits — rendered into the message so a bare ``str(exc)`` is
already a useful one-line diagnostic.

Classes that replace historical ``ValueError`` sites inherit from
``ValueError`` too, so existing ``except ValueError`` callers keep
working.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def _rebuild_error(cls, args, state):
    """Pickle/JSON reconstructor that bypasses ``__init__``.

    Exception subclasses with extra required ``__init__`` parameters
    break the default ``BaseException.__reduce__`` (it replays
    ``cls(*self.args)``), which in turn breaks ``multiprocessing``
    result transport.  Rebuilding through ``__new__`` plus a state dict
    round-trips any subclass regardless of its constructor signature.
    """
    exc = cls.__new__(cls)
    BaseException.__init__(exc, *args)
    exc.__dict__.update(state)
    return exc


class ReproError(Exception):
    """Base class of all structured pipeline errors.

    Parameters beyond *message* are optional context; whatever is
    provided is appended to the rendered message.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: Optional[str] = None,
        machine: Optional[str] = None,
        elapsed: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.stage = stage
        self.machine = machine
        self.elapsed = elapsed

    def __reduce__(self):
        return (_rebuild_error, (type(self), self.args, dict(self.__dict__)))

    def _context_parts(self) -> List[str]:
        parts = []
        if self.stage is not None:
            parts.append(f"stage={self.stage}")
        if self.machine is not None:
            parts.append(f"machine={self.machine}")
        if self.elapsed is not None:
            parts.append(f"elapsed={self.elapsed:.2f}s")
        return parts

    def __str__(self) -> str:
        parts = self._context_parts()
        if not parts:
            return self.message
        return f"{self.message} [{', '.join(parts)}]"


class ParseError(ReproError, ValueError):
    """A KISS2 (or PLA) source could not be parsed.

    Carries the 1-based source line number and the offending token when
    they are known.
    """

    def __init__(
        self,
        message: str,
        *,
        line: Optional[int] = None,
        token: Optional[str] = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.line = line
        self.token = token

    def _context_parts(self) -> List[str]:
        parts = []
        if self.line is not None:
            parts.append(f"line {self.line}")
        if self.token is not None:
            parts.append(f"token {self.token!r}")
        return parts + super()._context_parts()


class ConstraintError(ReproError, ValueError):
    """An inconsistent symbolic cover or constraint set was produced."""


class BudgetExhausted(ReproError):
    """A :class:`repro.perf.Budget` limit was crossed.

    ``limit`` says which bound tripped (``"work"`` or ``"time"``);
    ``work``/``max_work`` are the counters at the moment of exhaustion.
    """

    def __init__(
        self,
        message: str,
        *,
        limit: str = "time",
        work: Optional[int] = None,
        max_work: Optional[int] = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.limit = limit
        self.work = work
        self.max_work = max_work

    def _context_parts(self) -> List[str]:
        parts = []
        if self.work is not None:
            cap = "∞" if self.max_work is None else str(self.max_work)
            parts.append(f"work={self.work}/{cap}")
        return parts + super()._context_parts()


class EncodingInfeasible(ReproError, ValueError):
    """No encoding satisfying the request exists (or was found within
    the algorithm's own search caps) — e.g. an exhausted ``iexact``
    dimension sweep, or an ``nbits`` too small for the state count."""


class VerificationError(ReproError):
    """The post-encode verification gate found the encoded PLA does not
    implement the source machine.  Carries the first few mismatches."""

    def __init__(
        self,
        message: str,
        *,
        mismatches: Optional[List[str]] = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.mismatches = list(mismatches or [])


class JournalError(ReproError):
    """A batch run directory's durable state is corrupt or contended.

    Raised by :mod:`repro.runner.journal` when a journal shard is
    corrupt beyond the tolerated truncated tail, when ``manifest.json``
    is torn or structurally malformed, or when a second live writer
    tries to open a journal path that already has one (the
    single-writer invariant).  ``path`` names the offending file so the
    one-line CLI rendering points at what to inspect or delete.
    """

    def __init__(
        self,
        message: str,
        *,
        path: Optional[str] = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.path = str(path) if path is not None else None

    def _context_parts(self) -> List[str]:
        parts = []
        if self.path is not None:
            parts.append(f"path={self.path}")
        return parts + super()._context_parts()


class ServiceError(ReproError):
    """The encode service failed a request for a server-side reason.

    Raised by :mod:`repro.server` for failures that belong to the
    *serving* layer — a dead worker pool, a shutdown race, a request the
    service cannot dispatch — as opposed to the pipeline errors above,
    which describe the encoding itself.  ``http_status`` is the
    transport rendering the server should use for this error.
    """

    #: default HTTP status for this class (subclasses override)
    http_status = 500


class OverloadError(ServiceError):
    """Admission control rejected the request: the cold-path queue is
    full.  ``retry_after`` is the server's estimate (seconds) of when
    capacity will free up, rendered as the ``Retry-After`` header."""

    http_status = 429

    def __init__(
        self,
        message: str,
        *,
        retry_after: float = 1.0,
        queued: Optional[int] = None,
        limit: Optional[int] = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.retry_after = retry_after
        self.queued = queued
        self.limit = limit

    def _context_parts(self) -> List[str]:
        parts = []
        if self.queued is not None and self.limit is not None:
            parts.append(f"queued={self.queued}/{self.limit}")
        return parts + super()._context_parts()


class DeadlineExceeded(ServiceError):
    """The request's wall-clock deadline expired before any degradation
    rung produced a result — even the server-side rescue ladder was
    killed or crashed out.  Distinct from :class:`BudgetExhausted`,
    which is the *cooperative* in-pipeline signal the driver recovers
    from; this error means the serving layer itself ran out of road."""

    http_status = 504

    def __init__(
        self,
        message: str,
        *,
        deadline: Optional[float] = None,
        **context,
    ) -> None:
        super().__init__(message, **context)
        self.deadline = deadline


#: Name -> class map of the public taxonomy, for JSON deserialization.
ERROR_CLASSES = {
    cls.__name__: cls
    for cls in (ReproError, ParseError, ConstraintError, BudgetExhausted,
                EncodingInfeasible, VerificationError, JournalError,
                ServiceError, OverloadError, DeadlineExceeded)
}


def error_to_dict(exc: BaseException) -> Dict[str, Any]:
    """JSON-safe rendering of *exc* for journals and batch reports.

    Works for any exception; taxonomy members additionally carry their
    structured context attributes so :func:`error_from_dict` can
    reconstruct an equivalent error in another process.
    """
    d: Dict[str, Any] = {
        "type": type(exc).__name__,
        "message": getattr(exc, "message", None) or str(exc),
        "rendered": str(exc),
    }
    if isinstance(exc, ReproError):
        for key, value in exc.__dict__.items():
            if key != "message" and value is not None:
                d[key] = value
    return d


def error_from_dict(d: Dict[str, Any]) -> ReproError:
    """Rebuild a taxonomy error from :func:`error_to_dict` output.

    Unknown types come back as plain :class:`ReproError` (the original
    class name is preserved in the message), so a journal written by a
    newer version still loads.
    """
    cls = ERROR_CLASSES.get(d.get("type", ""), None)
    message = d.get("message") or d.get("rendered") or "unknown error"
    if cls is None:
        message = f"{d.get('type', 'Error')}: {message}"
        cls = ReproError
    exc = cls(message)
    for key, value in d.items():
        if key in ("type", "message", "rendered"):
            continue
        setattr(exc, key, value)
    return exc


def exit_code_for(exc: BaseException) -> int:
    """Map an exception to the CLI's documented nonzero exit codes."""
    for cls, code in (
        (ParseError, 3),
        (ConstraintError, 4),
        (BudgetExhausted, 5),
        (EncodingInfeasible, 6),
        (VerificationError, 7),
        (ServiceError, 8),  # includes OverloadError / DeadlineExceeded
        # corrupt run-dir state is an *input* problem, same bucket as
        # usage and environment errors (README's exit-code table)
        (JournalError, 2),
    ):
        if isinstance(exc, cls):
            return code
    return 1
