"""Command-line interface: ``nova`` — encode a KISS2 machine or run tables.

Examples
--------
Encode a machine from a KISS2 file with the default algorithm::

    nova encode my_machine.kiss --algorithm iohybrid

Run a benchmark machine by name::

    nova encode --benchmark dk14 --algorithm ihybrid

Regenerate a paper table on the small machine subset::

    nova table 2 --subset small
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.encoding.nova import ALGORITHMS, encode_fsm
from repro.encoding.options import CACHE_POLICIES
from repro.errors import ReproError, exit_code_for
from repro.eval import tables
from repro.fsm.benchmarks import benchmark, benchmark_names
from repro.fsm.kiss import parse_kiss


def _load_fsm(args: argparse.Namespace):
    """The machine named by --benchmark or the KISS2 file argument."""
    if args.benchmark:
        return benchmark(args.benchmark)
    if args.file:
        with open(args.file) as f:
            return parse_kiss(f.read(), name=args.file)
    return None


def _cmd_encode(args: argparse.Namespace) -> int:
    fsm = _load_fsm(args)
    if fsm is None:
        print("error: give a KISS2 file or --benchmark NAME", file=sys.stderr)
        return 2
    result = encode_fsm(fsm, args.algorithm, nbits=args.bits,
                        effort=args.effort, timeout=args.timeout,
                        fallback=not args.no_fallback,
                        seed=args.seed, cache=args.cache)
    report = result.report
    if report is not None and report.degraded:
        print(f"degraded: {report.summary()}", file=sys.stderr)
    print(f"machine    : {fsm!r}")
    print(f"algorithm  : {result.algorithm}")
    if report is not None and report.cache_hit:
        print("cache      : hit")
    print(f"code length: {result.bits} bits")
    print(f"cubes      : {result.cubes}")
    print(f"area       : {result.area}")
    print(f"time       : {result.seconds:.2f}s")
    if report is not None and report.verified is not None:
        print(f"verified   : {report.verified}")
    print("state codes:")
    for i, state in enumerate(fsm.states):
        print(f"  {state:12s} {result.state_encoding.as_bits(i)}")
    if result.symbol_encoding is not None:
        print("input symbol codes:")
        for i, sym in enumerate(fsm.symbolic_input_values):
            print(f"  {sym:12s} {result.symbol_encoding.as_bits(i)}")
    if result.out_symbol_encoding is not None:
        print("output symbol codes:")
        for i, sym in enumerate(fsm.symbolic_output_values):
            print(f"  {sym:12s} {result.out_symbol_encoding.as_bits(i)}")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    names = benchmark_names(args.subset)
    n = args.number
    if n == 1:
        rows = tables.table1_rows(args.subset)
    else:
        row_fn = {
            2: tables.table2_row,
            3: tables.table3_row,
            4: tables.table4_row,
            5: tables.table5_row,
            6: tables.table6_row,
            7: tables.table7_row,
        }.get(n)
        if row_fn is None:
            print(f"error: no table {n}", file=sys.stderr)
            return 2
        if n == 5:
            # table 5 has its own machine set; slice it by the chosen
            # subset the same way the pytest harness does
            from repro.bench.discover import subset_names

            names = subset_names("table5", subset=args.subset)
        rows = []
        for name in names:
            try:
                rows.append(row_fn(name))
                print(f"  done {name}", file=sys.stderr)
            except Exception as exc:  # keep sweeping; report at the end
                print(f"  FAILED {name}: {exc}", file=sys.stderr)
    print(tables.format_table(rows, title=f"Table {n} ({args.subset})"))
    return 0


def _batch_status(run_dir: str, as_json: bool) -> int:
    """Durable-state view of a run directory: merged shards + leases."""
    import json
    from pathlib import Path

    from repro.runner import lease_stats, merge_results, read_manifest

    merged = merge_results(run_dir)
    try:
        manifest = read_manifest(run_dir)
    except FileNotFoundError:
        manifest = {}
    planned = [t.get("task") for t in manifest.get("tasks", [])
               if isinstance(t, dict)]
    done = set(merged.task_ids)
    failed = sum(1 for r in merged.records if r.get("status") == "failed")
    stolen = sum(1 for r in merged.records if r.get("epoch"))
    status = {
        "run_dir": str(Path(run_dir)),
        "status": manifest.get("status"),
        "planned": len(planned),
        "completed": len(merged.records),
        "failed": failed,
        "stolen": stolen,
        "remaining": sorted(t for t in planned if t and t not in done),
        "shards": merged.shards,
        "torn_tails": sorted(merged.torn_tails),
        "duplicates": merged.duplicates,
        "rejected": merged.rejected,
        "leases": lease_stats(run_dir),
    }
    if as_json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(f"run     : {status['run_dir']} "
              f"[{status['status'] or 'no manifest'}]")
        print(f"tasks   : {status['completed']}/{status['planned']} "
              f"journaled, {failed} failed, {stolen} stolen, "
              f"{len(status['remaining'])} remaining")
        print(f"shards  : {len(merged.shards)} "
              f"({', '.join(merged.shards) or 'none'})")
        if merged.torn_tails:
            print(f"torn    : {', '.join(status['torn_tails'])} "
                  f"(repaired on next join/resume)")
        if merged.duplicates:
            print(f"dups    : {merged.duplicates} same-shard repeats "
                  f"dropped (last won)")
        for rej in merged.rejected:
            print(f"fenced  : {rej['task']} from {rej['claimant'] or '?'} "
                  f"({rej['reason']})")
        ls = status["leases"]
        print(f"leases  : {ls['live']} live, {ls['expired']} expired, "
              f"{ls['total_epoch']} steals published, "
              f"claimants: {', '.join(ls['claimants']) or 'none'}")
    complete = (planned and not status["remaining"] and not failed)
    return 0 if complete else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    """Crash-safe parallel sweep over many machines (see README §Batch)."""
    import time as _time
    from pathlib import Path

    from repro.runner import (
        BatchRunner,
        RunDirBusy,
        tasks_for_benchmarks,
        tasks_for_kiss_dir,
    )

    if args.kiss_dir == "status":
        run_dir = args.extra or args.join or args.resume
        if not run_dir:
            print("error: usage: nova batch status RUN_DIR",
                  file=sys.stderr)
            return 2
        return _batch_status(run_dir, as_json=args.json)
    if args.extra:
        print(f"error: unexpected argument {args.extra!r}", file=sys.stderr)
        return 2

    def progress(line: str) -> None:
        print(f"  {line}", file=sys.stderr)

    def build_tasks():
        options = {}
        if args.effort:
            options["effort"] = args.effort
        if args.cache != "auto":
            options["cache"] = args.cache
        opts = options or None
        if args.kiss_dir:
            return tasks_for_kiss_dir(args.kiss_dir, args.algorithm,
                                      opts, timeout=args.task_timeout)
        return tasks_for_benchmarks(args.set, args.algorithm,
                                    opts, timeout=args.task_timeout)

    if args.resume:
        runner = BatchRunner.resume(
            args.resume,
            jobs=args.jobs,
            task_timeout=args.task_timeout,
            retries=args.retries,
            fail_fast=args.fail_fast or None,
            progress=progress,
            force=args.force,
        )
    elif args.join:
        # first joiner creates the run from the usual task sources;
        # later joiners take the task set from the manifest
        from repro.runner.journal import MANIFEST_NAME

        tasks = (None if (Path(args.join) / MANIFEST_NAME).exists()
                 else build_tasks())
        runner = BatchRunner.join(
            args.join,
            tasks=tasks,
            jobs=args.jobs,
            task_timeout=args.task_timeout,
            retries=args.retries,
            fail_fast=args.fail_fast or None,
            claimant=args.claimant,
            lease_ttl=args.lease_ttl,
            heartbeat_interval=args.heartbeat,
            progress=progress,
        )
    else:
        tasks = build_tasks()
        run_dir = args.out or f"batch-runs/{_time.strftime('%Y%m%d-%H%M%S')}"
        runner = BatchRunner(
            tasks, run_dir,
            jobs=args.jobs if args.jobs is not None else 1,
            task_timeout=args.task_timeout,
            retries=args.retries if args.retries is not None else 2,
            fail_fast=args.fail_fast,
            shuffle_seed=args.shuffle_seed,
            progress=progress,
            force=args.force,
        )
    try:
        report = runner.run()
    except RunDirBusy as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.summary())
    if runner.join_mode:
        from repro.runner import shard_name

        print(f"shard      : {runner.run_dir / shard_name(runner.claimant)}")
        print(f"status with: nova batch status {runner.run_dir}")
    else:
        print(f"journal    : {runner.run_dir / 'results.jsonl'}")
        print(f"resume with: nova batch --resume {runner.run_dir}")
    return 0 if report.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """The benchmark observatory (see README §Benchmarking).

    Exit codes: 0 ok, 1 gate regression, 2 usage/validation error,
    3 gated suite without a baseline under ``--require-baseline``.
    """
    import json
    import time as _time
    from pathlib import Path

    from repro import bench

    trajectory = Path(args.trajectory)

    if args.action == "run":
        if not args.spec:
            print("error: usage: nova bench run SPEC.json|SPEC.toml",
                  file=sys.stderr)
            return 2
        spec = bench.load_spec(args.spec)
        stamp = _time.time()
        run_dir = args.out or (
            f"bench-runs/{spec.name}-"
            f"{_time.strftime('%Y%m%d-%H%M%S')}")

        def progress(line: str) -> None:
            print(f"  {line}", file=sys.stderr)

        record = bench.run_sweep(
            spec, run_dir,
            jobs=args.jobs,
            timestamp=stamp,
            label=args.label,
            limit=args.limit,
            repeats=args.repeats,
            progress=progress,
        )
        if args.no_append:
            records = bench.load_trajectory(trajectory) + [record]
        else:
            records = bench.append_record(trajectory, record)
        if args.json:
            print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        else:
            print(f"suite {record.suite} "
                  f"({len(record.units)} units, journal: {run_dir}):")
            for key, stats in sorted(record.units.items()):
                print(f"  {key:32s} {stats.mean * 1e3:9.2f} ms "
                      f"± {stats.std * 1e3:.2f} "
                      f"(min {stats.min * 1e3:.2f}, n={stats.samples}"
                      + (f", {stats.rejected} outliers" if stats.rejected
                         else "") + ")")
            comp = bench.compare_suite(records, record.suite)
            if comp.status == "ok" and comp.geomean_speedup is not None:
                print(f"  vs previous record: geomean speedup "
                      f"{comp.geomean_speedup:.3f}x over "
                      f"{comp.units_compared} unit(s)")
            if not args.no_append:
                print(f"  appended to {trajectory}")
        return 0

    if args.action == "compare":
        records = bench.load_trajectory(trajectory)
        suites = (args.suites.split(",") if args.suites
                  else sorted({r.suite for r in records if r.schema >= 1}))
        comps = [bench.compare_suite(records, s.strip())
                 for s in suites if s.strip()]
        if args.json:
            print(json.dumps([c.to_dict() for c in comps], indent=2,
                             sort_keys=True))
        else:
            if not comps:
                print(f"no comparable suites in {trajectory}")
            for c in comps:
                if c.status == "ok" and c.geomean_speedup is not None:
                    worst = min(c.unit_speedups.items(),
                                key=lambda kv: kv[1])
                    print(f"{c.suite:12s} geomean {c.geomean_speedup:.3f}x "
                          f"over {c.units_compared} unit(s); worst "
                          f"{worst[0]} {worst[1]:.3f}x")
                else:
                    print(f"{c.suite:12s} {c.status}")
        return 0

    if args.action == "gate":
        records = bench.load_trajectory(trajectory)
        suites = (tuple(s.strip() for s in args.suites.split(",")
                        if s.strip())
                  if args.suites else bench.DEFAULT_GATE_SUITES)
        result = bench.gate(records, args.max_regress, suites=suites)
        if args.json:
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        else:
            for c in result.comparisons:
                if c.status == "ok" and c.geomean_speedup is not None:
                    verdict = ("REGRESSED" if c.suite in result.regressions
                               else "ok")
                    print(f"{c.suite:12s} geomean "
                          f"{c.geomean_speedup:.3f}x  {verdict}")
                else:
                    print(f"{c.suite:12s} no baseline ({c.status})")
            limit = 1.0 - args.max_regress / 100.0
            print(f"gate: max regression {args.max_regress:.0f}% "
                  f"(geomean floor {limit:.2f}x) -> "
                  + ("FAIL" if result.regressions else "pass"))
        if result.regressions:
            return 1
        if args.require_baseline and result.missing:
            print(f"error: no comparable baseline for gated suite(s): "
                  f"{', '.join(result.missing)}", file=sys.stderr)
            return 3
        return 0

    # action == "import": fold legacy BENCH_PR*.json into the trajectory
    imported = bench.import_legacy(args.root, trajectory)
    total = len(bench.load_trajectory(trajectory))
    print(f"imported {len(imported)} legacy record(s) from {args.root}; "
          f"{trajectory} now holds {total} record(s)")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or manage the on-disk encode cache (see README §Caching)."""
    import json

    from repro import cache

    if args.action == "info":
        out = cache.cache_info()
    elif args.action == "clear":
        out = cache.cache_clear()
    else:
        out = cache.cache_prune(args.max_bytes)
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in benchmark_names("all"):
        print(f"{name:12s} {benchmark(name)!r}")
    return 0


def _cmd_minimize(args: argparse.Namespace) -> int:
    """Two-level minimization of an espresso PLA file."""
    from repro.logic.espresso import espresso
    from repro.logic.exact import TooLarge, exact_minimize
    from repro.logic.pla_io import parse_pla, write_pla
    from repro.logic.verify import verify_minimization

    with open(args.file) as f:
        pla = parse_pla(f.read())
    if args.exact:
        try:
            result = exact_minimize(pla.on, pla.dc)
        except TooLarge as exc:
            print(f"error: instance too large for exact ({exc}); "
                  f"use the heuristic", file=sys.stderr)
            return 1
    else:
        off = pla.off if len(pla.off) else None
        result = espresso(pla.on, pla.dc, off=off, effort=args.effort)
    if not verify_minimization(result, pla.on, pla.dc,
                               pla.off if len(pla.off) else None):
        print("internal error: result failed verification", file=sys.stderr)
        return 1
    print(write_pla(result, pla.num_binary), end="")
    print(f"# {len(pla.on)} -> {len(result)} cubes", file=sys.stderr)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Static analysis of a machine (reachability, determinism, STG)."""
    from repro.fsm.analysis import analyze, to_dot, unreachable_states

    if args.benchmark:
        fsm = benchmark(args.benchmark)
    else:
        with open(args.file) as f:
            fsm = parse_kiss(f.read(), name=args.file)
    stats = analyze(fsm)
    print(f"machine       : {fsm!r}")
    print(f"reachable     : {stats.reachable}/{stats.states}")
    if stats.reachable < stats.states:
        print(f"unreachable   : {', '.join(unreachable_states(fsm))}")
    print(f"deterministic : {stats.deterministic}")
    print(f"coverage      : {stats.coverage:.2%}")
    print(f"max fan-in    : {stats.max_fan_in}")
    print(f"max fan-out   : {stats.max_fan_out}")
    print(f"self loops    : {stats.self_loops}")
    if args.dot:
        with open(args.dot, "w") as f:
            f.write(to_dot(fsm))
        print(f"STG written to {args.dot}")
    return 0


def _lint_baseline_key(entry) -> tuple:
    """Identity of a finding for baseline matching: path + rule +
    message, deliberately NOT line/col — unrelated edits move lines,
    and a baseline that rots on every shift is a baseline nobody
    trusts."""
    return (entry["path"], entry["rule"], entry["message"])


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis of the *codebase*: the NV001-NV010 invariants."""
    import json as json_mod

    from repro.analysis import REGISTRY, instantiate_rules, lint_paths

    if args.list_rules:
        for rule_id in sorted(REGISTRY):
            print(f"{rule_id}  {REGISTRY[rule_id]().title}")
        return 0
    if args.explain:
        rule_id = args.explain.strip()
        if rule_id not in REGISTRY:
            print(f"error: unknown rule {rule_id!r}; "
                  f"available: {', '.join(sorted(REGISTRY))}",
                  file=sys.stderr)
            return 2
        rule = REGISTRY[rule_id]()
        doc = (sys.modules[type(rule).__module__].__doc__
               or type(rule).__doc__ or "(no documentation)")
        print(f"{rule_id}: {rule.title}\n")
        print(doc.strip())
        return 0
    if not args.paths:
        print("error: give at least one file or directory to lint",
              file=sys.stderr)
        return 2
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline needs --baseline FILE to name "
              "the file to write", file=sys.stderr)
        return 2
    only = None
    if args.rules is not None:
        only = []
        for raw in args.rules.split(","):
            rule_id = raw.strip()
            if rule_id and rule_id not in only:
                only.append(rule_id)
        if not only:
            # "--rules ," etc. must not silently lint with zero rules
            # and report a clean exit 0
            print(f"error: --rules selected no rules; "
                  f"available: {', '.join(sorted(REGISTRY))}",
                  file=sys.stderr)
            return 2
    try:
        rules = instantiate_rules(only)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    result = lint_paths(args.paths, rules=rules)
    if args.update_baseline:
        payload = {
            "schema": 1,
            "findings": sorted((f.to_dict() for f in result.findings),
                               key=_lint_baseline_key),
        }
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json_mod.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline written to {args.baseline}: "
              f"{len(result.findings)} finding(s) recorded",
              file=sys.stderr)
        return 0
    baselined = 0
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as fh:
                data = json_mod.load(fh)
            known = {_lint_baseline_key(e) for e in data["findings"]}
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: unreadable baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2
        fresh = [f for f in result.findings
                 if _lint_baseline_key(f.to_dict()) not in known]
        baselined = len(result.findings) - len(fresh)
        result.findings = fresh
    if args.json:
        payload = result.to_dict()
        payload["baselined"] = baselined
        # the rules that actually ran, so tooling can distinguish "no
        # findings" from "nothing was checked"
        payload["rules"] = [rule.id for rule in rules]
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.render())
        print(f"{len(result.findings)} finding(s) in {result.files} "
              f"file(s), {result.suppressed} suppressed, "
              f"{baselined} baselined "
              f"({len(rules)} rules active)", file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the encode service (see README §Serving and DESIGN §6.10)."""
    import asyncio
    import json

    from repro.server import EncodeService, run_server

    worker_faults = []
    for spec in args.fault or []:
        # test/bench harness knob: ship a fault plan into every worker
        worker_faults.append(json.loads(spec))
    service = EncodeService(
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_timeout=args.default_timeout or None,
        max_timeout=args.max_timeout or None,
        kill_grace=args.kill_grace,
        rescue_timeout=args.rescue_timeout,
        cache_policy=args.cache,
        worker_faults=worker_faults,
    )
    return asyncio.run(run_server(
        service, host=args.host, port=args.port,
        read_timeout=args.read_timeout,
        drain_timeout=args.drain_timeout))


def _cmd_verify(args: argparse.Namespace) -> int:
    """Encode a machine and independently verify the result."""
    from repro.encoding.verify import verify_encoded_machine

    if args.benchmark:
        fsm = benchmark(args.benchmark)
    else:
        with open(args.file) as f:
            fsm = parse_kiss(f.read(), name=args.file)
    result = encode_fsm(fsm, args.algorithm, effort=args.effort)
    report = verify_encoded_machine(fsm, result.state_encoding, result.pla,
                                    result.symbol_encoding)
    print(f"algorithm : {args.algorithm}")
    print(f"checked   : {report.checked_pairs} (state, input) pairs")
    if report.ok:
        print("verdict   : OK — encoded PLA matches the machine exactly")
        return 0
    print("verdict   : MISMATCH")
    for m in report.mismatches[:20]:
        print(f"  {m}")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="nova",
        description="NOVA state assignment (reproduction of Villa & "
                    "Sangiovanni-Vincentelli, TCAD 1990)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="collect substrate perf counters (tautology calls, URP "
             "recursions, cache hits, pass times) and print a summary "
             "to stderr when the command finishes; NOVA_PERF=1 in the "
             "environment does the same")
    sub = parser.add_subparsers(dest="command", required=True)

    enc = sub.add_parser("encode", help="encode one machine")
    enc.add_argument("file", nargs="?", help="KISS2 file")
    enc.add_argument("--benchmark", help="benchmark machine name")
    enc.add_argument("--algorithm", default="ihybrid", choices=ALGORITHMS)
    enc.add_argument("--bits", type=int, default=None)
    enc.add_argument("--effort", default="full", choices=("full", "low"))
    enc.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                     help="wall-clock budget for the whole run; on "
                          "exhaustion the pipeline degrades along the "
                          "fallback chain instead of overrunning")
    enc.add_argument("--no-fallback", action="store_true",
                     help="fail (with a taxonomy exit code) instead of "
                          "degrading iexact -> ihybrid -> igreedy -> onehot")
    enc.add_argument("--seed", type=int, default=None, metavar="N",
                     help="RNG seed for stochastic algorithms (random); "
                          "seeded runs are deterministic and cacheable")
    enc.add_argument("--cache", default="auto", choices=CACHE_POLICIES,
                     help="result-cache policy: auto follows NOVA_CACHE/"
                          "NOVA_CACHE_DIR, on forces the two-tier cache, "
                          "memory keeps only the in-process LRU, off "
                          "disables lookups and fills")
    enc.set_defaults(func=_cmd_encode)

    tab = sub.add_parser("table", help="regenerate a paper table")
    tab.add_argument("number", type=int)
    tab.add_argument("--subset", default="small",
                     choices=("small", "paper30", "table5", "table7", "all"))
    tab.set_defaults(func=_cmd_table)

    bat = sub.add_parser(
        "batch",
        help="crash-safe parallel sweep over many machines",
        description="Fan encodes out over isolated worker processes with "
                    "hard per-task timeouts, retries down the degradation "
                    "ladder, and a durable results.jsonl journal; an "
                    "interrupted run resumes with --resume RUN_DIR. "
                    "N cooperating processes (one per host is fine) share "
                    "one run with --join RUN_DIR; inspect any run with "
                    "'nova batch status RUN_DIR'.")
    bat.add_argument("kiss_dir", nargs="?",
                     help="directory of .kiss/.kiss2 files to encode, or "
                          "the literal word 'status' (then: status RUN_DIR)")
    bat.add_argument("extra", nargs="?", help=argparse.SUPPRESS)
    bat.add_argument("--set", default="small",
                     choices=("small", "paper30", "table5", "table7", "all"),
                     help="builtin benchmark subset (when no KISS dir)")
    bat.add_argument("--algorithm", default="ihybrid", choices=ALGORITHMS)
    bat.add_argument("--effort", default=None, choices=("full", "low"),
                     help="pin minimization effort (default: per-machine)")
    bat.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="max concurrent worker processes (default 1)")
    bat.add_argument("--task-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="hard wall-clock limit per attempt; the worker "
                          "process is killed on expiry and the task retried "
                          "at the next ladder rung")
    bat.add_argument("--retries", type=int, default=None, metavar="N",
                     help="extra attempts per task after the first "
                          "(default 2)")
    bat.add_argument("--resume", metavar="RUN_DIR",
                     help="resume this run directory, skipping journaled "
                          "tasks")
    bat.add_argument("--join", metavar="RUN_DIR",
                     help="work-stealing mode: cooperate with other "
                          "claimant processes on one run directory; the "
                          "first joiner creates the manifest from the "
                          "usual task options, later joiners inherit it")
    bat.add_argument("--claimant", metavar="NAME", default=None,
                     help="stable claimant id for --join (default: "
                          "host-pid-random); names this process's journal "
                          "shard, so it must be unique among live joiners")
    bat.add_argument("--lease-ttl", type=float, default=None,
                     metavar="SECONDS",
                     help="seconds without a heartbeat before a claimant's "
                          "task leases may be stolen (default 15)")
    bat.add_argument("--heartbeat", type=float, default=None,
                     metavar="SECONDS",
                     help="lease renewal interval for --join "
                          "(default: lease-ttl / 3)")
    bat.add_argument("--json", action="store_true",
                     help="machine-readable output for 'batch status'")
    bat.add_argument("--fail-fast", action="store_true",
                     help="stop the whole batch at the first task that "
                          "exhausts its retries")
    bat.add_argument("--shuffle-seed", type=int, default=None, metavar="N",
                     help="deterministically shuffle task start order")
    bat.add_argument("--force", action="store_true",
                     help="run even if the manifest records a live batch "
                          "parent for this run directory")
    bat.add_argument("--cache", default="auto", choices=CACHE_POLICIES,
                     help="result-cache policy for the workers (the disk "
                          "tier is shared across processes, so a warm "
                          "sweep short-circuits every already-encoded "
                          "task)")
    bat.add_argument("--out", metavar="RUN_DIR",
                     help="run directory (default batch-runs/<timestamp>)")
    bat.set_defaults(func=_cmd_batch)

    bch = sub.add_parser(
        "bench",
        help="run benchmark sweeps and gate the performance trajectory",
        description="The benchmark observatory: 'run' executes a "
                    "declarative SweepSpec (JSON/TOML) through the batch "
                    "runner with variance-controlled timing and appends "
                    "one record to BENCH_TRAJECTORY.json; 'compare' "
                    "reports per-suite speedup vs the previous record; "
                    "'gate' fails (exit 1) when any gated suite's "
                    "geomean speedup regresses more than --max-regress "
                    "percent; 'import' folds legacy BENCH_PR*.json "
                    "reports into the trajectory once. "
                    "See README §Benchmarking.")
    bch.add_argument("action",
                     choices=("run", "compare", "gate", "import"))
    bch.add_argument("spec", nargs="?",
                     help="sweep spec file for 'run' "
                          "(e.g. benchmarks/specs/substrate.json)")
    bch.add_argument("--trajectory", default="BENCH_TRAJECTORY.json",
                     metavar="PATH",
                     help="trajectory store (default BENCH_TRAJECTORY.json)")
    bch.add_argument("--repeats", type=int, default=None, metavar="N",
                     help="override the spec's timed samples per unit")
    bch.add_argument("--limit", type=int, default=None, metavar="N",
                     help="cap the machine list (CI quick slice)")
    bch.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes (default: configured "
                          "bench_jobs)")
    bch.add_argument("--label", default="", metavar="STR",
                     help="free-form provenance label for the record "
                          "(PR number, git sha, ...)")
    bch.add_argument("--out", metavar="RUN_DIR",
                     help="journal directory for 'run' "
                          "(default bench-runs/<suite>-<timestamp>)")
    bch.add_argument("--no-append", action="store_true",
                     help="run without writing to the trajectory")
    bch.add_argument("--suites", metavar="NAMES", default=None,
                     help="comma-separated suite list for compare/gate "
                          "(default gate set: substrate,table3,table6,"
                          "table7)")
    bch.add_argument("--max-regress", type=float, default=10.0,
                     metavar="PCT",
                     help="gate threshold: fail when a suite's geomean "
                          "speedup drops below 1 - PCT/100 (default 10)")
    bch.add_argument("--require-baseline", action="store_true",
                     help="gate: exit 3 when a gated suite has no "
                          "comparable baseline instead of passing it")
    bch.add_argument("--root", default=".", metavar="DIR",
                     help="directory holding BENCH_PR*.json for 'import'")
    bch.add_argument("--json", action="store_true",
                     help="machine-readable output")
    bch.set_defaults(func=_cmd_bench)

    cch = sub.add_parser(
        "cache",
        help="inspect or manage the encode result cache",
        description="The two-tier content-addressed encode cache: an "
                    "in-process LRU over one-JSON-blob-per-key storage "
                    "under NOVA_CACHE_DIR (default ~/.cache/nova). "
                    "See README §Caching.")
    cch.add_argument("action", choices=("info", "clear", "prune"))
    cch.add_argument("--max-bytes", type=int, default=None, metavar="N",
                     help="prune target (default: the configured "
                          "NOVA_CACHE_MAX_BYTES budget)")
    cch.set_defaults(func=_cmd_cache)

    lst = sub.add_parser("list", help="list benchmark machines")
    lst.set_defaults(func=_cmd_list)

    mini = sub.add_parser("minimize", help="minimize an espresso PLA file")
    mini.add_argument("file")
    mini.add_argument("--exact", action="store_true",
                      help="exact (Quine-McCluskey) instead of heuristic")
    mini.add_argument("--effort", default="full", choices=("full", "low"))
    mini.set_defaults(func=_cmd_minimize)

    ana = sub.add_parser("analyze", help="static analysis of a machine")
    ana.add_argument("file", nargs="?", help="KISS2 file")
    ana.add_argument("--benchmark", help="benchmark machine name")
    ana.add_argument("--dot", help="write the STG as Graphviz to this file")
    ana.set_defaults(func=_cmd_analyze)

    lint = sub.add_parser(
        "lint",
        help="check the codebase's pipeline invariants (NV001-NV010)",
        description="AST- and dataflow-based static analysis enforcing "
                    "the repo's correctness contracts: cache-key "
                    "completeness, budget coverage of hot loops, "
                    "atomic-write discipline, the error taxonomy, "
                    "encode-path determinism, spawn-safety of worker "
                    "modules, lease/fencing discipline in the "
                    "work-stealing runner, async hygiene on the event "
                    "loop, resource lifetimes, and config discipline "
                    "for NOVA_* variables. "
                    "Exit 0 clean, 1 findings, 2 usage error.")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (e.g. src/repro)")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable findings on stdout")
    lint.add_argument("--rules", metavar="IDS",
                      help="comma-separated rule subset (e.g. NV001,NV004)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--explain", metavar="RULE",
                      help="print the full rationale for one rule "
                           "(the invariant, why it matters, what "
                           "counts as a finding) and exit")
    lint.add_argument("--baseline", metavar="FILE",
                      help="JSON baseline of tolerated findings; "
                           "matches on (path, rule, message) so "
                           "line drift does not invalidate it")
    lint.add_argument("--update-baseline", action="store_true",
                      help="write the current findings to --baseline "
                           "FILE and exit 0")
    lint.set_defaults(func=_cmd_lint)

    srv = sub.add_parser(
        "serve",
        help="run the encode service (HTTP, asyncio)",
        description="An asyncio HTTP front end over encode_fsm: "
                    "single-flight coalescing on the cache fingerprint, "
                    "bounded admission (429 + Retry-After under "
                    "overload), per-request deadlines with graceful "
                    "degradation down the fallback ladder, and a "
                    "cache-warm load-shed path. POST /encode, "
                    "GET /healthz, GET /stats. See README §Serving.")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8573,
                     help="TCP port (0 picks an ephemeral one; the bound "
                          "port is printed as a JSON line on stdout)")
    srv.add_argument("--workers", type=int, default=2, metavar="N",
                     help="concurrent cold computations (worker processes)")
    srv.add_argument("--queue-limit", type=int, default=8, metavar="N",
                     help="cold requests allowed to wait for a worker "
                          "slot before new ones get 429")
    srv.add_argument("--default-timeout", type=float, default=30.0,
                     metavar="SECONDS",
                     help="per-request deadline when the client sends "
                          "none (0 disables)")
    srv.add_argument("--max-timeout", type=float, default=300.0,
                     metavar="SECONDS",
                     help="cap on client-requested deadlines")
    srv.add_argument("--kill-grace", type=float, default=2.0,
                     metavar="SECONDS",
                     help="extra wall-clock past the cooperative deadline "
                          "before a worker is hard-killed")
    srv.add_argument("--rescue-timeout", type=float, default=2.0,
                     metavar="SECONDS",
                     help="emergency allowance for degradation rungs "
                          "after a kill/crash consumed the deadline")
    srv.add_argument("--read-timeout", type=float, default=10.0,
                     metavar="SECONDS",
                     help="slow-client guard: max time to read a request")
    srv.add_argument("--drain-timeout", type=float, default=5.0,
                     metavar="SECONDS",
                     help="how long SIGTERM lets in-flight requests "
                          "finish before cancelling them")
    srv.add_argument("--cache", default="auto", choices=CACHE_POLICIES,
                     help="result-cache policy (the warm/load-shed path "
                          "needs at least 'memory')")
    srv.add_argument("--fault", action="append", metavar="JSON",
                     help="test harness: a repro.testing.faults.Fault "
                          "spec (JSON) armed inside every worker; "
                          "repeatable")
    srv.set_defaults(func=_cmd_serve)

    ver = sub.add_parser("verify",
                         help="encode and independently verify a machine")
    ver.add_argument("file", nargs="?", help="KISS2 file")
    ver.add_argument("--benchmark", help="benchmark machine name")
    ver.add_argument("--algorithm", default="ihybrid", choices=ALGORITHMS)
    ver.add_argument("--effort", default="full", choices=("full", "low"))
    ver.set_defaults(func=_cmd_verify)

    args = parser.parse_args(argv)
    from repro import perf

    try:
        if args.stats or perf.enabled():
            with perf.collect() as stats:
                rc = args.func(args)
            print(stats.summary(), file=sys.stderr)
            return rc
        return args.func(args)
    except ReproError as exc:
        # one-line diagnostic, distinct exit code per error class:
        # 2 corrupt run-dir state (journal/manifest), 3 parse,
        # 4 constraint, 5 budget, 6 infeasible, 7 verification,
        # 8 service (overload/deadline/server config)
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    except ValueError as exc:
        # environment/config validation (e.g. a typo'd NOVA_CACHE)
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
