"""`igreedy_code` (§V): fast bottom-up heuristic for short code lengths.

The algorithm computes all intersections of the input constraints and
encodes going upwards from the deepest: common subconstraints (proper
subsets of two or more constraints) get faces first, so shared structure
is preserved even when full constraints must be dropped.  There is no
backtracking; a constraint that cannot be placed with the current
partial assignment is simply skipped.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.constraints.faces import faces_of_level, min_level
from repro.constraints.input_constraints import ConstraintSet
from repro.constraints.poset import closure_intersection
from repro.encoding.base import Encoding
from repro.fsm.machine import minimum_code_length
from repro.perf.budget import Budget


def _try_place(
    mask: int,
    n: int,
    k: int,
    codes: Dict[int, int],
    budget: Optional[Budget] = None,
) -> Optional[Dict[int, int]]:
    """Try to host constraint *mask* in some face, extending *codes*.

    A face is acceptable when it contains every already-coded member,
    no already-coded non-member, and has enough free vertices for the
    uncoded members.  Returns the new code assignments, or None.
    """
    members = [s for s in range(n) if (mask >> s) & 1]
    coded = [s for s in members if s in codes]
    uncoded = [s for s in members if s not in codes]
    used = set(codes.values())
    level = min_level(len(members))
    for lvl in range(level, k):
        for face in faces_of_level(k, lvl):
            if budget is not None:
                budget.charge()
            if any(not face.contains_code(codes[s]) for s in coded):
                continue
            conflict = False
            for s, c in codes.items():
                if not (mask >> s) & 1 and face.contains_code(c):
                    conflict = True
                    break
            if conflict:
                continue
            free = [v for v in face.vertices() if v not in used]
            if len(free) < len(uncoded):
                continue
            return {s: v for s, v in zip(uncoded, free)}
        if not uncoded and not coded:
            break
    return None


def igreedy_code(cs: ConstraintSet, nbits: Optional[int] = None,
                 budget: Optional[Budget] = None) -> Encoding:
    """Greedy bottom-up encoding; always returns a complete encoding.

    A *budget* bounds the (deterministic, backtrack-free) face sweep;
    exhaustion raises :class:`~repro.errors.BudgetExhausted`.
    """
    n = cs.n
    min_bits = minimum_code_length(n)
    k = min_bits if nbits is None else max(nbits, min_bits)

    # deepest-first over the intersection closure: ties broken by the
    # weight of the constraint (closure elements inherit weight 0)
    closed = closure_intersection(n, cs.masks())
    universe = (1 << n) - 1
    targets = [m for m in closed if m != universe and m & (m - 1)]
    targets.sort(key=lambda m: (m.bit_count(), -cs.weights.get(m, 0), m))

    codes: Dict[int, int] = {}
    for mask in targets:
        placement = _try_place(mask, n, k, codes, budget)
        if placement is not None:
            codes.update(placement)
    # place leftover states on free codes
    used = set(codes.values())
    free = [c for c in range(1 << k) if c not in used]
    for s in range(n):
        if s not in codes:
            codes[s] = free.pop(0)
    return Encoding(k, [codes[s] for s in range(n)])
