"""`out_encoder`: pure output-constraint satisfaction (Saldanha's encoder).

Used by iohybrid_code in the unusual case IC = ∅ (§6.2.1).  Codes are
built constructively along a topological order of the dominance DAG:
each state's code is the bitwise OR of the codes it must cover; when
that collides with an existing code, a fresh distinguishing bit is
added.  The construction always succeeds for an acyclic constraint set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.encoding.base import Encoding
from repro.errors import ConstraintError


def out_encoder(n: int, edges: Iterable[Tuple[int, int]]) -> Encoding:
    """Encode *n* states so that code(u) covers code(v) for every edge."""
    edges = list(edges)
    must_cover: Dict[int, List[int]] = {s: [] for s in range(n)}
    for u, v in edges:
        must_cover[u].append(v)
    # topological order: states covering nothing first
    order: List[int] = []
    temp: Dict[int, int] = {}

    def visit(u: int) -> None:
        if temp.get(u) == 2:
            return
        if temp.get(u) == 1:
            raise ConstraintError("output covering constraints contain a cycle")
        temp[u] = 1
        for v in must_cover[u]:
            visit(v)
        temp[u] = 2
        order.append(u)

    for s in range(n):
        visit(s)

    codes: Dict[int, int] = {}
    used = set()
    width = 1
    for s in order:
        base = 0
        for v in must_cover[s]:
            base |= codes[v]
        code = base
        # dominance imposes only lower bounds, so a collision may be
        # resolved with any unused superset -- search the current code
        # width exhaustively (smallest superset first) before widening
        while code in used:
            candidates = sorted(
                (c for c in range(1 << width)
                 if c & base == base and c not in used),
                key=lambda c: (c.bit_count(), c),
            )
            if candidates:
                code = candidates[0]
            else:
                width += 1
        codes[s] = code
        used.add(code)
        width = max(width, code.bit_length())
    nbits = max(1, max(codes.values()).bit_length())
    return Encoding(nbits, [codes[s] for s in range(n)])
