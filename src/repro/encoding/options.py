"""The :class:`EncodeOptions` bundle: every knob of :func:`encode_fsm`.

``encode_fsm`` grew one keyword at a time until its signature carried
ten loose parameters; this module turns them into a single frozen
dataclass that can be constructed once, varied with :meth:`replace`,
hashed into a cache fingerprint, and shipped across process boundaries
as a plain dict.

Two construction paths coexist:

* the new API — ``encode_fsm(fsm, options=EncodeOptions(...))``;
* every historical keyword — ``encode_fsm(fsm, "iexact", nbits=4)`` —
  which :func:`merge_options` folds into an options object.  Passing
  both is allowed as long as they do not disagree: a keyword may fill a
  field the options object left at its default (or restate the same
  value), but a *conflicting* keyword raises ``ValueError`` instead of
  silently picking a winner.

Stochastic runs are requested with a plain ``seed: int`` — never a
``random.Random`` instance, which is unhashable and would poison cache
keys.  The legacy ``rng=`` parameter of ``encode_fsm`` survives as a
deprecated shim handled by the driver, outside this dataclass.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: Every encoding algorithm the driver dispatches on.  Lives here (a
#: leaf module) so both the driver and the CLI can import it without
#: pulling the full pipeline.
ALGORITHMS = (
    "iexact",
    "ihybrid",
    "igreedy",
    "iohybrid",
    "iovariant",
    "kiss",
    "onehot",
    "random",
    "mustang",
)

EFFORTS = ("full", "low")

#: Cache policies (see :mod:`repro.cache`): ``auto`` follows the
#: ``NOVA_CACHE``/``NOVA_CACHE_DIR`` environment, ``on`` forces the
#: two-tier cache, ``memory`` keeps only the in-process LRU, ``off``
#: disables lookups and fills entirely.
CACHE_POLICIES = ("auto", "on", "off", "memory")

#: Fields of :class:`EncodeOptions` that never change the *result* and
#: are therefore excluded from cache fingerprints.  ``nova lint``
#: (rule NV001) statically checks that ``fingerprint_fields`` excludes
#: exactly this set: adding a field to the dataclass keeps it in the
#: fingerprint unless it is deliberately whitelisted here.
NON_FINGERPRINT_FIELDS = frozenset({"cache"})


class _Unset:
    """Sentinel distinguishing 'not passed' from an explicit default."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


UNSET = _Unset()


@dataclass(frozen=True)
class EncodeOptions:
    """Immutable, hashable bundle of every :func:`encode_fsm` knob.

    Fields
    ------
    algorithm / nbits / effort / mustang_option:
        What to run: the encoding algorithm, an optional pinned code
        length, the minimization effort, and (for ``mustang``) which
        weight heuristic.
    seed:
        Integer seed for stochastic algorithms (``random``).  Part of
        the cache fingerprint: two runs with the same seed are
        bit-identical, so their shared cache entry is sound.
    timeout / fallback / verify / evaluate:
        Run shaping: the cooperative wall-clock budget, the degradation
        chain switch, the post-encode verification gate, and whether to
        instantiate + re-minimize the encoded PLA at all.
    cache:
        Cache policy for this run (see :data:`CACHE_POLICIES`).  The
        policy never changes the *result*, only where it comes from, so
        it is excluded from cache fingerprints.
    """

    algorithm: str = "ihybrid"
    nbits: Optional[int] = None
    effort: str = "full"
    seed: Optional[int] = None
    timeout: Optional[float] = None
    fallback: bool = True
    verify: bool = True
    evaluate: bool = True
    mustang_option: str = "p"
    cache: str = "auto"

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(f"unknown algorithm {self.algorithm!r}; "
                             f"choose from {ALGORITHMS}")
        if self.effort not in EFFORTS:
            raise ValueError(f"unknown effort {self.effort!r}; "
                             f"choose from {EFFORTS}")
        if self.cache not in CACHE_POLICIES:
            raise ValueError(f"unknown cache policy {self.cache!r}; "
                             f"choose from {CACHE_POLICIES}")
        if self.seed is not None and not isinstance(self.seed, int):
            raise TypeError(
                f"seed must be an int (got {type(self.seed).__name__}); "
                f"random.Random instances are unhashable and cannot "
                f"participate in cache keys — pass the integer seed "
                f"instead")
        if self.nbits is not None and self.nbits < 1:
            raise ValueError(f"nbits must be >= 1, got {self.nbits}")

    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "EncodeOptions":
        """A copy with *changes* applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict, e.g. for batch task specs and manifests."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "EncodeOptions":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown EncodeOptions fields: "
                             f"{sorted(unknown)}")
        return cls(**d)

    # ------------------------------------------------------------------
    def fingerprint_fields(self) -> Tuple[Tuple[str, Any], ...]:
        """The (name, value) pairs that participate in cache keys.

        Everything that can change the *result* is included; the
        fields of :data:`NON_FINGERPRINT_FIELDS` are pure policy and
        excluded.
        """
        return tuple(
            (f.name, getattr(self, f.name))
            for f in dataclasses.fields(self)
            if f.name not in NON_FINGERPRINT_FIELDS
        )

    @property
    def deterministic(self) -> bool:
        """Whether two runs with these options must agree bit-for-bit.

        The only stochastic path is the ``random`` baseline without a
        pinned seed; every other algorithm is deterministic for a fixed
        machine + options tuple.  Non-deterministic runs are never
        cached (a hit could replay someone else's coin flips).
        """
        return not (self.algorithm == "random" and self.seed is None)

    @property
    def storable(self) -> bool:
        """Whether runs under these options may use the cache at all.

        Only non-deterministic options (an unseeded ``random`` run) are
        categorically uncacheable.  A wall-clock ``timeout`` does *not*
        disqualify the options — the timeout participates in the
        fingerprint, and the store step additionally refuses any result
        the budget actually shaped (a degraded run), so only the pure
        untimed answer ever lands in the cache.
        """
        return self.deterministic


def merge_options(options: Optional[EncodeOptions],
                  explicit: Dict[str, Any]) -> EncodeOptions:
    """Fold explicitly-passed legacy keywords into *options*.

    *explicit* maps field name -> value for keywords the caller actually
    passed (``UNSET`` entries must be filtered out by the caller).  With
    no options object the keywords simply construct one.  With both, a
    keyword may fill a field the options object left at its dataclass
    default, or restate the same value; a disagreement raises
    ``ValueError`` naming every conflicting field.
    """
    if options is None:
        return EncodeOptions(**explicit)
    if not isinstance(options, EncodeOptions):
        raise TypeError(f"options must be EncodeOptions, "
                        f"got {type(options).__name__}")
    defaults = {f.name: f.default for f in dataclasses.fields(EncodeOptions)}
    merged: Dict[str, Any] = {}
    conflicts = []
    for name, value in explicit.items():
        current = getattr(options, name)
        if current == value:
            continue
        if current == defaults[name]:
            merged[name] = value
        else:
            conflicts.append(
                f"{name} (options={current!r}, keyword={value!r})")
    if conflicts:
        raise ValueError(
            "conflicting encode_fsm arguments — passed both in options= "
            "and as a keyword: " + "; ".join(conflicts))
    return options.replace(**merged) if merged else options
