"""Independent verification of encoding results.

Everything the benchmarks report is backed by these checks: an encoded,
re-minimized PLA must implement exactly the behaviour of the original
state transition table.  The checker evaluates the minimized cover on
every specified (input, state) pair and compares next-state codes and
outputs against the symbolic machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import itertools
from typing import List, Optional

from repro.encoding.base import Encoding
from repro.errors import ConstraintError
from repro.eval.instantiate import EncodedPLA
from repro.fsm.machine import FSM
from repro.logic.verify import verify_minimization

# widest binary input space swept exhaustively; beyond this the checker
# samples concrete vectors from the specified rows instead
_EXHAUSTIVE_INPUT_BITS = 14


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_encoded_machine`."""

    ok: bool
    checked_pairs: int
    mismatches: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


def _eval_cover(pla: EncodedPLA, input_bits: str, symbol_bits: str,
                state_code: int) -> int:
    fmt = pla.cover.fmt
    out_var = fmt.num_vars - 1
    fields = [{"0": 1, "1": 2}[ch] for ch in input_bits + symbol_bits]
    fields += [2 if (state_code >> b) & 1 else 1
               for b in range(pla.state_bits)]
    fields += [(1 << fmt.parts[out_var]) - 1]
    minterm = fmt.cube_from_fields(fields)
    result = 0
    for cube in pla.cover.cubes:
        if fmt.intersects(cube, minterm):
            result |= fmt.field(cube, out_var)
    return result


def verify_encoded_machine(
    fsm: FSM,
    enc: Encoding,
    pla: EncodedPLA,
    symbol_enc: Optional[Encoding] = None,
    out_symbol_enc: Optional[Encoding] = None,
    max_pairs: int = 20_000,
) -> VerificationReport:
    """Check the encoded PLA simulates the symbolic machine exactly.

    Also re-checks the espresso contract on the minimized cover.
    Unspecified (state, input) pairs are skipped — any behaviour is
    legal there.  ``max_pairs`` bounds the exhaustive sweep for very
    wide machines (pairs beyond the bound are not checked).
    """
    report = VerificationReport(ok=True, checked_pairs=0)
    if not verify_minimization(pla.cover, pla.on, pla.dc,
                               pla.off if len(pla.off) else None):
        report.ok = False
        report.mismatches.append("minimized cover violates espresso contract")
        return report

    sbits = pla.state_bits
    if fsm.has_symbolic_input:
        if symbol_enc is None:
            raise ConstraintError(
                "symbolic machine needs its symbol encoding")
        input_space = [("", symbol_enc.as_bits(fsm.symbol_index(v))[::-1], v)
                       for v in fsm.symbolic_input_values]
    elif fsm.num_inputs <= _EXHAUSTIVE_INPUT_BITS:
        input_space = [("".join(bits), "", None)
                       for bits in itertools.product(
                           "01", repeat=fsm.num_inputs)]
    else:
        # too wide to sweep exhaustively: check concrete vectors drawn
        # from the specified rows themselves (each row's input cube
        # with the don't-cares forced all-0 and all-1)
        vectors = []
        seen_v = set()
        for t in fsm.transitions:
            for fill in "01":
                vec = t.inputs.replace("-", fill)
                if vec not in seen_v:
                    seen_v.add(vec)
                    vectors.append(vec)
        input_space = [(vec, "", None) for vec in vectors]

    if fsm.has_symbolic_output and out_symbol_enc is None:
        raise ConstraintError(
            "machine with symbolic output needs its encoding")

    for state in fsm.states:
        code = enc.code_of(fsm.state_index(state))
        for input_bits, symbol_bits, symbol in input_space:
            if report.checked_pairs >= max_pairs:
                return report
            row = fsm.matching_row(state, input_bits, symbol=symbol)
            if row is None:
                continue
            report.checked_pairs += 1
            nxt, outs = row.next, row.outputs
            got = _eval_cover(pla, input_bits, symbol_bits, code)
            if out_symbol_enc is not None:
                want_osym = out_symbol_enc.code_of(
                    fsm.out_symbol_index(row.out_symbol))
                got_osym = got >> (sbits + fsm.num_outputs)
                if got_osym != want_osym:
                    report.ok = False
                    report.mismatches.append(
                        f"{state}/{input_bits or symbol}: output-symbol "
                        f"code {got_osym:b} != {want_osym:b}"
                    )
            if nxt != "*":
                want = enc.code_of(fsm.state_index(nxt))
                if got & ((1 << sbits) - 1) != want:
                    report.ok = False
                    report.mismatches.append(
                        f"{state}/{input_bits or symbol}: next-state code "
                        f"{got & ((1 << sbits) - 1):0{sbits}b} != "
                        f"{want:0{sbits}b}"
                    )
            for j, ch in enumerate(outs):
                if ch == "-":
                    continue
                bit = (got >> (sbits + j)) & 1
                if bit != int(ch):
                    report.ok = False
                    report.mismatches.append(
                        f"{state}/{input_bits or symbol}: output {j} "
                        f"is {bit}, expected {ch}"
                    )
    return report
