"""`project_code`: constraint satisfaction by growing the encoding cube (§4.2).

Proposition 4.2.1: given an encoding of length *l* satisfying a set of
constraints C, padding every state's code with a 1 when the state
belongs to an arbitrary further constraint c (0 otherwise) yields a
length *l+1* encoding satisfying C ∪ {c}.  ``project_code`` applies the
construction greedily — heaviest unsatisfied constraint first — and
opportunistically collects any other constraints the raise happens to
satisfy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.constraints.input_constraints import ConstraintSet
from repro.encoding.base import Encoding, constraint_satisfied
from repro.errors import ConstraintError


def raise_for_constraint(enc: Encoding, mask: int) -> Encoding:
    """One application of the Proposition 4.2.1 construction."""
    bits = [1 if (mask >> s) & 1 else 0 for s in range(enc.n)]
    return Encoding(enc.nbits + 1, [c | (b << enc.nbits)
                                    for c, b in zip(enc.codes, bits)])


def project_code(
    enc: Encoding,
    sic: List[int],
    ric: List[int],
    cs: ConstraintSet,
) -> Tuple[Encoding, List[int]]:
    """Grow the cube by one dimension and satisfy >= 1 more constraint.

    Returns the new encoding and the list of newly satisfied
    constraints (moved from RIC to SIC by the caller).  The target
    constraint is the heaviest of RIC; per the paper's heuristic, when
    several targets tie we prefer the one whose raise involves states
    frequent in the other unsatisfied constraints, making incidental
    satisfaction more likely.
    """
    if not ric:
        raise ConstraintError(
            "project_code called with no unsatisfied constraints")
    freq = [0] * cs.n
    for m in ric:
        for s in cs.members(m):
            freq[s] += 1

    def preference(mask: int) -> Tuple[int, int, int]:
        weight = cs.weights.get(mask, 1)
        popularity = sum(freq[s] for s in cs.members(mask))
        return (-weight, -popularity, mask)

    target = min(ric, key=preference)
    grown = raise_for_constraint(enc, target)
    newly = [m for m in ric if constraint_satisfied(grown, m)]
    if target not in newly:  # guaranteed by Prop 4.2.1; guard regardless
        newly.append(target)
    return grown, newly


def satisfy_all(
    enc: Encoding,
    sic: List[int],
    ric: List[int],
    cs: ConstraintSet,
    max_bits: Optional[int] = None,
) -> Tuple[Encoding, List[int], List[int]]:
    """Repeat project_code until RIC is empty or the bit budget is spent."""
    sic = list(sic)
    ric = list(ric)
    while ric and (max_bits is None or enc.nbits < max_bits):
        enc, newly = project_code(enc, sic, ric, cs)
        sic.extend(newly)
        ric = [m for m in ric if m not in set(newly)]
    return enc, sic, ric
