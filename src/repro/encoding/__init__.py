"""NOVA's encoding algorithms: the paper's primary contribution."""

from repro.encoding.base import Encoding, constraint_satisfied, satisfied_masks
from repro.encoding.iexact import iexact_code, semiexact_code
from repro.encoding.igreedy import igreedy_code
from repro.encoding.ihybrid import ihybrid_code
from repro.encoding.iohybrid import iohybrid_code, iovariant_code
from repro.encoding.nova import (
    ALGORITHMS,
    FALLBACK_CHAIN,
    FallbackEvent,
    NovaResult,
    RunReport,
    encode_fsm,
    fallback_chain,
)
from repro.encoding.onehot import onehot_code, random_code
from repro.encoding.out_encoder import out_encoder
from repro.encoding.project import project_code
from repro.encoding.verify import VerificationReport, verify_encoded_machine

__all__ = [
    "Encoding",
    "constraint_satisfied",
    "satisfied_masks",
    "iexact_code",
    "semiexact_code",
    "project_code",
    "ihybrid_code",
    "igreedy_code",
    "iohybrid_code",
    "iovariant_code",
    "out_encoder",
    "onehot_code",
    "random_code",
    "NovaResult",
    "RunReport",
    "FallbackEvent",
    "encode_fsm",
    "fallback_chain",
    "ALGORITHMS",
    "FALLBACK_CHAIN",
    "VerificationReport",
    "verify_encoded_machine",
]
