"""`iohybrid_code` / `iovariant_code` (§6.2): input + output constraints.

Both run on the (IC, OC) pair produced by symbolic minimization.
``iohybrid_code`` is biased toward input constraints: it first fills SIC
exactly as ihybrid does, then tries to add clusters of output covering
constraints (heaviest first) via ``io_semiexact_code`` — the bounded
backtracking engine with an extra veto hook that rejects a state code
violating an active covering edge.  ``iovariant_code`` accepts a
cluster only when its companion input constraints are satisfied along
with it (§6.2.2); the paper found it weaker, and our benchmarks let you
check that claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.constraints.input_constraints import ConstraintSet
from repro.constraints.output_constraints import OutputConstraints
from repro.encoding.base import Encoding, counting_sequence_code
from repro.encoding.iexact import semiexact_code
from repro.encoding.out_encoder import out_encoder
from repro.encoding.project import satisfy_all
from repro.fsm.machine import minimum_code_length


@dataclass
class IoStats:
    """Bookkeeping of one iohybrid/iovariant run."""

    satisfied_ic: List[int] = field(default_factory=list)
    rejected_ic: List[int] = field(default_factory=list)
    satisfied_clusters: List[int] = field(default_factory=list)  # next states
    satisfied_oc_weight: int = 0


def _edge_check(active_edges: List[Tuple[int, int]]):
    """Veto hook enforcing covering edges among already-fixed codes."""

    def check(state: int, code: int, codes: Dict[int, int]) -> bool:
        for u, v in active_edges:
            cu = code if u == state else codes.get(u)
            cv = code if v == state else codes.get(v)
            if cu is None or cv is None:
                continue
            if cv & ~cu or cu == cv:
                return False
        return True

    return check


def io_semiexact_code(
    sic: List[int],
    edges: List[Tuple[int, int]],
    n: int,
    k: int,
    max_work: int = 20_000,
) -> Optional[Encoding]:
    """semiexact_code with output-covering rejection (§6.2.1)."""
    return semiexact_code(sic, n, k, max_work=max_work,
                          io_check=_edge_check(edges))


def iohybrid_code(
    cs: ConstraintSet,
    oc: OutputConstraints,
    nbits: Optional[int] = None,
    max_work: int = 20_000,
    stats: Optional[IoStats] = None,
) -> Encoding:
    """Input-biased simultaneous input/output constraint satisfaction."""
    n = cs.n
    min_bits = minimum_code_length(n)
    if nbits is None:
        nbits = min_bits
    if len(cs) == 0:
        edges = oc.all_edges()
        if edges and oc.check_acyclic():
            enc = out_encoder(n, edges)
            if enc.nbits < min_bits:
                enc = Encoding(min_bits, enc.codes)
            # deep dominance chains can explode the code length; the
            # area cost of extra columns then outweighs the rows saved
            # (the lesson of Table II), so fall back to minimum length
            if enc.nbits <= max(min_bits, nbits):
                return enc
        return counting_sequence_code(n, min_bits)

    sic: List[int] = []
    ric: List[int] = []
    enc: Optional[Encoding] = None
    for mask, _w in cs.by_weight():
        attempt = semiexact_code(sic + [mask], n, min_bits, max_work=max_work)
        if attempt is not None:
            enc = attempt
            sic.append(mask)
        else:
            ric.append(mask)

    soc_edges: List[Tuple[int, int]] = []
    satisfied_clusters: List[int] = []
    for cluster in oc.by_weight():
        if not cluster.edges:
            continue
        attempt = io_semiexact_code(sic, soc_edges + cluster.edges, n,
                                    min_bits, max_work=max_work)
        if attempt is not None:
            enc = attempt
            soc_edges.extend(cluster.edges)
            satisfied_clusters.append(cluster.next_state)

    if enc is None:
        enc = counting_sequence_code(n, min_bits)
    enc, sic, ric = satisfy_all(enc, sic, ric, cs, max_bits=nbits)
    if stats is not None:
        stats.satisfied_ic = sic
        stats.rejected_ic = ric
        stats.satisfied_clusters = satisfied_clusters
        stats.satisfied_oc_weight = sum(
            cl.weight for cl in oc.clusters
            if cl.next_state in satisfied_clusters
        )
    return enc


def iovariant_code(
    cs: ConstraintSet,
    oc: OutputConstraints,
    nbits: Optional[int] = None,
    max_work: int = 20_000,
    stats: Optional[IoStats] = None,
) -> Encoding:
    """Cluster-coupled variant: accept IC_i and OC_i together (§6.2.2)."""
    n = cs.n
    min_bits = minimum_code_length(n)
    if nbits is None:
        nbits = min_bits
    if len(cs) == 0 and not oc.is_empty():
        return iohybrid_code(cs, oc, nbits, max_work)

    sic: List[int] = []
    ric: List[int] = []
    enc: Optional[Encoding] = None
    # IC_o first: input constraints tied to proper outputs only
    free = [m for m in oc.free_ic if m in cs.weights]
    for mask in sorted(free, key=lambda m: -cs.weights.get(m, 0)):
        attempt = semiexact_code(sic + [mask], n, min_bits, max_work=max_work)
        if attempt is not None:
            enc = attempt
            sic.append(mask)
        else:
            ric.append(mask)

    soc_edges: List[Tuple[int, int]] = []
    satisfied_clusters: List[int] = []
    for cluster in oc.by_weight():
        ic_i = [m for m in cluster.companion_ic if m not in sic]
        attempt = io_semiexact_code(sic + ic_i, soc_edges + cluster.edges,
                                    n, min_bits, max_work=max_work)
        if attempt is not None:
            enc = attempt
            sic.extend(ic_i)
            soc_edges.extend(cluster.edges)
            satisfied_clusters.append(cluster.next_state)
            ric = [m for m in ric if m not in set(ic_i)]
        else:
            ric.extend(m for m in ic_i if m not in ric)

    # any constraint never offered joins RIC for the projection phase
    offered = set(sic) | set(ric)
    ric.extend(m for m in cs.masks() if m not in offered)

    if enc is None:
        enc = counting_sequence_code(n, min_bits)
    enc, sic, ric = satisfy_all(enc, sic, ric, cs, max_bits=nbits)
    if stats is not None:
        stats.satisfied_ic = sic
        stats.rejected_ic = ric
        stats.satisfied_clusters = satisfied_clusters
        stats.satisfied_oc_weight = sum(
            cl.weight for cl in oc.clusters
            if cl.next_state in satisfied_clusters
        )
    return enc
