"""Encoding of symbolic proper outputs (the paper's §VII future work).

When the output part of the machine is symbolic, its values must be
assigned Boolean codes too (an encoding problem of class B).  The
technique mirrors symbolic minimization: minimize each output symbol's
on-set against the others as don't cares, accept the stage when it
shrinks the cover, and collect *covering* relations — symbol *u* must
bitwise cover symbol *v* when u's minimized implicants overlap v's
rows.  The dominance DAG is then realized constructively by
:func:`repro.encoding.out_encoder.out_encoder`.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.encoding.base import Encoding
from repro.encoding.out_encoder import out_encoder
from repro.errors import ConstraintError
from repro.fsm.machine import minimum_code_length
from repro.fsm.symbolic_cover import SymbolicCover
from repro.logic.cover import Cover
from repro.logic.espresso import espresso


def output_symbol_dominance(
    sc: SymbolicCover, effort: str = "full"
) -> List[Tuple[int, int]]:
    """Covering edges ``(u, v)`` — code(u) must cover code(v)."""
    fsm = sc.fsm
    n_osym = sc.num_out_symbol_parts
    if n_osym == 0:
        return []
    fmt = sc.fmt
    base = sc.num_next_parts + fsm.num_outputs
    on_sets: Dict[int, List[int]] = {i: [] for i in range(n_osym)}
    for cube in sc.on.cubes:
        out = fmt.field(cube, sc.output_var)
        for i in range(n_osym):
            if (out >> (base + i)) & 1:
                on_sets[i].append(cube)

    covers_adj: Dict[int, Set[int]] = {}

    def has_path(src: int, dst: int) -> bool:
        stack = [src]
        seen = set()
        while stack:
            u = stack.pop()
            if u == dst:
                return True
            if u in seen:
                continue
            seen.add(u)
            stack.extend(covers_adj.get(u, ()))
        return False

    order = sorted(range(n_osym), key=lambda i: (-len(on_sets[i]), i))
    full_mask = (1 << fmt.parts[sc.output_var]) - 1
    for i in order:
        on_i = on_sets[i]
        if not on_i:
            continue
        col = 1 << (base + i)
        dc_cubes = list(sc.dc.cubes)
        off_cubes = []
        for j in range(n_osym):
            if j == i or not on_sets[j]:
                continue
            rows = [fmt.with_field(c, sc.output_var, col)
                    for c in on_sets[j]]
            if has_path(i, j):
                off_cubes.extend(rows)
            else:
                dc_cubes.extend(rows)
        on = Cover(fmt, (fmt.with_field(c, sc.output_var, col)
                         for c in on_i))
        mb = espresso(on, Cover(fmt, dc_cubes),
                      off=Cover(fmt, off_cubes) if off_cubes else None,
                      effort=effort)
        if len(mb) < len(on_i):
            widened = [fmt.with_field(c, sc.output_var, full_mask)
                       for c in mb.cubes]
            for j in range(n_osym):
                if j == i or not on_sets[j]:
                    continue
                if any(fmt.intersects(w, fmt.with_field(r, sc.output_var,
                                                        full_mask))
                       for w in widened for r in on_sets[j]):
                    covers_adj.setdefault(j, set()).add(i)
    return sorted((u, v) for u, vs in covers_adj.items() for v in vs)


def out_symbol_encoding(sc: SymbolicCover,
                        effort: str = "full") -> Encoding:
    """Codes for the machine's output symbols (dominance-aware)."""
    n_osym = sc.num_out_symbol_parts
    if n_osym == 0:
        raise ConstraintError("machine has no symbolic output")
    edges = output_symbol_dominance(sc, effort=effort)
    enc = out_encoder(n_osym, edges)
    min_bits = minimum_code_length(n_osym)
    if enc.nbits < min_bits:
        enc = Encoding(min_bits, enc.codes)
    return enc
