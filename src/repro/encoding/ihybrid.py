"""`ihybrid_code` (§IV): greedy constraint selection over semiexact_code,
then projection to mop up the rejected constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.constraints.input_constraints import ConstraintSet
from repro.encoding.base import Encoding, counting_sequence_code
from repro.encoding.iexact import semiexact_code
from repro.encoding.project import satisfy_all
from repro.errors import EncodingInfeasible
from repro.fsm.machine import minimum_code_length
from repro.perf.budget import Budget


@dataclass
class HybridStats:
    """Table-VI style statistics of one ihybrid run."""

    satisfied_weight: int = 0
    unsatisfied_weight: int = 0
    satisfied: List[int] = field(default_factory=list)
    rejected: List[int] = field(default_factory=list)
    final_bits: int = 0


def ihybrid_code(
    cs: ConstraintSet,
    nbits: Optional[int] = None,
    max_work: int = 20_000,
    stats: Optional[HybridStats] = None,
    budget: Optional[Budget] = None,
) -> Encoding:
    """Maximize satisfied constraint weight within *nbits* (§IV pseudocode).

    Constraints are offered heaviest-first to ``semiexact_code`` on the
    minimum code length; accepted ones stay in SIC, rejected ones in
    RIC.  If encoding space remains (``nbits`` above the minimum),
    ``project_code`` grows the cube one dimension at a time, each
    guaranteed to satisfy at least one more RIC constraint.

    A *budget* (wall-clock) is shared with every bounded search call;
    its exhaustion raises :class:`~repro.errors.BudgetExhausted` —
    per-call work caps, by contrast, just reject the constraint being
    offered, which is the algorithm working as designed.
    """
    n = cs.n
    min_bits = minimum_code_length(n)
    if nbits is None:
        nbits = min_bits
    if nbits < min_bits:
        raise EncodingInfeasible(f"{nbits} bits cannot encode {n} states",
                                 stage="encode")

    sic: List[int] = []
    ric: List[int] = []
    enc: Optional[Encoding] = None
    for mask, _w in cs.by_weight():
        if budget is not None:
            budget.check_time()
        attempt = semiexact_code(sic + [mask], n, min_bits,
                                 max_work=max_work, budget=budget)
        if attempt is not None:
            enc = attempt
            sic.append(mask)
        else:
            ric.append(mask)
    # second chance: a constraint rejected early may fit alongside the
    # final SIC (the bounded search is order-sensitive); one extra pass
    # over RIC recovers some of what the greedy order lost
    retry = list(ric)
    for mask in retry:
        if budget is not None:
            budget.check_time()
        attempt = semiexact_code(sic + [mask], n, min_bits,
                                 max_work=max_work, budget=budget)
        if attempt is not None:
            enc = attempt
            sic.append(mask)
            ric.remove(mask)
    if enc is None:
        # rare pathological situation (paper §IV): fall back to a
        # deterministic seed encoding so projection has a starting point
        enc = counting_sequence_code(n, min_bits)
    enc, sic, ric = satisfy_all(enc, sic, ric, cs, max_bits=nbits)
    if stats is not None:
        stats.satisfied = sic
        stats.rejected = ric
        stats.satisfied_weight = sum(cs.weights.get(m, 0) for m in sic)
        stats.unsatisfied_weight = sum(cs.weights.get(m, 0) for m in ric)
        stats.final_bits = enc.nbits
    return enc
