"""Shared encoding types and constraint-satisfaction checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.constraints.faces import Face
from repro.constraints.input_constraints import ConstraintSet
from repro.errors import ConstraintError, EncodingInfeasible


@dataclass
class Encoding:
    """An assignment of distinct ``nbits``-wide codes to ``n`` symbols."""

    nbits: int
    codes: List[int]  # index = symbol, value = code

    def __post_init__(self) -> None:
        limit = 1 << self.nbits
        for c in self.codes:
            if c < 0 or c >= limit:
                raise ConstraintError(
                    f"code {c:#x} does not fit in {self.nbits} bits")
        if len(set(self.codes)) != len(self.codes):
            raise ConstraintError("codes must be injective")

    @property
    def n(self) -> int:
        return len(self.codes)

    def code_of(self, symbol: int) -> int:
        return self.codes[symbol]

    def as_bits(self, symbol: int) -> str:
        return format(self.codes[symbol], f"0{self.nbits}b")

    def used_codes(self) -> List[int]:
        return list(self.codes)

    def unused_codes(self) -> List[int]:
        used = set(self.codes)
        return [c for c in range(1 << self.nbits) if c not in used]

    def widen(self, new_bits: Iterable[int]) -> "Encoding":
        """Append one MSB per symbol (used by ``project_code``)."""
        bits = list(new_bits)
        if len(bits) != self.n:
            raise ConstraintError("need one new bit per symbol")
        return Encoding(
            self.nbits + 1,
            [c | (b << self.nbits) for c, b in zip(self.codes, bits)],
        )

    def __repr__(self) -> str:
        codes = ", ".join(self.as_bits(i) for i in range(self.n))
        return f"Encoding({self.nbits} bits: {codes})"


def constraint_satisfied(enc: Encoding, mask: int) -> bool:
    """Face-embedding check for one constraint against final codes.

    The constraint is satisfied when the smallest face spanning the
    member codes (their supercube) contains no non-member code.
    """
    members = [enc.codes[i] for i in range(enc.n) if (mask >> i) & 1]
    if len(members) <= 1:
        return True
    face = Face.spanning(enc.nbits, members)
    for i in range(enc.n):
        if not (mask >> i) & 1 and face.contains_code(enc.codes[i]):
            return False
    return True


def satisfied_masks(enc: Encoding, masks: Iterable[int]) -> List[int]:
    """The subset of constraints satisfied by *enc*."""
    return [m for m in masks if constraint_satisfied(enc, m)]


def satisfied_weight(enc: Encoding, cs: ConstraintSet) -> int:
    """Total weight of the satisfied constraints of *cs*."""
    return sum(w for m, w in cs.weights.items() if constraint_satisfied(enc, m))


def counting_sequence_code(n: int, nbits: int) -> Encoding:
    """The trivial 0, 1, 2, ... encoding (used as a deterministic fallback)."""
    if (1 << nbits) < n:
        raise EncodingInfeasible("not enough codes")
    return Encoding(nbits, list(range(n)))
