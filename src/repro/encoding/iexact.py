"""`iexact_code` and `semiexact_code`: (bounded) exact face hypercube embedding.

The engine decides face hypercube embedding by backtracking over the
input graph: category-1 constraints are assigned faces explicitly
(``genface``-style enumeration, level fixed by the primary level vector
``dimvect`` of §3.3.1), category-2/3 constraints are placed within the
intersection of their fathers' faces, and singletons take vertices —
the state codes.  Every proposed face is verified against the partial
assignment with the §3.1 criterion (a face must contain exactly the
member codes) plus the sound §3.4.3 pruning rules (face inclusion ⇒
set inclusion; constraints sharing a state must receive intersecting
faces).  ``iexact_code`` sweeps cube dimensions and level vectors;
``semiexact_code`` is the bounded variant of §4.1 — minimum-level
faces, MRV singleton ordering, and a ``max_work`` cap.

Deliberate deviations from a literal reading of the paper are recorded
in DESIGN.md §6: the two-phase backtracking of ``pos_equiv`` becomes
plain chronological backtracking with per-node face generators, and the
global exact-intersection equalities of SUBPOSET EQUIVALENCE are
relaxed to the code-level criterion (taken literally they reject
satisfiable instances such as triangles of pair constraints).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro import perf
from repro.constraints.faces import (
    Face,
    count_faces_of_level,
    faces_of_level,
    min_level,
    subfaces,
)
from repro.constraints.input_constraints import ConstraintSet
from repro.constraints.poset import InputGraph
from repro.encoding.base import Encoding
from repro.logic import backend
from repro.perf.budget import Budget, BudgetExceeded, tick

# an io_check receives (state, proposed code, codes fixed so far) and may
# veto the assignment -- used by io_semiexact_code to enforce output
# covering constraints while the input search runs
IoCheck = Callable[[int, int, Dict[int, int]], bool]

# back-compat alias: the bounded search used to raise its own exception
_WorkLimit = BudgetExceeded


# ----------------------------------------------------------------------
# lower bounds on the cube dimension (§3.3.2)
# ----------------------------------------------------------------------
def count_cond1(ig: InputGraph) -> int:
    """Enough faces of every level for the constraints needing them."""
    need: Dict[int, int] = {}
    for ic in ig.non_universe_nodes():
        tick()
        lvl = min_level(ig.cardinality(ic))
        need[lvl] = need.get(lvl, 0) + 1
    k = max(1, min_level(ig.n))
    while True:
        tick()
        if all(lvl <= k and need_count <= count_faces_of_level(k, lvl)
               for lvl, need_count in need.items()):
            return k
        k += 1


def count_cond2(ig: InputGraph, k: int) -> int:
    """A face of level l has k - l minimal including faces; every
    constraint needs at least as many as it has fathers."""
    for ic in ig.non_universe_nodes():
        tick()
        lvl = min_level(ig.cardinality(ic))
        k = max(k, lvl + len(ig.fathers[ic]))
    return k


def count_cond3(ig: InputGraph, k: int) -> int:
    """Virtual states introduced by uneven constraints (§3.3.2.2)."""
    vrt = []
    for ic in ig.non_universe_nodes():
        tick()
        c = ig.cardinality(ic)
        pow2 = 1 << min_level(c)
        if pow2 != c:
            vrt.append(pow2 - c)
    if not vrt:
        return k
    while True:
        counts = sorted(vrt)
        iters = 0
        while any(counts):
            nonzero = [i for i, v in enumerate(counts) if v]
            for i in nonzero[:k]:
                counts[i] -= 1
            iters += 1
        if (1 << k) - ig.n >= iters:
            return k
        k += 1


def mincube_dim(ig: InputGraph) -> int:
    """Lower bound on the encoding length (``mincube_dim`` of the paper)."""
    k = count_cond1(ig)
    k = count_cond2(ig, k)
    k = count_cond3(ig, k)
    return k


# ----------------------------------------------------------------------
# the backtracking engine (pos_equiv)
# ----------------------------------------------------------------------
class _PosEquiv:
    """One restricted SUBPOSET EQUIVALENCE decision (fixed k, dimvect)."""

    def __init__(
        self,
        ig: InputGraph,
        k: int,
        dimvect: Optional[Dict[int, int]] = None,
        max_work: Optional[int] = None,
        io_check: Optional[IoCheck] = None,
        budget: Optional[Budget] = None,
    ):
        self.ig = ig
        self.k = k
        self.dimvect = dimvect or {}
        # one unified budget: per-call work cap, optionally a shared
        # wall-clock deadline inherited from the caller
        self.budget = budget.sub(work=max_work) if budget is not None \
            else Budget(work=max_work)
        self.io_check = io_check
        self.enc: Dict[int, Face] = {ig.universe: Face.universe(k)}
        self.used: Dict[Face, int] = {}
        self.codes: Dict[int, int] = {}  # state -> code, for io_check
        # per-node father lists without the universe, precomputed once:
        # the selection loop and the region computation run once per
        # search node x candidate and must not re-filter every time
        self._nodes = list(ig.non_universe_nodes())
        self._real_fathers: Dict[int, List[int]] = {
            ic: [f for f in ig.fathers[ic] if f != ig.universe]
            for ic in self._nodes
        }
        # region masks stay valid while only singletons are (un)assigned
        # -- singleton codes are never anyone's father face -- so the
        # memo survives the long vertex-placement phases of the search
        self._region_memo: Dict[int, Optional[Tuple[int, int]]] = {}

    @property
    def work(self) -> int:
        return self.budget.work

    # -- bookkeeping ----------------------------------------------------
    def _charge(self) -> None:
        self.budget.charge()

    def _is_singleton(self, ic: int) -> bool:
        return ic & (ic - 1) == 0

    # -- verification -----------------------------------------------------
    # The checks realize the §3.1 criterion (f(ic) ∩ f(s) ≠ ∅ ⇔ s ∈ ic)
    # incrementally: singleton faces are vertices (codes), every proposed
    # face must contain exactly the member codes among those already
    # placed, and fathers' faces must contain their descendants.  The
    # §3.4.3 constraint-vs-constraint equalities are *not* enforced:
    # taken literally they reject satisfiable instances (any triangle of
    # pair constraints), which the real NOVA clearly encodes.
    def _verify(self, ic: int, face: Face) -> bool:
        ig = self.ig
        if face.cardinality < ig.cardinality(ic):
            return False
        if face in self.used:
            return False  # injectivity
        # father conditions on the input poset
        for fa in ig.fathers[ic]:
            fa_face = self.enc.get(fa)
            if fa_face is not None and not fa_face.contains(face):
                return False
        singleton = self._is_singleton(ic)
        if singleton:
            code = face.val
            # the new code must lie inside exactly the assigned
            # constraint faces whose constraint contains this state
            for other, of in self.enc.items():
                if other == ig.universe or other == ic:
                    continue
                member = (ic & other) != 0
                if self._is_singleton(other):
                    if of.val == code:
                        return False
                elif of.contains_code(code) != member:
                    return False
            if self.io_check is not None:
                state = ic.bit_length() - 1
                if not self.io_check(state, code, self.codes):
                    return False
            return True
        # non-singleton: must contain exactly the member codes placed so
        # far — one batched membership check over all placed codes
        codes = self.codes
        if codes and not backend.kernels.face_members_ok(
                list(codes.keys()), list(codes.values()),
                ic, face.care, face.val):
            return False
        # sound forward pruning: two constraints sharing a state must get
        # intersecting faces -- the shared state's code will lie in both
        for other, of in self.enc.items():
            if other == ig.universe or other == ic:
                continue
            if ic & other and face.intersect(of) is None:
                return False
        return True

    def _assign(self, ic: int, face: Face) -> Optional[List[int]]:
        """Record the assignment (returns the undo list)."""
        self.enc[ic] = face
        self.used[face] = ic
        if self._is_singleton(ic):
            self.codes[ic.bit_length() - 1] = face.val
        else:
            self._region_memo.clear()
        return [ic]

    def _undo(self, nodes: List[int]) -> None:
        for node in nodes:
            face = self.enc.pop(node)
            self.used.pop(face, None)
            if self._is_singleton(node):
                self.codes.pop(node.bit_length() - 1, None)
            else:
                self._region_memo.clear()

    # -- node selection (next_to_code, §3.4.1) ----------------------------
    def _selectable(self) -> List[int]:
        enc = self.enc
        out = []
        for ic in self._nodes:
            if ic in enc:
                continue
            # encode fathers first (their faces bound ours)
            for f in self._real_fathers[ic]:
                if f not in enc:
                    break
            else:
                out.append(ic)
        return out

    def _target_level(self, ic: int) -> int:
        if self._is_singleton(ic):
            return 0
        cat = self.ig.category(ic)
        if cat == 1:
            return self.dimvect.get(ic, min_level(self.ig.cardinality(ic)))
        return min_level(self.ig.cardinality(ic))

    def _select_next(self, lic: Optional[int]) -> Optional[int]:
        candidates = self._selectable()
        if not candidates:
            return None
        # non-singleton constraints always outrank singletons (their key
        # tuples sorted first), so singleton regions -- the expensive part
        # of MRV -- only need computing when nothing but vertices is left
        ig = self.ig
        best = None
        best_key: Optional[Tuple] = None
        # nova-lint: disable=NV002 -- bounded per-node scan; the search
        # is metered by _search's charge per candidate face, and adding
        # charges here would shift the paper's max_work trip points
        for ic in candidates:
            if self._is_singleton(ic):
                continue
            shares = lic is not None and ig.share_children(ic, lic)
            # larger faces first, then category 1, then children sharing
            k = (-self._target_level(ic), ig.category(ic) != 1,
                 not shares, ic)
            if best_key is None or k < best_key:
                best, best_key = ic, k
        if best is not None:
            return best
        # nova-lint: disable=NV002 -- MRV scan over unplaced singletons;
        # metered by _search's charge per candidate, and extra charges
        # would change the max_work semantics of the bounded search
        for ic in candidates:
            # MRV: most-constrained singleton first (smallest region)
            masks = self._region_masks(ic)
            room = 0 if masks is None \
                else 1 << (self.k - masks[0].bit_count())
            k = (room, ic)
            if best_key is None or k < best_key:
                best, best_key = ic, k
        return best

    # -- face generation (assign_face / genface, §3.4.2) -------------------
    def _region_masks(self, ic: int) -> Optional[Tuple[int, int]]:
        """``(care, val)`` of the assigned fathers' intersection.

        Pure integer arithmetic — the MRV selection calls this for
        every unplaced singleton at every search node, so no Face
        objects are allocated.  Returns ``None`` when the fathers'
        faces are disjoint (empty region).
        """
        memo = self._region_memo
        if ic in memo:
            return memo[ic]
        care = 0
        val = 0
        enc_get = self.enc.get
        # nova-lint: disable=NV002 -- memoized pure-integer father scan
        # on the hot MRV path; metered by _search's charge per candidate
        for fa in self._real_fathers[ic]:
            face = enc_get(fa)
            if face is None:
                continue
            if (val ^ face.val) & care & face.care:
                memo[ic] = None
                return None
            care |= face.care
            val |= face.val
        memo[ic] = (care, val)
        return care, val

    def _region(self, ic: int) -> Optional[Face]:
        """Intersection of the assigned fathers' faces: the search region."""
        masks = self._region_masks(ic)
        if masks is None:
            return None
        return Face(self.k, masks[0], masks[1])

    def _candidate_faces(self, ic: int) -> Iterator[Face]:
        ig = self.ig
        region = self._region(ic)
        if region is None:
            return
        if self._is_singleton(ic):
            # singleton faces are vertices: the state codes, enumerated
            # in sorted order by one batched kernel call
            # nova-lint: disable=NV002 -- candidate generator; _search
            # charges the budget once per face it consumes from here
            for code in backend.kernels.face_vertices(
                    self.k, region.care, region.val):
                yield Face.vertex(self.k, code)
            return
        cat = ig.category(ic)
        if cat == 1:
            level = self.dimvect.get(ic, min_level(ig.cardinality(ic)))
            gen = faces_of_level(self.k, level)
            if len(self.enc) == 1:
                # symmetry breaking: the very first face can be fixed --
                # all faces of one level are hypercube-automorphic
                for face in gen:
                    yield face
                    return
            yield from gen
            return
        # category 2/3: faces inside the region, tightest level first
        low = min_level(ig.cardinality(ic))
        # nova-lint: disable=NV002 -- candidate generator; _search
        # charges the budget once per face it consumes from here
        for level in range(low, region.level + 1):
            yield from subfaces(region, level)

    # -- the search --------------------------------------------------------
    def solve(self) -> Optional[Dict[int, Face]]:
        try:
            if self._search(None):
                return dict(self.enc)
            return None
        except BudgetExceeded as exc:
            if exc.limit == "time":
                raise  # the whole run is out of time, not just this call
            return None  # per-call work cap: bounded-search rejection
        finally:
            stats = perf.STATS
            if stats is not None:
                stats.pos_equiv_work += self.budget.work

    def _search(self, lic: Optional[int]) -> bool:
        ic = self._select_next(lic)
        if ic is None:
            return self._final_check()
        for face in self._candidate_faces(ic):
            self._charge()
            if not self._verify(ic, face):
                continue
            done = self._assign(ic, face)
            if done is None:
                continue
            if self._search(ic):
                return True
            self._undo(done)
        return False

    def _final_check(self) -> bool:
        """Authoritative face-embedding check on the complete assignment."""
        ig = self.ig
        states = list(range(ig.n))
        try:
            codes = [self.codes[s] for s in states]
        except KeyError:
            return False  # some state never received a code
        # nova-lint: disable=NV002 -- runs once per *complete*
        # assignment, after the charged search has already paid for
        # every node that led here
        for ic in ig.non_universe_nodes():
            face = self.enc[ic]
            if not backend.kernels.face_members_ok(
                    states, codes, ic, face.care, face.val):
                return False
        return True


def pos_equiv(
    ig: InputGraph,
    k: int,
    dimvect: Optional[Dict[int, int]] = None,
    max_work: Optional[int] = None,
    io_check: Optional[IoCheck] = None,
    budget: Optional[Budget] = None,
) -> Optional[Encoding]:
    """Decide restricted SUBPOSET EQUIVALENCE; return an encoding if any."""
    engine = _PosEquiv(ig, k, dimvect, max_work, io_check, budget)
    result = engine.solve()
    if result is None:
        return None
    codes = [engine.codes[s] for s in range(ig.n)]
    return Encoding(k, codes)


# ----------------------------------------------------------------------
# the exact algorithm (§3.3)
# ----------------------------------------------------------------------
def _level_vectors(
    primaries: List[int], ig: InputGraph, k: int, limit: int
) -> Iterator[Dict[int, int]]:
    """Primary level vectors in increasing lexicographic order."""
    ranges = []
    for ic in primaries:
        low = min_level(ig.cardinality(ic))
        ranges.append(range(low, k))  # empty when low >= k: no vector fits
    count = 0
    for combo in itertools.product(*ranges):
        tick()
        yield dict(zip(primaries, combo))
        count += 1
        if count >= limit:
            return


def iexact_code(
    cs: ConstraintSet,
    max_k: Optional[int] = None,
    max_work: Optional[int] = 30_000,
    max_vectors: int = 64,
    time_budget: Optional[float] = 30.0,
    budget: Optional[Budget] = None,
) -> Optional[Encoding]:
    """Minimum-length encoding satisfying *all* input constraints.

    Exact in spirit and on the benchmark sizes it is meant for; the
    ``max_work`` / ``max_vectors`` caps make the worst cases give up
    (returning None) exactly as the paper reports for scf and tbk.
    Running out of *wall-clock* allowance is different from an
    exhausted search: it raises
    :class:`~repro.errors.BudgetExhausted` so callers can distinguish
    "infeasible under the caps" from "ran out of time".  The deadline —
    ``time_budget`` from now, clipped to the caller's *budget* when one
    is given — is shared with every ``pos_equiv`` call through one
    :class:`~repro.perf.Budget`, so a single runaway vector can no
    longer overshoot it.
    """
    own = Budget(seconds=time_budget, stage="iexact")
    if budget is not None and budget.deadline is not None:
        if own.deadline is None or budget.deadline < own.deadline:
            own.deadline = budget.deadline
    ig = InputGraph(cs.n, cs.masks())
    upper = cs.n if max_k is None else max_k
    primaries = [p for p in ig.primaries() if p & (p - 1)]  # non-singletons
    for k in range(mincube_dim(ig), upper + 1):
        for dimvect in _level_vectors(primaries, ig, k, max_vectors):
            own.check_time()
            enc = pos_equiv(ig, k, dimvect, max_work, budget=own)
            if enc is not None:
                return enc
    return None


def semiexact_code(
    masks: Iterable[int],
    n: int,
    k: int,
    max_work: int = 20_000,
    io_check: Optional[IoCheck] = None,
    budget: Optional[Budget] = None,
) -> Optional[Encoding]:
    """Bounded backtrack coding (§4.1): min-level faces, capped work."""
    ig = InputGraph(n, list(masks))
    if mincube_dim(ig) > k:
        return None
    return pos_equiv(ig, k, dimvect=None, max_work=max_work,
                     io_check=io_check, budget=budget)
