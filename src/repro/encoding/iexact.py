"""`iexact_code` and `semiexact_code`: (bounded) exact face hypercube embedding.

The engine decides face hypercube embedding by backtracking over the
input graph: category-1 constraints are assigned faces explicitly
(``genface``-style enumeration, level fixed by the primary level vector
``dimvect`` of §3.3.1), category-2/3 constraints are placed within the
intersection of their fathers' faces, and singletons take vertices —
the state codes.  Every proposed face is verified against the partial
assignment with the §3.1 criterion (a face must contain exactly the
member codes) plus the sound §3.4.3 pruning rules (face inclusion ⇒
set inclusion; constraints sharing a state must receive intersecting
faces).  ``iexact_code`` sweeps cube dimensions and level vectors;
``semiexact_code`` is the bounded variant of §4.1 — minimum-level
faces, MRV singleton ordering, and a ``max_work`` cap.

Deliberate deviations from a literal reading of the paper are recorded
in DESIGN.md §6: the two-phase backtracking of ``pos_equiv`` becomes
plain chronological backtracking with per-node face generators, and the
global exact-intersection equalities of SUBPOSET EQUIVALENCE are
relaxed to the code-level criterion (taken literally they reject
satisfiable instances such as triangles of pair constraints).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.constraints.faces import (
    Face,
    count_faces_of_level,
    faces_of_level,
    min_level,
    subfaces,
)
from repro.constraints.input_constraints import ConstraintSet
from repro.constraints.poset import InputGraph
from repro.encoding.base import Encoding

# an io_check receives (state, proposed code, codes fixed so far) and may
# veto the assignment -- used by io_semiexact_code to enforce output
# covering constraints while the input search runs
IoCheck = Callable[[int, int, Dict[int, int]], bool]


class _WorkLimit(Exception):
    """Raised when the bounded search exceeds its max_work budget."""


# ----------------------------------------------------------------------
# lower bounds on the cube dimension (§3.3.2)
# ----------------------------------------------------------------------
def count_cond1(ig: InputGraph) -> int:
    """Enough faces of every level for the constraints needing them."""
    need: Dict[int, int] = {}
    for ic in ig.non_universe_nodes():
        lvl = min_level(ig.cardinality(ic))
        need[lvl] = need.get(lvl, 0) + 1
    k = max(1, min_level(ig.n))
    while True:
        if all(lvl <= k and need_count <= count_faces_of_level(k, lvl)
               for lvl, need_count in need.items()):
            return k
        k += 1


def count_cond2(ig: InputGraph, k: int) -> int:
    """A face of level l has k - l minimal including faces; every
    constraint needs at least as many as it has fathers."""
    for ic in ig.non_universe_nodes():
        lvl = min_level(ig.cardinality(ic))
        k = max(k, lvl + len(ig.fathers[ic]))
    return k


def count_cond3(ig: InputGraph, k: int) -> int:
    """Virtual states introduced by uneven constraints (§3.3.2.2)."""
    vrt = []
    for ic in ig.non_universe_nodes():
        c = ig.cardinality(ic)
        pow2 = 1 << min_level(c)
        if pow2 != c:
            vrt.append(pow2 - c)
    if not vrt:
        return k
    while True:
        counts = sorted(vrt)
        iters = 0
        while any(counts):
            nonzero = [i for i, v in enumerate(counts) if v]
            for i in nonzero[:k]:
                counts[i] -= 1
            iters += 1
        if (1 << k) - ig.n >= iters:
            return k
        k += 1


def mincube_dim(ig: InputGraph) -> int:
    """Lower bound on the encoding length (``mincube_dim`` of the paper)."""
    k = count_cond1(ig)
    k = count_cond2(ig, k)
    k = count_cond3(ig, k)
    return k


# ----------------------------------------------------------------------
# the backtracking engine (pos_equiv)
# ----------------------------------------------------------------------
class _PosEquiv:
    """One restricted SUBPOSET EQUIVALENCE decision (fixed k, dimvect)."""

    def __init__(
        self,
        ig: InputGraph,
        k: int,
        dimvect: Optional[Dict[int, int]] = None,
        max_work: Optional[int] = None,
        io_check: Optional[IoCheck] = None,
    ):
        self.ig = ig
        self.k = k
        self.dimvect = dimvect or {}
        self.max_work = max_work
        self.io_check = io_check
        self.work = 0
        self.enc: Dict[int, Face] = {ig.universe: Face.universe(k)}
        self.used: Dict[Face, int] = {}
        self.codes: Dict[int, int] = {}  # state -> code, for io_check

    # -- bookkeeping ----------------------------------------------------
    def _charge(self) -> None:
        self.work += 1
        if self.max_work is not None and self.work > self.max_work:
            raise _WorkLimit()

    def _is_singleton(self, ic: int) -> bool:
        return ic & (ic - 1) == 0

    # -- verification -----------------------------------------------------
    # The checks realize the §3.1 criterion (f(ic) ∩ f(s) ≠ ∅ ⇔ s ∈ ic)
    # incrementally: singleton faces are vertices (codes), every proposed
    # face must contain exactly the member codes among those already
    # placed, and fathers' faces must contain their descendants.  The
    # §3.4.3 constraint-vs-constraint equalities are *not* enforced:
    # taken literally they reject satisfiable instances (any triangle of
    # pair constraints), which the real NOVA clearly encodes.
    def _verify(self, ic: int, face: Face) -> bool:
        ig = self.ig
        if face.cardinality < ig.cardinality(ic):
            return False
        if face in self.used:
            return False  # injectivity
        # father conditions on the input poset
        for fa in ig.fathers[ic]:
            fa_face = self.enc.get(fa)
            if fa_face is not None and not fa_face.contains(face):
                return False
        singleton = self._is_singleton(ic)
        if singleton:
            code = face.val
            # the new code must lie inside exactly the assigned
            # constraint faces whose constraint contains this state
            for other, of in self.enc.items():
                if other == ig.universe or other == ic:
                    continue
                member = (ic & other) != 0
                if self._is_singleton(other):
                    if of.val == code:
                        return False
                elif of.contains_code(code) != member:
                    return False
            if self.io_check is not None:
                state = ic.bit_length() - 1
                if not self.io_check(state, code, self.codes):
                    return False
            return True
        # non-singleton: must contain exactly the member codes placed so far
        for state, code in self.codes.items():
            member = bool((ic >> state) & 1)
            if face.contains_code(code) != member:
                return False
        # sound forward pruning: two constraints sharing a state must get
        # intersecting faces -- the shared state's code will lie in both
        for other, of in self.enc.items():
            if other == ig.universe or other == ic:
                continue
            if ic & other and face.intersect(of) is None:
                return False
        return True

    def _assign(self, ic: int, face: Face) -> Optional[List[int]]:
        """Record the assignment (returns the undo list)."""
        self.enc[ic] = face
        self.used[face] = ic
        if self._is_singleton(ic):
            self.codes[ic.bit_length() - 1] = face.val
        return [ic]

    def _undo(self, nodes: List[int]) -> None:
        for node in nodes:
            face = self.enc.pop(node)
            self.used.pop(face, None)
            if self._is_singleton(node):
                self.codes.pop(node.bit_length() - 1, None)

    # -- node selection (next_to_code, §3.4.1) ----------------------------
    def _selectable(self) -> List[int]:
        out = []
        for ic in self.ig.non_universe_nodes():
            if ic in self.enc:
                continue
            if any(f not in self.enc for f in self.ig.fathers[ic]
                   if f != self.ig.universe):
                continue  # encode fathers first (their faces bound ours)
            out.append(ic)
        return out

    def _target_level(self, ic: int) -> int:
        if self._is_singleton(ic):
            return 0
        cat = self.ig.category(ic)
        if cat == 1:
            return self.dimvect.get(ic, min_level(self.ig.cardinality(ic)))
        return min_level(self.ig.cardinality(ic))

    def _select_next(self, lic: Optional[int]) -> Optional[int]:
        candidates = self._selectable()
        if not candidates:
            return None

        def key(ic: int) -> Tuple:
            if self._is_singleton(ic):
                # MRV: most-constrained singleton first (smallest region)
                region = self._region(ic)
                room = region.cardinality if region is not None else 0
                return (1, room, ic)
            cat = self.ig.category(ic)
            shares = lic is not None and self.ig.share_children(ic, lic)
            # larger faces first, then category 1, then children sharing
            return (0, -self._target_level(ic), cat != 1, not shares, ic)

        return min(candidates, key=key)

    # -- face generation (assign_face / genface, §3.4.2) -------------------
    def _region(self, ic: int) -> Optional[Face]:
        """Intersection of the assigned fathers' faces: the search region."""
        region = Face.universe(self.k)
        for fa in self.ig.fathers[ic]:
            fa_face = self.enc.get(fa)
            if fa_face is None:
                continue
            inter = region.intersect(fa_face)
            if inter is None:
                return None
            region = inter
        return region

    def _candidate_faces(self, ic: int) -> Iterator[Face]:
        ig = self.ig
        region = self._region(ic)
        if region is None:
            return
        if self._is_singleton(ic):
            # singleton faces are vertices: the state codes
            for code in sorted(region.vertices()):
                yield Face.vertex(self.k, code)
            return
        cat = ig.category(ic)
        if cat == 1:
            level = self.dimvect.get(ic, min_level(ig.cardinality(ic)))
            gen = faces_of_level(self.k, level)
            if len(self.enc) == 1:
                # symmetry breaking: the very first face can be fixed --
                # all faces of one level are hypercube-automorphic
                for face in gen:
                    yield face
                    return
            yield from gen
            return
        # category 2/3: faces inside the region, tightest level first
        low = min_level(ig.cardinality(ic))
        for level in range(low, region.level + 1):
            yield from subfaces(region, level)

    # -- the search --------------------------------------------------------
    def solve(self) -> Optional[Dict[int, Face]]:
        try:
            if self._search(None):
                return dict(self.enc)
        except _WorkLimit:
            return None
        return None

    def _search(self, lic: Optional[int]) -> bool:
        ic = self._select_next(lic)
        if ic is None:
            return self._final_check()
        for face in self._candidate_faces(ic):
            self._charge()
            if not self._verify(ic, face):
                continue
            done = self._assign(ic, face)
            if done is None:
                continue
            if self._search(ic):
                return True
            self._undo(done)
        return False

    def _final_check(self) -> bool:
        """Authoritative face-embedding check on the complete assignment."""
        ig = self.ig
        for ic in ig.non_universe_nodes():
            face = self.enc[ic]
            for s in range(ig.n):
                code = self.codes.get(s)
                if code is None:
                    return False
                member = bool((ic >> s) & 1)
                if face.contains_code(code) != member:
                    return False
        return True


def pos_equiv(
    ig: InputGraph,
    k: int,
    dimvect: Optional[Dict[int, int]] = None,
    max_work: Optional[int] = None,
    io_check: Optional[IoCheck] = None,
) -> Optional[Encoding]:
    """Decide restricted SUBPOSET EQUIVALENCE; return an encoding if any."""
    engine = _PosEquiv(ig, k, dimvect, max_work, io_check)
    result = engine.solve()
    if result is None:
        return None
    codes = [engine.codes[s] for s in range(ig.n)]
    return Encoding(k, codes)


# ----------------------------------------------------------------------
# the exact algorithm (§3.3)
# ----------------------------------------------------------------------
def _level_vectors(
    primaries: List[int], ig: InputGraph, k: int, limit: int
) -> Iterator[Dict[int, int]]:
    """Primary level vectors in increasing lexicographic order."""
    ranges = []
    for ic in primaries:
        low = min_level(ig.cardinality(ic))
        ranges.append(range(low, k))  # empty when low >= k: no vector fits
    count = 0
    for combo in itertools.product(*ranges):
        yield dict(zip(primaries, combo))
        count += 1
        if count >= limit:
            return


def iexact_code(
    cs: ConstraintSet,
    max_k: Optional[int] = None,
    max_work: Optional[int] = 30_000,
    max_vectors: int = 64,
    time_budget: Optional[float] = 30.0,
) -> Optional[Encoding]:
    """Minimum-length encoding satisfying *all* input constraints.

    Exact in spirit and on the benchmark sizes it is meant for; the
    ``max_work`` / ``max_vectors`` / ``time_budget`` budgets make the
    worst cases give up (returning None) exactly as the paper reports
    for scf and tbk.
    """
    import time as _time

    deadline = None if time_budget is None else _time.monotonic() + time_budget
    ig = InputGraph(cs.n, cs.masks())
    upper = cs.n if max_k is None else max_k
    primaries = [p for p in ig.primaries() if p & (p - 1)]  # non-singletons
    for k in range(mincube_dim(ig), upper + 1):
        for dimvect in _level_vectors(primaries, ig, k, max_vectors):
            if deadline is not None and _time.monotonic() > deadline:
                return None
            enc = pos_equiv(ig, k, dimvect, max_work)
            if enc is not None:
                return enc
    return None


def semiexact_code(
    masks: Iterable[int],
    n: int,
    k: int,
    max_work: int = 20_000,
    io_check: Optional[IoCheck] = None,
) -> Optional[Encoding]:
    """Bounded backtrack coding (§4.1): min-level faces, capped work."""
    ig = InputGraph(n, list(masks))
    if mincube_dim(ig) > k:
        return None
    return pos_equiv(ig, k, dimvect=None, max_work=max_work,
                     io_check=io_check)
