"""Top-level NOVA driver: FSM in, encoded + evaluated machine out.

``encode_fsm(fsm, algorithm)`` runs the full pipeline of the paper:
multiple-valued (or symbolic) minimization, constraint extraction, the
selected encoding algorithm for the states — and for the symbolic
proper input, when the machine has one — followed by re-minimization of
the encoded cover and the PLA area measurement.

The driver is fault-tolerant: NOVA's contract is that it *always*
returns a valid, evaluated encoding.  When the selected algorithm
fails — an exhausted budget, an infeasible exact search, a verification
mismatch — the driver walks the degradation chain
``iexact → ihybrid → igreedy → onehot`` (weaker but always-terminating
algorithms), and as a last resort builds a one-hot encoding straight
from the machine, skipping every optional stage.  Every run carries a
:class:`RunReport` on the returned :class:`NovaResult` describing stage
timings, fallbacks taken, and whether the post-encode verification
gate confirmed the result.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
import random
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union
import warnings

from repro.constraints.input_constraints import (
    ConstraintSet,
    ExtractionResult,
    extract_input_constraints,
)
from repro.encoding.base import Encoding, satisfied_weight
from repro.encoding.iexact import iexact_code
from repro.encoding.igreedy import igreedy_code
from repro.encoding.ihybrid import HybridStats, ihybrid_code
from repro.encoding.iohybrid import IoStats, iohybrid_code, iovariant_code
from repro.encoding.onehot import onehot_code, random_code
from repro.encoding.options import (
    ALGORITHMS,  # noqa: F401  (re-exported: the CLI imports it from here)
    UNSET,
    EncodeOptions,
    merge_options,
)
from repro.errors import (
    EncodingInfeasible,
    ReproError,
    VerificationError,
)
from repro.eval.area import pla_area
from repro.eval.instantiate import EncodedPLA, evaluate_encoding
from repro.fsm.machine import FSM
from repro.fsm.symbolic_cover import build_symbolic_cover
from repro.logic.cover import contains_memo_scope
from repro.perf.budget import Budget, BudgetExhausted
from repro.symbolic.symbolic_min import symbolic_minimize
from repro.testing import faults

#: Degradation order: each algorithm is strictly cheaper and more
#: robust than its predecessor; ``onehot`` cannot fail.
FALLBACK_CHAIN = ("iexact", "ihybrid", "igreedy", "onehot")


@dataclass
class FallbackEvent:
    """One failed attempt: which algorithm died, where, and why."""

    algorithm: str
    error: str  # exception class name
    reason: str  # rendered message, including stage/budget context
    stage: Optional[str] = None

    def to_dict(self) -> Dict:
        return {"algorithm": self.algorithm, "error": self.error,
                "reason": self.reason, "stage": self.stage}

    @classmethod
    def from_dict(cls, d: Dict) -> "FallbackEvent":
        return cls(algorithm=d["algorithm"], error=d["error"],
                   reason=d["reason"], stage=d.get("stage"))


@dataclass
class RunReport:
    """Degradation diary of one :func:`encode_fsm` run.

    Fields
    ------
    machine / requested_algorithm / algorithm:
        What was asked for and what actually produced the result.
    degraded:
        True when the result came from a fallback algorithm, from an
        unminimized cover, or failed the verification gate.
    degradation_reason:
        One-line human summary of the first failure that forced
        degradation; ``None`` on a clean run.
    fallbacks:
        Every failed attempt, in order, as :class:`FallbackEvent`.
    stage_seconds:
        Wall-clock per pipeline stage (``mv_min``, ``encode:<alg>``,
        ``evaluate``, ``verify``, ...), accumulated across attempts.
    verified:
        True when the verification gate confirmed the returned PLA
        implements the machine; False when verification itself failed
        in last-resort mode; None when the gate was skipped
        (``verify=False`` or an unevaluated run).
    unminimized:
        True when re-minimization failed and the reported cover/area
        come from the raw encoded cover.
    timeout:
        The wall-clock allowance this run was given, if any.
    cache_hit:
        True when this result was rehydrated from the encode cache
        instead of recomputed (provenance only — a hit is bit-identical
        to the recomputation it stands in for).
    """

    machine: str
    requested_algorithm: str
    algorithm: str = ""
    degraded: bool = False
    degradation_reason: Optional[str] = None
    fallbacks: List[FallbackEvent] = field(default_factory=list)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    verified: Optional[bool] = None
    unminimized: bool = False
    timeout: Optional[float] = None
    cache_hit: bool = False

    def record_failure(self, algorithm: str, exc: ReproError) -> None:
        self.fallbacks.append(FallbackEvent(
            algorithm=algorithm,
            error=type(exc).__name__,
            reason=str(exc),
            stage=getattr(exc, "stage", None),
        ))

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.stage_seconds[name] = (self.stage_seconds.get(name, 0.0)
                                        + time.perf_counter() - t0)

    def summary(self) -> str:
        """One line: what degraded and why (or a clean confirmation)."""
        if not self.degraded:
            via = " (cached)" if self.cache_hit else ""
            return f"{self.machine}: {self.algorithm} ok{via}"
        path = " -> ".join([e.algorithm for e in self.fallbacks]
                           + [self.algorithm or "?"])
        reason = self.degradation_reason or "degraded"
        return f"{self.machine}: degraded {path} ({reason})"

    def to_dict(self) -> Dict:
        """JSON-safe rendering for journals and cross-process reports."""
        return {
            "machine": self.machine,
            "requested_algorithm": self.requested_algorithm,
            "algorithm": self.algorithm,
            "degraded": self.degraded,
            "degradation_reason": self.degradation_reason,
            "fallbacks": [e.to_dict() for e in self.fallbacks],
            "stage_seconds": {k: round(v, 6)
                              for k, v in sorted(self.stage_seconds.items())},
            "verified": self.verified,
            "unminimized": self.unminimized,
            "timeout": self.timeout,
            "cache_hit": self.cache_hit,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "RunReport":
        return cls(
            machine=d["machine"],
            requested_algorithm=d["requested_algorithm"],
            algorithm=d.get("algorithm", ""),
            degraded=d.get("degraded", False),
            degradation_reason=d.get("degradation_reason"),
            fallbacks=[FallbackEvent.from_dict(e)
                       for e in d.get("fallbacks", [])],
            stage_seconds=dict(d.get("stage_seconds", {})),
            verified=d.get("verified"),
            unminimized=d.get("unminimized", False),
            timeout=d.get("timeout"),
            cache_hit=d.get("cache_hit", False),
        )


@dataclass
class NovaResult:
    """Everything the paper's tables report about one encoding run."""

    fsm: FSM
    algorithm: str
    state_encoding: Encoding
    symbol_encoding: Optional[Encoding]
    out_symbol_encoding: Optional[Encoding]
    pla: Optional[EncodedPLA]
    cubes: int
    area: int
    seconds: float
    satisfied_weight: int = 0
    unsatisfied_weight: int = 0
    mv_cover_size: int = 0
    report: Optional[RunReport] = None

    @property
    def bits(self) -> int:
        """Total encoding bits (state + symbolic input), as in the tables."""
        b = self.state_encoding.nbits
        if self.symbol_encoding is not None:
            b += self.symbol_encoding.nbits
        return b

    def to_record(self) -> Dict:
        """Everything the batch journal needs, as one JSON-safe dict.

        Encodings are stored as ``(nbits, codes)`` pairs — exact, so
        two runs of the same task can be compared bit-for-bit — plus
        the table metrics and the full :class:`RunReport`.  The heavy
        objects (FSM, covers, the PLA) stay behind; a journal row must
        be cheap to write and to re-read.
        """
        def enc(e: Optional[Encoding]):
            return None if e is None else {"nbits": e.nbits,
                                           "codes": list(e.codes)}

        return {
            "machine": self.fsm.name,
            "algorithm": self.algorithm,
            "bits": self.bits,
            "state_encoding": enc(self.state_encoding),
            "symbol_encoding": enc(self.symbol_encoding),
            "out_symbol_encoding": enc(self.out_symbol_encoding),
            "cubes": self.cubes,
            "area": self.area,
            "seconds": round(self.seconds, 6),
            "satisfied_weight": self.satisfied_weight,
            "unsatisfied_weight": self.unsatisfied_weight,
            "mv_cover_size": self.mv_cover_size,
            "report": None if self.report is None else self.report.to_dict(),
        }


def fallback_chain(algorithm: str) -> Tuple[str, ...]:
    """The degradation order starting from *algorithm*.

    Algorithms on the chain start at their own position; the rest
    (iohybrid, kiss, mustang, ...) degrade through ``ihybrid`` onward.
    """
    if algorithm in FALLBACK_CHAIN:
        return FALLBACK_CHAIN[FALLBACK_CHAIN.index(algorithm):]
    return (algorithm,) + FALLBACK_CHAIN[1:]


def _encode_constraints(
    cs: ConstraintSet,
    algorithm: str,
    nbits: Optional[int],
    fsm: FSM,
    rng: Optional[random.Random],
    stats: Optional[HybridStats] = None,
    budget: Optional[Budget] = None,
) -> Encoding:
    """Dispatch the chosen input-constraint algorithm on one variable."""
    if algorithm == "iexact":
        enc = iexact_code(cs, budget=budget)
        if enc is None:
            raise EncodingInfeasible(
                "iexact search exhausted without a face embedding",
                stage="encode", machine=fsm.name,
            )
        return enc
    if algorithm == "ihybrid":
        return ihybrid_code(cs, nbits=nbits, stats=stats, budget=budget)
    if algorithm == "igreedy":
        return igreedy_code(cs, nbits=nbits, budget=budget)
    if algorithm == "kiss":
        from repro.baselines.kiss import kiss_code

        return kiss_code(cs)
    if algorithm == "random":
        return random_code(cs.n, nbits=nbits, rng=rng)
    if algorithm == "onehot":
        return onehot_code(cs.n)
    raise ValueError(f"unknown constraint algorithm {algorithm!r}")


class _Pipeline:
    """Shared state of one run: caches the algorithm-independent stages
    (symbolic cover, MV constraint extraction, symbolic minimization,
    output-symbol encoding) so fallback attempts don't repeat them."""

    def __init__(self, fsm: FSM, effort: str, report: RunReport,
                 budget: Optional[Budget], degrade_ok: bool = True) -> None:
        self.fsm = fsm
        self.effort = effort
        self.report = report
        self.budget = budget
        self.degrade_ok = degrade_ok
        self.sc = build_symbolic_cover(fsm)
        self._extraction: Optional[ExtractionResult] = None
        self._symbolic = None
        self._osym: Optional[Encoding] = None
        self._osym_done = False

    def extraction(self) -> ExtractionResult:
        if self._extraction is None:
            with self.report.stage("mv_min"):
                self._extraction = extract_input_constraints(
                    self.sc, effort=self.effort)
            if self.budget is not None:
                self.budget.check_time()
        return self._extraction

    def symbolic(self):
        if self._symbolic is None:
            with self.report.stage("mv_min"):
                self._symbolic = symbolic_minimize(self.sc,
                                                   effort=self.effort)
        return self._symbolic

    def out_symbol_enc(self) -> Optional[Encoding]:
        if not self._osym_done:
            if self.fsm.has_symbolic_output:
                from repro.encoding.osym import out_symbol_encoding

                with self.report.stage("osym"):
                    self._osym = out_symbol_encoding(self.sc,
                                                     effort=self.effort)
            self._osym_done = True
        return self._osym


def _evaluate(pipe: _Pipeline, enc: Encoding,
              symbol_enc: Optional[Encoding],
              out_symbol_enc: Optional[Encoding]) -> EncodedPLA:
    """Re-minimize and measure; degrade to the raw cover on failure."""
    fsm, report = pipe.fsm, pipe.report
    with report.stage("evaluate"):
        try:
            return evaluate_encoding(fsm, enc, symbol_enc, out_symbol_enc,
                                     effort=pipe.effort, budget=pipe.budget)
        except BudgetExhausted as exc:
            if not pipe.degrade_ok:
                raise
            # the encoding is fine — only its re-minimization died; the
            # raw encoded cover is a valid (just larger) implementation
            report.unminimized = True
            report.degraded = True
            if report.degradation_reason is None:
                report.degradation_reason = (
                    f"re-minimization failed ({exc}); "
                    f"reporting the unminimized cover")
            return evaluate_encoding(fsm, enc, symbol_enc, out_symbol_enc,
                                     effort=pipe.effort, minimize=False)


def _verify_gate(pipe: _Pipeline, algorithm: str, enc: Encoding,
                 symbol_enc: Optional[Encoding],
                 out_symbol_enc: Optional[Encoding],
                 pla: EncodedPLA) -> None:
    """Check the encoded PLA against FSM simulation; raise on mismatch."""
    from repro.encoding.verify import verify_encoded_machine

    fsm, report = pipe.fsm, pipe.report
    with report.stage("verify"):
        faults.trip("verify", machine=fsm.name, algorithm=algorithm)
        vr = verify_encoded_machine(fsm, enc, pla, symbol_enc,
                                    out_symbol_enc)
    if not vr.ok:
        raise VerificationError(
            f"encoded PLA does not implement {fsm.name} "
            f"({len(vr.mismatches)} mismatches; first: {vr.mismatches[0]})",
            stage="verify", machine=fsm.name,
            mismatches=vr.mismatches[:5],
        )
    report.verified = True


def _attempt(
    pipe: _Pipeline,
    algorithm: str,
    nbits: Optional[int],
    rng: Optional[random.Random],
    evaluate: bool,
    mustang_option: str,
    verify: bool,
) -> NovaResult:
    """One full pipeline pass with *algorithm*; raises ReproError on
    any stage failure (the driver decides whether to fall back)."""
    fsm, report, budget = pipe.fsm, pipe.report, pipe.budget
    faults.trip("encode", machine=fsm.name, algorithm=algorithm)
    if budget is not None:
        budget.check_time()
    hstats = HybridStats()
    iostats = IoStats()
    symbol_enc: Optional[Encoding] = None
    mv_size = 0
    out_symbol_enc = pipe.out_symbol_enc()

    with report.stage(f"encode:{algorithm}"):
        if algorithm == "mustang":
            from repro.baselines.mustang import mustang_code

            enc = mustang_code(fsm, option=mustang_option, nbits=nbits)
            if fsm.has_symbolic_input:
                extraction = pipe.extraction()
                symbol_enc = ihybrid_code(extraction.symbol_constraints,
                                          budget=budget)
                mv_size = extraction.minimized_cover_size
            sat = unsat = 0
        elif algorithm in ("iohybrid", "iovariant"):
            sym = pipe.symbolic()
            cs = sym.input_constraints
            coder = iohybrid_code if algorithm == "iohybrid" else iovariant_code
            enc = coder(cs, sym.output_constraints, nbits=nbits,
                        stats=iostats)
            if fsm.has_symbolic_input:
                symbol_enc = ihybrid_code(sym.symbol_constraints,
                                          budget=budget)
            mv_size = sym.final_cover_size
            sat = sum(cs.weights.get(m, 0) for m in iostats.satisfied_ic)
            unsat = sum(cs.weights.get(m, 0) for m in iostats.rejected_ic)
        else:
            extraction = pipe.extraction()
            cs = extraction.state_constraints
            mv_size = extraction.minimized_cover_size
            enc = _encode_constraints(cs, algorithm, nbits, fsm, rng,
                                      hstats, budget)
            if fsm.has_symbolic_input:
                symbol_enc = _encode_constraints(
                    extraction.symbol_constraints, algorithm, None, fsm,
                    rng, budget=budget)
            sat = satisfied_weight(enc, cs)
            unsat = cs.total_weight() - sat
    if budget is not None:
        budget.check_time()

    pla: Optional[EncodedPLA] = None
    if algorithm == "onehot" and not evaluate:
        cubes = mv_size
        ibits = len(fsm.symbolic_input_values) if fsm.has_symbolic_input else 0
        area = pla_area(fsm.num_inputs + ibits, fsm.num_states,
                        fsm.num_outputs + len(fsm.symbolic_output_values),
                        cubes)
    elif evaluate:
        pla = _evaluate(pipe, enc, symbol_enc, out_symbol_enc)
        cubes = pla.num_cubes
        area = pla.area
        if verify:
            _verify_gate(pipe, algorithm, enc, symbol_enc, out_symbol_enc,
                         pla)
    else:
        cubes = 0
        area = 0
    return NovaResult(
        fsm=fsm,
        algorithm=algorithm,
        state_encoding=enc,
        symbol_encoding=symbol_enc,
        out_symbol_encoding=out_symbol_enc,
        pla=pla,
        cubes=cubes,
        area=area,
        seconds=0.0,  # patched by the driver with the total run time
        satisfied_weight=sat,
        unsatisfied_weight=unsat,
        mv_cover_size=mv_size,
        report=report,
    )


def _last_resort(pipe: _Pipeline, evaluate: bool, verify: bool) -> NovaResult:
    """Unconditional one-hot encoding built straight from the machine.

    Skips constraint extraction entirely (it may be the failing stage)
    and tolerates even a failing verification gate: this path must
    never raise.
    """
    fsm, report = pipe.fsm, pipe.report
    enc = onehot_code(fsm.num_states)
    symbol_enc = (onehot_code(len(fsm.symbolic_input_values))
                  if fsm.has_symbolic_input else None)
    out_symbol_enc = (onehot_code(len(fsm.symbolic_output_values))
                      if fsm.has_symbolic_output else None)
    pla: Optional[EncodedPLA] = None
    cubes = area = 0
    if evaluate:
        pla = _evaluate(pipe, enc, symbol_enc, out_symbol_enc)
        cubes = pla.num_cubes
        area = pla.area
        if verify:
            try:
                _verify_gate(pipe, "onehot", enc, symbol_enc,
                             out_symbol_enc, pla)
            except ReproError as exc:
                report.verified = False
                report.record_failure("onehot", exc)
    return NovaResult(
        fsm=fsm,
        algorithm="onehot",
        state_encoding=enc,
        symbol_encoding=symbol_enc,
        out_symbol_encoding=out_symbol_enc,
        pla=pla,
        cubes=cubes,
        area=area,
        seconds=0.0,
        report=report,
    )


def _encode_uncached(fsm: FSM, opts: EncodeOptions,
                     rng: Optional[random.Random]) -> NovaResult:
    """The full pipeline run, cache-blind (the pre-1.2 encode_fsm body).

    The substrate's containment memo is scoped to this run: answers
    cached while encoding one machine must not leak into the next
    encode in the same process (see
    :func:`repro.logic.cover.contains_memo_scope`).
    """
    with contains_memo_scope():
        return _encode_uncached_inner(fsm, opts, rng)


def _encode_uncached_inner(fsm: FSM, opts: EncodeOptions,
                           rng: Optional[random.Random]) -> NovaResult:
    t0 = time.perf_counter()
    algorithm = opts.algorithm
    report = RunReport(machine=fsm.name, requested_algorithm=algorithm,
                       timeout=opts.timeout)
    budget = (Budget(seconds=opts.timeout, stage=algorithm)
              if opts.timeout is not None else None)
    pipe = _Pipeline(fsm, opts.effort, report, budget,
                     degrade_ok=opts.fallback)
    chain = fallback_chain(algorithm) if opts.fallback else (algorithm,)
    result: Optional[NovaResult] = None
    last_exc: Optional[ReproError] = None
    for alg in chain:
        try:
            result = _attempt(pipe, alg, opts.nbits, rng, opts.evaluate,
                              opts.mustang_option, opts.verify)
            break
        except ReproError as exc:
            report.record_failure(alg, exc)
            if last_exc is None:
                last_exc = exc
            if not opts.fallback:
                raise
    if result is None:
        # every chain algorithm failed (e.g. the shared extraction
        # stage is down): build the unconditional one-hot result
        result = _last_resort(pipe, opts.evaluate, opts.verify)
    report.algorithm = result.algorithm
    if report.fallbacks and result.algorithm != algorithm:
        report.degraded = True
        if report.degradation_reason is None:
            first = report.fallbacks[0]
            report.degradation_reason = f"{first.error}: {first.reason}"
    result.seconds = time.perf_counter() - t0
    return result


def _cached_encode(fsm: FSM, opts: EncodeOptions,
                   legacy_rng: Optional[random.Random]) -> NovaResult:
    """Cache lookup → decode → fill around :func:`_encode_uncached`.

    The cache is bypassed entirely (no lookup, no fill) when the run is
    not a pure function of its fingerprint: a live ``random.Random``
    was passed (its hidden state is invisible to the key), the options
    are not :attr:`EncodeOptions.storable` (unseeded ``random``), or a
    fault plan is armed (:mod:`repro.testing.faults` makes outcomes
    depend on the plan).  A ``seed``-derived RNG is fine: it is built
    fresh from the keyed seed right here, so a recompute replays the
    exact same stream.

    A cooperative ``timeout`` narrows only the *fill* side: a degraded
    result under a timeout depends on wall-clock (the budget fired at
    some machine-speed-dependent point), so it is computed and returned
    but never stored.  A clean result under a timeout is the same pure
    answer the untimed run would produce and caches normally; the
    timeout value itself is part of the fingerprint, so differently
    bounded runs never share an entry.
    """
    from repro import cache as cache_mod

    usable = (legacy_rng is None and opts.storable
              and faults.ACTIVE is None)
    rng = legacy_rng
    if rng is None and opts.seed is not None:
        rng = random.Random(opts.seed)
    cache = cache_mod.get_cache(opts.cache) if usable else None
    if cache is None:
        return _encode_uncached(fsm, opts, rng)
    key = cache_mod.fingerprint(fsm, opts)
    payload = cache.get(key)
    if payload is not None:
        try:
            result = cache_mod.decode_result(fsm, payload)
        except cache_mod.CacheDecodeError:
            # undecodable blob: quarantine and fall through to recompute
            cache.invalidate(key)
        else:
            if result.report is not None:
                result.report.cache_hit = True
            return result
    result = _encode_uncached(fsm, opts, rng)
    wallclock_shaped = (opts.timeout is not None
                        and result.report is not None
                        and result.report.degraded)
    if not wallclock_shaped:
        cache.put(key, cache_mod.encode_result(result))
    return result


def encode_fsm(
    fsm: FSM,
    algorithm: Union[str, Any] = UNSET,
    nbits: Union[Optional[int], Any] = UNSET,
    effort: Union[str, Any] = UNSET,
    rng: Union[Optional[random.Random], Any] = UNSET,
    evaluate: Union[bool, Any] = UNSET,
    mustang_option: Union[str, Any] = UNSET,
    timeout: Union[Optional[float], Any] = UNSET,
    fallback: Union[bool, Any] = UNSET,
    verify: Union[bool, Any] = UNSET,
    seed: Union[Optional[int], Any] = UNSET,
    cache: Union[str, Any] = UNSET,
    options: Optional[EncodeOptions] = None,
) -> NovaResult:
    """Run the full NOVA pipeline on *fsm*.

    The preferred call shape since 1.2 is an options bundle::

        encode_fsm(fsm, options=EncodeOptions(algorithm="iexact"))

    Every historical keyword still works and may be combined with
    ``options=`` as long as they do not disagree — a keyword that
    conflicts with a non-default options field raises ``ValueError``
    (see :func:`repro.encoding.options.merge_options`).

    Parameters beyond the paper's: *timeout* bounds the whole run with
    one wall-clock :class:`Budget` shared by every stage; *fallback*
    enables the degradation chain (on False, the first failure raises
    its :class:`~repro.errors.ReproError`); *verify* runs the
    post-encode verification gate, whose mismatch triggers fallback
    instead of silently reporting a wrong area; *seed* pins the RNG of
    stochastic algorithms; *cache* picks the result-cache policy
    (``auto``/``on``/``memory``/``off``, see :mod:`repro.cache`).

    ``rng=`` (a live ``random.Random``) is deprecated: it is unhashable,
    so such runs can never be cached.  Pass ``seed=`` instead.
    """
    explicit = {name: value for name, value in (
        ("algorithm", algorithm), ("nbits", nbits), ("effort", effort),
        ("evaluate", evaluate), ("mustang_option", mustang_option),
        ("timeout", timeout), ("fallback", fallback), ("verify", verify),
        ("seed", seed), ("cache", cache),
    ) if value is not UNSET}
    opts = merge_options(options, explicit)
    legacy_rng: Optional[random.Random] = None
    if rng is not UNSET and rng is not None:
        warnings.warn(
            "encode_fsm(rng=...) is deprecated: a random.Random instance "
            "cannot participate in cache keys; pass seed=<int> instead",
            DeprecationWarning, stacklevel=2)
        if opts.seed is not None:
            raise ValueError("pass either rng= (deprecated) or seed=, "
                             "not both")
        legacy_rng = rng
    return _cached_encode(fsm, opts, legacy_rng)
