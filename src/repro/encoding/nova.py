"""Top-level NOVA driver: FSM in, encoded + evaluated machine out.

``encode_fsm(fsm, algorithm)`` runs the full pipeline of the paper:
multiple-valued (or symbolic) minimization, constraint extraction, the
selected encoding algorithm for the states — and for the symbolic
proper input, when the machine has one — followed by re-minimization of
the encoded cover and the PLA area measurement.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.constraints.input_constraints import (
    ConstraintSet,
    extract_input_constraints,
)
from repro.encoding.base import Encoding, satisfied_weight
from repro.encoding.iexact import iexact_code
from repro.encoding.igreedy import igreedy_code
from repro.encoding.ihybrid import HybridStats, ihybrid_code
from repro.encoding.iohybrid import IoStats, iohybrid_code, iovariant_code
from repro.encoding.onehot import onehot_code, random_code
from repro.eval.area import pla_area
from repro.eval.instantiate import EncodedPLA, evaluate_encoding
from repro.fsm.machine import FSM
from repro.fsm.symbolic_cover import build_symbolic_cover
from repro.symbolic.symbolic_min import symbolic_minimize

ALGORITHMS = (
    "iexact",
    "ihybrid",
    "igreedy",
    "iohybrid",
    "iovariant",
    "kiss",
    "onehot",
    "random",
    "mustang",
)


@dataclass
class NovaResult:
    """Everything the paper's tables report about one encoding run."""

    fsm: FSM
    algorithm: str
    state_encoding: Encoding
    symbol_encoding: Optional[Encoding]
    out_symbol_encoding: Optional[Encoding]
    pla: Optional[EncodedPLA]
    cubes: int
    area: int
    seconds: float
    satisfied_weight: int = 0
    unsatisfied_weight: int = 0
    mv_cover_size: int = 0

    @property
    def bits(self) -> int:
        """Total encoding bits (state + symbolic input), as in the tables."""
        b = self.state_encoding.nbits
        if self.symbol_encoding is not None:
            b += self.symbol_encoding.nbits
        return b


def _encode_constraints(
    cs: ConstraintSet,
    algorithm: str,
    nbits: Optional[int],
    fsm: FSM,
    rng: Optional[random.Random],
    stats: Optional[HybridStats] = None,
) -> Encoding:
    """Dispatch the chosen input-constraint algorithm on one variable."""
    if algorithm == "iexact":
        enc = iexact_code(cs)
        if enc is None:
            raise RuntimeError(
                f"iexact_code gave up on {fsm.name} (search budget exhausted)"
            )
        return enc
    if algorithm == "ihybrid":
        return ihybrid_code(cs, nbits=nbits, stats=stats)
    if algorithm == "igreedy":
        return igreedy_code(cs, nbits=nbits)
    if algorithm == "kiss":
        from repro.baselines.kiss import kiss_code

        return kiss_code(cs)
    if algorithm == "random":
        return random_code(cs.n, nbits=nbits, rng=rng)
    if algorithm == "onehot":
        return onehot_code(cs.n)
    raise ValueError(f"unknown constraint algorithm {algorithm!r}")


def encode_fsm(
    fsm: FSM,
    algorithm: str = "ihybrid",
    nbits: Optional[int] = None,
    effort: str = "full",
    rng: Optional[random.Random] = None,
    evaluate: bool = True,
    mustang_option: str = "p",
) -> NovaResult:
    """Run the full NOVA pipeline on *fsm* with the chosen algorithm."""
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; "
                         f"choose from {ALGORITHMS}")
    t0 = time.perf_counter()
    sc = build_symbolic_cover(fsm)
    hstats = HybridStats()
    iostats = IoStats()
    symbol_enc: Optional[Encoding] = None
    out_symbol_enc: Optional[Encoding] = None
    mv_size = 0
    if fsm.has_symbolic_output:
        from repro.encoding.osym import out_symbol_encoding

        out_symbol_enc = out_symbol_encoding(sc, effort=effort)

    if algorithm == "mustang":
        from repro.baselines.mustang import mustang_code

        enc = mustang_code(fsm, option=mustang_option, nbits=nbits)
        if fsm.has_symbolic_input:
            extraction = extract_input_constraints(sc, effort=effort)
            symbol_enc = ihybrid_code(extraction.symbol_constraints)
            mv_size = extraction.minimized_cover_size
        sat = unsat = 0
    elif algorithm in ("iohybrid", "iovariant"):
        sym = symbolic_minimize(sc, effort=effort)
        cs = sym.input_constraints
        coder = iohybrid_code if algorithm == "iohybrid" else iovariant_code
        enc = coder(cs, sym.output_constraints, nbits=nbits, stats=iostats)
        if fsm.has_symbolic_input:
            symbol_enc = ihybrid_code(sym.symbol_constraints)
        mv_size = sym.final_cover_size
        sat = sum(cs.weights.get(m, 0) for m in iostats.satisfied_ic)
        unsat = sum(cs.weights.get(m, 0) for m in iostats.rejected_ic)
    else:
        extraction = extract_input_constraints(sc, effort=effort)
        cs = extraction.state_constraints
        mv_size = extraction.minimized_cover_size
        enc = _encode_constraints(cs, algorithm, nbits, fsm, rng, hstats)
        if fsm.has_symbolic_input:
            symbol_enc = _encode_constraints(
                extraction.symbol_constraints, algorithm, None, fsm, rng
            )
        sat = satisfied_weight(enc, cs)
        unsat = cs.total_weight() - sat

    pla: Optional[EncodedPLA] = None
    if algorithm == "onehot" and not evaluate:
        cubes = mv_size
        ibits = len(fsm.symbolic_input_values) if fsm.has_symbolic_input else 0
        area = pla_area(fsm.num_inputs + ibits, fsm.num_states,
                        fsm.num_outputs + len(fsm.symbolic_output_values),
                        cubes)
    elif evaluate:
        pla = evaluate_encoding(fsm, enc, symbol_enc, out_symbol_enc,
                                effort=effort)
        cubes = pla.num_cubes
        area = pla.area
    else:
        cubes = 0
        area = 0
    return NovaResult(
        fsm=fsm,
        algorithm=algorithm,
        state_encoding=enc,
        symbol_encoding=symbol_enc,
        out_symbol_encoding=out_symbol_enc,
        pla=pla,
        cubes=cubes,
        area=area,
        seconds=time.perf_counter() - t0,
        satisfied_weight=sat,
        unsatisfied_weight=unsat,
        mv_cover_size=mv_size,
    )
