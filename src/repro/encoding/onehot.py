"""Baseline encodings: 1-hot and random assignments."""

from __future__ import annotations

import random
from typing import Optional

from repro.encoding.base import Encoding
from repro.fsm.machine import minimum_code_length


def onehot_code(n: int) -> Encoding:
    """The 1-hot encoding used as the reference column of Table II."""
    return Encoding(n, [1 << i for i in range(n)])


def random_code(n: int, nbits: Optional[int] = None,
                rng: Optional[random.Random] = None) -> Encoding:
    """A uniform random injective encoding of *n* symbols."""
    if rng is None:
        # nova-lint: disable=NV005 -- deliberately unseeded baseline:
        # options.deterministic/storable are False for algorithm='random'
        # without a seed, so this path never reaches the cache
        rng = random.Random()
    bits = minimum_code_length(n) if nbits is None else nbits
    codes = rng.sample(range(1 << bits), n)
    return Encoding(bits, codes)
