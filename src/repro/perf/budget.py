"""A unified work/deadline budget for the search and minimization loops.

Historically every bounded loop carried its own ad-hoc limit:
``iexact_code`` had a wall-clock deadline checked only *between* level
vectors, ``pos_equiv`` had a work counter, and ``espresso`` had no
bound at all.  :class:`Budget` unifies the three — one object holds an
optional work cap and an optional deadline, and can spawn children
that share the deadline while metering their own work (the paper's
per-call ``max_work`` semantics).

Time is read through ``time.monotonic`` but only every
:data:`_TIME_CHECK_MASK` + 1 charges, so charging stays cheap inside
tight backtracking loops.
"""

from __future__ import annotations

import time
from typing import Optional

_TIME_CHECK_MASK = 0xFF  # check the clock every 256 charges


class BudgetExceeded(Exception):
    """Raised by :meth:`Budget.charge` when a limit is crossed."""


class Budget:
    """Work counter plus wall-clock deadline; either may be absent.

    Parameters
    ----------
    seconds:
        Wall-clock allowance from now (converted to a deadline).
    work:
        Maximum number of :meth:`charge` units.
    deadline:
        Absolute ``time.monotonic()`` deadline; overrides *seconds*.
    """

    __slots__ = ("deadline", "max_work", "work")

    def __init__(
        self,
        seconds: Optional[float] = None,
        work: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> None:
        if deadline is None and seconds is not None:
            deadline = time.monotonic() + seconds
        self.deadline = deadline
        self.max_work = work
        self.work = 0

    def sub(self, work: Optional[int] = None) -> "Budget":
        """A child budget: own work meter, shared absolute deadline."""
        return Budget(work=work, deadline=self.deadline)

    def charge(self, n: int = 1) -> None:
        """Consume *n* units; raise :class:`BudgetExceeded` when over.

        The deadline is polled only every few hundred charges, so a
        charging loop overruns the wall-clock limit by at most one
        polling interval.
        """
        self.work += n
        if self.max_work is not None and self.work > self.max_work:
            raise BudgetExceeded(f"work limit {self.max_work} exceeded")
        if (
            self.deadline is not None
            and (self.work & _TIME_CHECK_MASK) == 0
            and time.monotonic() > self.deadline
        ):
            raise BudgetExceeded("deadline exceeded")

    def expired(self) -> bool:
        """True when either limit has been crossed (always polls time)."""
        if self.max_work is not None and self.work > self.max_work:
            return True
        return self.deadline is not None and time.monotonic() > self.deadline

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (may be negative); None if unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Budget(work={self.work}/{self.max_work}, "
                f"remaining={self.remaining_seconds()})")
