"""A unified work/deadline budget for the search and minimization loops.

Historically every bounded loop carried its own ad-hoc limit:
``iexact_code`` had a wall-clock deadline checked only *between* level
vectors, ``pos_equiv`` had a work counter, and ``espresso`` had no
bound at all.  :class:`Budget` unifies the three — one object holds an
optional work cap and an optional deadline, and can spawn children
that share the deadline while metering their own work (the paper's
per-call ``max_work`` semantics).

Exhaustion raises :class:`repro.errors.BudgetExhausted` (re-exported
here under its historical name :data:`BudgetExceeded`), carrying the
budget's stage label and work counters so a caller — or the driver's
fallback chain — can tell *which* limit tripped where.  Work-cap
exhaustion is part of the bounded-search algorithms and is normally
caught at the call site; time exhaustion (``exc.limit == "time"``)
means the whole run is out of time and should propagate.

Time is read through ``time.monotonic`` but only every
:data:`_TIME_CHECK_MASK` + 1 charges, so charging stays cheap inside
tight backtracking loops.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator, Optional

from repro.errors import BudgetExhausted

# historical name: Budget.charge used to raise its own BudgetExceeded
BudgetExceeded = BudgetExhausted

_TIME_CHECK_MASK = 0xFF  # check the clock every 256 charges


class Budget:
    """Work counter plus wall-clock deadline; either may be absent.

    Parameters
    ----------
    seconds:
        Wall-clock allowance from now (converted to a deadline).
    work:
        Maximum number of :meth:`charge` units.
    deadline:
        Absolute ``time.monotonic()`` deadline; overrides *seconds*.
    stage:
        Label naming the pipeline stage this budget meters; attached to
        the :class:`BudgetExhausted` raised on exhaustion.
    """

    __slots__ = ("deadline", "max_work", "work", "stage")

    def __init__(
        self,
        seconds: Optional[float] = None,
        work: Optional[int] = None,
        deadline: Optional[float] = None,
        stage: Optional[str] = None,
    ) -> None:
        if deadline is None and seconds is not None:
            deadline = time.monotonic() + seconds
        self.deadline = deadline
        self.max_work = work
        self.work = 0
        self.stage = stage

    def sub(self, work: Optional[int] = None,
            stage: Optional[str] = None) -> "Budget":
        """A child budget: own work meter, shared absolute deadline."""
        return Budget(work=work, deadline=self.deadline,
                      stage=stage or self.stage)

    def child(self, fraction: float, stage: Optional[str] = None) -> "Budget":
        """A proportional sub-budget: *fraction* of what remains.

        The child gets its own deadline at ``fraction`` of the
        remaining wall-clock time and its own work cap at ``fraction``
        of the remaining work, so a pipeline can hand each stage a
        bounded share of the run's allowance instead of letting the
        first stage eat everything.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        seconds = None
        if self.deadline is not None:
            seconds = max(0.0, self.deadline - time.monotonic()) * fraction
        work = None
        if self.max_work is not None:
            work = max(0, int((self.max_work - self.work) * fraction))
        return Budget(seconds=seconds, work=work, stage=stage or self.stage)

    def charge(self, n: int = 1) -> None:
        """Consume *n* units; raise :class:`BudgetExhausted` when over.

        The deadline is polled only every few hundred charges, so a
        charging loop overruns the wall-clock limit by at most one
        polling interval.
        """
        self.work += n
        if self.max_work is not None and self.work > self.max_work:
            raise BudgetExhausted(
                f"work limit {self.max_work} exceeded",
                limit="work", work=self.work, max_work=self.max_work,
                stage=self.stage,
            )
        if (
            self.deadline is not None
            and (self.work & _TIME_CHECK_MASK) == 0
            and time.monotonic() > self.deadline
        ):
            raise BudgetExhausted(
                "deadline exceeded",
                limit="time", work=self.work, max_work=self.max_work,
                stage=self.stage,
            )

    def check_time(self) -> None:
        """Raise :class:`BudgetExhausted` if the deadline has passed.

        Unlike :meth:`charge` this always polls the clock; use it at
        stage boundaries where one check per call is the right rate.
        """
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise BudgetExhausted(
                "deadline exceeded",
                limit="time", work=self.work, max_work=self.max_work,
                stage=self.stage,
            )

    def expired(self) -> bool:
        """True when either limit has been crossed (always polls time)."""
        if self.max_work is not None and self.work > self.max_work:
            return True
        return self.deadline is not None and time.monotonic() > self.deadline

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (may be negative); None if unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Budget(work={self.work}/{self.max_work}, "
                f"remaining={self.remaining_seconds()}, "
                f"stage={self.stage!r})")


# ----------------------------------------------------------------------
# ambient budget: metering for loops with no budget in scope
# ----------------------------------------------------------------------
#: The budget :func:`tick` charges, installed by :func:`ambient`.
#: ``None`` (the default) makes every tick a near-free no-op, so leaf
#: helpers — the espresso passes, the URP recursions — can tick
#: unconditionally without threading a ``budget=`` parameter through
#: every signature.
_AMBIENT: Optional[Budget] = None


def tick(n: int = 1) -> None:
    """Charge the ambient budget, if one is installed.

    The deadline-only budgets that :func:`ambient` installs make a tick
    a pure liveness poll: it can interrupt a runaway loop but never
    changes *what* a bounded search computes, so adding ticks to a
    helper cannot perturb cached results.
    """
    b = _AMBIENT
    if b is not None:
        b.charge(n)


@contextlib.contextmanager
def ambient(budget: Optional[Budget]) -> Iterator[None]:
    """Install *budget* as the ambient tick target for this block.

    Only the budget's *deadline* is shared with the ambient view — its
    work cap stays private to the explicit ``charge()`` call sites, so
    the paper's ``max_work`` search-size semantics are unchanged no
    matter how many ticks run inside the block.  Nesting restores the
    previous ambient budget on exit.  ``ambient(None)`` is a no-op
    block, convenient for optional-budget call sites.
    """
    global _AMBIENT
    if budget is None or budget.deadline is None:
        yield
        return
    prev = _AMBIENT
    _AMBIENT = Budget(deadline=budget.deadline, stage=budget.stage)
    try:
        yield
    finally:
        _AMBIENT = prev
