"""Lightweight performance counters for the minimization substrate.

The hot paths of the two-level minimizer (``repro.logic``) and the
embedding engine (``repro.encoding.iexact``) increment counters on the
module-global :data:`STATS` object.  When collection is off, ``STATS``
is ``None`` and every instrumentation site reduces to one attribute
load plus an ``is None`` test — cheap enough to leave in the hot loops
permanently.

Three ways to turn collection on:

* programmatically::

      from repro import perf
      with perf.collect() as stats:
          espresso(on, dc)
      print(stats.summary())

* the ``nova --stats <command> ...`` CLI flag, which prints a summary
  to stderr after the command;
* the runtime config (:mod:`repro.config`): ``perf = true`` in a
  ``$NOVA_CONFIG`` file — or the deprecated ``NOVA_PERF=1`` variable —
  enables a process-global collector at import time (the CLI prints
  it too).

Counters are plain attributes (see :class:`PerfStats`); wall-clock
timers accumulate into ``stats.timers`` via :func:`timer`.
"""

from __future__ import annotations

from contextlib import contextmanager
import time
from typing import Dict, Iterator, Optional

from repro import config as config_mod
from repro.errors import BudgetExhausted
from repro.perf.budget import Budget, BudgetExceeded

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetExhausted",
    "PerfStats",
    "STATS",
    "collect",
    "enabled",
    "snapshot",
    "timer",
]

_COUNTERS = (
    "tautology_calls",      # top-level tautology() invocations
    "urp_recursions",       # recursive URP steps (tautology + complement)
    "urp_max_depth",        # deepest Shannon recursion seen
    "unate_reductions",     # splits avoided by the unate-variable rule
    "complement_calls",     # top-level complement() invocations
    "cofactor_calls",       # Cover.cofactor invocations
    "contains_calls",       # Cover.contains_cube invocations
    "contains_memo_hits",   # ... answered from the bounded memo cache
    "scc_calls",            # single_cube_containment invocations
    "scc_dropped",          # cubes removed by single-cube containment
    "kernel_batch_calls",   # whole-cover kernel invocations (logic.backend)
    "expand_cubes",         # cubes grown by _expand_cube
    "expand_raises",        # successful raises during expansion
    "expand_attempts",      # attempted raises during expansion
    "espresso_passes",      # reduce/expand/irredundant iterations
    "lastgasp_attempts",    # LASTGASP retries after a non-improving pass
    "lastgasp_wins",        # ... that found a strictly better cover
    "pos_equiv_work",       # backtracking work charged by pos_equiv
    "cache_hit",            # encode-cache lookups answered from a tier
    "cache_miss",           # ... that fell through to a full recompute
    "cache_bytes",          # blob bytes moved to/from the disk tier
)


class PerfStats:
    """One bag of substrate counters plus named wall-clock timers."""

    __slots__ = _COUNTERS + ("timers",)

    def __init__(self) -> None:
        for name in _COUNTERS:
            setattr(self, name, 0)
        self.timers: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def merge(self, flat: Dict[str, float]) -> None:
        """Fold an :meth:`as_dict` snapshot from another collector in.

        The batch runner aggregates per-worker counters with this:
        counts and timers add; ``urp_max_depth`` (a high-water mark)
        takes the max.  Unknown keys are ignored so snapshots from
        other versions still merge.
        """
        for name, value in flat.items():
            if name.startswith("time_"):
                self.add_time(name[len("time_"):], float(value))
            elif name == "urp_max_depth":
                self.urp_max_depth = max(self.urp_max_depth, int(value))
            elif name in _COUNTERS:
                setattr(self, name, getattr(self, name) + int(value))

    def as_dict(self) -> Dict[str, float]:
        """Counters and timers as one flat dict (timers in seconds)."""
        out: Dict[str, float] = {name: getattr(self, name)
                                 for name in _COUNTERS}
        for name, secs in sorted(self.timers.items()):
            out[f"time_{name}"] = round(secs, 6)
        return out

    def summary(self) -> str:
        """Human-readable multi-line rendering of the non-zero entries."""
        lines = ["substrate perf counters:"]
        for name, value in self.as_dict().items():
            if value:
                lines.append(f"  {name:20s} {value}")
        if len(lines) == 1:
            lines.append("  (all zero)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"PerfStats({nonzero})"


# The active collector; ``None`` means collection is off.  Hot paths
# read this through the module (``perf.STATS``) so :func:`collect` can
# swap it.
STATS: Optional[PerfStats] = (PerfStats() if config_mod.perf_enabled()
                              else None)


def enabled() -> bool:
    """True when a collector is currently installed."""
    return STATS is not None


def snapshot() -> Optional[Dict[str, float]]:
    """Flat dict of the active collector's counters, or ``None``."""
    return None if STATS is None else STATS.as_dict()


@contextmanager
def collect() -> Iterator[PerfStats]:
    """Install a fresh collector for the duration of the block.

    Nesting is allowed; the innermost collector receives the counts and
    the previous one is restored on exit.  The yielded object stays
    valid (and readable) after the block.
    """
    global STATS
    prev = STATS
    STATS = stats = PerfStats()
    try:
        yield stats
    finally:
        STATS = prev


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate the block's wall time into ``STATS.timers[name]``.

    A no-op (without even reading the clock) when collection is off.
    """
    stats = STATS
    if stats is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        stats.add_time(name, time.perf_counter() - t0)
