"""The stable public API of the NOVA reproduction.

Import from here (or from the :mod:`repro` package root, which mirrors
this module) rather than from internal modules: everything re-exported
below is covered by the compatibility policy in README §Versioning —
stable within a major version, with deprecations announced one minor
release ahead (``encode_fsm(rng=...)`` is the current example).

Internal module paths (``repro.encoding.nova``, ``repro.logic.*``, ...)
may move without notice; these names will not.

>>> from repro.api import EncodeOptions, encode_fsm, benchmark
>>> result = encode_fsm(benchmark("lion"),
...                     options=EncodeOptions(algorithm="ihybrid"))
"""

from __future__ import annotations

from repro._version import __version__
from repro.bench import BenchRecord, SweepSpec, load_spec, run_sweep
from repro.cache import cache_clear, cache_info, cache_prune
from repro.config import RuntimeConfig, config_scope, get_config
from repro.encoding.nova import (
    ALGORITHMS,
    FALLBACK_CHAIN,
    NovaResult,
    RunReport,
    encode_fsm,
)
from repro.encoding.options import (
    CACHE_POLICIES,
    EFFORTS,
    EncodeOptions,
)
from repro.errors import (
    BudgetExhausted,
    ConstraintError,
    EncodingInfeasible,
    ParseError,
    ReproError,
    VerificationError,
)
from repro.fsm.benchmarks import benchmark, benchmark_names
from repro.fsm.kiss import parse_kiss, to_kiss
from repro.fsm.machine import FSM, Transition

__all__ = [
    # pipeline
    "encode_fsm",
    "EncodeOptions",
    "NovaResult",
    "RunReport",
    "ALGORITHMS",
    "CACHE_POLICIES",
    "EFFORTS",
    "FALLBACK_CHAIN",
    # runtime configuration
    "RuntimeConfig",
    "get_config",
    "config_scope",
    # cache controls
    "cache_info",
    "cache_clear",
    "cache_prune",
    # benchmark observatory
    "SweepSpec",
    "load_spec",
    "run_sweep",
    "BenchRecord",
    # machines
    "FSM",
    "Transition",
    "parse_kiss",
    "to_kiss",
    "benchmark",
    "benchmark_names",
    # error taxonomy
    "ReproError",
    "ParseError",
    "ConstraintError",
    "BudgetExhausted",
    "EncodingInfeasible",
    "VerificationError",
    # meta
    "__version__",
]
