"""The child-process half of the batch runner.

Each task attempt runs in a freshly spawned process whose entry point
is :func:`child_main`.  The worker rebuilds the task from its JSON-safe
spec, arms any injected faults (the parent ships
:meth:`repro.testing.faults.Fault.to_dict` specs inside the task, which
is how the hang/crash robustness tests reach across the process
boundary), runs the pipeline under a perf collector, and ships one
JSON-safe outcome dict back over the pipe:

``{"status": "ok" | "degraded" | "error", "record": ..., "perf": ...,
"error": ..., "elapsed": ...}``

Everything crossing the pipe is primitives — no FSM, no covers — so
transport can never hit a pickling edge case.  If the process dies
without sending (a hard hang killed by the parent, an ``os._exit``, a
real segfault or OOM kill), the parent observes EOF/exit and classifies
the attempt itself; the journal is written only by the parent.
"""

from __future__ import annotations

import time
from typing import Dict

from repro import perf
from repro.errors import ReproError, error_to_dict
from repro.testing import faults


def _load_fsm(machine: str):
    """A benchmark machine by name, or a KISS2 file by path."""
    from repro.fsm.benchmarks import benchmark, benchmark_names
    from repro.fsm.kiss import parse_kiss
    from pathlib import Path

    if machine in benchmark_names("all"):
        return benchmark(machine)
    path = Path(machine)
    return parse_kiss(path.read_text(), name=path.stem)


def execute(spec: Dict) -> Dict:
    """Run one task attempt in this process; return the outcome dict."""
    t0 = time.perf_counter()
    fault_specs = spec.get("faults") or []
    if fault_specs:
        faults.arm(*[faults.Fault.from_dict(d) for d in fault_specs])
    outcome: Dict = {"task": spec["task"], "algorithm": spec["algorithm"]}
    with perf.collect() as stats:
        try:
            if spec.get("kind") == "table":
                outcome.update(_run_table(spec))
            else:
                outcome.update(_run_encode(spec))
        except ReproError as exc:
            outcome.update(status="error", error=error_to_dict(exc))
        except Exception as exc:  # non-taxonomy bug: still transportable
            outcome.update(status="error", error=error_to_dict(exc))
    outcome["perf"] = {k: v for k, v in stats.as_dict().items() if v}
    outcome["elapsed"] = round(time.perf_counter() - t0, 6)
    return outcome


def _run_encode(spec: Dict) -> Dict:
    from repro.encoding.nova import encode_fsm

    if spec.get("kiss"):
        # inline KISS2 text (the encode service ships request bodies
        # this way — there is no file to point at)
        from repro.fsm.kiss import parse_kiss

        fsm = parse_kiss(spec["kiss"], name=spec["machine"])
    else:
        fsm = _load_fsm(spec["machine"])
    options = dict(spec.get("options") or {})
    result = encode_fsm(fsm, spec["algorithm"], **options)
    report = result.report
    status = "degraded" if (report is not None and report.degraded) else "ok"
    out = {"status": status, "record": result.to_record(),
           "cache_hit": bool(report is not None and report.cache_hit)}
    if spec.get("want_payload"):
        # the encode service warms its own in-process cache tier from
        # this (a worker's memory LRU dies with the worker); same rule
        # as the encode path — a wall-clock-shaped result is never
        # cache material
        from repro import cache as cache_mod

        wallclock_shaped = (options.get("timeout") is not None
                            and report is not None and report.degraded)
        if not wallclock_shaped:
            out["payload"] = cache_mod.encode_result(result)
    return out


def _run_table(spec: Dict) -> Dict:
    from repro.eval import tables

    row_fn = getattr(tables, f"table{spec['table']}_row", None)
    if row_fn is None:
        raise ValueError(f"no table {spec['table']!r}")
    row = row_fn(spec["machine"])
    return {"status": "ok", "record": {"row": row}}


def child_main(spec: Dict, conn) -> None:
    """Spawned-process entry: execute and ship the outcome.

    Must stay exception-proof: any error that escapes ``execute`` is
    itself serialized, and a send failure (parent already gone) exits
    quietly — an orphan must never corrupt anything.
    """
    try:
        try:
            outcome = execute(spec)
        except BaseException as exc:  # pragma: no cover - belt & braces
            outcome = {"task": spec.get("task"),
                       "algorithm": spec.get("algorithm"),
                       "status": "error", "error": error_to_dict(exc),
                       "perf": {}, "elapsed": 0.0}
        conn.send(outcome)
        conn.close()
    except (BrokenPipeError, EOFError, OSError):  # pragma: no cover
        pass
