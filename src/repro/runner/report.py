"""Aggregation of a batch run's journal into one report.

The report is computed from journal entries alone — never from
in-memory state — so an uninterrupted run, a resumed run, and a later
``read_results`` of the same directory all produce the identical
summary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.perf import PerfStats


@dataclass
class BatchReport:
    """Fleet-level outcome of one batch run."""

    run_dir: Optional[Path] = None
    planned: int = 0
    entries: List[Dict] = field(default_factory=list)
    status_counts: Counter = field(default_factory=Counter)
    retries: int = 0
    kill_reasons: Counter = field(default_factory=Counter)
    crashes: int = 0
    fallback_events: int = 0
    verified: int = 0
    task_seconds: float = 0.0  # summed per-task wall clock
    wall_seconds: float = 0.0  # parent wall clock for this invocation
    interrupted: bool = False
    perf: PerfStats = field(default_factory=PerfStats)
    # joined-mode provenance (empty/zero for single-parent runs)
    shards: List[str] = field(default_factory=list)
    stale_rejected: int = 0  # records that lost the fencing merge
    duplicates: int = 0      # same-shard repeats dropped (last won)
    stolen: int = 0          # surviving records journaled at epoch > 0

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self.entries)

    @property
    def failed(self) -> int:
        return self.status_counts.get("failed", 0)

    @property
    def ok(self) -> bool:
        """Every planned task journaled, none finally failed."""
        return (not self.interrupted and self.failed == 0
                and self.completed >= self.planned)

    def records(self) -> List[Dict]:
        """The per-task result payloads of successful entries."""
        return [e["record"] for e in self.entries
                if e.get("record") is not None]

    def rows(self) -> List[Dict]:
        """Table rows from ``kind="table"`` entries (per-row provenance
        stays in the journal; this is just the payload)."""
        return [e["record"]["row"] for e in self.entries
                if e.get("kind") == "table" and e.get("record")]

    def entry_for(self, task_id: str) -> Optional[Dict]:
        for e in self.entries:
            if e.get("task") == task_id:
                return e
        return None

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Multi-line human rendering, one screen even for big fleets."""
        lines = [
            f"batch: {self.completed}/{self.planned} tasks journaled "
            f"in {self.wall_seconds:.1f}s"
            + (" [interrupted]" if self.interrupted else ""),
        ]
        counts = ", ".join(f"{k}={v}"
                           for k, v in sorted(self.status_counts.items()))
        lines.append(f"  status : {counts or 'nothing ran'}")
        if self.retries or self.kill_reasons or self.crashes:
            kills = ", ".join(f"{k}={v}" for k, v in
                              sorted(self.kill_reasons.items())) or "none"
            lines.append(f"  retries: {self.retries}  kills: {kills}  "
                         f"crashes: {self.crashes}")
        if self.fallback_events:
            lines.append(f"  in-process fallbacks: {self.fallback_events}")
        if self.verified:
            lines.append(f"  verified encodings: {self.verified}")
        if self.task_seconds:
            speedup = (self.task_seconds / self.wall_seconds
                       if self.wall_seconds > 0 else 0.0)
            lines.append(f"  task time: {self.task_seconds:.1f}s "
                         f"(parallel speedup {speedup:.1f}x)")
        if len(self.shards) > 1 or self.stale_rejected or self.stolen:
            lines.append(f"  shards: {len(self.shards)}  "
                         f"stolen: {self.stolen}  "
                         f"stale rejected: {self.stale_rejected}  "
                         f"duplicates dropped: {self.duplicates}")
        slow = sorted(self.entries, key=lambda e: -e.get("elapsed", 0.0))[:3]
        for e in slow:
            if e.get("elapsed", 0.0) > 0:
                lines.append(f"  slowest: {e['task']} "
                             f"{e['elapsed']:.1f}s [{e['status']}]")
        return "\n".join(lines)


def aggregate(entries: List[Dict], run_dir: Optional[Path] = None,
              wall_seconds: float = 0.0, planned: int = 0,
              interrupted: bool = False,
              shards: Optional[List[str]] = None,
              stale_rejected: int = 0,
              duplicates: int = 0) -> BatchReport:
    """Fold journal *entries* into a :class:`BatchReport`.

    *entries* is usually the output of
    :func:`repro.runner.journal.merge_results` — one surviving record
    per task; the merge's rejection/duplicate counters ride along for
    the summary so a work-stealing run's report says what was fenced
    out, not just what won.
    """
    report = BatchReport(run_dir=run_dir, planned=planned or len(entries),
                         wall_seconds=wall_seconds, interrupted=interrupted,
                         shards=list(shards or []),
                         stale_rejected=stale_rejected,
                         duplicates=duplicates)
    for e in entries:
        report.entries.append(e)
        if e.get("epoch"):
            report.stolen += 1
        report.status_counts[e.get("status", "unknown")] += 1
        report.retries += e.get("retries", 0)
        report.task_seconds += e.get("elapsed", 0.0)
        for attempt in e.get("attempts", []):
            if attempt.get("killed"):
                report.kill_reasons[attempt["killed"]] += 1
            elif attempt.get("status") == "crashed":
                report.crashes += 1
        record = e.get("record") or {}
        rep = record.get("report") or {}
        report.fallback_events += len(rep.get("fallbacks", []))
        if rep.get("verified"):
            report.verified += 1
        report.perf.merge(e.get("perf") or {})
    return report
