"""The batch engine: isolated workers, hard kills, retry ladder, resume.

Why processes and SIGKILL, when the pipeline already threads a
cooperative :class:`repro.perf.Budget` deadline through every stage?
Because the Budget can only fire where code *checks* it: a pathological
recursion between check sites, a stuck C-level loop, or an allocation
storm on a wide machine (the ``scf``-class blowups) never reaches the
next ``charge()``.  The only bound that always holds is an outer
process boundary — the parent watches the wall clock and kills the
worker outright, then retries the task at the next rung of the
degradation ladder (``iexact → ihybrid → igreedy → onehot``), the same
order :func:`repro.encoding.nova.encode_fsm` uses *inside* a healthy
process.

Crash safety is asymmetric by design: workers never touch the journal;
the parent appends one durable line per finished task.  A parent killed
mid-run leaves a valid journal prefix, and ``resume`` skips exactly the
journaled task ids.  Workers are spawned (not forked) so each attempt
starts from a clean interpreter — no inherited caches, no half-poisoned
state from a previous fault.

The *joined* mode (``BatchRunner.join`` / ``nova batch --join``)
generalizes this to N cooperating parents: each claimant process takes
per-task leases (:mod:`repro.runner.lease`), appends to its own journal
shard (single-writer invariant preserved per shard, enforced by the
shard's ``flock``), heartbeats its in-flight claims, and steals tasks
whose claimant stopped heartbeating.  Done-ness is always computed from
the *merged* shard view, so claimants converge on exactly the manifest
task set no matter which of them live or die — and the fencing epoch
recorded in every shard row makes the merged result set deterministic
even when a presumed-dead zombie finishes anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as conn_wait
import os
from pathlib import Path
import random
import time
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.encoding.nova import fallback_chain
from repro.errors import JournalError
from repro.runner import journal as journal_mod
from repro.runner.journal import (
    Journal,
    merge_results,
    read_manifest,
    repair,
    shard_name,
    write_manifest,
)
from repro.runner.lease import (
    DEFAULT_TTL,
    Lease,
    LeaseDir,
    default_claimant,
)
from repro.runner.report import BatchReport, aggregate
from repro.runner.worker import child_main

#: Attempt terminal states the parent can classify.
KILLED_TIMEOUT = "timeout"


class RunDirBusy(RuntimeError):
    """Another live batch parent already owns this run directory.

    Two parents appending to the same ``results.jsonl`` would journal
    duplicate rows; resume is only safe once the recorded parent is
    dead.  Pass ``force=True`` (CLI: ``--force``) to override when the
    liveness check is a false positive (pid reuse).
    """


def _pid_alive(pid) -> bool:
    """Best-effort liveness check for the pid recorded in a manifest."""
    try:
        pid = int(pid)
    except (TypeError, ValueError):
        return False
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


@dataclass
class BatchTask:
    """One unit of fleet work: a machine plus what to run on it.

    ``machine`` is a benchmark name or a path to a KISS2 file.
    ``kind`` is ``"encode"`` (one :func:`encode_fsm` run; ``options``
    are passed through) or ``"table"`` (one paper-table row;
    ``table`` picks which).  ``faults`` carries serialized
    :class:`repro.testing.faults.Fault` specs armed inside the worker —
    the robustness tests' handle for planting hangs and crashes.  Each
    attempt arms a *fresh* plan (workers are new processes), so fired
    counters don't carry across retries; scope a transient fault with
    ``match={"algorithm": ...}`` on the ladder rung it should hit.
    """

    machine: str
    algorithm: str = "ihybrid"
    kind: str = "encode"
    table: Optional[int] = None
    options: Dict = field(default_factory=dict)
    faults: List[Dict] = field(default_factory=list)
    task_id: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("encode", "table"):
            raise ValueError(f"unknown task kind {self.kind!r}")
        if self.kind == "table" and self.table is None:
            raise ValueError("table tasks need a table number")
        if not self.task_id:
            if self.kind == "table":
                self.task_id = f"table{self.table}:{self.machine}"
            else:
                self.task_id = f"{self.algorithm}:{self.machine}"

    def spec(self) -> Dict:
        """JSON-safe form, used both for the manifest and the worker."""
        return {
            "task": self.task_id,
            "machine": self.machine,
            "algorithm": self.algorithm,
            "kind": self.kind,
            "table": self.table,
            "options": dict(self.options),
            "faults": [dict(f) for f in self.faults],
        }

    @classmethod
    def from_spec(cls, d: Dict) -> "BatchTask":
        return cls(
            machine=d["machine"],
            algorithm=d.get("algorithm", "ihybrid"),
            kind=d.get("kind", "encode"),
            table=d.get("table"),
            options=dict(d.get("options") or {}),
            faults=list(d.get("faults") or []),
            task_id=d.get("task", ""),
        )

    def ladder(self) -> Sequence[str]:
        """Algorithms to use on successive attempts (degradation order)."""
        if self.kind != "encode":
            return (self.algorithm,)
        return fallback_chain(self.algorithm)


class _Active:
    """Book-keeping for one in-flight worker process."""

    __slots__ = ("task", "attempt", "proc", "conn", "deadline",
                 "started", "task_t0", "attempts", "lease", "epoch")

    def __init__(self, task: BatchTask, attempt: int, proc, conn,
                 deadline: Optional[float], task_t0: float,
                 attempts: List[Dict],
                 lease: Optional[Lease] = None,
                 epoch: Optional[int] = None) -> None:
        self.task = task
        self.attempt = attempt  # 0-based attempt index
        self.proc = proc
        self.conn = conn
        self.deadline = deadline
        self.started = time.monotonic()
        self.task_t0 = task_t0
        self.attempts = attempts  # attempt records accumulated so far
        # joined-mode state: the held lease (dropped to None if stolen
        # out from under us) and the fencing epoch the claim was won at
        # (kept even after the lease is lost — it stamps the journal row)
        self.lease = lease
        self.epoch = (lease.epoch if epoch is None and lease is not None
                      else epoch)

    def algorithm(self) -> str:
        ladder = self.task.ladder()
        return ladder[min(self.attempt, len(ladder) - 1)]


class BatchRunner:
    """Run *tasks* to completion, journaling into *run_dir*.

    Parameters
    ----------
    jobs:
        Maximum concurrent worker processes.
    task_timeout:
        Hard wall-clock seconds per *attempt*; on expiry the worker is
        SIGKILLed and the task retried at the next ladder rung.
    retries:
        Extra attempts after the first (so ``retries=2`` means at most
        3 processes per task).
    fail_fast:
        Stop scheduling and kill in-flight work as soon as one task
        exhausts its attempts.
    shuffle_seed:
        Deterministically shuffle task start order (load balancing for
        skewed machine sizes); results are order-independent.
    progress:
        Optional callable receiving one line per finished task.
    join:
        Work-stealing mode: claim tasks through per-task leases and
        append to a claimant-named journal shard instead of the shared
        ``results.jsonl`` (see :meth:`join`).
    claimant / lease_ttl / heartbeat_interval:
        Joined-mode identity and timing knobs; ignored otherwise.
    """

    def __init__(
        self,
        tasks: Sequence[BatchTask],
        run_dir: Union[str, Path],
        jobs: int = 1,
        task_timeout: Optional[float] = None,
        retries: int = 2,
        fail_fast: bool = False,
        shuffle_seed: Optional[int] = None,
        progress: Optional[Callable[[str], None]] = None,
        force: bool = False,
        join: bool = False,
        claimant: Optional[str] = None,
        lease_ttl: float = DEFAULT_TTL,
        heartbeat_interval: Optional[float] = None,
    ) -> None:
        ids = [t.task_id for t in tasks]
        dupes = {i for i in ids if ids.count(i) > 1}
        if dupes:
            raise ValueError(f"duplicate task ids: {sorted(dupes)}")
        self.tasks = list(tasks)
        self.run_dir = Path(run_dir)
        self.jobs = max(1, int(jobs))
        self.task_timeout = task_timeout
        self.retries = max(0, int(retries))
        self.fail_fast = fail_fast
        self.shuffle_seed = shuffle_seed
        self.force = force
        self.progress = progress or (lambda line: None)
        self.join_mode = bool(join)
        self.claimant = claimant or default_claimant()
        if lease_ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {lease_ttl}")
        self.lease_ttl = float(lease_ttl)
        # renew each held lease well inside its TTL: a claimant must
        # miss several heartbeats in a row before it looks dead
        self.heartbeat_interval = (max(0.05, self.lease_ttl / 3.0)
                                   if heartbeat_interval is None
                                   else float(heartbeat_interval))
        self._leases: Optional[LeaseDir] = None
        self._ctx = get_context("spawn")

    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, run_dir: Union[str, Path], *,
               jobs: Optional[int] = None,
               task_timeout: Optional[float] = None,
               retries: Optional[int] = None,
               fail_fast: Optional[bool] = None,
               progress: Optional[Callable[[str], None]] = None,
               force: bool = False,
               ) -> "BatchRunner":
        """Rebuild a runner from ``manifest.json`` of a previous run.

        The task set always comes from the manifest (that is what makes
        the union of journaled results well-defined); scheduling knobs
        default to the recorded ones but may be overridden.
        """
        manifest = read_manifest(run_dir)
        cfg, tasks = cls._manifest_tasks(run_dir, manifest)
        return cls(
            tasks,
            run_dir,
            jobs=cfg.get("jobs", 1) if jobs is None else jobs,
            task_timeout=(cfg.get("task_timeout") if task_timeout is None
                          else task_timeout),
            retries=cfg.get("retries", 2) if retries is None else retries,
            fail_fast=(cfg.get("fail_fast", False) if fail_fast is None
                       else fail_fast),
            shuffle_seed=cfg.get("shuffle_seed"),
            progress=progress,
            force=force,
        )

    @classmethod
    def join(cls, run_dir: Union[str, Path], *,
             tasks: Optional[Sequence[BatchTask]] = None,
             jobs: Optional[int] = None,
             task_timeout: Optional[float] = None,
             retries: Optional[int] = None,
             fail_fast: Optional[bool] = None,
             claimant: Optional[str] = None,
             lease_ttl: Optional[float] = None,
             heartbeat_interval: Optional[float] = None,
             progress: Optional[Callable[[str], None]] = None,
             ) -> "BatchRunner":
        """Join (or start) a shared work-stealing run on *run_dir*.

        If the manifest already exists, its task set is authoritative —
        every claimant must agree on the task universe, and the
        manifest is what they agree on.  The first joiner may pass
        *tasks* to create the run; it publishes the manifest before
        returning so later joiners see a complete task list (the
        manifest itself is written atomically).
        """
        try:
            manifest: Optional[Dict] = read_manifest(run_dir)
        except FileNotFoundError:
            if tasks is None:
                raise
            manifest = None
        cfg: Dict = {}
        if manifest is not None:
            cfg, manifest_tasks = cls._manifest_tasks(run_dir, manifest)
            tasks = manifest_tasks
        assert tasks is not None
        runner = cls(
            tasks,
            run_dir,
            jobs=cfg.get("jobs", 1) if jobs is None else jobs,
            task_timeout=(cfg.get("task_timeout") if task_timeout is None
                          else task_timeout),
            retries=cfg.get("retries", 2) if retries is None else retries,
            fail_fast=(cfg.get("fail_fast", False) if fail_fast is None
                       else fail_fast),
            progress=progress,
            join=True,
            claimant=claimant,
            lease_ttl=(lease_ttl if lease_ttl is not None
                       else cfg.get("lease_ttl") or DEFAULT_TTL),
            heartbeat_interval=heartbeat_interval,
        )
        if manifest is None:
            Path(run_dir).mkdir(parents=True, exist_ok=True)
            write_manifest(run_dir, runner._manifest("running"))
        return runner

    @staticmethod
    def _manifest_tasks(run_dir, manifest: Dict):
        """Decode the config + task list of a manifest, wrapping any
        structural damage (a half-written or hand-edited file) into a
        :class:`JournalError` that names the file — never a raw
        ``KeyError`` escaping to the CLI as a traceback."""
        path = Path(run_dir) / journal_mod.MANIFEST_NAME
        cfg = manifest.get("config", {})
        if not isinstance(cfg, dict):
            raise JournalError(
                f"manifest 'config' should be an object, got "
                f"{type(cfg).__name__}", path=str(path))
        try:
            tasks = [BatchTask.from_spec(s) for s in manifest["tasks"]]
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise JournalError(
                f"manifest task list is missing or malformed ({exc!r}); "
                f"the file may be from an interrupted write — re-create "
                f"the run or restore the manifest", path=str(path)) from exc
        return cfg, tasks

    # ------------------------------------------------------------------
    def _manifest(self, status: str) -> Dict:
        return {
            "version": 1,
            "status": status,
            "pid": os.getpid(),
            "config": {
                "jobs": self.jobs,
                "task_timeout": self.task_timeout,
                "retries": self.retries,
                "fail_fast": self.fail_fast,
                "shuffle_seed": self.shuffle_seed,
                # joined runs record the TTL so every later joiner
                # agrees on when a silent claimant counts as dead
                "lease_ttl": self.lease_ttl if self.join_mode else None,
            },
            "tasks": [t.spec() for t in self.tasks],
        }

    def _serve_cached(self, task: BatchTask, journal: Journal,
                      lease: Optional[Lease] = None) -> bool:
        """Parent-side cache short-circuit: journal an already-cached
        encode result without paying a worker spawn.

        A hit costs one disk read + JSON decode (~ms) against ~0.3 s of
        interpreter start-up per spawned worker, which is what makes a
        warm sweep of small machines an order of magnitude faster than
        a cold one.  Anything unexpected — uncacheable options, a miss,
        a decode failure — falls through to the normal worker path, so
        this can only ever skip work, never change a result.
        """
        if task.kind != "encode" or task.faults:
            return False
        task_t0 = time.monotonic()
        try:
            from repro import cache as cache_mod
            from repro.encoding.options import merge_options
            from repro.runner.worker import _load_fsm

            opts = merge_options(None, {"algorithm": task.algorithm,
                                        **task.options})
            if not opts.storable:
                return False
            cache = cache_mod.get_cache(opts.cache)
            if cache is None or cache.disk is None:
                return False
            fsm = _load_fsm(task.machine)
            payload = cache.get(cache_mod.fingerprint(fsm, opts))
            if payload is None:
                return False
            result = cache_mod.decode_result(fsm, payload)
        # nova-lint: disable=NV004 -- deliberate catch-all guard: a
        # cache probe failure can only skip the shortcut (a worker then
        # computes the task normally), never change a result
        except Exception:
            return False  # any surprise: let a worker handle the task
        if result.report is not None:
            result.report.cache_hit = True
        status = ("degraded" if result.report is not None
                  and result.report.degraded else "ok")
        elapsed = round(time.monotonic() - task_t0, 6)
        a = _Active(task, 0, None, None, None, task_t0, [{
            "algorithm": task.algorithm, "status": status, "killed": None,
            "exitcode": None, "error": None, "elapsed": elapsed,
        }], lease=lease)
        self._journal_final(a, journal, status, record=result.to_record(),
                            perf={}, cache_hit=True)
        return True

    def _spawn(self, task: BatchTask, attempt: int, task_t0: float,
               attempts: List[Dict], lease: Optional[Lease] = None,
               epoch: Optional[int] = None) -> _Active:
        spec = task.spec()
        ladder = task.ladder()
        spec["algorithm"] = ladder[min(attempt, len(ladder) - 1)]
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(target=child_main, args=(spec, send),
                                 daemon=True)
        proc.start()
        send.close()  # parent keeps only the read end → EOF is reliable
        deadline = (None if self.task_timeout is None
                    else time.monotonic() + self.task_timeout)
        return _Active(task, attempt, proc, recv, deadline, task_t0,
                       attempts, lease=lease, epoch=epoch)

    # ------------------------------------------------------------------
    def run(self) -> BatchReport:
        """Execute every non-journaled task; return the aggregate report."""
        if self.join_mode:
            return self._run_joined()
        t0 = time.monotonic()
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._check_not_busy()
        prior = repair(self.run_dir / journal_mod.RESULTS_NAME)
        if prior.truncated_tail is not None:
            self.progress(f"journal: dropped truncated tail "
                          f"({len(prior.truncated_tail)} bytes) from an "
                          f"interrupted write; its task will re-run")
        # done-ness counts records in *any* shard, so a serial resume of
        # a previously joined run dir never redoes stolen work
        done = set(merge_results(self.run_dir).task_ids)
        write_manifest(self.run_dir, self._manifest("running"))

        pending = [t for t in self.tasks if t.task_id not in done]
        if self.shuffle_seed is not None:
            random.Random(self.shuffle_seed).shuffle(pending)
        pending.reverse()  # pop() from the front of the original order

        active: List[_Active] = []
        failed_any = False
        with Journal(self.run_dir / journal_mod.RESULTS_NAME) as journal:
            try:
                while pending or active:
                    while pending and len(active) < self.jobs:
                        task = pending.pop()
                        if self._serve_cached(task, journal):
                            continue
                        active.append(self._spawn(task, 0, time.monotonic(),
                                                  []))
                    self._poll(active, journal)
                    finished = [a for a in active if a.proc is None]
                    active = [a for a in active if a.proc is not None]
                    for a in finished:
                        if a.attempts[-1]["status"] in ("ok", "degraded"):
                            continue
                        if a.attempt < self.retries:
                            active.append(self._spawn(
                                a.task, a.attempt + 1, a.task_t0, a.attempts))
                        else:
                            failed_any = True
                            if self.fail_fast:
                                raise _FailFast(a.task.task_id)
            except _FailFast as stop:
                for a in active:
                    a.proc.kill()
                    a.proc.join()
                    a.conn.close()
                write_manifest(self.run_dir, self._manifest("failed"))
                self.progress(f"fail-fast: stopping after {stop}")
                return self._report(t0, interrupted=True)
        write_manifest(self.run_dir,
                       self._manifest("failed" if failed_any else "complete"))
        return self._report(t0)

    def _run_joined(self) -> BatchReport:
        """The work-stealing claim loop of one joined claimant.

        Scheduling is a fixpoint iteration, not a queue: every round
        re-derives *pending* as (manifest tasks) − (merged journal
        records) − (own in-flight), claims what it can through the
        lease table, and exits only when the merged view covers the
        manifest with nothing left in flight locally.  That shape is
        what makes the mode crash-symmetric — a claimant learns about
        other claimants' completions, deaths, and steals purely by
        re-reading durable state, never by messages.
        """
        t0 = time.monotonic()
        self.run_dir.mkdir(parents=True, exist_ok=True)
        leases = LeaseDir(self.run_dir, self.claimant, ttl=self.lease_ttl)
        self._leases = leases
        shard = self.run_dir / shard_name(self.claimant)
        prior = repair(shard)
        if prior.truncated_tail is not None:
            self.progress(f"journal: dropped truncated tail "
                          f"({len(prior.truncated_tail)} bytes) from shard "
                          f"{shard.name}; its task will re-run")
        all_ids = [t.task_id for t in self.tasks]
        by_id = {t.task_id: t for t in self.tasks}
        active: List[_Active] = []
        failed_any = False
        last_beat = time.monotonic()
        try:
            with Journal(shard) as journal:
                while True:
                    merged_ids = set(merge_results(self.run_dir).task_ids)
                    if not active and merged_ids >= set(all_ids):
                        break
                    in_flight = {a.task.task_id for a in active}
                    claimed_work = False
                    for task_id in all_ids:
                        if len(active) >= self.jobs:
                            break
                        if task_id in merged_ids or task_id in in_flight:
                            continue
                        lease = leases.acquire(task_id)
                        if lease is None:
                            continue
                        claimed_work = True
                        if lease.epoch:
                            self.progress(f"{task_id}: stolen at epoch "
                                          f"{lease.epoch} (previous claimant "
                                          f"presumed dead)")
                        task = by_id[task_id]
                        if self._serve_cached(task, journal, lease=lease):
                            continue
                        active.append(self._spawn(task, 0, time.monotonic(),
                                                  [], lease=lease))
                    if not active:
                        if not claimed_work:
                            # everything unfinished is held live by other
                            # claimants: wait for their journals to grow
                            # or their leases to expire
                            time.sleep(min(0.2, self.heartbeat_interval))
                        continue
                    self._poll(active, journal)
                    now = time.monotonic()
                    if now - last_beat >= self.heartbeat_interval:
                        last_beat = now
                        for a in active:
                            if a.lease is None:
                                continue
                            renewed = leases.heartbeat(a.lease)
                            if renewed is None:
                                # stolen out from under us (we looked
                                # dead).  Finish anyway: our record keeps
                                # the original epoch and loses the merge
                                # deterministically.
                                self.progress(
                                    f"{a.task.task_id}: lease lost at epoch "
                                    f"{a.epoch} — finishing as a zombie; "
                                    f"the merge will keep the stealer's "
                                    f"result")
                                a.lease = None
                            else:
                                a.lease = renewed
                    finished = [a for a in active if a.proc is None]
                    active = [a for a in active if a.proc is not None]
                    for a in finished:
                        if a.attempts[-1]["status"] in ("ok", "degraded"):
                            continue
                        if a.attempt < self.retries:
                            active.append(self._spawn(
                                a.task, a.attempt + 1, a.task_t0, a.attempts,
                                lease=a.lease, epoch=a.epoch))
                        else:
                            failed_any = True
                            if self.fail_fast:
                                raise _FailFast(a.task.task_id)
        except _FailFast as stop:
            for a in active:
                a.proc.kill()
                a.proc.join()
                a.conn.close()
                if a.lease is not None:
                    leases.release(a.lease)
            # no manifest rewrite: other claimants keep running — fail
            # fast is a local decision in a cooperative run
            self.progress(f"fail-fast: this claimant stops after {stop}")
            return self._report(t0, interrupted=True)
        finally:
            self._leases = None
        merged = merge_results(self.run_dir)
        failed_any = failed_any or any(
            r.get("status") == "failed" for r in merged.records)
        # whichever claimant observes completion publishes the final
        # status; racing writers produce the same content modulo pid
        write_manifest(self.run_dir,
                       self._manifest("failed" if failed_any else "complete"))
        report = self._report(t0)
        self.progress(
            f"claimant {self.claimant}: {leases.claims} claims, "
            f"{leases.steals} steals, {leases.lost} leases lost")
        return report

    def _check_not_busy(self) -> None:
        """Refuse to journal into a run dir another live parent owns."""
        if self.force:
            return
        try:
            manifest = read_manifest(self.run_dir)
        except FileNotFoundError:
            return
        pid = manifest.get("pid")
        if (manifest.get("status") == "running" and pid != os.getpid()
                and _pid_alive(pid)):
            raise RunDirBusy(
                f"{self.run_dir}: manifest says a batch parent "
                f"(pid {pid}) is still running here; two writers would "
                f"duplicate journal rows. Wait for it, kill it, or pass "
                f"force=True (CLI: --force) if pid {pid} is not a nova "
                f"batch.")

    def _report(self, t0: float, interrupted: bool = False) -> BatchReport:
        merged = merge_results(self.run_dir)
        report = aggregate(merged.records, run_dir=self.run_dir,
                           wall_seconds=time.monotonic() - t0,
                           planned=len(self.tasks), interrupted=interrupted,
                           shards=merged.shards,
                           stale_rejected=len(merged.rejected),
                           duplicates=merged.duplicates)
        return report

    # ------------------------------------------------------------------
    def _poll(self, active: List[_Active], journal: Journal) -> None:
        """Wait for one completion/EOF/deadline; finalize what finished.

        Entries whose process finished are marked by ``a.proc = None``;
        the caller decides between retry and final journaling.
        """
        if not active:
            return
        now = time.monotonic()
        timeout = 0.5
        for a in active:
            if a.deadline is not None:
                timeout = min(timeout, max(0.0, a.deadline - now))
        ready = set(conn_wait([a.conn for a in active], timeout=timeout))
        now = time.monotonic()
        for a in active:
            if a.conn in ready:
                try:
                    outcome = a.conn.recv()
                except (EOFError, OSError):
                    self._reap(a, journal, status="crashed")
                    continue
                self._finish(a, journal, outcome)
            elif a.deadline is not None and now > a.deadline:
                a.proc.kill()
                self._reap(a, journal, status="killed",
                           killed=KILLED_TIMEOUT)

    def _attempt_record(self, a: _Active, status: str, *,
                        killed: Optional[str] = None,
                        exitcode: Optional[int] = None,
                        error: Optional[Dict] = None,
                        elapsed: Optional[float] = None) -> Dict:
        return {
            "algorithm": a.algorithm(),
            "status": status,
            "killed": killed,
            "exitcode": exitcode,
            "error": error,
            "elapsed": round(time.monotonic() - a.started
                             if elapsed is None else elapsed, 6),
        }

    def _finish(self, a: _Active, journal: Journal, outcome: Dict) -> None:
        """A worker reported a result (success, degraded, or error)."""
        a.proc.join()
        a.conn.close()
        status = outcome.get("status", "error")
        a.attempts.append(self._attempt_record(
            a, status, error=outcome.get("error"),
            elapsed=outcome.get("elapsed")))
        if status in ("ok", "degraded"):
            self._journal_final(a, journal, status,
                                record=outcome.get("record"),
                                perf=outcome.get("perf") or {},
                                cache_hit=outcome.get("cache_hit", False))
        elif a.attempt >= self.retries:
            self._journal_final(a, journal, "failed",
                                error=outcome.get("error"))
        a.proc = None

    def _reap(self, a: _Active, journal: Journal, status: str,
              killed: Optional[str] = None) -> None:
        """A worker died without reporting (kill, crash, or OOM)."""
        a.proc.join()
        exitcode = a.proc.exitcode
        a.conn.close()
        a.attempts.append(self._attempt_record(
            a, status, killed=killed, exitcode=exitcode))
        if a.attempt >= self.retries:
            self._journal_final(a, journal, "failed")
        a.proc = None

    def _journal_final(self, a: _Active, journal: Journal, status: str,
                       record: Optional[Dict] = None,
                       perf: Optional[Dict] = None,
                       error: Optional[Dict] = None,
                       cache_hit: bool = False) -> None:
        """Write the task's single, durable journal line."""
        last = a.attempts[-1]
        entry = {
            "task": a.task.task_id,
            "machine": a.task.machine,
            "kind": a.task.kind,
            "requested_algorithm": a.task.algorithm,
            "algorithm": last["algorithm"],
            "status": status,
            "attempts": a.attempts,
            "retries": len(a.attempts) - 1,
            "record": record,
            "perf": perf or {},
            "cache_hit": cache_hit,
            "error": error if error is not None else last.get("error"),
            "elapsed": round(time.monotonic() - a.task_t0, 6),
        }
        if self.join_mode:
            # the fencing stamp: merge precedence is (epoch, claimant),
            # recorded even if the lease was lost mid-run (that is the
            # whole point — a zombie's row must carry its stale epoch)
            entry["claimant"] = self.claimant
            entry["epoch"] = a.epoch if a.epoch is not None else 0
            entry["stolen"] = bool(entry["epoch"])
        journal.append(entry)
        if a.lease is not None and self._leases is not None:
            self._leases.release(a.lease)
            a.lease = None
        detail = " (cached)" if cache_hit else ""
        if status == "failed":
            kinds = [at["killed"] or at["status"] for at in a.attempts]
            detail = f" ({' -> '.join(kinds)})"
        elif len(a.attempts) > 1:
            detail = f" (after {len(a.attempts) - 1} retries)"
        self.progress(f"{a.task.task_id}: {status}{detail}")


class _FailFast(Exception):
    """Internal control flow: first final failure under --fail-fast."""


# ----------------------------------------------------------------------
# task-list builders
# ----------------------------------------------------------------------
def tasks_for_benchmarks(subset: str, algorithm: str = "ihybrid",
                         options: Optional[Dict] = None,
                         timeout: Optional[float] = None) -> List[BatchTask]:
    """Encode tasks for a builtin benchmark subset.

    Per-machine effort mirrors the serial table harness
    (:func:`repro.eval.tables.run`): heavyweight machines get
    ``effort="low"`` unless the caller pinned an effort explicitly.
    """
    from repro.fsm.benchmarks import benchmark_names, is_low_effort

    tasks = []
    for name in benchmark_names(subset):
        opts = dict(options or {})
        opts.setdefault("effort", "low" if is_low_effort(name) else "full")
        if timeout is not None:
            # cooperative in-worker deadline, under the hard kill
            opts.setdefault("timeout", timeout)
        tasks.append(BatchTask(machine=name, algorithm=algorithm,
                               options=opts))
    return tasks


def tasks_for_kiss_dir(path: Union[str, Path], algorithm: str = "ihybrid",
                       options: Optional[Dict] = None,
                       timeout: Optional[float] = None) -> List[BatchTask]:
    """Encode tasks for every ``*.kiss``/``*.kiss2`` file under *path*."""
    root = Path(path)
    files = sorted(p for ext in ("*.kiss", "*.kiss2")
                   for p in root.rglob(ext))
    if not files:
        raise FileNotFoundError(f"no .kiss/.kiss2 files under {root}")
    tasks = []
    for p in files:
        opts = dict(options or {})
        if timeout is not None:
            opts.setdefault("timeout", timeout)
        tasks.append(BatchTask(machine=str(p), algorithm=algorithm,
                               options=opts))
    return tasks
