"""Per-task leases: atomic claims, heartbeats, and stale-lease stealing.

The work-stealing mode (``nova batch --join RUN_DIR``) lets N
independent claimant processes — potentially on different hosts
sharing one filesystem — cooperate on a single manifest.  The journal
shards record what *finished*; the lease files under
``RUN_DIR/leases/`` coordinate what is *in flight*:

claim
    One JSON file per task, created atomically: the claim body is
    written to a private temp file, fsync'd, and published with
    ``os.link`` — which fails (like ``O_CREAT|O_EXCL``) if the task is
    already claimed, and never exposes a torn claim because the file
    is complete before it becomes visible.  A claim carries the
    claimant id, a monotonically increasing **fencing epoch**, and an
    expiry timestamp.

heartbeat
    The claimant re-publishes its claim with a fresh expiry via
    tmp + fsync + ``os.replace`` every ``ttl/3`` seconds while the
    task runs.  A heartbeat first *reads* the current claim: if the
    claimant or epoch changed, the lease was stolen (we were presumed
    dead) and the renewal is refused rather than clobbering the new
    owner.

steal
    A claim whose expiry is in the past is presumed dead and replaced
    — atomically, at ``epoch + 1`` — by whichever claimant notices
    first.  Two racing stealers can both think they won (the second
    ``os.replace`` silently wins); that is *allowed*: both run the
    task at the same epoch and the journal merge resolves the tie
    deterministically (see :func:`repro.runner.journal.merge_results`
    — highest epoch wins, ties broken by claimant id).  Mutual
    exclusion here is an efficiency device, not a correctness
    invariant; the fencing epoch in the journal record is what
    guarantees exactly one surviving result per task.

Clock model: expiry timestamps are wall-clock (``time.time``) because
they must be comparable across hosts; claimants sharing a directory
are assumed clock-synchronized to well under the TTL, the standard
lease assumption.  A paused (SIGSTOP) zombie that outlives its TTL,
wakes, and finishes anyway journals its result at the *old* epoch —
harmless, because the merge rejects it in favour of the stealer's
higher epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
import hashlib
import json
import os
from pathlib import Path
import re
import time
from typing import Dict, Optional, Union

from repro.testing import faults

LEASE_DIR_NAME = "leases"
DEFAULT_TTL = 15.0

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def task_key(task_id: str) -> str:
    """A filesystem-safe, collision-free filename stem for *task_id*.

    The readable prefix keeps ``ls leases/`` meaningful; the hash
    suffix keeps distinct task ids distinct even when sanitization
    collides (``a:b`` vs ``a/b``).
    """
    digest = hashlib.sha256(task_id.encode("utf-8")).hexdigest()[:10]
    stem = _SAFE.sub("_", task_id)[:60] or "task"
    return f"{stem}-{digest}"


def default_claimant() -> str:
    """A fresh claimant id: host, pid, and a random tail.

    Unique across hosts sharing the run directory and across restarts
    of one pid; filename-safe by construction.  A claimant id names a
    journal shard, so it must never be reused by a concurrent writer —
    the shard's ``flock`` enforces that if this ever collides.
    """
    host = _SAFE.sub("_", os.uname().nodename.split(".")[0]) or "host"
    return f"{host}-{os.getpid()}-{os.urandom(3).hex()}"


@dataclass(frozen=True)
class Lease:
    """One held (or observed) claim on a task."""

    task_id: str
    claimant: str
    epoch: int
    expires_at: float  # wall-clock (time.time) expiry

    def expired(self, now: Optional[float] = None) -> bool:
        return (time.time() if now is None else now) > self.expires_at

    def to_dict(self) -> Dict:
        return {
            "task": self.task_id,
            "claimant": self.claimant,
            "epoch": self.epoch,
            "expires_at": self.expires_at,
        }


class LeaseDir:
    """The lease table of one run directory, seen by one claimant.

    Counters (``claims``, ``steals``, ``lost``) are per-process
    observability for progress lines, ``nova batch status`` and the
    steal benchmark; the durable truth is in the files.
    """

    def __init__(self, run_dir: Union[str, Path], claimant: str,
                 ttl: float = DEFAULT_TTL) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.root = Path(run_dir) / LEASE_DIR_NAME
        self.root.mkdir(parents=True, exist_ok=True)
        self.claimant = claimant
        self.ttl = ttl
        self.claims = 0
        self.steals = 0
        self.lost = 0

    # ------------------------------------------------------------------
    def path_for(self, task_id: str) -> Path:
        return self.root / f"{task_key(task_id)}.json"

    def read(self, task_id: str) -> Optional[Lease]:
        """The current claim on *task_id*, or ``None`` if there is none
        (or the file is unreadable — see :meth:`acquire` for how an
        undecodable claim is still stealable)."""
        return self._read_path(self.path_for(task_id), task_id)

    def _read_path(self, path: Path, task_id: str) -> Optional[Lease]:
        try:
            body = json.loads(path.read_text(encoding="utf-8"))
            return Lease(task_id=task_id,
                         claimant=str(body["claimant"]),
                         epoch=int(body["epoch"]),
                         expires_at=float(body["expires_at"]))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # outside interference (claims publish atomically): treated
            # as an anonymous claim, stealable once its mtime ages out
            return None

    # ------------------------------------------------------------------
    def acquire(self, task_id: str,
                now: Optional[float] = None) -> Optional[Lease]:
        """One attempt to claim *task_id*; ``None`` if it is held live.

        A fresh task is claimed at epoch 0 via the exclusive-create
        publish; an expired claim is stolen at its epoch + 1.  Never
        blocks and never waits — the claim loop decides when to retry.
        """
        faults.trip("claim", task=task_id, claimant=self.claimant)
        now = time.time() if now is None else now
        path = self.path_for(task_id)
        if not path.exists():
            lease = Lease(task_id, self.claimant, 0, now + self.ttl)
            if self._publish_new(path, lease):
                self.claims += 1
                return lease
            # lost the creation race; fall through and look at the winner
        current = self._read_path(path, task_id)
        if current is None:
            # undecodable claim file: no epoch to fence with.  Steal at
            # epoch 1 once the *file* is older than the TTL; a wrong
            # low epoch only ever loses merges, it cannot double-win.
            try:
                age = now - path.stat().st_mtime
            except OSError:
                return None  # vanished underneath us; next round re-claims
            if age <= self.ttl:
                return None
        elif current.claimant == self.claimant:
            # our own live claim (a retried acquire after a crash of
            # the in-flight attempt, with the lease still held)
            lease = replace(current, expires_at=now + self.ttl)
            if self._replace(path, lease):
                return lease
            return None
        elif not current.expired(now):
            return None
        faults.trip("steal", task=task_id, claimant=self.claimant)
        epoch = 1 if current is None else current.epoch + 1
        lease = Lease(task_id, self.claimant, epoch, now + self.ttl)
        if not self._replace(path, lease):
            return None
        self.steals += 1
        return lease

    def heartbeat(self, lease: Lease,
                  now: Optional[float] = None) -> Optional[Lease]:
        """Renew *lease*; ``None`` if ownership was lost in the meantime.

        Refusing to renew a stolen lease keeps a woken zombie from
        clobbering the new owner's claim — the zombie may still finish
        and journal, but its record carries the stale epoch and loses
        the merge.
        """
        faults.trip("heartbeat", task=lease.task_id,
                    claimant=self.claimant)
        now = time.time() if now is None else now
        path = self.path_for(lease.task_id)
        current = self._read_path(path, lease.task_id)
        if current is None or current.claimant != lease.claimant \
                or current.epoch != lease.epoch:
            self.lost += 1
            return None
        renewed = replace(lease, expires_at=now + self.ttl)
        if not self._replace(path, renewed):
            self.lost += 1
            return None
        return renewed

    def release(self, lease: Lease) -> None:
        """Best-effort expiry of a finished task's claim.

        Done-ness lives in the journal, not here — this only makes
        ``status`` stop showing a live hold.  Losing the race (or the
        write) is harmless, so failures are swallowed by design.
        """
        path = self.path_for(lease.task_id)
        current = self._read_path(path, lease.task_id)
        if current is None or current.claimant != lease.claimant \
                or current.epoch != lease.epoch:
            return
        self._replace(path, replace(lease, expires_at=0.0))

    # ------------------------------------------------------------------
    def _tmp_path(self, path: Path) -> Path:
        # per-claimant temp name: concurrent claimants never collide on
        # the temp file either
        return path.with_name(f".{path.name}.{self.claimant}.tmp")

    # The exclusive-create publish: write the full claim to a private
    # temp file, fsync it, then os.link it to the claim path.  link(2)
    # fails if the target exists — O_CREAT|O_EXCL semantics — and the
    # published file is complete by construction, so readers never see
    # a torn claim.
    # nova-lint: disable=NV003 -- the atomic publish here is os.link
    # (exclusive create), not os.replace: a claim must FAIL on
    # collision, not overwrite the holder; the temp write is fsync'd
    # before the link makes it visible
    def _publish_new(self, path: Path, lease: Lease) -> bool:
        tmp = self._tmp_path(path)
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(lease.to_dict(), fh)
            fh.flush()
            os.fsync(fh.fileno())
        try:
            os.link(tmp, path)
            return True
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)

    def _replace(self, path: Path, lease: Lease) -> bool:
        """Atomic in-place update (heartbeat, steal, release): tmp +
        fsync + ``os.replace``.  Returns ``False`` only on I/O failure
        — the caller treats that as a lost lease, never as held."""
        tmp = self._tmp_path(path)
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(lease.to_dict(), fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            return True
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False

    # ------------------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> Dict[str, Lease]:
        """Every decodable claim in the table, keyed by claim filename
        stem (task ids are not recoverable from hashed keys alone —
        callers that need them join against the manifest)."""
        out: Dict[str, Lease] = {}
        for path in sorted(self.root.glob("*.json")):
            lease = self._read_path(path, path.stem)
            if lease is not None:
                out[path.stem] = lease
        return out


def lease_stats(run_dir: Union[str, Path],
                now: Optional[float] = None) -> Dict:
    """Aggregate lease-table counters for status lines and benchmarks.

    ``total_epoch`` is the number of published steals over the run's
    lifetime (every steal bumps exactly one claim's epoch by one).
    """
    root = Path(run_dir) / LEASE_DIR_NAME
    now = time.time() if now is None else now
    stats = {"leases": 0, "live": 0, "expired": 0, "undecodable": 0,
             "total_epoch": 0, "claimants": []}
    claimants = set()
    if not root.is_dir():
        return stats
    reader = LeaseDir(run_dir, claimant="status-reader")
    for path in sorted(root.glob("*.json")):
        stats["leases"] += 1
        lease = reader._read_path(path, path.stem)
        if lease is None:
            stats["undecodable"] += 1
            continue
        stats["total_epoch"] += lease.epoch
        claimants.add(lease.claimant)
        if lease.expired(now):
            stats["expired"] += 1
        else:
            stats["live"] += 1
    stats["claimants"] = sorted(claimants)
    return stats
