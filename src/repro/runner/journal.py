"""Durable run state: results journals, shards, merge, and the manifest.

A batch run directory holds files the engine owns:

``results.jsonl``
    Append-only journal of the single-parent mode, one JSON object per
    *completed* task (success, degraded, or finally-failed after
    retries).  Each line is followed by ``flush()`` + ``os.fsync()`` so
    a line either exists completely or (if the process dies mid-write)
    is a recognizable truncated tail — never a silently half-applied
    state.

``results.<claimant>.jsonl``
    One shard per *joined* claimant (``nova batch --join``).  The
    single-writer invariant holds per shard: only the claimant that
    coined ``<claimant>`` ever appends to its shard, so every shard has
    the same torn-tail-only corruption model as the main journal, and
    :func:`repair` applies to each shard independently.

``manifest.json``
    The run's configuration and full task list, written atomically via
    a temp file + ``os.replace`` so readers never observe a partial
    manifest.  ``--resume RUN_DIR`` and ``--join RUN_DIR`` rebuild the
    exact task set from it.

``leases/``
    Per-task claim files for work stealing (see
    :mod:`repro.runner.lease`).

The single-writer invariant is *enforced*, not assumed: every
:class:`Journal` takes an ``flock`` on a ``<path>.lock`` sidecar for
its lifetime, so two resumed parents (or a claimant-id collision)
racing onto one shard fail loudly with :class:`JournalError` instead of
silently interleaving rows.  The kernel releases the lock when the
holder dies — including by SIGKILL — which is exactly the liveness
model the lease layer needs.

:func:`merge_results` folds every shard into one task→record view:
the highest fencing ``epoch`` wins per task, ties broken by claimant
id, and every losing record is *named* in the merge report rather than
silently dropped.  That rule is what makes a work-stealing run's
result set deterministic even when a presumed-dead zombie claimant
wakes up and journals a stale-epoch result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import JournalError

try:  # posix; the lock degrades to best-effort elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-posix platforms
    fcntl = None  # type: ignore[assignment]

RESULTS_NAME = "results.jsonl"
MANIFEST_NAME = "manifest.json"

__all__ = [
    "Journal",
    "JournalError",
    "JournalReadResult",
    "MergeResult",
    "merge_results",
    "read_manifest",
    "read_results",
    "repair",
    "shard_name",
    "shard_paths",
    "write_manifest",
]


class Journal:
    """Append-only, fsync'd JSONL writer (one process per path).

    ``exclusive=True`` (the default) takes a non-blocking ``flock`` on
    ``<path>.lock`` for the journal's lifetime and raises
    :class:`JournalError` if another live writer already holds it —
    two ``--resume`` invocations of one run dir fail fast instead of
    interleaving rows.  The lock dies with the process (SIGKILL
    included), so a crashed writer never wedges the run directory.
    """

    def __init__(self, path: Union[str, Path], *,
                 exclusive: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock_fh = None
        if exclusive:
            self._lock_fh = self._acquire_writer_lock()
        self._fh = open(self.path, "a", encoding="utf-8")

    def _acquire_writer_lock(self):
        lock_path = self.path.with_name(self.path.name + ".lock")
        # append mode: never truncate a live holder's pid announcement
        fh = open(lock_path, "a", encoding="utf-8")
        if fcntl is None:  # pragma: no cover - non-posix platforms
            return fh
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            holder = lock_path.read_text(encoding="utf-8").strip() or "?"
            fh.close()
            raise JournalError(
                f"another live writer (pid {holder}) holds {self.path} — "
                f"a second appender would interleave journal rows; wait "
                f"for it or join the run with its own claimant id",
                path=self.path) from None
        fh.truncate(0)
        fh.write(f"{os.getpid()}\n")
        fh.flush()
        return fh

    def append(self, record: Dict) -> None:
        """Write one record durably: the line is on disk when we return."""
        # insertion order is kept so table rows read back with their
        # columns in the order the producer built them
        line = json.dumps(record, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()
        if self._lock_fh is not None and not self._lock_fh.closed:
            # closing drops the flock; the sidecar file itself stays
            # (unlinking would race a waiter that already opened it)
            self._lock_fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalReadResult:
    """What :func:`read_results` recovered from a journal file."""

    records: List[Dict] = field(default_factory=list)
    truncated_tail: Optional[str] = None  # raw partial final line, if any
    truncated_tail_removed: bool = False  # set by :func:`repair`
    duplicates: Dict[str, int] = field(default_factory=dict)

    @property
    def task_ids(self) -> List[str]:
        return [r["task"] for r in self.records if "task" in r]

    @property
    def duplicate_count(self) -> int:
        """Dropped repeats of already-seen task ids (last record won)."""
        return sum(self.duplicates.values())


def read_results(path: Union[str, Path]) -> JournalReadResult:
    """Load a journal, tolerating a truncated final line.

    Because every complete line was fsync'd before the next began, the
    only corruption a crash can leave is a partial *last* line; it is
    reported (not silently dropped) via ``truncated_tail``.  A
    malformed line anywhere else means outside interference and raises
    :class:`JournalError`.

    Repeated task ids are deduplicated — the *last* record wins, its
    position is the first occurrence's — and counted per task in
    ``duplicates``, so a crash between append and acknowledgement
    under work stealing can never double-count a task in reports.
    """
    path = Path(path)
    result = JournalReadResult()
    if not path.exists():
        return result
    raw = path.read_text(encoding="utf-8")
    lines = raw.split("\n")
    # a well-formed journal ends with "\n", so the final split item is ""
    complete, tail = lines[:-1], lines[-1]
    records: List[Dict] = []
    for i, line in enumerate(complete):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            raise JournalError(
                f"corrupt journal line {i + 1}: {exc}",
                path=path) from exc
    if tail.strip():
        try:
            # no trailing newline, but the JSON itself may be complete
            # (crash between write() and the "\n" reaching the page cache)
            records.append(json.loads(tail))
        except ValueError:
            result.truncated_tail = tail
    seen: Dict[str, int] = {}
    for rec in records:
        task = rec.get("task")
        if not isinstance(task, str):
            result.records.append(rec)
            continue
        if task in seen:
            result.records[seen[task]] = rec  # last record wins
            result.duplicates[task] = result.duplicates.get(task, 0) + 1
        else:
            seen[task] = len(result.records)
            result.records.append(rec)
    return result


def repair(path: Union[str, Path]) -> JournalReadResult:
    """Load a journal *and* make it safe to append to again.

    A crash can leave the file either with a torn final line (truncate
    it away — its task will simply re-run) or with a complete final
    record missing only its newline (add the newline).  Without this,
    the first append of a resumed run would glue onto the tail and turn
    a recognizable truncation into mid-file garbage.
    """
    result = read_results(path)
    path = Path(path)
    if result.truncated_tail is not None:
        raw = path.read_bytes()
        keep = len(raw) - len(result.truncated_tail.encode("utf-8"))
        with open(path, "r+b") as fh:
            fh.truncate(keep)
            fh.flush()
            os.fsync(fh.fileno())
        result.truncated_tail_removed = True
    else:
        raw = path.read_bytes() if path.exists() else b""
        if raw and not raw.endswith(b"\n"):
            with open(path, "ab") as fh:
                fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())
    return result


# ----------------------------------------------------------------------
# shards and the merge
# ----------------------------------------------------------------------
def shard_name(claimant: str) -> str:
    """The per-claimant journal filename (``results.<claimant>.jsonl``)."""
    return f"results.{claimant}.jsonl"


def shard_paths(run_dir: Union[str, Path]) -> List[Path]:
    """Every journal file of *run_dir*: the main journal (if present)
    first, then the claimant shards in sorted order."""
    run_dir = Path(run_dir)
    paths = []
    main = run_dir / RESULTS_NAME
    if main.exists():
        paths.append(main)
    paths.extend(sorted(p for p in run_dir.glob("results.*.jsonl")
                        if p.name != RESULTS_NAME))
    return paths


def _fencing_key(record: Dict) -> Tuple[int, str]:
    """The merge-precedence key of a record: ``(epoch, claimant)``.

    Records from the single-parent mode carry neither field and sort as
    ``(0, "")`` — any stolen re-execution outranks them, and they
    outrank nothing, which matches their epoch-0 reality.
    """
    epoch = record.get("epoch")
    claimant = record.get("claimant")
    return (epoch if isinstance(epoch, int) else 0,
            claimant if isinstance(claimant, str) else "")


@dataclass
class MergeResult:
    """The merged task→record view over every journal shard.

    ``records`` holds exactly one record per completed task, ordered by
    task id (a deterministic order no matter which claimant finished
    what).  ``rejected`` names every record that lost the fencing rule
    — a stale-epoch zombie result, or the tie-break loser of two
    same-epoch stealers — so nothing is silently dropped.
    """

    records: List[Dict] = field(default_factory=list)
    rejected: List[Dict] = field(default_factory=list)
    shards: List[str] = field(default_factory=list)
    torn_tails: Dict[str, str] = field(default_factory=dict)
    duplicates: int = 0

    @property
    def task_ids(self) -> List[str]:
        return [r["task"] for r in self.records if "task" in r]

    def record_for(self, task_id: str) -> Optional[Dict]:
        for r in self.records:
            if r.get("task") == task_id:
                return r
        return None


def merge_results(run_dir: Union[str, Path]) -> MergeResult:
    """Fold every shard of *run_dir* into one deterministic view.

    For each task the surviving record is the one with the highest
    fencing epoch, ties broken by the lexicographically greatest
    claimant id.  Determinism argument: the fencing key is a total
    order over the (finite) record set of a task, and the set itself
    is whatever the shards durably contain — so any two readers of the
    same directory state compute the identical view, regardless of
    shard enumeration order or of which claimants are still alive.

    Shards are read tolerantly: a torn tail in *any* shard (a claimant
    SIGKILLed mid-append) is reported per shard in ``torn_tails``, not
    fatal — only mid-file corruption raises :class:`JournalError`.
    """
    run_dir = Path(run_dir)
    merged = MergeResult()
    chosen: Dict[str, Dict] = {}
    chosen_shard: Dict[str, str] = {}
    losers: List[Tuple[Tuple[int, str], Dict, str]] = []
    for path in shard_paths(run_dir):
        loaded = read_results(path)
        merged.shards.append(path.name)
        merged.duplicates += loaded.duplicate_count
        if loaded.truncated_tail is not None:
            merged.torn_tails[path.name] = loaded.truncated_tail
        for rec in loaded.records:
            task = rec.get("task")
            if not isinstance(task, str):
                continue
            incumbent = chosen.get(task)
            if incumbent is None:
                chosen[task] = rec
                chosen_shard[task] = path.name
            elif _fencing_key(rec) > _fencing_key(incumbent):
                losers.append((_fencing_key(incumbent), incumbent,
                               chosen_shard[task]))
                chosen[task] = rec
                chosen_shard[task] = path.name
            else:
                losers.append((_fencing_key(rec), rec, path.name))
    merged.records = [chosen[t] for t in sorted(chosen)]
    for (epoch, claimant), rec, shard in losers:
        task = rec.get("task")
        winner = _fencing_key(chosen[task])
        merged.rejected.append({
            "task": task,
            "claimant": claimant,
            "epoch": epoch,
            "shard": shard,
            "reason": (f"stale epoch {epoch} < {winner[0]}"
                       if epoch < winner[0]  # nova-lint: disable=NV007 -- precedence was decided by the full _fencing_key tuple above; this compare only words the report
                       else f"tie at epoch {epoch}, claimant "
                            f"{claimant!r} < {winner[1]!r}"),
        })
    return merged


# ----------------------------------------------------------------------
# the manifest
# ----------------------------------------------------------------------
def write_manifest(run_dir: Union[str, Path], manifest: Dict) -> Path:
    """Atomically (re)write ``manifest.json`` in *run_dir*.

    The tmp name carries the writer's pid: cooperating claimants race
    to publish the final status, and a shared tmp name would let one
    writer's ``os.replace`` consume the other's tmp file.
    """
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    final = run_dir / MANIFEST_NAME
    tmp = run_dir / f"{MANIFEST_NAME}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    return final


def read_manifest(run_dir: Union[str, Path]) -> Dict:
    """Load ``manifest.json``, wrapping corruption in the taxonomy.

    A manifest is written atomically, so a torn or non-object payload
    means outside interference (a partial copy, a stray editor, a
    different tool's file) — surfaced as :class:`JournalError` with the
    path, not a raw ``JSONDecodeError`` traceback.
    """
    path = Path(run_dir) / MANIFEST_NAME
    if not path.exists():
        raise FileNotFoundError(
            f"{path}: not a batch run directory (no {MANIFEST_NAME})")
    with open(path, encoding="utf-8") as fh:
        try:
            manifest = json.load(fh)
        except ValueError as exc:
            raise JournalError(
                f"corrupt or half-written manifest: {exc}",
                path=path) from exc
    if not isinstance(manifest, dict):
        raise JournalError(
            f"manifest is {type(manifest).__name__}, expected an object",
            path=path)
    return manifest
