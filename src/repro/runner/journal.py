"""Durable run state: the results journal and the run manifest.

A batch run directory holds exactly two files the engine owns:

``results.jsonl``
    Append-only journal, one JSON object per *completed* task (success,
    degraded, or finally-failed after retries).  Only the parent
    process writes it; each line is followed by ``flush()`` +
    ``os.fsync()`` so a line either exists completely or (if the
    process dies mid-write) is a recognizable truncated tail — never a
    silently half-applied state.

``manifest.json``
    The run's configuration and full task list, written atomically via
    a temp file + ``os.replace`` so readers never observe a partial
    manifest.  ``--resume RUN_DIR`` rebuilds the exact task set from it
    and skips every task id already journaled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

RESULTS_NAME = "results.jsonl"
MANIFEST_NAME = "manifest.json"


class JournalError(Exception):
    """The journal is corrupt beyond the tolerated truncated tail."""


class Journal:
    """Append-only, fsync'd JSONL writer (parent process only)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, record: Dict) -> None:
        """Write one record durably: the line is on disk when we return."""
        # insertion order is kept so table rows read back with their
        # columns in the order the producer built them
        line = json.dumps(record, separators=(",", ":"))
        self._fh.write(line + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalReadResult:
    """What :func:`read_results` recovered from a journal file."""

    records: List[Dict] = field(default_factory=list)
    truncated_tail: Optional[str] = None  # raw partial final line, if any
    truncated_tail_removed: bool = False  # set by :func:`repair`

    @property
    def task_ids(self) -> List[str]:
        return [r["task"] for r in self.records if "task" in r]


def read_results(path: Union[str, Path]) -> JournalReadResult:
    """Load a journal, tolerating a truncated final line.

    Because every complete line was fsync'd before the next began, the
    only corruption a crash can leave is a partial *last* line; it is
    reported (not silently dropped) via ``truncated_tail``.  A
    malformed line anywhere else means outside interference and raises
    :class:`JournalError`.
    """
    path = Path(path)
    result = JournalReadResult()
    if not path.exists():
        return result
    raw = path.read_text(encoding="utf-8")
    lines = raw.split("\n")
    # a well-formed journal ends with "\n", so the final split item is ""
    complete, tail = lines[:-1], lines[-1]
    for i, line in enumerate(complete):
        if not line.strip():
            continue
        try:
            result.records.append(json.loads(line))
        except ValueError as exc:
            raise JournalError(
                f"{path}: corrupt journal line {i + 1}: {exc}") from exc
    if tail.strip():
        try:
            # no trailing newline, but the JSON itself may be complete
            # (crash between write() and the "\n" reaching the page cache)
            result.records.append(json.loads(tail))
        except ValueError:
            result.truncated_tail = tail
    return result


def repair(path: Union[str, Path]) -> JournalReadResult:
    """Load a journal *and* make it safe to append to again.

    A crash can leave the file either with a torn final line (truncate
    it away — its task will simply re-run) or with a complete final
    record missing only its newline (add the newline).  Without this,
    the first append of a resumed run would glue onto the tail and turn
    a recognizable truncation into mid-file garbage.
    """
    result = read_results(path)
    path = Path(path)
    if result.truncated_tail is not None:
        raw = path.read_bytes()
        keep = len(raw) - len(result.truncated_tail.encode("utf-8"))
        with open(path, "r+b") as fh:
            fh.truncate(keep)
            fh.flush()
            os.fsync(fh.fileno())
        result.truncated_tail_removed = True
    else:
        raw = path.read_bytes() if path.exists() else b""
        if raw and not raw.endswith(b"\n"):
            with open(path, "ab") as fh:
                fh.write(b"\n")
                fh.flush()
                os.fsync(fh.fileno())
    return result


def write_manifest(run_dir: Union[str, Path], manifest: Dict) -> Path:
    """Atomically (re)write ``manifest.json`` in *run_dir*."""
    run_dir = Path(run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    final = run_dir / MANIFEST_NAME
    tmp = run_dir / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    return final


def read_manifest(run_dir: Union[str, Path]) -> Dict:
    path = Path(run_dir) / MANIFEST_NAME
    if not path.exists():
        raise FileNotFoundError(
            f"{path}: not a batch run directory (no {MANIFEST_NAME})")
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
