"""Crash-safe parallel batch-encoding engine.

One :class:`BatchRunner` fans a list of :class:`BatchTask` out over a
pool of isolated worker *processes* (``multiprocessing`` spawn
context), enforces a per-task hard wall-clock timeout by killing the
worker, retries failed or killed tasks down the degradation ladder
(``iexact → ihybrid → igreedy → onehot``), and journals every outcome
as one durable JSON line so a crashed or interrupted run resumes
exactly where it left off.

Layout
------
``batch``
    The engine: task model, scheduling loop, hard kills, retry ladder.
``worker``
    The child-process side: load the machine, arm injected faults, run
    the pipeline, ship a JSON-safe outcome back over a pipe.
``journal``
    Durability: fsync'd append-only ``results.jsonl`` plus an atomic
    (``os.replace``) ``manifest.json``; a tolerant loader for resume.
``report``
    Aggregation of journal entries into one :class:`BatchReport`
    (status counts, retries, kill reasons, fallbacks, merged perf
    counters).
"""

from repro.runner.batch import (
    BatchRunner,
    BatchTask,
    RunDirBusy,
    tasks_for_benchmarks,
    tasks_for_kiss_dir,
)
from repro.runner.journal import (
    Journal,
    JournalReadResult,
    read_manifest,
    read_results,
    repair,
    write_manifest,
)
from repro.runner.report import BatchReport, aggregate

__all__ = [
    "BatchRunner",
    "BatchTask",
    "BatchReport",
    "RunDirBusy",
    "Journal",
    "JournalReadResult",
    "aggregate",
    "read_manifest",
    "read_results",
    "repair",
    "tasks_for_benchmarks",
    "tasks_for_kiss_dir",
    "write_manifest",
]
