"""Crash-safe parallel batch-encoding engine.

One :class:`BatchRunner` fans a list of :class:`BatchTask` out over a
pool of isolated worker *processes* (``multiprocessing`` spawn
context), enforces a per-task hard wall-clock timeout by killing the
worker, retries failed or killed tasks down the degradation ladder
(``iexact → ihybrid → igreedy → onehot``), and journals every outcome
as one durable JSON line so a crashed or interrupted run resumes
exactly where it left off.

The joined mode (:meth:`BatchRunner.join`) extends this to N
cooperating claimant processes over one run directory: per-task leases
with fencing epochs coordinate who runs what, per-claimant journal
shards keep the single-writer invariant, and :func:`merge_results`
folds the shards into one deterministic task→record view.

Layout
------
``batch``
    The engine: task model, scheduling loop, hard kills, retry ladder,
    and the work-stealing claim loop.
``worker``
    The child-process side: load the machine, arm injected faults, run
    the pipeline, ship a JSON-safe outcome back over a pipe.
``journal``
    Durability: fsync'd append-only journal shards (flock-guarded,
    single writer each), the fencing merge, plus an atomic
    (``os.replace``) ``manifest.json``; tolerant loaders for resume.
``lease``
    The claim table: atomic exclusive-create claims, heartbeats, and
    stale-lease stealing at ``epoch + 1``.
``report``
    Aggregation of journal entries into one :class:`BatchReport`
    (status counts, retries, kill reasons, fallbacks, merged perf
    counters, steal/fence provenance).
"""

from repro.errors import JournalError
from repro.runner.batch import (
    BatchRunner,
    BatchTask,
    RunDirBusy,
    tasks_for_benchmarks,
    tasks_for_kiss_dir,
)
from repro.runner.journal import (
    Journal,
    JournalReadResult,
    MergeResult,
    merge_results,
    read_manifest,
    read_results,
    repair,
    shard_name,
    shard_paths,
    write_manifest,
)
from repro.runner.lease import (
    Lease,
    LeaseDir,
    default_claimant,
    lease_stats,
)
from repro.runner.report import BatchReport, aggregate

__all__ = [
    "BatchRunner",
    "BatchTask",
    "BatchReport",
    "RunDirBusy",
    "Journal",
    "JournalError",
    "JournalReadResult",
    "Lease",
    "LeaseDir",
    "MergeResult",
    "aggregate",
    "default_claimant",
    "lease_stats",
    "merge_results",
    "read_manifest",
    "read_results",
    "repair",
    "shard_name",
    "shard_paths",
    "tasks_for_benchmarks",
    "tasks_for_kiss_dir",
    "write_manifest",
]
