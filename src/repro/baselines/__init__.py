"""Baseline state-assignment programs reimplemented from their papers."""

from repro.baselines.kiss import kiss_code
from repro.baselines.mustang import mustang_code, MUSTANG_OPTIONS
from repro.baselines.random_search import random_assignments, best_random

__all__ = [
    "kiss_code",
    "mustang_code",
    "MUSTANG_OPTIONS",
    "random_assignments",
    "best_random",
]
