"""Baseline state-assignment programs reimplemented from their papers."""

from repro.baselines.kiss import kiss_code
from repro.baselines.mustang import MUSTANG_OPTIONS, mustang_code
from repro.baselines.random_search import best_random, random_assignments

__all__ = [
    "kiss_code",
    "mustang_code",
    "MUSTANG_OPTIONS",
    "random_assignments",
    "best_random",
]
