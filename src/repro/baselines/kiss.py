"""KISS-style baseline (De Micheli, Brayton, Sangiovanni-Vincentelli 1985).

KISS guarantees the satisfaction of *all* input constraints with a
heuristic that does not always achieve the minimum necessary code
length (§VII of the NOVA paper).  Our reimplementation reproduces that
contract and that behaviour: it first attempts a bounded exact embed at
the minimum length; failing that, it falls back to constructive
satisfaction by repeated cube growth (Proposition 4.2.1), which — like
the original's face-splitting heuristic — trades extra code bits for
guaranteed satisfaction.
"""

from __future__ import annotations

from repro.constraints.input_constraints import ConstraintSet
from repro.encoding.base import Encoding, counting_sequence_code, satisfied_masks
from repro.encoding.iexact import semiexact_code
from repro.encoding.project import satisfy_all
from repro.fsm.machine import minimum_code_length


def kiss_code(cs: ConstraintSet, max_work: int = 20_000) -> Encoding:
    """Encoding satisfying every input constraint (possibly > min bits)."""
    n = cs.n
    min_bits = minimum_code_length(n)
    masks = cs.masks()
    attempt = semiexact_code(masks, n, min_bits, max_work=max_work)
    if attempt is not None:
        return attempt
    enc = counting_sequence_code(n, min_bits)
    sic = satisfied_masks(enc, masks)
    ric = [m for m in masks if m not in set(sic)]
    enc, _sic, ric = satisfy_all(enc, sic, ric, cs, max_bits=None)
    assert not ric, "projection must satisfy all constraints"
    return enc
