"""Random state assignments: the paper's best/average random columns.

The paper evaluates, for each machine, a number of random assignments
equal to the number of states plus the number of symbolic inputs, and
reports both the best and the average final area.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.encoding.base import Encoding
from repro.encoding.onehot import random_code


def random_assignments(
    n: int,
    trials: Optional[int] = None,
    nbits: Optional[int] = None,
    seed: int = 1989,
) -> List[Encoding]:
    """Deterministic list of random encodings (defaults to *n* trials)."""
    rng = random.Random(seed)
    count = n if trials is None else trials
    return [random_code(n, nbits=nbits, rng=rng) for _ in range(count)]


def best_random(
    encodings: List[Encoding],
    evaluate: Callable[[Encoding], int],
) -> Tuple[int, float]:
    """(best, average) of the evaluation metric over the encodings."""
    values = [evaluate(e) for e in encodings]
    return min(values), sum(values) / len(values)
