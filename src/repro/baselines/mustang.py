"""MUSTANG-style baseline (Devadas, Ma, Newton, Sangiovanni-Vincentelli 1987).

MUSTANG targets multilevel implementations: it builds an *attraction
graph* — a weight for every pair of states measuring how much the pair
would benefit from adjacent (small Hamming distance) codes — and then
embeds the states into the code space so that heavily attracted pairs
get close codes.  Two weight models are implemented, as in the original:

* **fanout-oriented** (``-p``): present states driving the same next
  state / asserting the same outputs attract each other;
* **fanin-oriented** (``-n``): next states driven by the same present
  state / the same inputs attract each other.

The ``-pt`` / ``-nt`` variants additionally weigh the output/input
contribution by the number of output bits involved, as the original
does when told to account for multi-bit signals.  The embedding is the
standard greedy wedge assignment: repeatedly pick the unplaced state
with the largest attraction to the placed set and give it the free code
of minimum weighted Hamming distance.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Tuple

from repro.encoding.base import Encoding
from repro.fsm.machine import FSM, minimum_code_length

MUSTANG_OPTIONS = ("p", "n", "pt", "nt")


def _pair_weights(fsm: FSM, option: str) -> Dict[Tuple[int, int], int]:
    """Attraction weights between state pairs for the given option."""
    if option not in MUSTANG_OPTIONS:
        raise ValueError(f"unknown MUSTANG option {option!r}")
    fanout = option.startswith("p")
    scaled = option.endswith("t")
    n = fsm.num_states
    weights: Dict[Tuple[int, int], int] = {}

    def add(a: int, b: int, w: int) -> None:
        if a == b or w == 0:
            return
        key = (min(a, b), max(a, b))
        weights[key] = weights.get(key, 0) + w

    if fanout:
        # group present states by (next state, output pattern)
        groups: Dict[Tuple[str, str], List[int]] = {}
        for t in fsm.transitions:
            if t.present == "*" or t.next == "*":
                continue
            key = (t.next, t.outputs)
            groups.setdefault(key, []).append(fsm.state_index(t.present))
        for (nxt, outs), members in groups.items():
            w = 1 + (outs.count("1") if scaled else 0)
            for a, b in combinations(sorted(set(members)), 2):
                add(a, b, w)
        # next-state feedback: states reached from a common present state
        by_present: Dict[str, List[int]] = {}
        for t in fsm.transitions:
            if t.present == "*" or t.next == "*":
                continue
            by_present.setdefault(t.present, []).append(
                fsm.state_index(t.next))
        for members in by_present.values():
            for a, b in combinations(sorted(set(members)), 2):
                add(a, b, 1)
    else:
        # fanin-oriented: next states reached under similar conditions
        by_input: Dict[str, List[int]] = {}
        for t in fsm.transitions:
            if t.next == "*":
                continue
            key = t.inputs + ("/" + t.symbol if t.symbol else "")
            by_input.setdefault(key, []).append(fsm.state_index(t.next))
        for key, members in by_input.items():
            w = 1 + (key.count("-") if scaled else 0)
            for a, b in combinations(sorted(set(members)), 2):
                add(a, b, w)
        by_present = {}
        for t in fsm.transitions:
            if t.present == "*" or t.next == "*":
                continue
            by_present.setdefault(t.present, []).append(
                fsm.state_index(t.next))
        for members in by_present.values():
            for a, b in combinations(sorted(set(members)), 2):
                add(a, b, 1)
    return weights


def _greedy_embed(n: int, nbits: int,
                  weights: Dict[Tuple[int, int], int]) -> Encoding:
    """Wedge embedding: attracted pairs get Hamming-close codes."""

    def w(a: int, b: int) -> int:
        return weights.get((min(a, b), max(a, b)), 0)

    placed: Dict[int, int] = {}
    free = list(range(1 << nbits))
    # seed: the state with the largest total attraction gets code 0
    totals = [sum(w(s, o) for o in range(n) if o != s) for s in range(n)]
    order = sorted(range(n), key=lambda s: (-totals[s], s))
    seed = order[0]
    placed[seed] = 0
    free.remove(0)
    while len(placed) < n:
        # next: unplaced state most attracted to the placed set
        best = max(
            (s for s in range(n) if s not in placed),
            key=lambda s: (sum(w(s, o) for o in placed), totals[s], -s),
        )
        # code minimizing weighted Hamming distance to placed neighbours
        def cost(code: int) -> Tuple[int, int]:
            c = sum(w(best, o) * (code ^ placed[o]).bit_count()
                    for o in placed)
            return (c, code)

        code = min(free, key=cost)
        placed[best] = code
        free.remove(code)
    return Encoding(nbits, [placed[s] for s in range(n)])


def mustang_code(fsm: FSM, option: str = "p",
                 nbits: int = None) -> Encoding:
    """MUSTANG state assignment with the given weighting option."""
    n = fsm.num_states
    bits = minimum_code_length(n) if nbits is None else nbits
    weights = _pair_weights(fsm, option)
    return _greedy_embed(n, bits, weights)
