"""Static analysis of state transition tables.

Utilities a state-assignment flow needs around the core algorithms:
reachability from the reset state, dead/unreachable state detection,
determinism (row overlap) checking, completeness measurement, state
transition graph statistics, and Graphviz export for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.fsm.machine import FSM, Transition


def _row_inputs_overlap(a: Transition, b: Transition) -> bool:
    if a.symbol != b.symbol:
        return False
    return all(x == "-" or y == "-" or x == y
               for x, y in zip(a.inputs, b.inputs))


def transition_graph(fsm: FSM) -> Dict[str, Set[str]]:
    """Successor sets over state names (``*`` rows are ignored)."""
    adj: Dict[str, Set[str]] = {s: set() for s in fsm.states}
    for t in fsm.transitions:
        if t.present == "*" or t.next == "*":
            continue
        adj[t.present].add(t.next)
    return adj


def reachable_states(fsm: FSM, start: Optional[str] = None) -> Set[str]:
    """States reachable from *start* (default: the reset state)."""
    start = start or fsm.reset or fsm.states[0]
    adj = transition_graph(fsm)
    seen = {start}
    stack = [start]
    while stack:
        s = stack.pop()
        for n in adj[s]:
            if n not in seen:
                seen.add(n)
                stack.append(n)
    return seen


def unreachable_states(fsm: FSM) -> List[str]:
    """States no path from reset reaches (candidates for removal)."""
    reach = reachable_states(fsm)
    return [s for s in fsm.states if s not in reach]


def nondeterministic_pairs(fsm: FSM) -> List[Tuple[Transition, Transition]]:
    """Row pairs of one present state whose input cubes overlap but whose
    next state or outputs conflict."""
    out = []
    by_state: Dict[str, List[Transition]] = {}
    for t in fsm.transitions:
        states = fsm.states if t.present == "*" else [t.present]
        for s in states:
            by_state.setdefault(s, []).append(t)
    for rows in by_state.values():
        for a, b in itertools.combinations(rows, 2):
            if not _row_inputs_overlap(a, b):
                continue
            same_next = a.next == b.next or "*" in (a.next, b.next)
            outs_ok = all(
                x == y or "-" in (x, y)
                for x, y in zip(a.outputs, b.outputs)
            )
            if not (same_next and outs_ok):
                out.append((a, b))
    return out


def is_deterministic(fsm: FSM) -> bool:
    return not nondeterministic_pairs(fsm)


def specification_coverage(fsm: FSM) -> float:
    """Fraction of (state, input minterm) pairs with a specified row."""
    n_inputs = fsm.num_inputs
    symbols = fsm.symbolic_input_values or [None]
    total = 0
    covered = 0
    for state in fsm.states:
        for symbol in symbols:
            for bits in itertools.product("01", repeat=n_inputs):
                total += 1
                if fsm.next_state_of(state, "".join(bits),
                                     symbol=symbol) is not None:
                    covered += 1
    return covered / total if total else 1.0


@dataclass
class StgStats:
    """Summary statistics of the state transition graph."""

    states: int
    transitions: int
    reachable: int
    max_fan_in: int
    max_fan_out: int
    self_loops: int
    deterministic: bool
    coverage: float


def analyze(fsm: FSM) -> StgStats:
    """Full static analysis of a machine (see :class:`StgStats`)."""
    adj = transition_graph(fsm)
    fan_in: Dict[str, int] = {s: 0 for s in fsm.states}
    self_loops = 0
    for s, nxts in adj.items():
        for n in nxts:
            fan_in[n] += 1
            if n == s:
                self_loops += 1
    return StgStats(
        states=fsm.num_states,
        transitions=len(fsm.transitions),
        reachable=len(reachable_states(fsm)),
        max_fan_in=max(fan_in.values(), default=0),
        max_fan_out=max((len(v) for v in adj.values()), default=0),
        self_loops=self_loops,
        deterministic=is_deterministic(fsm),
        coverage=specification_coverage(fsm),
    )


def to_dot(fsm: FSM) -> str:
    """Graphviz text of the state transition graph."""
    lines = [f'digraph "{fsm.name}" {{', "  rankdir=LR;"]
    if fsm.reset:
        lines.append(f'  "{fsm.reset}" [shape=doublecircle];')
    for t in fsm.transitions:
        if t.present == "*" or t.next == "*":
            continue
        label = t.inputs or (t.symbol or "")
        if t.symbol and t.inputs:
            label = f"{t.symbol},{t.inputs}"
        lines.append(
            f'  "{t.present}" -> "{t.next}" [label="{label}/{t.outputs}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
