"""Finite state machine substrate: representation, KISS2 I/O, benchmarks."""

from repro.fsm.analysis import StgStats, analyze, to_dot
from repro.fsm.benchmarks import benchmark, benchmark_names, benchmark_table
from repro.fsm.kiss import parse_kiss, to_kiss
from repro.fsm.machine import FSM, Transition
from repro.fsm.symbolic_cover import SymbolicCover, build_symbolic_cover

__all__ = [
    "FSM",
    "Transition",
    "parse_kiss",
    "to_kiss",
    "SymbolicCover",
    "build_symbolic_cover",
    "benchmark",
    "benchmark_names",
    "benchmark_table",
    "StgStats",
    "analyze",
    "to_dot",
]
