"""State-transition-table representation of synchronous FSMs.

The model follows the KISS2 conventions used by NOVA/SIS: a machine is a
list of transitions, each with a (possibly don't-care) binary input
pattern, a symbolic present state, a symbolic next state, and a
(possibly don't-care) binary output pattern.  Machines may additionally
carry one *symbolic input* variable (the ``dk*`` benchmarks of the paper
encode proper inputs as well as states); a transition then names a
symbol value instead of part of the binary pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_PATTERN_CHARS = set("01-")


@dataclass(frozen=True)
class Transition:
    """One row of a state transition table."""

    inputs: str  # binary input pattern over 0/1/-
    present: str  # present state name ('*' = any state)
    next: str  # next state name ('*' = unspecified / don't care)
    outputs: str  # output pattern over 0/1/-
    symbol: Optional[str] = None  # value of the symbolic input, if any
    out_symbol: Optional[str] = None  # value of the symbolic output, if any

    def __post_init__(self) -> None:
        if set(self.inputs) - _PATTERN_CHARS:
            raise ValueError(f"bad input pattern {self.inputs!r}")
        if set(self.outputs) - _PATTERN_CHARS:
            raise ValueError(f"bad output pattern {self.outputs!r}")


@dataclass
class FSM:
    """A finite state machine given by its state transition table."""

    name: str
    num_inputs: int
    num_outputs: int
    states: List[str]
    transitions: List[Transition]
    reset: Optional[str] = None
    symbolic_input_values: List[str] = field(default_factory=list)
    symbolic_output_values: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        return len(self.states)

    @property
    def has_symbolic_input(self) -> bool:
        return bool(self.symbolic_input_values)

    @property
    def has_symbolic_output(self) -> bool:
        return bool(self.symbolic_output_values)

    def state_index(self, name: str) -> int:
        return self._state_idx[name]

    def symbol_index(self, name: str) -> int:
        return self._symbol_idx[name]

    def out_symbol_index(self, name: str) -> int:
        return self._out_symbol_idx[name]

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the table is well formed (names, widths, reset state)."""
        if len(set(self.states)) != len(self.states):
            raise ValueError(f"{self.name}: duplicate state names")
        self._state_idx: Dict[str, int] = {s: i for i, s in enumerate(self.states)}
        self._symbol_idx: Dict[str, int] = {
            s: i for i, s in enumerate(self.symbolic_input_values)
        }
        self._out_symbol_idx: Dict[str, int] = {
            s: i for i, s in enumerate(self.symbolic_output_values)
        }
        if self.reset is not None and self.reset not in self._state_idx:
            raise ValueError(f"{self.name}: unknown reset state {self.reset!r}")
        for t in self.transitions:
            if len(t.inputs) != self.num_inputs:
                raise ValueError(
                    f"{self.name}: input pattern {t.inputs!r} should have "
                    f"{self.num_inputs} bits"
                )
            if len(t.outputs) != self.num_outputs:
                raise ValueError(
                    f"{self.name}: output pattern {t.outputs!r} should have "
                    f"{self.num_outputs} bits"
                )
            if t.present != "*" and t.present not in self._state_idx:
                raise ValueError(f"{self.name}: unknown present state {t.present!r}")
            if t.next != "*" and t.next not in self._state_idx:
                raise ValueError(f"{self.name}: unknown next state {t.next!r}")
            if self.has_symbolic_input:
                if t.symbol is None or t.symbol not in self._symbol_idx:
                    raise ValueError(
                        f"{self.name}: transition needs a symbolic input value"
                    )
            elif t.symbol is not None:
                raise ValueError(f"{self.name}: machine has no symbolic input")
            if self.has_symbolic_output:
                if t.out_symbol is None or \
                        t.out_symbol not in self._out_symbol_idx:
                    raise ValueError(
                        f"{self.name}: transition needs a symbolic "
                        f"output value"
                    )
            elif t.out_symbol is not None:
                raise ValueError(
                    f"{self.name}: machine has no symbolic output")

    # ------------------------------------------------------------------
    def is_completely_specified(self) -> bool:
        """True when every (input minterm, state) pair has a transition."""
        span = {}
        for t in self.transitions:
            states = self.states if t.present == "*" else [t.present]
            n = 1
            for ch in t.inputs:
                n *= 2 if ch == "-" else 1
            for s in states:
                span[s] = span.get(s, 0) + n * (
                    len(self.symbolic_input_values) if t.symbol is None and
                    self.has_symbolic_input else 1
                )
        full = (1 << self.num_inputs) * max(1, len(self.symbolic_input_values))
        # note: overlapping rows make this an over-count; the check is a
        # cheap necessary condition used by tests on generated machines
        return all(span.get(s, 0) >= full for s in self.states)

    def next_state_of(self, state: str, input_bits: str,
                      symbol: Optional[str] = None) -> Optional[Tuple[str, str]]:
        """Simulate one step: return (next state, outputs) or None."""
        t = self.matching_row(state, input_bits, symbol)
        return None if t is None else (t.next, t.outputs)

    def matching_row(self, state: str, input_bits: str,
                     symbol: Optional[str] = None) -> Optional[Transition]:
        """First transition row matching a (state, input) point."""
        for t in self.transitions:
            if t.present not in ("*", state):
                continue
            if self.has_symbolic_input and t.symbol != symbol:
                continue
            if all(p in ("-", b) for p, b in zip(t.inputs, input_bits)):
                return t
        return None

    def stats(self) -> Dict[str, int]:
        """Table-I style statistics for this machine."""
        return {
            "inputs": self.num_inputs + (1 if self.has_symbolic_input else 0),
            "outputs": self.num_outputs
            + (1 if self.has_symbolic_output else 0),
            "states": self.num_states,
            "products": len(self.transitions),
        }

    def __repr__(self) -> str:
        sym = (f", sym={len(self.symbolic_input_values)}"
               if self.has_symbolic_input else "")
        return (
            f"FSM({self.name!r}: {self.num_inputs} in, {self.num_outputs} out, "
            f"{self.num_states} states, {len(self.transitions)} rows{sym})"
        )


def minimum_code_length(n: int) -> int:
    """Minimum number of encoding bits for *n* symbols (ceil(log2 n), >= 1)."""
    if n <= 1:
        return 1
    return (n - 1).bit_length()
