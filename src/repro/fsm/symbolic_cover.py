"""Build the multiple-valued symbolic cover of an FSM's combinational logic.

Layout of the positional cube (ESPRESSO-MV convention):

* one 2-part variable per binary primary input;
* one MV variable for the symbolic proper input (if the machine has one);
* one MV variable with ``num_states`` parts for the *present state*;
* one output variable whose parts are: the 1-hot *next state* columns
  followed by the binary primary output columns.

Rows whose next state is unspecified (``*``) contribute their next-state
columns to the don't-care set; output ``-`` entries likewise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConstraintError
from repro.fsm.machine import FSM
from repro.logic.cover import Cover
from repro.logic.cube import Format


@dataclass
class SymbolicCover:
    """The MV cover of an FSM plus the layout bookkeeping."""

    fsm: FSM
    fmt: Format
    on: Cover
    dc: Cover
    off: Cover
    state_var: int  # index of the present-state MV variable
    symbol_var: Optional[int]  # index of the symbolic-input variable
    output_var: int  # index of the output variable
    num_next_parts: int  # leading parts of the output var = next-state columns
    num_out_symbol_parts: int = 0  # trailing 1-hot symbolic-output columns

    def state_field(self, cube: int) -> int:
        """Present-state part of a cube (bit i <-> state i)."""
        return self.fmt.field(cube, self.state_var)

    def symbol_field(self, cube: int) -> Optional[int]:
        if self.symbol_var is None:
            return None
        return self.fmt.field(cube, self.symbol_var)

    def next_state_of_cube(self, cube: int) -> Optional[int]:
        """Index of the (single) next state a cube asserts, if any."""
        out = self.fmt.field(cube, self.output_var)
        ns = out & ((1 << self.num_next_parts) - 1)
        if ns == 0:
            return None
        if ns & (ns - 1):
            raise ConstraintError("cube asserts more than one next state")
        return ns.bit_length() - 1


def _input_fields(fsm: FSM, t, fmt: Format) -> List[int]:
    fields = []
    for ch in t.inputs:
        fields.append({"0": 1, "1": 2, "-": 3}[ch])
    if fsm.has_symbolic_input:
        fields.append(1 << fsm.symbol_index(t.symbol))
    return fields


def build_symbolic_cover(fsm: FSM) -> SymbolicCover:
    """Translate the state transition table into an MV on/dc cover pair."""
    n = fsm.num_states
    parts: List[int] = [2] * fsm.num_inputs
    symbol_var: Optional[int] = None
    if fsm.has_symbolic_input:
        symbol_var = len(parts)
        parts.append(len(fsm.symbolic_input_values))
    state_var = len(parts)
    parts.append(n)
    output_var = len(parts)
    num_next_parts = n
    n_outsym = len(fsm.symbolic_output_values)
    parts.append(n + fsm.num_outputs + n_outsym)
    fmt = Format(parts)

    on = Cover(fmt)
    dc = Cover(fmt)
    off = Cover(fmt)
    for t in fsm.transitions:
        fields = _input_fields(fsm, t, fmt)
        if t.present == "*":
            fields.append((1 << n) - 1)
        else:
            fields.append(1 << fsm.state_index(t.present))
        on_out = 0
        dc_out = 0
        off_out = 0
        if t.next == "*":
            dc_out |= (1 << n) - 1
        else:
            ns = 1 << fsm.state_index(t.next)
            on_out |= ns
            off_out |= ((1 << n) - 1) & ~ns  # a deterministic row denies
            # every other next state on its minterms
        for j, ch in enumerate(t.outputs):
            if ch == "1":
                on_out |= 1 << (n + j)
            elif ch == "-":
                dc_out |= 1 << (n + j)
            else:
                off_out |= 1 << (n + j)
        if n_outsym:
            base = n + fsm.num_outputs
            osym = 1 << (base + fsm.out_symbol_index(t.out_symbol))
            on_out |= osym
            off_out |= (((1 << n_outsym) - 1) << base) & ~osym
        if on_out:
            on.append(fmt.cube_from_fields(fields + [on_out]))
        if dc_out:
            dc.append(fmt.cube_from_fields(fields + [dc_out]))
        if off_out:
            off.append(fmt.cube_from_fields(fields + [off_out]))
    return SymbolicCover(
        fsm=fsm,
        fmt=fmt,
        on=on,
        dc=dc,
        off=off,
        state_var=state_var,
        symbol_var=symbol_var,
        output_var=output_var,
        num_next_parts=num_next_parts,
        num_out_symbol_parts=n_outsym,
    )
