"""Deterministic synthetic FSM generation.

The MCNC benchmark files evaluated in the paper are not distributable
with this reproduction, so machines other than the hand-written small
classics are generated deterministically (seeded by name) to match the
published interface statistics — number of binary inputs, symbolic
input values, outputs, states, and product terms.

Realism matters more than randomness here.  Real controllers have the
two properties NOVA's evaluation depends on:

* **clustered states** — groups of states that behave identically under
  many input conditions (a controller in several wait states reacts to
  an error or a restart the same way).  Under multiple-valued
  minimization these groups merge into single cubes, and because the
  *same* group recurs for many input conditions, the resulting input
  constraint carries a large weight (the paper's Table VI reports
  weights up to 44);
* **Moore-style outputs** — outputs that are a function of the next
  state, so rows funnelling into one state also share outputs and are
  mergeable at all.

The generator therefore draws a global partition of the input space
(controllers branch on the same conditions everywhere), groups states
into behaviour clusters, and makes a cluster react uniformly to a
condition with high probability.  Symbolic-input machines (the dk*
family) use their symbol values as the conditions.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.fsm.machine import FSM, Transition


def _split_input_space(num_inputs: int, groups: int,
                       rng: random.Random) -> List[str]:
    """Partition the binary input space into *groups* disjoint cubes."""
    patterns = ["-" * num_inputs]
    if num_inputs == 0:
        return patterns
    while len(patterns) < groups:
        # split the pattern with the most don't cares to keep cubes balanced
        idx = max(range(len(patterns)), key=lambda i: patterns[i].count("-"))
        pat = patterns[idx]
        free = [i for i, ch in enumerate(pat) if ch == "-"]
        if not free:
            break  # space fully split into minterms
        pos = rng.choice(free)
        patterns[idx] = pat[:pos] + "0" + pat[pos + 1:]
        patterns.append(pat[:pos] + "1" + pat[pos + 1:])
    return patterns


def _moore_output(next_idx: int, num_outputs: int, num_states: int,
                  rng: random.Random) -> str:
    """Outputs as a strict function of the next state (plus rare DC)."""
    if num_outputs == 0:
        return ""
    span = max(1, num_states.bit_length())
    bits = []
    for j in range(num_outputs):
        base = (next_idx * (j + 3) + (next_idx >> (j % span))) & 1
        bits.append("-" if rng.random() < 0.04 else ("1" if base else "0"))
    return "".join(bits)


def _repair_reachability(nxt: List[List[int]], cluster_of: List[int],
                         shared: dict, rng: random.Random) -> None:
    """Redirect individual rows so every state is reachable from state 0.

    Rows belonging to a cluster-shared reaction are avoided where
    possible, so the group structure (and the constraint weights it
    produces) survives the repair.
    """
    num_states = len(nxt)
    conditions = range(len(nxt[0]))

    def reach() -> List[int]:
        seen = {0}
        stack = [0]
        while stack:
            s = stack.pop()
            for g in conditions:
                n = nxt[s][g]
                if n not in seen:
                    seen.add(n)
                    stack.append(n)
        return sorted(seen)

    for _ in range(4 * num_states):
        reachable = set(reach())
        missing = [s for s in range(num_states) if s not in reachable]
        if not missing:
            return
        target = missing[0]
        # prefer redirecting a non-shared row of a reachable state; a
        # redirect must not disconnect previously reachable states
        candidates = [
            (s, g) for s in sorted(reachable) for g in conditions
            if (cluster_of[s], g) not in shared
        ] + [(s, g) for s in sorted(reachable) for g in conditions]
        rng.shuffle(candidates)
        for s, g in candidates:
            old = nxt[s][g]
            nxt[s][g] = target
            if reachable <= set(reach()):
                break
            nxt[s][g] = old  # redirect disconnected something: revert


def generate_fsm(
    name: str,
    num_inputs: int,
    num_outputs: int,
    num_states: int,
    num_products: int,
    symbolic_values: int = 0,
    seed: Optional[int] = None,
) -> FSM:
    """Generate a deterministic, fully specified synthetic FSM.

    ``num_products`` is a target; the generated machine comes close to
    it (the row count is ``num_states * ceil(num_products/num_states)``
    for binary-input machines and ``num_states * symbolic_values`` for
    symbolic ones, as in the fully specified dk* files).
    """
    if seed is None:
        seed = sum(ord(c) * 131 ** i for i, c in enumerate(name)) & 0xFFFFFFFF
    rng = random.Random(seed)
    states = [f"s{i}" for i in range(num_states)]
    symbols = [f"v{i}" for i in range(symbolic_values)] if symbolic_values \
        else []

    if symbols:
        conditions = list(range(symbolic_values))
        patterns = None
    else:
        groups = max(1, round(num_products / num_states))
        patterns = _split_input_space(num_inputs, groups, rng)
        conditions = list(range(len(patterns)))

    # behaviour clusters: states in one cluster react identically to a
    # condition with high probability
    n_clusters = max(2, num_states // 3)
    cluster_of = [rng.randrange(n_clusters) for _ in range(num_states)]
    funnels = sorted(rng.sample(range(num_states),
                                k=max(1, num_states // 5)))

    # per (cluster, condition): either a shared reaction (next state for
    # the whole cluster) or None (state-individual behaviour)
    shared: dict = {}
    for c in range(n_clusters):
        for g in conditions:
            if rng.random() < 0.55:
                shared[(c, g)] = funnels[(c + g) % len(funnels)] \
                    if rng.random() < 0.6 else rng.randrange(num_states)

    def next_of(si: int, g: int) -> int:
        key = (cluster_of[si], g)
        if key in shared:
            return shared[key]
        r = rng.random()
        if r < 0.45:
            return (si + 1) % num_states  # sequential progress
        if r < 0.65:
            return si  # wait state
        window = max(2, num_states // 3)
        return (si + rng.randrange(-window, window + 1)) % num_states

    nxt = [[next_of(si, g) for g in conditions] for si in range(num_states)]
    _repair_reachability(nxt, cluster_of, shared, rng)

    transitions: List[Transition] = []
    for si in range(num_states):
        for g in conditions:
            ni = nxt[si][g]
            out = _moore_output(ni, num_outputs, num_states, rng)
            transitions.append(Transition(
                inputs=patterns[g] if patterns else "",
                present=states[si],
                next=states[ni],
                outputs=out,
                symbol=symbols[g] if symbols else None,
            ))
    return FSM(
        name=name,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        states=states,
        transitions=transitions,
        reset=states[0],
        symbolic_input_values=symbols,
    )
