"""State minimization by partition refinement.

State assignment assumes a state-minimized machine (NOVA sits after
state reduction in the SIS flow).  For completely specified,
deterministic machines the classical Moore/Hopcroft partition
refinement applies: start from output-equivalence classes and split
until successor classes stabilize.

Incompletely specified machines are handled conservatively: two states
are only merged when their specified behaviours agree everywhere both
are specified *and* neither row set leaves the other's class — this is
compatible (not minimum) reduction, which is all the encoding flow
needs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.fsm.machine import FSM, Transition


def _behaviour(fsm: FSM, state: str) -> List[Tuple[str, Optional[str],
                                                   Optional[str], str]]:
    """Responses of a state to every input point: (key, next, outputs)."""
    out = []
    symbols = fsm.symbolic_input_values or [None]
    for symbol in symbols:
        for bits in itertools.product("01", repeat=fsm.num_inputs):
            pattern = "".join(bits)
            r = fsm.next_state_of(state, pattern, symbol=symbol)
            key = f"{symbol or ''}:{pattern}"
            if r is None:
                out.append((key, None, None, ""))
            else:
                out.append((key, r[0], None, r[1]))
    return out


def _outputs_compatible(a: str, b: str) -> bool:
    return all(x == y or "-" in (x, y) for x, y in zip(a, b))


def equivalent_state_classes(fsm: FSM) -> List[List[str]]:
    """Partition of the states into behavioural equivalence classes.

    Exact for completely specified machines; conservative (may keep
    mergeable states apart) when rows are unspecified.
    """
    behaviours = {s: _behaviour(fsm, s) for s in fsm.states}

    # initial partition: by output responses (None = unspecified agrees
    # with nothing but itself, which keeps the reduction conservative)
    def out_signature(state: str) -> Tuple:
        return tuple((key, outs if nxt is not None else None)
                     for key, nxt, _, outs in behaviours[state])

    classes: Dict[Tuple, List[str]] = {}
    for s in fsm.states:
        classes.setdefault(out_signature(s), []).append(s)
    partition = list(classes.values())

    changed = True
    while changed:
        changed = False
        class_of = {}
        for ci, members in enumerate(partition):
            for s in members:
                class_of[s] = ci

        def next_signature(state: str) -> Tuple:
            return tuple(
                (key, class_of[nxt] if nxt is not None else None)
                for key, nxt, _, _outs in behaviours[state]
            )

        new_partition: List[List[str]] = []
        for members in partition:
            buckets: Dict[Tuple, List[str]] = {}
            for s in members:
                buckets.setdefault(next_signature(s), []).append(s)
            if len(buckets) > 1:
                changed = True
            new_partition.extend(buckets.values())
        partition = new_partition
    return [sorted(c, key=fsm.state_index) for c in partition]


def minimize_states(fsm: FSM) -> FSM:
    """Merged machine: one representative state per equivalence class."""
    partition = equivalent_state_classes(fsm)
    rep: Dict[str, str] = {}
    for members in partition:
        leader = members[0]
        for s in members:
            rep[s] = leader
    if all(len(c) == 1 for c in partition):
        return fsm  # already minimal

    kept = [s for s in fsm.states if rep[s] == s]
    rows: List[Transition] = []
    seen = set()
    for t in fsm.transitions:
        if t.present != "*" and rep[t.present] != t.present:
            continue  # merged away; the leader's rows speak for the class
        nxt = t.next if t.next == "*" else rep[t.next]
        row = Transition(inputs=t.inputs, present=t.present, next=nxt,
                         outputs=t.outputs, symbol=t.symbol)
        key = (row.inputs, row.present, row.next, row.outputs, row.symbol)
        if key not in seen:
            seen.add(key)
            rows.append(row)
    return FSM(
        name=f"{fsm.name}_min",
        num_inputs=fsm.num_inputs,
        num_outputs=fsm.num_outputs,
        states=kept,
        transitions=rows,
        reset=rep[fsm.reset] if fsm.reset else None,
        symbolic_input_values=list(fsm.symbolic_input_values),
    )
