"""The benchmark suite of the paper (Table I plus the Table V extras).

Machines come from two sources, per DESIGN.md §5:

* **structured builders** — small classics whose behaviour is well known
  (shift register, modulo counter, sensor counters of the lion/train
  family) are constructed exactly;
* **deterministic generation** — the remaining machines are synthesized
  by :mod:`repro.fsm.generator` to match the published interface
  statistics (inputs / outputs / states / product terms).  The dk*
  machines carry a symbolic proper input, as in the paper (the starred
  rows of Tables II-IV encode inputs as well as states).

``benchmark(name)`` returns a cached FSM; ``benchmark_names(subset)``
lists the machines of each experiment.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.fsm.generator import generate_fsm
from repro.fsm.machine import FSM, Transition

# name -> (binary inputs, symbolic values, outputs, states, target products)
_SPECS: Dict[str, Tuple[int, int, int, int, int]] = {
    "bbara": (4, 0, 2, 10, 60),
    "bbsse": (7, 0, 7, 16, 56),
    "bbtas": (2, 0, 2, 6, 24),
    "beecount": (3, 0, 4, 7, 28),
    "cse": (7, 0, 7, 16, 91),
    "dk14": (0, 8, 5, 7, 56),
    "dk15": (0, 8, 5, 4, 32),
    "dk16": (0, 4, 3, 27, 108),
    "dk17": (0, 4, 3, 8, 32),
    "dk27": (0, 2, 2, 7, 14),
    "dk512": (0, 2, 3, 15, 30),
    "dol": (2, 0, 1, 8, 20),
    "donfile": (2, 0, 1, 24, 96),
    "ex1": (9, 0, 19, 20, 138),
    "ex2": (2, 0, 2, 19, 72),
    "ex3": (2, 0, 2, 10, 36),
    "ex5": (2, 0, 2, 9, 32),
    "ex6": (5, 0, 8, 8, 34),
    "iofsm": (6, 0, 4, 10, 20),
    "keyb": (7, 0, 2, 19, 170),
    "mark1": (5, 0, 16, 15, 22),
    "physrec": (12, 0, 7, 11, 38),
    "planet": (7, 0, 19, 48, 115),
    "s1": (8, 0, 6, 20, 107),
    "sand": (11, 0, 9, 32, 184),
    "scf": (27, 0, 56, 121, 166),
    "scud": (7, 0, 6, 8, 86),
    "styr": (9, 0, 10, 30, 166),
    "tav": (4, 0, 4, 4, 49),
    "tbk": (6, 0, 3, 32, 170),
}

# the 30 machines of Table I, ordered by increasing number of states as
# in the paper's summary plots (Tables VIII-X)
PAPER30: List[str] = [
    "dk15", "bbtas", "beecount", "dk14", "dk27", "dk17", "ex6", "scud",
    "shiftreg", "ex5", "bbara", "ex3", "iofsm", "physrec", "train11",
    "dk512", "mark1", "bbsse", "cse", "ex2", "keyb", "ex1", "s1",
    "donfile", "dk16", "styr", "sand", "tbk", "planet", "scf",
]

# the 19 machines of Table V (iohybrid vs Cappuccino/Cream)
TABLE5: List[str] = [
    "bbtas", "cse", "lion", "lion9", "modulo12", "planet", "s1", "sand",
    "shiftreg", "styr", "tav", "train11", "dol", "dk14", "dk15", "dk16",
    "dk17", "dk27", "dk512",
]

# the 24 machines of Table VII (MUSTANG comparison)
TABLE7: List[str] = [
    "dk14", "dk15", "dk16", "ex1", "ex2", "ex3", "bbara", "bbsse",
    "bbtas", "beecount", "cse", "donfile", "keyb", "mark1", "physrec",
    "planet", "s1", "sand", "scf", "scud", "shiftreg", "styr", "tbk",
    "train11",
]

# machines small enough for quick CI-style runs of every experiment
SMALL: List[str] = [
    "lion", "train4", "dk15", "bbtas", "beecount", "dk27", "shiftreg",
    "lion9", "ex5", "ex3", "modulo12", "train11", "dol",
]

# machines whose pure-Python minimization needs reduced espresso effort
LOW_EFFORT: List[str] = ["scf", "tbk", "sand", "styr", "planet", "s1", "keyb",
                         "ex1", "donfile", "dk16"]


def _shiftreg() -> FSM:
    """Exact 3-bit shift register: 8 states, serial in, serial out."""
    states = [f"s{i}" for i in range(8)]
    rows = []
    for i in range(8):
        for x in (0, 1):
            nxt = ((i << 1) | x) & 7
            out = (i >> 2) & 1
            rows.append(Transition(inputs=str(x), present=states[i],
                                   next=states[nxt], outputs=str(out)))
    return FSM("shiftreg", 1, 1, states, rows, reset="s0")


def _modulo12() -> FSM:
    """Exact modulo-12 counter: advance on 1, assert output at wrap."""
    states = [f"s{i}" for i in range(12)]
    rows = []
    for i in range(12):
        rows.append(Transition(inputs="0", present=states[i],
                               next=states[i], outputs="0"))
        nxt = (i + 1) % 12
        rows.append(Transition(inputs="1", present=states[i],
                               next=states[nxt], outputs="1" if nxt == 0 else "0"))
    return FSM("modulo12", 1, 1, states, rows, reset="s0")


def _sensor_counter(name: str, n: int, full: bool) -> FSM:
    """Lion/train-family occupancy counter over two sensors.

    Counts up on input 01, down on 10; output 1 while the count is
    non-zero.  ``full=True`` also specifies the 11 input (trains), while
    the lion machines leave it mostly unspecified (don't care).
    """
    states = [f"st{i}" for i in range(n)]
    rows: List[Transition] = []

    def add(i: int, pat: str, nxt: int, out: str) -> None:
        rows.append(Transition(inputs=pat, present=states[i],
                               next=states[nxt], outputs=out))

    for i in range(n):
        out = "0" if i == 0 else "1"
        add(i, "00", i, out)
        if i + 1 < n:
            add(i, "01", i + 1, "1")
        if i > 0:
            add(i, "10", i - 1, "1" if i > 1 else "0")
        if full and (n <= 4 or i == 0):
            add(i, "11", i, out)
    if not full:
        # one explicit hold row on 11 in the idle state (as in MCNC lion)
        add(0, "11", 0, "0")
    return FSM(name, 2, 1, states, rows, reset=states[0])


_BUILDERS = {
    "shiftreg": _shiftreg,
    "modulo12": _modulo12,
    "lion": lambda: _sensor_counter("lion", 4, full=False),
    "lion9": lambda: _sensor_counter("lion9", 9, full=False),
    "train4": lambda: _sensor_counter("train4", 4, full=True),
    "train11": lambda: _sensor_counter("train11", 11, full=True),
}

_CACHE: Dict[str, FSM] = {}


def benchmark_names(subset: str = "paper30") -> List[str]:
    """Names of the machines in a named experiment subset."""
    subsets = {
        "paper30": PAPER30,
        "table5": TABLE5,
        "table7": TABLE7,
        "small": SMALL,
        "all": sorted(set(PAPER30) | set(TABLE5) | set(_BUILDERS)),
    }
    if subset not in subsets:
        raise ValueError(f"unknown benchmark subset {subset!r}")
    return list(subsets[subset])


def benchmark(name: str) -> FSM:
    """Return the benchmark FSM called *name* (cached)."""
    if name in _CACHE:
        return _CACHE[name]
    if name in _BUILDERS:
        fsm = _BUILDERS[name]()
    elif name in _SPECS:
        ni, sym, no, ns, np_ = _SPECS[name]
        fsm = generate_fsm(name, ni, no, ns, np_, symbolic_values=sym)
    else:
        raise KeyError(f"unknown benchmark {name!r}")
    _CACHE[name] = fsm
    return fsm


def is_low_effort(name: str) -> bool:
    """True when this machine should use reduced minimization effort."""
    return name in LOW_EFFORT


def benchmark_table(subset: str = "paper30") -> List[Dict[str, int]]:
    """Table-I statistics rows for the machines of *subset*."""
    rows = []
    for name in benchmark_names(subset):
        fsm = benchmark(name)
        row = {"name": name}
        row.update(fsm.stats())
        rows.append(row)
    return rows
