"""KISS2 format reader/writer.

Supports the standard directives (``.i .o .p .s .r .e``) plus one
extension: ``.sym v1 v2 ...`` declares a symbolic input variable with
the listed values; each transition row then starts with a symbol value
before the binary input pattern.  Plain KISS2 files round-trip exactly.

Parse failures raise :class:`repro.errors.ParseError` carrying the
1-based line number and the offending token.  The parser tolerates
CRLF line endings, trailing whitespace, and a UTF-8 BOM, and rejects
duplicate or contradictory transition rows (same symbol/input/state
triple appearing twice) explicitly rather than letting them corrupt
the symbolic cover downstream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.fsm.machine import FSM, Transition
from repro.testing import faults


def _directive_int(parts: List[str], lineno: int, line: str) -> int:
    """The integer argument of a ``.i``/``.o`` directive, validated."""
    if len(parts) < 2:
        raise ParseError(f"directive {parts[0]} needs an argument",
                         line=lineno, token=parts[0])
    try:
        return int(parts[1])
    except ValueError:
        raise ParseError(f"directive {parts[0]} needs an integer argument",
                         line=lineno, token=parts[1]) from None


def parse_kiss(text: str, name: str = "fsm") -> FSM:
    """Parse KISS2 text into an :class:`FSM`."""
    faults.trip("parse", machine=name)
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    reset: Optional[str] = None
    symbolic: List[str] = []
    symbolic_out: List[str] = []
    rows: List[Transition] = []
    state_order: List[str] = []
    seen = set()
    # (symbol, inputs, present) -> (next, outputs, out_symbol, lineno),
    # for duplicate/contradiction detection
    row_index: Dict[Tuple, Tuple] = {}

    def note_state(s: str) -> None:
        if s != "*" and s not in seen:
            seen.add(s)
            state_order.append(s)

    for lineno, raw in enumerate(text.lstrip("\ufeff").splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                num_inputs = _directive_int(parts, lineno, line)
            elif directive == ".o":
                num_outputs = _directive_int(parts, lineno, line)
            elif directive == ".r":
                if len(parts) < 2:
                    raise ParseError("directive .r needs a state name",
                                     line=lineno, token=directive)
                reset = parts[1]
            elif directive == ".sym":
                symbolic = parts[1:]
            elif directive == ".symout":
                symbolic_out = parts[1:]
            elif directive in (".p", ".s", ".e", ".ilb", ".ob", ".start_kiss",
                               ".end_kiss"):
                continue  # counts are recomputed; labels ignored
            else:
                raise ParseError(f"unknown KISS directive {directive!r}",
                                 line=lineno, token=directive)
            continue
        parts = line.split()
        osym = None
        if symbolic_out:
            if len(parts) < 2:
                raise ParseError(f"bad KISS row: {line!r}",
                                 line=lineno, token=parts[-1])
            osym = parts[-1]
            parts = parts[:-1]
        if symbolic:
            if len(parts) != 5:
                raise ParseError(
                    f"bad KISS row (expected 5 fields, got {len(parts)})",
                    line=lineno, token=line)
            sym, inp, ps, ns, out = parts
        else:
            if len(parts) != 4:
                raise ParseError(
                    f"bad KISS row (expected 4 fields, got {len(parts)})",
                    line=lineno, token=line)
            inp, ps, ns, out = parts
            sym = None
        if num_inputs == 0 and inp == "-":
            inp = ""  # placeholder used for machines with no binary inputs
        if num_outputs == 0 and out == "-":
            out = ""  # machines whose only outputs are symbolic
        key = (sym, inp, ps)
        payload = (ns, out, osym)
        prior = row_index.get(key)
        if prior is not None:
            kind = ("duplicate" if prior[:3] == payload
                    else "contradictory")
            raise ParseError(
                f"{kind} transition for "
                f"{'/'.join(f for f in (sym, inp or '-', ps) if f)} "
                f"(first declared on line {prior[3]})",
                line=lineno, token=line)
        row_index[key] = payload + (lineno,)
        note_state(ps)
        note_state(ns)
        rows.append(Transition(inputs=inp, present=ps, next=ns, outputs=out,
                               symbol=sym, out_symbol=osym))

    if num_inputs is None or num_outputs is None:
        raise ParseError("KISS text missing .i/.o directives")
    if reset is not None and reset in seen:
        # put the reset state first, as NOVA/SIS do
        state_order.remove(reset)
        state_order.insert(0, reset)
    return FSM(
        name=name,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        states=state_order,
        transitions=rows,
        reset=reset,
        symbolic_input_values=symbolic,
        symbolic_output_values=symbolic_out,
    )


def to_kiss(fsm: FSM) -> str:
    """Serialize an :class:`FSM` back to KISS2 text."""
    lines = [f".i {fsm.num_inputs}", f".o {fsm.num_outputs}",
             f".p {len(fsm.transitions)}", f".s {fsm.num_states}"]
    if fsm.reset is not None:
        lines.append(f".r {fsm.reset}")
    if fsm.has_symbolic_input:
        lines.append(".sym " + " ".join(fsm.symbolic_input_values))
    if fsm.has_symbolic_output:
        lines.append(".symout " + " ".join(fsm.symbolic_output_values))
    for t in fsm.transitions:
        fields = []
        if t.symbol is not None:
            fields.append(t.symbol)
        fields.extend([t.inputs or "-", t.present, t.next, t.outputs or "-"])
        if t.out_symbol is not None:
            fields.append(t.out_symbol)
        lines.append(" ".join(f for f in fields if f))
    lines.append(".e")
    return "\n".join(lines) + "\n"
