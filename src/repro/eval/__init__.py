"""Evaluation: PLA instantiation, area model, multilevel literal counts."""

from repro.eval.area import pla_area
from repro.eval.instantiate import EncodedPLA, evaluate_encoding, instantiate
from repro.eval.multilevel import factored_literals, multilevel_literals

__all__ = [
    "EncodedPLA",
    "instantiate",
    "evaluate_encoding",
    "pla_area",
    "factored_literals",
    "multilevel_literals",
]
