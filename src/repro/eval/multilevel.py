"""Multilevel literal estimation (the paper's Table VII substrate).

The paper feeds each encoded, two-level-minimized machine through the
MIS-II standard script and reports literal counts in factored form.
MIS-II is not available here; we approximate it with the classic
*quick factoring* recursion (repeatedly divide by the most common
literal), which is what SIS prints as "lits(fac)" before kernel-based
restructuring.  The phenomenon Table VII studies — a good two-level
state assignment also gives a good factored-form literal count — is
preserved because both counts are computed from the same minimized
cover.
"""

from __future__ import annotations

from collections import Counter
from typing import FrozenSet, List, Sequence, Tuple

from repro.eval.instantiate import EncodedPLA

Literal = Tuple[int, int]  # (variable index, phase: 0 negative / 1 positive)
CubeLits = FrozenSet[Literal]


def factored_literals(cubes: Sequence[CubeLits]) -> int:
    """Literals in the quick-factored form of a sum of products."""
    cubes = [c for c in set(cubes)]
    if not cubes:
        return 0
    if frozenset() in cubes:
        return 0  # constant-1 term absorbs the function
    if len(cubes) == 1:
        return len(next(iter(cubes)))
    counts = Counter(lit for c in cubes for lit in c)
    lit, freq = counts.most_common(1)[0]
    if freq < 2:
        return sum(len(c) for c in cubes)
    quotient = [c - {lit} for c in cubes if lit in c]
    remainder = [c for c in cubes if lit not in c]
    return 1 + factored_literals(quotient) + factored_literals(remainder)


def pla_output_sops(pla: EncodedPLA) -> List[List[CubeLits]]:
    """Per-output sum-of-products of the minimized encoded cover."""
    fmt = pla.cover.fmt
    out_var = fmt.num_vars - 1
    num_out = fmt.parts[out_var]
    num_in = fmt.num_vars - 1  # binary variables
    sops: List[List[CubeLits]] = [[] for _ in range(num_out)]
    for cube in pla.cover.cubes:
        lits = []
        for v in range(num_in):
            f = fmt.field(cube, v)
            if f == 1:
                lits.append((v, 0))
            elif f == 2:
                lits.append((v, 1))
        cl = frozenset(lits)
        out = fmt.field(cube, out_var)
        for j in range(num_out):
            if (out >> j) & 1:
                sops[j].append(cl)
    return sops


def multilevel_literals(pla: EncodedPLA) -> int:
    """Factored-form literal count over all outputs of the encoded PLA."""
    return sum(factored_literals(sop) for sop in pla_output_sops(pla))
