"""Instantiate an encoding: encoded PLA cover, minimization, final area.

Given state (and optional symbolic-input) codes, the original state
transition table is translated into a binary multi-output cover —
present-state code bits become PLA inputs, next-state code bits join the
outputs — the unused code points are added to the don't-care set, and
the cover is re-minimized with the espresso substrate, exactly as the
paper's evaluation flow (encode, then "running ESPRESSO again to obtain
the final area of the encoded FSM").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.encoding.base import Encoding
from repro.eval.area import pla_area
from repro.fsm.machine import FSM
from repro.logic.cover import Cover
from repro.logic.cube import Format
from repro.logic.espresso import espresso
from repro.logic.urp import complement
from repro.perf.budget import Budget
from repro.testing import faults


@dataclass
class EncodedPLA:
    """The minimized two-level implementation of an encoded FSM."""

    fsm: FSM
    state_bits: int
    input_bits: int  # binary primary inputs + encoded symbolic-input bits
    cover: Cover
    on: Cover
    dc: Cover
    off: Cover
    out_bits: int = 0  # encoded symbolic-output bits

    @property
    def num_cubes(self) -> int:
        return len(self.cover)

    @property
    def num_output_columns(self) -> int:
        return self.fsm.num_outputs + self.out_bits

    @property
    def area(self) -> int:
        return pla_area(self.input_bits, self.state_bits,
                        self.num_output_columns, self.num_cubes)


def _code_fields(code: int, bits: int) -> List[int]:
    """Positional binary fields (01/10) for each bit of *code*."""
    return [2 if (code >> b) & 1 else 1 for b in range(bits)]


def _unused_code_cubes(codes: List[int], bits: int) -> List[List[int]]:
    """Field lists covering the unused code points, via complement."""
    fmt = Format([2] * bits) if bits else None
    if fmt is None:
        return []
    used = Cover(fmt, (fmt.cube_from_fields(_code_fields(c, bits))
                       for c in codes))
    unused = complement(used)
    return [[fmt.field(c, v) for v in range(bits)] for c in unused.cubes]


def instantiate(
    fsm: FSM,
    enc: Encoding,
    symbol_enc: Optional[Encoding] = None,
    out_symbol_enc: Optional[Encoding] = None,
) -> tuple:
    """Encoded (on, dc, off) covers plus layout counts.

    Returns ``(on, dc, off, input_bits, state_bits, out_bits)``.
    """
    if enc.n != fsm.num_states:
        raise ValueError("encoding size does not match the machine")
    if fsm.has_symbolic_input:
        if symbol_enc is None:
            raise ValueError(f"{fsm.name} needs a symbolic-input encoding")
        if symbol_enc.n != len(fsm.symbolic_input_values):
            raise ValueError("symbol encoding size mismatch")
    if fsm.has_symbolic_output:
        if out_symbol_enc is None:
            raise ValueError(f"{fsm.name} needs a symbolic-output encoding")
        if out_symbol_enc.n != len(fsm.symbolic_output_values):
            raise ValueError("output-symbol encoding size mismatch")
    sbits = enc.nbits
    ibits = symbol_enc.nbits if symbol_enc is not None else 0
    obits = out_symbol_enc.nbits if out_symbol_enc is not None else 0
    n_in = fsm.num_inputs
    parts = [2] * (n_in + ibits + sbits) + [sbits + fsm.num_outputs + obits]
    fmt = Format(parts)
    out_var = fmt.num_vars - 1

    on = Cover(fmt)
    dc = Cover(fmt)
    off = Cover(fmt)
    full_state = (1 << sbits) - 1
    for t in fsm.transitions:
        fields = [{"0": 1, "1": 2, "-": 3}[ch] for ch in t.inputs]
        if symbol_enc is not None:
            fields += _code_fields(symbol_enc.code_of(
                fsm.symbol_index(t.symbol)), ibits)
        if t.present == "*":
            fields += [3] * sbits
        else:
            fields += _code_fields(enc.code_of(fsm.state_index(t.present)),
                                   sbits)
        on_out = 0
        dc_out = 0
        off_out = 0
        if t.next == "*":
            dc_out |= full_state
        else:
            ncode = enc.code_of(fsm.state_index(t.next))
            on_out |= ncode
            off_out |= full_state & ~ncode
        for j, ch in enumerate(t.outputs):
            if ch == "1":
                on_out |= 1 << (sbits + j)
            elif ch == "-":
                dc_out |= 1 << (sbits + j)
            else:
                off_out |= 1 << (sbits + j)
        if out_symbol_enc is not None:
            ocode = out_symbol_enc.code_of(
                fsm.out_symbol_index(t.out_symbol))
            base = sbits + fsm.num_outputs
            on_out |= ocode << base
            off_out |= (((1 << obits) - 1) & ~ocode) << base
        if on_out:
            on.append(fmt.cube_from_fields(fields + [on_out]))
        if dc_out:
            dc.append(fmt.cube_from_fields(fields + [dc_out]))
        if off_out:
            off.append(fmt.cube_from_fields(fields + [off_out]))

    # unused state codes (and unused symbol codes) are global don't cares
    all_outputs = (1 << (sbits + fsm.num_outputs + obits)) - 1
    for ufields in _unused_code_cubes(enc.used_codes(), sbits):
        fields = [3] * (n_in + ibits) + ufields + [all_outputs]
        dc.append(fmt.cube_from_fields(fields))
    if symbol_enc is not None:
        for ufields in _unused_code_cubes(symbol_enc.used_codes(), ibits):
            fields = [3] * n_in + ufields + [3] * sbits + [all_outputs]
            dc.append(fmt.cube_from_fields(fields))
    return on, dc, off, n_in + ibits, sbits, obits


def evaluate_encoding(
    fsm: FSM,
    enc: Encoding,
    symbol_enc: Optional[Encoding] = None,
    out_symbol_enc: Optional[Encoding] = None,
    effort: str = "full",
    minimize: bool = True,
    budget: Optional[Budget] = None,
) -> EncodedPLA:
    """Encode, re-minimize, and measure the final PLA.

    ``minimize=False`` skips the espresso pass and reports the raw
    encoded on-cover — a valid (just larger) implementation, used by
    the driver as the degraded path when re-minimization fails.
    """
    on, dc, off, input_bits, state_bits, out_bits = instantiate(
        fsm, enc, symbol_enc, out_symbol_enc)
    if minimize:
        faults.trip("minimize", machine=fsm.name)
        minimized = espresso(on, dc=dc, off=off if len(off) else None,
                             effort=effort, budget=budget)
    else:
        minimized = on.copy()
    return EncodedPLA(
        fsm=fsm,
        state_bits=state_bits,
        input_bits=input_bits,
        cover=minimized,
        on=on,
        dc=dc,
        off=off,
        out_bits=out_bits,
    )
