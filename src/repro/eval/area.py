"""The PLA area model of the paper's tables.

``area = (2*(#inputs + #bits) + #bits + #outputs) * #cubes``

where ``#inputs`` counts the binary PLA inputs other than the state
lines (primary inputs plus encoded symbolic-input bits), ``#bits`` is
the state code length, and ``#outputs`` the number of primary outputs.
Every input column contributes two PLA columns (true and complemented
lines); every output column one.
"""

from __future__ import annotations


def pla_area(num_inputs: int, state_bits: int, num_outputs: int,
             num_cubes: int) -> int:
    """Area of a PLA implementing the encoded FSM."""
    return (2 * (num_inputs + state_bits) + state_bits + num_outputs) \
        * num_cubes
