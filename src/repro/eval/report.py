"""Report writers: render experiment rows as markdown or CSV.

The benchmark harness stores rows as plain dicts (see
:mod:`repro.eval.tables`); these helpers turn them into the formats
EXPERIMENTS.md and external tooling consume.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Optional, Sequence


def to_markdown(rows: Sequence[Dict], title: str = "",
                float_digits: int = 2) -> str:
    """GitHub-flavoured markdown table of the rows."""
    if not rows:
        return f"**{title}**\n\n(no rows)\n" if title else "(no rows)\n"
    keys = list(rows[0].keys())

    def cell(value) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(keys) + " |")
    lines.append("|" + "|".join("---" for _ in keys) + "|")
    for row in rows:
        lines.append("| " + " | ".join(cell(row.get(k)) for k in keys) + " |")
    return "\n".join(lines) + "\n"


def to_csv(rows: Sequence[Dict]) -> str:
    """CSV text of the rows (header from the first row's keys)."""
    if not rows:
        return ""
    keys = list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=keys, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({k: ("" if row.get(k) is None else row.get(k))
                         for k in keys})
    return buf.getvalue()


def ratio_summary(rows: Sequence[Dict], num_key: str, den_key: str,
                  label: Optional[str] = None) -> str:
    """One-line total-ratio summary, as the paper's TOTAL/% rows."""
    usable = [r for r in rows
              if r.get(num_key) is not None and r.get(den_key)]
    if not usable:
        return f"{label or num_key}/{den_key}: n/a"
    num = sum(r[num_key] for r in usable)
    den = sum(r[den_key] for r in usable)
    pct = 100.0 * num / den
    return (f"{label or num_key + '/' + den_key}: {num}/{den} = "
            f"{pct:.0f}% over {len(usable)} machines")
