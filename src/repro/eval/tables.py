"""Experiment harness: one function per table/figure of the paper.

Every benchmark under ``benchmarks/`` calls into this module, so the
exact numbers behind EXPERIMENTS.md can also be regenerated from Python
or the ``nova`` CLI.  Rows are plain dicts (easy to print and assert
on); formatting lives in :func:`format_table`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.baselines.mustang import MUSTANG_OPTIONS
from repro.encoding.nova import NovaResult, encode_fsm
from repro.eval.multilevel import multilevel_literals
from repro.fsm.benchmarks import benchmark, benchmark_names, is_low_effort
from repro.fsm.machine import minimum_code_length

# Table V's comparison column: Cappuccino/Cream is not available, so the
# paper's published numbers are kept as the reference (DESIGN.md §5.3).
# Values are (#bits, #cubes, area); a few area digits are reconstructed
# from the row data where the scan is illegible.
CAPPUCCINO = {
    "bbtas": (4, 11, 198),
    "cse": (8, 49, 2205),
    "lion": (2, 6, 66),
    "lion9": (5, 10, 200),
    "modulo12": (7, 17, 408),
    "planet": (10, 89, 5607),
    "s1": (7, 68, 2924),
    "sand": (9, 107, 6206),
    "shiftreg": (4, 14, 210),
    "styr": (12, 103, 6592),
    "tav": (3, 11, 231),
    "train11": (6, 10, 230),
    "dol": (4, 8, 136),
    "dk14": (5, 23, 598),
    "dk15": (4, 15, 345),
    "dk16": (11, 49, 1963),
    "dk17": (4, 17, 323),
    "dk27": (3, 9, 120),
    "dk512": (7, 22, 573),
}


def _effort(name: str) -> str:
    return "low" if is_low_effort(name) else "full"


def run(name: str, algorithm: str, **kwargs) -> NovaResult:
    """Run one algorithm on one benchmark with the tuned effort level."""
    fsm = benchmark(name)
    return encode_fsm(fsm, algorithm, effort=_effort(name), **kwargs)


def random_columns(
    name: str,
    trials: Optional[int] = None,
    seed: int = 1989,
) -> Dict[str, float]:
    """Best and average area over random assignments (Tables III/IV).

    The paper uses #states + #symbolic-inputs trials; large machines cap
    at 5 trials by default to keep the pure-Python run tractable (pass
    ``trials`` explicitly for the full paper protocol).
    """
    fsm = benchmark(name)
    paper_trials = fsm.num_states + len(fsm.symbolic_input_values)
    if trials is None:
        trials = paper_trials if fsm.num_states <= 12 else min(paper_trials, 5)
    # one derived integer seed per trial (not a shared Random instance)
    # so every run is a pure function of its cache fingerprint
    seeds = random.Random(seed).sample(range(1 << 30), trials)
    areas = []
    for s in seeds:
        r = encode_fsm(fsm, "random", effort=_effort(name), seed=s)
        areas.append(r.area)
    return {"best": min(areas), "avg": round(sum(areas) / len(areas), 1),
            "trials": trials}


# ----------------------------------------------------------------------
# tables
# ----------------------------------------------------------------------
def table1_rows(subset: str = "paper30") -> List[Dict]:
    """Table I: benchmark statistics."""
    rows = []
    for name in benchmark_names(subset):
        fsm = benchmark(name)
        row = {"example": name}
        row.update(fsm.stats())
        rows.append(row)
    return rows


def table2_row(name: str, include_iexact: bool = True) -> Dict:
    """Table II: iexact vs ihybrid vs igreedy vs 1-hot."""
    row: Dict = {"example": name}
    if include_iexact:
        try:
            r = run(name, "iexact")
            row.update(iexact_bits=r.bits, iexact_cubes=r.cubes,
                       iexact_area=r.area)
        except RuntimeError:
            row.update(iexact_bits=None, iexact_cubes=None, iexact_area=None)
    for alg in ("ihybrid", "igreedy"):
        r = run(name, alg)
        row[f"{alg}_bits"] = r.bits
        row[f"{alg}_cubes"] = r.cubes
        row[f"{alg}_area"] = r.area
    onehot = run(name, "onehot", evaluate=False)
    row["onehot_cubes"] = onehot.cubes
    return row


def table3_row(name: str, trials: Optional[int] = None) -> Dict:
    """Table III: best of ihybrid/igreedy vs KISS vs random."""
    row: Dict = {"example": name}
    results = {alg: run(name, alg) for alg in ("ihybrid", "igreedy")}
    best = min(results.values(), key=lambda r: r.area)
    row.update(nova_alg=best.algorithm, nova_bits=best.bits,
               nova_cubes=best.cubes, nova_area=best.area)
    kiss = run(name, "kiss")
    row.update(kiss_bits=kiss.bits, kiss_cubes=kiss.cubes,
               kiss_area=kiss.area)
    rnd = random_columns(name, trials=trials)
    row.update(random_best=rnd["best"], random_avg=rnd["avg"])
    return row


def table4_row(name: str, trials: Optional[int] = None) -> Dict:
    """Table IV: iohybrid vs ihybrid/igreedy vs best-of-NOVA vs random."""
    row: Dict = {"example": name}
    io = run(name, "iohybrid")
    row.update(iohybrid_bits=io.bits, iohybrid_cubes=io.cubes,
               iohybrid_area=io.area)
    inputs_only = min((run(name, a) for a in ("ihybrid", "igreedy")),
                      key=lambda r: r.area)
    row.update(ih_bits=inputs_only.bits, ih_cubes=inputs_only.cubes,
               ih_area=inputs_only.area)
    best = min((io, inputs_only), key=lambda r: r.area)
    row.update(nova_bits=best.bits, nova_cubes=best.cubes,
               nova_area=best.area)
    rnd = random_columns(name, trials=trials)
    row.update(random_best=rnd["best"], random_avg=rnd["avg"])
    return row


def table5_row(name: str) -> Dict:
    """Table V: iohybrid vs the published Cappuccino/Cream numbers."""
    io = run(name, "iohybrid")
    cap = CAPPUCCINO[name]
    return {
        "example": name,
        "iohybrid_bits": io.bits,
        "iohybrid_cubes": io.cubes,
        "iohybrid_area": io.area,
        "cappuccino_bits": cap[0],
        "cappuccino_cubes": cap[1],
        "cappuccino_area": cap[2],
    }


def table6_row(name: str) -> Dict:
    """Table VI: ihybrid statistics (wsat, wunsat, clength, time)."""
    from repro.constraints.input_constraints import extract_input_constraints
    from repro.encoding.ihybrid import HybridStats, ihybrid_code
    from repro.fsm.symbolic_cover import build_symbolic_cover
    import time

    fsm = benchmark(name)
    t0 = time.perf_counter()
    sc = build_symbolic_cover(fsm)
    extraction = extract_input_constraints(sc, effort=_effort(name))
    cs = extraction.state_constraints
    stats = HybridStats()
    # full satisfaction run: how long a code is needed for all constraints
    ihybrid_code(cs, nbits=cs.n, stats=stats)
    seconds = time.perf_counter() - t0
    return {
        "example": name,
        "wsat": stats.satisfied_weight,
        "wunsat": stats.unsatisfied_weight,
        "clength": stats.final_bits,
        "min_clength": minimum_code_length(cs.n),
        "time": round(seconds, 2),
    }


def table7_row(name: str, trials: Optional[int] = None) -> Dict:
    """Table VII: MUSTANG (best of -p/-n/-pt/-nt) vs NOVA, cubes + literals."""
    fsm = benchmark(name)
    effort = _effort(name)
    mustang_runs = [
        encode_fsm(fsm, "mustang", effort=effort, mustang_option=opt)
        for opt in MUSTANG_OPTIONS
    ]
    m_cubes = min(r.cubes for r in mustang_runs)
    m_lits = min(multilevel_literals(r.pla) for r in mustang_runs)
    nova = min((run(name, a) for a in ("ihybrid", "igreedy")),
               key=lambda r: r.cubes)
    n_lits = multilevel_literals(nova.pla)
    paper_trials = fsm.num_states
    if trials is None:
        trials = paper_trials if fsm.num_states <= 12 else min(paper_trials, 5)
    seeds = random.Random(1989).sample(range(1 << 30), trials)
    rand_lits = []
    for s in seeds:
        r = encode_fsm(fsm, "random", effort=effort, seed=s)
        rand_lits.append(multilevel_literals(r.pla))
    return {
        "example": name,
        "mustang_cubes": m_cubes,
        "nova_cubes": nova.cubes,
        "mustang_lits": m_lits,
        "nova_lits": n_lits,
        "random_lits": min(rand_lits),
    }


# ----------------------------------------------------------------------
# figures (the ratio plots of Tables VIII / IX / X)
# ----------------------------------------------------------------------
def ratio_series(rows: Sequence[Dict], num_key: str, den_key: str) -> List:
    """y-values of a paper-style ratio plot, in row order."""
    out = []
    for row in rows:
        num, den = row.get(num_key), row.get(den_key)
        out.append(round(num / den, 3) if num and den else None)
    return out


# ----------------------------------------------------------------------
# pretty-printing
# ----------------------------------------------------------------------
def format_table(rows: Sequence[Dict], title: str = "") -> str:
    """Fixed-width text rendering of a list of row dicts."""
    if not rows:
        return f"{title}\n(no rows)"
    keys = list(rows[0].keys())
    widths = {k: max(len(str(k)), *(len(str(r.get(k, ""))) for r in rows))
              for k in keys}
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(k).ljust(widths[k]) for k in keys))
    for r in rows:
        lines.append("  ".join(str(r.get(k, "-")).ljust(widths[k])
                               for k in keys))
    return "\n".join(lines)


def totals(rows: Sequence[Dict], keys: Sequence[str]) -> Dict[str, float]:
    """Column totals over rows where every requested key is present."""
    out: Dict[str, float] = {}
    usable = [r for r in rows if all(r.get(k) is not None for k in keys)]
    for k in keys:
        out[k] = sum(r[k] for r in usable)
    return out
