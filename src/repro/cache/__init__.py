"""Content-addressed result cache for the encode pipeline.

The pipeline is deterministic for a fixed (machine, options, version)
tuple, so whole-pipeline results can be memoized under one SHA-256
fingerprint (:mod:`repro.cache.fingerprint`).  Two tiers back the
lookup (:mod:`repro.cache.store`): an in-process LRU for loops that
re-encode the same machine, and an on-disk blob store shared by every
process on the host — including the batch runner's spawned workers.

Policy resolution
-----------------
:func:`get_cache` maps an :class:`~repro.encoding.options.EncodeOptions`
``cache`` policy to a live cache (or ``None``):

* ``"off"`` — no cache at all;
* ``"memory"`` — the in-process LRU only, nothing touches disk;
* ``"on"`` — both tiers, rooted at :func:`cache_dir`;
* ``"auto"`` (the default) — follows the environment: ``NOVA_CACHE``
  set to ``0``/``off``/``false``/``no`` disables, ``memory`` keeps the
  LRU only, anything else (including unset) enables both tiers.

Configuration
-------------
Everything environmental routes through :mod:`repro.config` (the
unified :class:`~repro.config.RuntimeConfig`): the ``cache`` policy
consulted by ``auto``, the disk-tier root (default ``~/.cache/nova``)
and the prune budget (default 256 MiB).  The legacy ``NOVA_CACHE`` /
``NOVA_CACHE_DIR`` / ``NOVA_CACHE_MAX_BYTES`` variables keep working
through the config module's deprecation shim; prefer a ``$NOVA_CONFIG``
file or :func:`repro.config.config_scope`.

The module-level :func:`cache_info` / :func:`cache_clear` /
:func:`cache_prune` back both the ``nova cache`` CLI and the
:mod:`repro.api` facade.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple

from repro import config as config_mod

from repro.cache.codec import (
    PAYLOAD_VERSION,
    CacheDecodeError,
    decode_result,
    encode_result,
)
from repro.cache.fingerprint import (
    FINGERPRINT_SCHEMA,
    canonical_fsm,
    canonical_options,
    fingerprint,
)
from repro.cache.store import (
    DEFAULT_MAX_BYTES,
    DEFAULT_MEMORY_ENTRIES,
    DiskStore,
    EncodeCache,
    MemoryLRU,
)

__all__ = [
    "CacheDecodeError",
    "DiskStore",
    "EncodeCache",
    "MemoryLRU",
    "FINGERPRINT_SCHEMA",
    "PAYLOAD_VERSION",
    "cache_clear",
    "cache_dir",
    "cache_info",
    "cache_prune",
    "check_environment",
    "canonical_fsm",
    "canonical_options",
    "decode_result",
    "encode_result",
    "fingerprint",
    "get_cache",
    "reset",
    "resolve_policy",
]

def cache_dir() -> Path:
    """The disk-tier root from the runtime config (``~/.cache/nova``)."""
    return config_mod.cache_dir()


def _max_bytes() -> int:
    return config_mod.cache_max_bytes()


def resolve_policy(policy: str = "auto") -> str:
    """Collapse ``auto`` against the runtime config; returns on/off/memory.

    Thin wrapper over :func:`repro.config.cache_policy` — the single
    choke point where an unrecognized value (a typo'd ``NOVA_CACHE``, a
    bad ``$NOVA_CONFIG`` key) raises ``ValueError`` instead of silently
    resolving to the default: a user who exported ``NOVA_CACHE=of``
    (or ``disk``, or ``tru``) meant *something*, and running with the
    wrong cache policy would quietly change costs — or, for
    ``off``-intended values, quietly reuse stale results.  Long-lived
    entry points (``nova serve``) validate at startup via
    :func:`check_environment` so the error surfaces before the first
    request.
    """
    if policy != "auto":
        return policy
    return config_mod.cache_policy()


def check_environment() -> str:
    """Validate the whole runtime configuration eagerly; returns the policy.

    Thin wrapper over :func:`repro.config.get_config`, which parses
    every field of every layer (environment, ``$NOVA_CONFIG`` file,
    active scopes); services call this at startup so a typo'd
    ``NOVA_CACHE`` (or a non-integer ``NOVA_CACHE_MAX_BYTES``) fails
    the boot, not the hundredth request.
    """
    return config_mod.get_config().cache


# One live cache per (policy, root) so every encode_fsm call in a
# process shares the same memory tier and hit/miss counters.  The disk
# tier holds no open handles, so instances are cheap to keep around
# even when NOVA_CACHE_DIR changes mid-process (tests do this).
_CACHES: Dict[Tuple[str, Optional[str]], EncodeCache] = {}


def get_cache(policy: str = "auto") -> Optional[EncodeCache]:
    """The shared :class:`EncodeCache` for *policy*, or ``None`` (off)."""
    effective = resolve_policy(policy)
    if effective == "off":
        return None
    if effective == "memory":
        key = ("memory", None)
        if key not in _CACHES:
            _CACHES[key] = EncodeCache(disk=None)
        return _CACHES[key]
    root = cache_dir()
    key = ("on", str(root))
    cache = _CACHES.get(key)
    if cache is None:
        cache = EncodeCache(DiskStore(root, max_bytes=_max_bytes()))
        _CACHES[key] = cache
    elif cache.disk is not None:
        cache.disk.max_bytes = _max_bytes()
    return cache


def _cache_on() -> EncodeCache:
    """The always-on cache the module-level controls operate on."""
    cache = get_cache("on")
    assert cache is not None  # policy "on" never resolves to None
    return cache


def reset() -> None:
    """Drop every live cache instance (counters and memory tiers).

    Test isolation hook: nothing on disk is touched, but the next
    :func:`get_cache` re-reads the environment and starts cold.
    """
    _CACHES.clear()


# ----------------------------------------------------------------------
# module-level controls (the ``nova cache`` CLI and repro.api facade)
# ----------------------------------------------------------------------
def cache_info() -> Dict:
    """Counters and disk usage of the two-tier cache, JSON-safe.

    Disk-tier fields (``dir``/``entries``/``bytes``/``max_bytes``) are
    flattened to the top level so ``nova cache info`` output is a single
    simple JSON object.
    """
    cache = _cache_on()
    out = cache.info()
    disk = out.pop("disk", None) or {}
    out.update(disk)
    return out


def cache_clear() -> Dict:
    """Empty both tiers; returns ``{"removed": N}`` (disk blobs)."""
    cache = _cache_on()
    return {"removed": cache.clear()["disk_removed"]}


def cache_prune(max_bytes: Optional[int] = None) -> Dict:
    """Prune the disk tier to *max_bytes* (default: the configured cap)."""
    cache = _cache_on()
    if cache.disk is None:  # pragma: no cover - "on" always has a disk
        return {"removed": 0, "removed_bytes": 0, "bytes": 0}
    return cache.disk.prune(max_bytes)
