"""The two cache tiers: an in-process LRU over an on-disk blob store.

**Memory tier** — a bounded ``OrderedDict`` holding decoded-ready
payload dicts.  It exists because a sweep or search loop re-encodes the
same machine many times within one process; a memory hit costs one dict
lookup and zero I/O.

**Disk tier** — one JSON blob per fingerprint under
``$NOVA_CACHE_DIR`` (default ``~/.cache/nova``), sharded by the first
two hex digits.  The store must stay correct under the batch runner's
concurrent spawn workers, so it follows the same discipline as the
PR 3 journal:

* *writes* go to a unique temp file in the destination directory, are
  fsync'd, then published with ``os.replace`` — readers observe either
  the old blob, the new blob, or nothing, never a torn file.  Two
  workers racing on one key both write valid blobs for the same
  fingerprint; last-writer-wins is harmless because the content is
  identical by construction.
* *reads* tolerate everything: a missing file is a miss, an unreadable
  or unparseable file is a miss that additionally **quarantines** the
  blob (renamed to ``*.corrupt``) so it cannot waste a parse on every
  subsequent lookup and remains on disk for inspection.

The disk tier is size-bounded: when the shard tree exceeds
``max_bytes`` (``$NOVA_CACHE_MAX_BYTES``, default 256 MiB), a prune
pass deletes blobs oldest-mtime-first until under budget.  A prune is
triggered opportunistically every :data:`PRUNE_EVERY` writes, and on
demand via ``nova cache prune``.
"""

from __future__ import annotations

from collections import OrderedDict
import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro import perf
from repro.config import DEFAULT_CACHE_MAX_BYTES as DEFAULT_MAX_BYTES

DEFAULT_MEMORY_ENTRIES = 128
PRUNE_EVERY = 64
BLOB_SUFFIX = ".json"
QUARANTINE_SUFFIX = ".corrupt"


class MemoryLRU:
    """Bounded least-recently-used map of fingerprint -> payload dict."""

    def __init__(self, max_entries: int = DEFAULT_MEMORY_ENTRIES) -> None:
        self.max_entries = max(1, int(max_entries))
        self._data: "OrderedDict[str, Dict]" = OrderedDict()

    def get(self, key: str) -> Optional[Dict]:
        payload = self._data.get(key)
        if payload is not None:
            self._data.move_to_end(key)
        return payload

    def put(self, key: str, payload: Dict) -> None:
        self._data[key] = payload
        self._data.move_to_end(key)
        while len(self._data) > self.max_entries:
            self._data.popitem(last=False)

    def discard(self, key: str) -> None:
        self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


class DiskStore:
    """Sharded one-blob-per-key JSON store with atomic publication."""

    def __init__(self, root: Path, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self._puts = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{BLOB_SUFFIX}"

    # ------------------------------------------------------------------
    def get(self, key: str) -> Tuple[Optional[Dict], int]:
        """(payload, bytes read); corrupt blobs quarantine and miss."""
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None, 0
        try:
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("payload is not an object")
        except (ValueError, UnicodeDecodeError):
            self.quarantine(key)
            return None, 0
        return payload, len(raw)

    def put(self, key: str, payload: Dict) -> int:
        """Atomically publish *payload* under *key*; return bytes written.

        Any OSError (full disk, permissions, a vanished cache dir) is
        swallowed: the cache is an accelerator, never a correctness
        dependency, so a failed fill silently degrades to recompute.
        """
        path = self.path_for(key)
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return 0
        self._puts += 1
        if self._puts % PRUNE_EVERY == 0:
            self.prune()
        return len(data)

    def discard(self, key: str) -> None:
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    def quarantine(self, key: str) -> None:
        """Move a corrupt blob aside (best effort, never raises)."""
        path = self.path_for(key)
        try:
            os.replace(path, path.with_suffix(QUARANTINE_SUFFIX))
        except OSError:
            pass

    # ------------------------------------------------------------------
    def _blobs(self) -> Iterator[Tuple[Path, os.stat_result]]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob(f"*{BLOB_SUFFIX}")):
                try:
                    yield path, path.stat()
                except OSError:
                    continue

    def info(self) -> Dict:
        entries = 0
        total = 0
        for _, st in self._blobs():
            entries += 1
            total += st.st_size
        return {"dir": str(self.root), "entries": entries, "bytes": total,
                "max_bytes": self.max_bytes}

    def prune(self, max_bytes: Optional[int] = None) -> Dict:
        """Delete oldest blobs until the store fits in *max_bytes*."""
        budget = self.max_bytes if max_bytes is None else int(max_bytes)
        blobs = sorted(self._blobs(), key=lambda e: (e[1].st_mtime, e[0]))
        total = sum(st.st_size for _, st in blobs)
        removed = removed_bytes = 0
        for path, st in blobs:
            if total <= budget:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= st.st_size
            removed += 1
            removed_bytes += st.st_size
        return {"removed": removed, "removed_bytes": removed_bytes,
                "bytes": total}

    def clear(self) -> int:
        """Remove every blob (and quarantined file); return count removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for shard in list(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in list(shard.iterdir()):
                if path.suffix in (BLOB_SUFFIX, QUARANTINE_SUFFIX):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed


class EncodeCache:
    """Memory LRU in front of an optional disk store, with counters.

    ``hits``/``misses``/``stores`` are process-lifetime counters for
    ``cache_info()``; every event is also mirrored into the active
    :mod:`repro.perf` collector (``cache_hit``/``cache_miss``/
    ``cache_bytes``) so ``--stats`` and the bench JSON rows surface
    cache behaviour alongside the substrate counters.
    """

    def __init__(self, disk: Optional[DiskStore],
                 memory_entries: int = DEFAULT_MEMORY_ENTRIES) -> None:
        self.memory = MemoryLRU(memory_entries)
        self.disk = disk
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    def _count(self, hit: bool, nbytes: int = 0) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        stats = perf.STATS
        if stats is not None:
            if hit:
                stats.cache_hit += 1
            else:
                stats.cache_miss += 1
            stats.cache_bytes += nbytes

    def get(self, key: str) -> Optional[Dict]:
        payload = self.memory.get(key)
        if payload is not None:
            self._count(hit=True)
            return payload
        if self.disk is not None:
            payload, nbytes = self.disk.get(key)
            if payload is not None:
                self.bytes_read += nbytes
                self.memory.put(key, payload)
                self._count(hit=True, nbytes=nbytes)
                return payload
        self._count(hit=False)
        return None

    def put(self, key: str, payload: Dict) -> None:
        self.memory.put(key, payload)
        nbytes = 0
        if self.disk is not None:
            nbytes = self.disk.put(key, payload)
            self.bytes_written += nbytes
        self.stores += 1
        stats = perf.STATS
        if stats is not None:
            stats.cache_bytes += nbytes

    def invalidate(self, key: str) -> None:
        """Drop *key* from both tiers (used after a decode failure)."""
        self.memory.discard(key)
        if self.disk is not None:
            self.disk.quarantine(key)

    def clear(self) -> Dict:
        self.memory.clear()
        removed = self.disk.clear() if self.disk is not None else 0
        return {"disk_removed": removed}

    def info(self) -> Dict:
        out: Dict = {
            "memory_entries": len(self.memory),
            "memory_max_entries": self.memory.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }
        out["disk"] = self.disk.info() if self.disk is not None else None
        return out
