"""Content-addressed fingerprints for whole-pipeline encode results.

The encode pipeline is deterministic for a fixed (machine, options,
code version) tuple, so one SHA-256 over a canonical rendering of all
three is a sound cache key:

* **machine** — a stable text serialization of the FSM: name, I/O
  widths, reset state, symbolic value lists, and every transition row
  with its don't-care patterns, in table order.  Transition order is
  *kept*, not sorted: KISS semantics resolve overlapping rows by first
  match, so two tables with the same rows in a different order are not
  interchangeable machines.
* **options** — every :class:`~repro.encoding.options.EncodeOptions`
  field that can influence the result, including the RNG ``seed``
  (DESIGN.md §6.7: the ``random`` baseline is a pure function of its
  seed, so the seed is the only thing standing between one cache key
  and many distinct results).  The ``cache`` policy field is excluded —
  it changes where a result comes from, never what it is.
* **version** — ``repro.__version__``.  Any release may change
  minimization heuristics or tie-breaks, so a version bump invalidates
  every prior entry by construction; no migration logic needed.
"""

from __future__ import annotations

import hashlib
import json

from repro import _version
from repro.encoding.options import EncodeOptions
from repro.fsm.machine import FSM

#: Bump when the canonical rendering itself changes shape.
FINGERPRINT_SCHEMA = 1


def canonical_fsm(fsm: FSM) -> str:
    """Deterministic text rendering of everything semantic in *fsm*."""
    lines = [
        f"name {fsm.name}",
        f"i {fsm.num_inputs}",
        f"o {fsm.num_outputs}",
        f"r {fsm.reset if fsm.reset is not None else '-'}",
        "states " + " ".join(fsm.states),
        "sym " + " ".join(fsm.symbolic_input_values),
        "symout " + " ".join(fsm.symbolic_output_values),
    ]
    for t in fsm.transitions:
        lines.append(" ".join((
            t.inputs or "-",
            t.symbol if t.symbol is not None else ".",
            t.present,
            t.next,
            t.outputs or "-",
            t.out_symbol if t.out_symbol is not None else ".",
        )))
    return "\n".join(lines)


def canonical_options(options: EncodeOptions) -> str:
    """Deterministic text rendering of the result-relevant options."""
    return json.dumps(dict(options.fingerprint_fields()), sort_keys=True,
                      separators=(",", ":"))


def fingerprint(fsm: FSM, options: EncodeOptions) -> str:
    """The cache key: hex SHA-256 of machine + options + version."""
    payload = "\n\x00".join((
        f"nova-encode-cache/{FINGERPRINT_SCHEMA}",
        _version.__version__,  # looked up at call time: patchable salt
        canonical_options(options),
        canonical_fsm(fsm),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
