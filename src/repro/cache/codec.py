"""Lossless JSON round-trip for :class:`~repro.encoding.nova.NovaResult`.

A cache hit must be indistinguishable from recomputation, so the codec
serializes *everything* the pipeline produced — the exact encodings,
the table metrics, the full :class:`RunReport`, and the minimized
:class:`EncodedPLA` with all four covers (cubes are arbitrary-precision
ints; they travel as hex strings).  The FSM itself is *not* stored:
the fingerprint already guarantees the caller's machine is the one the
payload was computed from, so rehydration grafts the payload onto the
caller's ``FSM`` object.

Decoding is defensive: any malformed payload raises
:class:`CacheDecodeError`, which the cache layer treats as a miss (and
quarantines the on-disk blob) — a corrupt cache can cost a
recomputation, never a wrong answer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.encoding.base import Encoding
from repro.encoding.nova import NovaResult, RunReport
from repro.eval.instantiate import EncodedPLA
from repro.fsm.machine import FSM
from repro.logic.cover import Cover
from repro.logic.cube import Format

#: Bump when the payload layout changes; readers reject other versions.
PAYLOAD_VERSION = 1


class CacheDecodeError(ValueError):
    """The payload does not decode to a result for this machine."""


# ----------------------------------------------------------------------
# encode
# ----------------------------------------------------------------------
def _enc_encoding(e: Optional[Encoding]) -> Optional[Dict]:
    return None if e is None else {"nbits": e.nbits, "codes": list(e.codes)}


def _enc_cover(c: Cover) -> List[str]:
    return [format(cube, "x") for cube in c.cubes]


def _enc_pla(pla: Optional[EncodedPLA]) -> Optional[Dict]:
    if pla is None:
        return None
    return {
        "fmt": list(pla.cover.fmt.parts),
        "state_bits": pla.state_bits,
        "input_bits": pla.input_bits,
        "out_bits": pla.out_bits,
        "cover": _enc_cover(pla.cover),
        "on": _enc_cover(pla.on),
        "dc": _enc_cover(pla.dc),
        "off": _enc_cover(pla.off),
    }


def encode_result(result: NovaResult) -> Dict:
    """The JSON-safe cache payload for *result*."""
    return {
        "v": PAYLOAD_VERSION,
        "machine": result.fsm.name,
        "algorithm": result.algorithm,
        "state_encoding": _enc_encoding(result.state_encoding),
        "symbol_encoding": _enc_encoding(result.symbol_encoding),
        "out_symbol_encoding": _enc_encoding(result.out_symbol_encoding),
        "pla": _enc_pla(result.pla),
        "cubes": result.cubes,
        "area": result.area,
        "seconds": round(result.seconds, 6),
        "satisfied_weight": result.satisfied_weight,
        "unsatisfied_weight": result.unsatisfied_weight,
        "mv_cover_size": result.mv_cover_size,
        "report": None if result.report is None else result.report.to_dict(),
    }


# ----------------------------------------------------------------------
# decode
# ----------------------------------------------------------------------
def _dec_encoding(d: Optional[Dict]) -> Optional[Encoding]:
    if d is None:
        return None
    return Encoding(int(d["nbits"]), [int(c) for c in d["codes"]])


def _dec_cover(fmt: Format, cubes: List[str]) -> Cover:
    out = Cover(fmt)
    out.cubes = [int(c, 16) for c in cubes]
    return out


def _dec_pla(fsm: FSM, d: Optional[Dict]) -> Optional[EncodedPLA]:
    if d is None:
        return None
    fmt = Format([int(p) for p in d["fmt"]])
    return EncodedPLA(
        fsm=fsm,
        state_bits=int(d["state_bits"]),
        input_bits=int(d["input_bits"]),
        out_bits=int(d["out_bits"]),
        cover=_dec_cover(fmt, d["cover"]),
        on=_dec_cover(fmt, d["on"]),
        dc=_dec_cover(fmt, d["dc"]),
        off=_dec_cover(fmt, d["off"]),
    )


def decode_result(fsm: FSM, payload: Dict) -> NovaResult:
    """Rebuild the full :class:`NovaResult` for *fsm* from *payload*.

    Fresh objects are constructed on every call, so rehydrated results
    never alias mutable state across callers.
    """
    try:
        if payload.get("v") != PAYLOAD_VERSION:
            raise CacheDecodeError(
                f"payload version {payload.get('v')!r} != {PAYLOAD_VERSION}")
        if payload.get("machine") != fsm.name:
            raise CacheDecodeError(
                f"payload is for machine {payload.get('machine')!r}, "
                f"not {fsm.name!r}")
        state_enc = _dec_encoding(payload["state_encoding"])
        if state_enc is None or state_enc.n != fsm.num_states:
            raise CacheDecodeError("state encoding does not fit the machine")
        report_d = payload.get("report")
        return NovaResult(
            fsm=fsm,
            algorithm=payload["algorithm"],
            state_encoding=state_enc,
            symbol_encoding=_dec_encoding(payload["symbol_encoding"]),
            out_symbol_encoding=_dec_encoding(payload["out_symbol_encoding"]),
            pla=_dec_pla(fsm, payload.get("pla")),
            cubes=int(payload["cubes"]),
            area=int(payload["area"]),
            seconds=float(payload.get("seconds", 0.0)),
            satisfied_weight=int(payload.get("satisfied_weight", 0)),
            unsatisfied_weight=int(payload.get("unsatisfied_weight", 0)),
            mv_cover_size=int(payload.get("mv_cover_size", 0)),
            report=(None if report_d is None
                    else RunReport.from_dict(report_d)),
        )
    except CacheDecodeError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise CacheDecodeError(f"malformed cache payload: {exc}") from exc
