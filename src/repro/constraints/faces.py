"""Faces (subcubes) of the Boolean encoding k-cube.

A face is a pair of bitmasks ``(care, val)`` over ``k`` positions: the
positions set in ``care`` are fixed to the corresponding bit of ``val``;
the others are free (``x``).  ``level`` is the number of free positions,
so the face contains ``2**level`` vertices — matching the paper's
*level* / *cardinality* terminology for the n-cube face-poset.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, Optional

_UNIVERSE_CACHE: Dict[int, "Face"] = {}


class Face:
    """An immutable face of the k-cube."""

    __slots__ = ("k", "care", "val")

    def __init__(self, k: int, care: int, val: int):
        full = (1 << k) - 1
        if care & ~full:
            raise ValueError("care mask wider than the cube")
        self.k = k
        self.care = care
        self.val = val & care  # normalize: value bits only where cared

    # ------------------------------------------------------------------
    @classmethod
    def vertex(cls, k: int, code: int) -> "Face":
        """The level-0 face holding exactly *code*."""
        return cls(k, (1 << k) - 1, code)

    @classmethod
    def universe(cls, k: int) -> "Face":
        # faces are immutable, so the per-k universe is shared: the
        # embedding engine asks for it millions of times per search
        face = _UNIVERSE_CACHE.get(k)
        if face is None:
            face = _UNIVERSE_CACHE[k] = cls(k, 0, 0)
        return face

    @classmethod
    def spanning(cls, k: int, codes) -> "Face":
        """Smallest face containing all the given vertex codes (supercube)."""
        codes = list(codes)
        if not codes:
            raise ValueError("spanning face of no codes")
        ones = 0
        zeros = 0
        for c in codes:
            ones |= c
            zeros |= ~c
        care = (1 << k) - 1 & ~(ones & zeros)
        return cls(k, care, codes[0] & care)

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        return self.k - self.care.bit_count()

    @property
    def cardinality(self) -> int:
        return 1 << (self.k - self.care.bit_count())

    def contains_code(self, code: int) -> bool:
        return (code ^ self.val) & self.care == 0

    def contains(self, other: "Face") -> bool:
        """Face inclusion: every vertex of *other* lies in this face."""
        if other.k != self.k:
            raise ValueError("faces of different cubes")
        return (self.care & ~other.care) == 0 and \
            (self.val ^ other.val) & self.care == 0

    def intersect(self, other: "Face") -> Optional["Face"]:
        """Intersection face, or None when disjoint."""
        if (self.val ^ other.val) & self.care & other.care:
            return None
        return Face(self.k, self.care | other.care, self.val | other.val)

    def vertices(self) -> Iterator[int]:
        """Enumerate the codes of the face's vertices."""
        free = [i for i in range(self.k) if not (self.care >> i) & 1]
        for bits in range(1 << len(free)):
            code = self.val
            for j, pos in enumerate(free):
                if (bits >> j) & 1:
                    code |= 1 << pos
            yield code

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Face)
            and self.k == other.k
            and self.care == other.care
            and self.val == other.val
        )

    def __hash__(self) -> int:
        return hash((self.k, self.care, self.val))

    def __repr__(self) -> str:
        return f"Face({self})"

    def __str__(self) -> str:
        out = []
        for i in range(self.k - 1, -1, -1):
            if (self.care >> i) & 1:
                out.append("1" if (self.val >> i) & 1 else "0")
            else:
                out.append("x")
        return "".join(out)

    @classmethod
    def from_str(cls, text: str) -> "Face":
        """Parse a face written MSB-first with 0/1/x characters."""
        k = len(text)
        care = 0
        val = 0
        for i, ch in enumerate(text):
            bit = k - 1 - i
            if ch in "01":
                care |= 1 << bit
                if ch == "1":
                    val |= 1 << bit
            elif ch != "x":
                raise ValueError(f"bad face character {ch!r}")
        return cls(k, care, val)


def min_level(cardinality: int) -> int:
    """Smallest face level able to hold *cardinality* vertices."""
    if cardinality <= 1:
        return 0
    return (cardinality - 1).bit_length()


def faces_of_level(k: int, level: int) -> Iterator[Face]:
    """All faces of the k-cube with the given level, lexicographically.

    Generation mirrors NOVA's ``genface``: all placements of the x
    pattern, and for each placement all values of the care positions.
    """
    if level < 0 or level > k:
        return
    positions = list(range(k))
    for free in combinations(positions, level):
        care = (1 << k) - 1
        for pos in free:
            care &= ~(1 << pos)
        care_positions = [p for p in positions if (care >> p) & 1]
        for bits in range(1 << len(care_positions)):
            val = 0
            for j, pos in enumerate(care_positions):
                if (bits >> j) & 1:
                    val |= 1 << pos
            yield Face(k, care, val)


def subfaces(face: Face, level: int) -> Iterator[Face]:
    """All faces of the given level strictly or equally inside *face*.

    Produced lexicographically, mirroring ``genface`` restricted to the
    subspace assigned to a category-3 constraint's father.
    """
    if level > face.level or level < 0:
        return
    free = [i for i in range(face.k) if not (face.care >> i) & 1]
    keep = face.level - level  # how many positions get newly fixed
    for fixed in combinations(free, keep):
        care = face.care
        for pos in fixed:
            care |= 1 << pos
        for bits in range(1 << keep):
            val = face.val
            for j, pos in enumerate(fixed):
                if (bits >> j) & 1:
                    val |= 1 << pos
            yield Face(face.k, care, val)


def count_faces_of_level(k: int, level: int) -> int:
    """Number of faces of a given level in the k-cube: C(k,l) * 2^(k-l)."""
    from math import comb

    return comb(k, level) * (1 << (k - level))
