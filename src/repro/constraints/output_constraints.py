"""Output (covering) constraints from symbolic minimization (§VI).

Symbolic minimization produces a weighted DAG on the next states: edge
``(u, v)`` requires ``code(u)`` to bitwise cover ``code(v)``.  NOVA
groups the edges into *clusters*: ``OC_i`` is the set of edges into next
state *i*, with weight ``w_i`` (the product terms saved by satisfying
the whole cluster) and a companion set of input constraints ``IC_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass
class OutputCluster:
    """Edges into one next state, with the companion input constraints."""

    next_state: int
    edges: List[Tuple[int, int]]  # (u, v): code(u) must cover code(v)
    weight: int
    companion_ic: List[int] = field(default_factory=list)  # IC_i masks


@dataclass
class OutputConstraints:
    """The clustered (IC, OC) pair defined by a symbolic minimization."""

    n: int  # number of states
    clusters: List[OutputCluster] = field(default_factory=list)
    free_ic: List[int] = field(default_factory=list)  # IC_o: proper-output ICs

    def all_edges(self) -> List[Tuple[int, int]]:
        return [e for cl in self.clusters for e in cl.edges]

    def by_weight(self) -> List[OutputCluster]:
        return sorted(self.clusters,
                      key=lambda c: (-c.weight, c.next_state))

    def is_empty(self) -> bool:
        return not any(cl.edges for cl in self.clusters)

    def total_weight(self) -> int:
        return sum(cl.weight for cl in self.clusters)

    def check_acyclic(self) -> bool:
        """The covering DAG must stay acyclic for codes to exist."""
        adj: Dict[int, List[int]] = {}
        for u, v in self.all_edges():
            adj.setdefault(u, []).append(v)
        color: Dict[int, int] = {}

        def dfs(u: int) -> bool:
            color[u] = 1
            for w in adj.get(u, ()):  # u covers w
                if color.get(w) == 1:
                    return False
                if color.get(w, 0) == 0 and not dfs(w):
                    return False
            color[u] = 2
            return True

        return all(dfs(u) for u in list(adj) if color.get(u, 0) == 0)


def edges_satisfied(codes: Dict[int, int],
                    edges: Iterable[Tuple[int, int]]) -> bool:
    """True when every covering edge holds strictly for the given codes.

    ``(u, v)`` holds when code(u) bitwise covers code(v) and the codes
    differ (the paper requires at least one position where u has 1 and
    v has 0; with injective codes, covering implies that).
    """
    for u, v in edges:
        cu, cv = codes[u], codes[v]
        if cv & ~cu or cu == cv:
            return False
    return True
