"""The input poset and input graph IG of §3.2.

The poset is the intersection closure of the input constraints,
augmented by all singletons and the universe, ordered by set inclusion.
``InputGraph`` stores, for every node, its *fathers* (minimal strictly
including nodes) and *children* (maximal strictly included nodes) — the
compact Hasse-diagram representation NOVA walks during encoding — plus
the category classification that drives the backtracking:

* category 1 (*primary*): exactly one father, the universe;
* category 2: more than one father (face forced by intersection);
* category 3: exactly one father, not the universe (face nested in the
  father's face).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set


def closure_intersection(n: int, masks: Iterable[int]) -> Set[int]:
    """Closure of the constraints under pairwise intersection.

    Per the paper's definition the closure contains the constraints, all
    singletons of S, and the pairwise intersections of constraints (we
    iterate to a fixpoint so nested intersections are represented too —
    the extra nodes only sharpen the father/child structure).
    """
    base = {m for m in masks if m}
    out = set(base)
    out.update(1 << i for i in range(n))
    frontier = set(out)
    while frontier:
        new: Set[int] = set()
        for a in frontier:
            for b in base:
                c = a & b
                if c and c not in out:
                    new.add(c)
        out.update(new)
        frontier = new
    return out


class InputGraph:
    """Fathers/children structure over the closed input poset."""

    def __init__(self, n: int, constraint_masks: Iterable[int]):
        self.n = n
        self.universe = (1 << n) - 1
        nodes = closure_intersection(n, constraint_masks)
        nodes.add(self.universe)
        self.nodes: List[int] = sorted(nodes)
        self.fathers: Dict[int, List[int]] = {}
        self.children: Dict[int, List[int]] = {}
        self._build_edges()

    # ------------------------------------------------------------------
    def _build_edges(self) -> None:
        by_card = sorted(self.nodes, key=lambda m: m.bit_count())
        for ic in by_card:
            if ic == self.universe:
                self.fathers[ic] = []
                continue
            supersets = [o for o in self.nodes
                         if o != ic and ic & ~o == 0]
            # fathers: minimal supersets (no other superset strictly inside)
            fathers = [s for s in supersets
                       if not any(t != s and t & ~s == 0 for t in supersets)]
            self.fathers[ic] = sorted(fathers)
        for ic in self.nodes:
            self.children[ic] = []
        for ic in self.nodes:
            for f in self.fathers[ic]:
                self.children[f].append(ic)
        for ic in self.nodes:
            self.children[ic].sort()

    # ------------------------------------------------------------------
    def category(self, ic: int) -> int:
        """NOVA's constraint category (universe itself reports 0)."""
        if ic == self.universe:
            return 0
        fathers = self.fathers[ic]
        if len(fathers) > 1:
            return 2
        if fathers[0] == self.universe:
            return 1
        return 3

    def primaries(self) -> List[int]:
        """Category-1 constraints, largest first (NOVA's dimvect order)."""
        prim = [ic for ic in self.nodes if self.category(ic) == 1]
        return sorted(prim, key=lambda m: (-m.bit_count(), m))

    def cardinality(self, ic: int) -> int:
        return ic.bit_count()

    def non_universe_nodes(self) -> List[int]:
        return [ic for ic in self.nodes if ic != self.universe]

    def share_children(self, a: int, b: int) -> bool:
        """True when the two nodes have a child in common."""
        ca = set(self.children[a])
        return any(c in ca for c in self.children[b])

    def __repr__(self) -> str:
        return f"InputGraph(n={self.n}, {len(self.nodes)} nodes)"
