"""Input constraints: state groups produced by multiple-valued minimization.

A constraint is a bitmask over the ``n`` symbols of one multiple-valued
variable (bit *i* set = symbol *i* belongs to the group).  Its weight is
the number of product terms of the minimized MV cover that carry it —
the number of product terms saved in the final implementation when the
constraint is satisfied (§IV of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.fsm.symbolic_cover import SymbolicCover
from repro.logic.espresso import espresso
from repro.testing import faults


@dataclass
class ConstraintSet:
    """Weighted input constraints over one MV variable with *n* symbols."""

    n: int
    weights: Dict[int, int] = field(default_factory=dict)

    def add(self, mask: int, weight: int = 1) -> None:
        """Record *weight* more occurrences of the group *mask*.

        Full groups (the universe) and singletons carry no encoding
        information and are dropped.
        """
        universe = (1 << self.n) - 1
        if mask == universe or mask & (mask - 1) == 0:
            return
        self.weights[mask] = self.weights.get(mask, 0) + weight

    @property
    def universe(self) -> int:
        return (1 << self.n) - 1

    def masks(self) -> List[int]:
        return list(self.weights)

    def by_weight(self) -> List[Tuple[int, int]]:
        """(mask, weight) pairs, heaviest first, deterministic tie-break."""
        return sorted(self.weights.items(), key=lambda mw: (-mw[1], mw[0]))

    def total_weight(self) -> int:
        return sum(self.weights.values())

    def members(self, mask: int) -> Iterator[int]:
        for i in range(self.n):
            if (mask >> i) & 1:
                yield i

    def __len__(self) -> int:
        return len(self.weights)

    def __iter__(self) -> Iterator[int]:
        return iter(self.weights)

    def __contains__(self, mask: int) -> bool:
        return mask in self.weights


@dataclass
class ExtractionResult:
    """Constraints extracted from one MV minimization of an FSM."""

    state_constraints: ConstraintSet
    symbol_constraints: Optional[ConstraintSet]
    minimized_cover_size: int


def extract_input_constraints(
    sc: SymbolicCover, effort: str = "full"
) -> ExtractionResult:
    """Run MV minimization and collect the constraint groups.

    The present-state field of every cube of the minimized cover with
    two or more states set is an input constraint; when the machine has
    a symbolic proper input, the symbol field is collected the same way
    (the paper's starred examples encode inputs too).
    """
    faults.trip("mv_min", machine=sc.fsm.name)
    off = sc.off if len(sc.off) else None
    minimized = espresso(sc.on, sc.dc, off=off, effort=effort)
    fsm = sc.fsm
    states = ConstraintSet(fsm.num_states)
    symbols = (
        ConstraintSet(len(fsm.symbolic_input_values))
        if fsm.has_symbolic_input
        else None
    )
    for cube in minimized.cubes:
        states.add(sc.state_field(cube))
        if symbols is not None:
            symbols.add(sc.symbol_field(cube))
    return ExtractionResult(
        state_constraints=states,
        symbol_constraints=symbols,
        minimized_cover_size=len(minimized),
    )
