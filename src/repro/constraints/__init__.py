"""Constraint machinery: faces, input/output constraints, the input poset."""

from repro.constraints.faces import Face, faces_of_level, min_level
from repro.constraints.input_constraints import (
    ConstraintSet,
    extract_input_constraints,
)
from repro.constraints.output_constraints import OutputCluster, OutputConstraints
from repro.constraints.poset import InputGraph, closure_intersection

__all__ = [
    "Face",
    "faces_of_level",
    "min_level",
    "ConstraintSet",
    "extract_input_constraints",
    "InputGraph",
    "closure_intersection",
    "OutputCluster",
    "OutputConstraints",
]
