"""Unified runtime configuration: one validated choke point.

Every process-wide knob used to be its own scattered ``os.environ``
read — ``NOVA_CACHE`` in :mod:`repro.cache`, ``NOVA_SUBSTRATE`` in
:mod:`repro.logic.backend`, ``NOVA_PERF`` in :mod:`repro.perf`,
``NOVA_BENCH_JOBS`` in the benchmarks conftest — each with its own
parsing, its own validation (or none), and its own failure surface.
This module replaces them with a single frozen :class:`RuntimeConfig`
assembled from three layers, lowest precedence first:

1. **environment** — the six legacy ``NOVA_*`` variables, kept working
   for one release by a deprecation shim (each emits a
   ``DeprecationWarning`` once per process when actually consulted);
2. **config file** — a JSON or TOML file named by ``$NOVA_CONFIG``,
   whose keys are exactly the :class:`RuntimeConfig` field names
   (unknown keys are rejected eagerly, not ignored);
3. **explicit argument** — an active :func:`config_scope` overlay,
   which is also the sanctioned way for tests to pin configuration
   without monkeypatching module internals.

Validation is eager and centralized: an unrecognized value raises
``ValueError`` naming the offending source (``NOVA_CACHE``, a file
key, or the scope argument) the moment the layer is read.  A user who
exported ``NOVA_CACHE=of`` meant *something*, and running with the
wrong cache policy would quietly change costs — or quietly reuse stale
results.

Consumers read *narrow* accessors (:func:`cache_policy`,
:func:`substrate`, :func:`perf_enabled`, ...) so an import-time reader
like :mod:`repro.perf` only trips over errors in the field it needs;
long-lived entry points (``nova serve``, the CLI) call
:func:`get_config` once at startup to validate everything up front.
This module is a leaf: it imports nothing from :mod:`repro`, so every
subsystem (cache, backend, perf, bench) can depend on it without
cycles, and it stays import-clean across the spawn boundary.
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "CACHE_POLICIES",
    "CONFIG_FILE_VAR",
    "DEFAULT_CACHE_MAX_BYTES",
    "ENV_VARS",
    "SUBSTRATES",
    "RuntimeConfig",
    "bench_jobs",
    "bench_set",
    "bench_task_timeout",
    "cache_dir",
    "cache_max_bytes",
    "cache_policy",
    "config_scope",
    "get_config",
    "perf_enabled",
    "sanitize_enabled",
    "substrate",
]

#: Resolved cache policies.  ``auto`` is an :class:`EncodeOptions`-level
#: request meaning "whatever the runtime config says"; it never appears
#: in a resolved config.
CACHE_POLICIES: Tuple[str, ...] = ("on", "off", "memory")

#: Cover-kernel substrates (see :mod:`repro.logic.backend`).
SUBSTRATES: Tuple[str, ...] = ("python", "numpy")

#: Disk-tier prune budget default (256 MiB) — the single source of
#: truth; :mod:`repro.cache.store` mirrors it for its constructor.
DEFAULT_CACHE_MAX_BYTES = 256 * 1024 * 1024

#: field name -> environment variable.  Most are legacy reads kept
#: working through the deprecation shim; the ones listed in
#: :data:`SANCTIONED_ENV` below are current, documented interfaces
#: (CI and the benchmark harness set them) and do not warn.
ENV_VARS: Dict[str, str] = {
    "cache": "NOVA_CACHE",
    "cache_dir": "NOVA_CACHE_DIR",
    "cache_max_bytes": "NOVA_CACHE_MAX_BYTES",
    "substrate": "NOVA_SUBSTRATE",
    "perf": "NOVA_PERF",
    "bench_jobs": "NOVA_BENCH_JOBS",
    "bench_set": "NOVA_BENCH_SET",
    "bench_task_timeout": "NOVA_BENCH_TASK_TIMEOUT",
    "sanitize": "NOVA_SANITIZE",
}

#: Fields whose environment variable is a sanctioned interface rather
#: than a deprecated legacy spelling — consulted without warning.
SANCTIONED_ENV = frozenset({"bench_set", "bench_task_timeout", "sanitize"})

#: Environment variable naming the optional config file.
CONFIG_FILE_VAR = "NOVA_CONFIG"

_ON_VALUES = ("1", "on", "true", "yes")
_OFF_VALUES = ("0", "off", "false", "no")


@dataclass(frozen=True)
class RuntimeConfig:
    """Immutable snapshot of every process-wide runtime knob.

    Fields
    ------
    cache:
        Resolved cache policy: ``on`` (both tiers), ``off`` (none) or
        ``memory`` (in-process LRU only).
    cache_dir:
        Disk-tier root, or ``None`` for the default ``~/.cache/nova``
        (resolve with :meth:`resolved_cache_dir`).
    cache_max_bytes:
        Disk-tier prune budget in bytes.
    substrate:
        Cover-kernel backend: ``python`` or ``numpy``.
    perf:
        Whether a process-global perf collector starts installed.
    bench_jobs:
        Worker-process parallelism for benchmark sweeps.
    bench_set:
        Active benchmark quick-slice name (``small``, ``paper30``, ...),
        or ``None`` for the harness default.
    bench_task_timeout:
        Per-attempt hard-kill seconds for benchmark rows, or ``None``
        for the harness default.
    sanitize:
        Whether the crash-consistency sanitizer
        (:mod:`repro.testing.sanitize`) arms itself in test runs.
    """

    cache: str = "on"
    cache_dir: Optional[str] = None
    cache_max_bytes: int = DEFAULT_CACHE_MAX_BYTES
    substrate: str = "python"
    perf: bool = False
    bench_jobs: int = 1
    bench_set: Optional[str] = None
    bench_task_timeout: Optional[float] = None
    sanitize: bool = False

    def __post_init__(self) -> None:
        _validate_cache(self.cache, "RuntimeConfig.cache")
        _validate_substrate(self.substrate, "RuntimeConfig.substrate")
        if not isinstance(self.cache_max_bytes, int) \
                or isinstance(self.cache_max_bytes, bool) \
                or self.cache_max_bytes < 0:
            raise ValueError(
                f"RuntimeConfig.cache_max_bytes must be a non-negative "
                f"integer byte count, got {self.cache_max_bytes!r}")
        if not isinstance(self.bench_jobs, int) \
                or isinstance(self.bench_jobs, bool) or self.bench_jobs < 1:
            raise ValueError(
                f"RuntimeConfig.bench_jobs must be a positive integer, "
                f"got {self.bench_jobs!r}")
        if not isinstance(self.perf, bool):
            raise ValueError(
                f"RuntimeConfig.perf must be a bool, got {self.perf!r}")
        if self.cache_dir is not None and not isinstance(self.cache_dir, str):
            raise ValueError(
                f"RuntimeConfig.cache_dir must be a path string or None, "
                f"got {self.cache_dir!r}")
        if self.bench_set is not None \
                and not isinstance(self.bench_set, str):
            raise ValueError(
                f"RuntimeConfig.bench_set must be a slice name string or "
                f"None, got {self.bench_set!r}")
        if self.bench_task_timeout is not None and (
                not isinstance(self.bench_task_timeout, (int, float))
                or isinstance(self.bench_task_timeout, bool)
                or self.bench_task_timeout <= 0):
            raise ValueError(
                f"RuntimeConfig.bench_task_timeout must be positive "
                f"seconds or None, got {self.bench_task_timeout!r}")
        if not isinstance(self.sanitize, bool):
            raise ValueError(
                f"RuntimeConfig.sanitize must be a bool, "
                f"got {self.sanitize!r}")

    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "RuntimeConfig":
        """A copy with *changes* applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (also a valid ``$NOVA_CONFIG`` file body)."""
        return dataclasses.asdict(self)

    def resolved_cache_dir(self) -> Path:
        """The disk-tier root with the ``~/.cache/nova`` default applied."""
        if self.cache_dir:
            return Path(self.cache_dir)
        return Path(os.path.expanduser("~")) / ".cache" / "nova"


# ----------------------------------------------------------------------
# per-field parsers (shared by the env shim and the config file)
# ----------------------------------------------------------------------
def _validate_cache(value: str, source: str) -> str:
    if value not in CACHE_POLICIES:
        raise ValueError(
            f"unrecognized {source} value {value!r}: use "
            f"on/off/memory (aliases: {'/'.join(_ON_VALUES)} for on, "
            f"{'/'.join(_OFF_VALUES)} for off); refusing to guess a policy")
    return value


def _validate_substrate(value: str, source: str) -> str:
    if value not in SUBSTRATES:
        raise ValueError(
            f"unknown substrate backend {value!r} ({source}): choose "
            f"from {SUBSTRATES}")
    return value


def _parse_cache(raw: str, source: str) -> str:
    value = raw.strip().lower()
    if value in _OFF_VALUES:
        return "off"
    if value == "memory":
        return "memory"
    if value in _ON_VALUES:
        return "on"
    return _validate_cache(value, source)


def _parse_substrate(raw: str, source: str) -> str:
    return _validate_substrate(raw.strip().lower(), source)


def _parse_bool(raw: str, source: str) -> bool:
    value = raw.strip().lower()
    if value in _ON_VALUES:
        return True
    if value in _OFF_VALUES:
        return False
    raise ValueError(
        f"{source} must be a boolean "
        f"({'/'.join(_ON_VALUES)} or {'/'.join(_OFF_VALUES)}), "
        f"got {raw!r}")


def _parse_max_bytes(raw: str, source: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{source} must be an integer byte count, got {raw!r}") from None
    if value < 0:
        raise ValueError(
            f"{source} must be a non-negative integer byte count, "
            f"got {raw!r}")
    return value


def _parse_jobs(raw: str, source: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{source} must be a positive integer job count, "
            f"got {raw!r}") from None
    if value < 1:
        raise ValueError(
            f"{source} must be a positive integer job count, got {raw!r}")
    return value


def _parse_dir(raw: str, source: str) -> Optional[str]:
    return raw or None


def _parse_bench_set(raw: str, source: str) -> str:
    return raw.strip()


def _parse_task_timeout(raw: str, source: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"unrecognized {source} value {raw!r}: expected seconds "
            f"as a number") from None
    if value <= 0:
        raise ValueError(f"{source} must be positive, got {raw!r}")
    return value


_ENV_PARSERS: Dict[str, Callable[[str, str], Any]] = {
    "cache": _parse_cache,
    "cache_dir": _parse_dir,
    "cache_max_bytes": _parse_max_bytes,
    "substrate": _parse_substrate,
    "perf": _parse_bool,
    "bench_jobs": _parse_jobs,
    "bench_set": _parse_bench_set,
    "bench_task_timeout": _parse_task_timeout,
    "sanitize": _parse_bool,
}

# Blank-counts-as-unset applies to every variable except NOVA_CACHE_DIR,
# where the empty string already meant "use the default" historically.
_BLANK_IS_UNSET = frozenset(
    {"cache", "substrate", "perf", "bench_jobs", "cache_max_bytes",
     "bench_set", "bench_task_timeout", "sanitize"})


# ----------------------------------------------------------------------
# layer 1: the legacy environment (deprecation shim)
# ----------------------------------------------------------------------
_warned_vars: set = set()


def _deprecation_note(var: str) -> None:
    """Warn once per process per consulted legacy variable."""
    if var in _warned_vars:
        return
    _warned_vars.add(var)
    warnings.warn(
        f"the {var} environment variable is deprecated; set the "
        f"corresponding key in a $NOVA_CONFIG file (JSON/TOML) or use "
        f"repro.config.config_scope() — the variable keeps working for "
        f"one more release",
        DeprecationWarning, stacklevel=3)


def _env_field(field: str) -> Optional[Any]:
    """Parsed value of *field* from its legacy env var, or ``None``."""
    var = ENV_VARS[field]
    raw = os.environ.get(var)
    if raw is None:
        return None
    if field in _BLANK_IS_UNSET and not raw.strip():
        return None
    if field not in SANCTIONED_ENV:
        _deprecation_note(var)
    return _ENV_PARSERS[field](raw, var)


# ----------------------------------------------------------------------
# layer 2: the $NOVA_CONFIG file (parsed once per path+mtime)
# ----------------------------------------------------------------------
_file_cache: Dict[Tuple[str, int], Dict[str, Any]] = {}


def _load_config_file(path: str) -> Dict[str, Any]:
    """Parse a JSON/TOML config file into *raw* values; memoized on mtime.

    Only structural problems raise here (unreadable file, broken
    syntax, not-an-object, unknown keys).  Field *values* are validated
    lazily in :func:`_file_field`, so a narrow accessor like
    :func:`substrate` — consulted at import time by
    :mod:`repro.logic.backend` — cannot be tripped by a bad value in an
    unrelated field; :func:`get_config` still validates every field
    eagerly at service boot.
    """
    try:
        stat = os.stat(path)
    except OSError:
        raise ValueError(
            f"{CONFIG_FILE_VAR} names an unreadable config file: "
            f"{path!r}") from None
    key = (os.path.abspath(path), stat.st_mtime_ns)
    cached = _file_cache.get(key)
    if cached is not None:
        return cached

    if path.endswith(".toml"):
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py3.10 floor
            raise ValueError(
                f"{CONFIG_FILE_VAR} file {path!r} is TOML but this "
                f"python has no tomllib (3.11+); use JSON") from None
        with open(path, "rb") as fh:
            try:
                data = tomllib.load(fh)
            except tomllib.TOMLDecodeError as exc:
                raise ValueError(
                    f"invalid TOML in {CONFIG_FILE_VAR} file "
                    f"{path!r}: {exc}") from None
    else:
        with open(path, "r", encoding="utf-8") as fh:
            try:
                data = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"invalid JSON in {CONFIG_FILE_VAR} file "
                    f"{path!r}: {exc}") from None
    if not isinstance(data, dict):
        raise ValueError(
            f"{CONFIG_FILE_VAR} file {path!r} must hold one object of "
            f"RuntimeConfig fields, got {type(data).__name__}")

    known = {f.name for f in dataclasses.fields(RuntimeConfig)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"unknown RuntimeConfig keys in {CONFIG_FILE_VAR} file "
            f"{path!r}: {sorted(unknown)} (known: {sorted(known)})")
    _file_cache[key] = data
    return data


def _file_field(field: str) -> Optional[Any]:
    """One field's parsed, validated value from the config file."""
    path = os.environ.get(CONFIG_FILE_VAR)
    if not path or not path.strip():
        return None
    value = _load_config_file(path.strip()).get(field)
    if value is None:
        return None
    source = f"{CONFIG_FILE_VAR}:{field}"
    if isinstance(value, str) and field in _ENV_PARSERS \
            and field != "cache_dir":
        return _ENV_PARSERS[field](value, source)
    try:
        # field-local validation through the dataclass (type, range)
        RuntimeConfig(**{field: value})
    except ValueError as exc:
        raise ValueError(f"{source}: {exc}") from None
    return value


# ----------------------------------------------------------------------
# layer 3: explicit scopes (tests, services, the CLI)
# ----------------------------------------------------------------------
_scope_stack: List[Dict[str, Any]] = []


@contextmanager
def config_scope(**overrides: Any) -> Iterator[RuntimeConfig]:
    """Pin configuration fields for the duration of the block.

    The sanctioned replacement for monkeypatching ``NOVA_*`` variables
    in tests: overrides take precedence over both the environment and
    any ``$NOVA_CONFIG`` file, nest (innermost wins per field), and are
    validated eagerly on entry.

    >>> with config_scope(cache="off", substrate="python"):
    ...     assert get_config().cache == "off"
    """
    known = {f.name for f in dataclasses.fields(RuntimeConfig)}
    unknown = set(overrides) - known
    if unknown:
        raise ValueError(
            f"unknown RuntimeConfig fields in config_scope: "
            f"{sorted(unknown)} (known: {sorted(known)})")
    parsed: Dict[str, Any] = {}
    for name, value in overrides.items():
        if isinstance(value, str) and name in _ENV_PARSERS \
                and name != "cache_dir":
            parsed[name] = _ENV_PARSERS[name](value, f"config_scope({name})")
        elif name == "cache_dir" and isinstance(value, Path):
            parsed[name] = str(value)
        else:
            parsed[name] = value
    _scope_stack.append(parsed)
    try:
        yield get_config()
    finally:
        _scope_stack.pop()


def _scope_field(field: str) -> Optional[Any]:
    for layer in reversed(_scope_stack):
        if field in layer:
            return layer[field]
    return None


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def _resolve(field: str) -> Any:
    """One field through the precedence chain env < file < scope."""
    value = _scope_field(field)
    if value is None:
        value = _file_field(field)
    if value is None:
        value = _env_field(field)
    if value is None:
        default = next(f.default
                       for f in dataclasses.fields(RuntimeConfig)
                       if f.name == field)
        return default
    return value


def get_config() -> RuntimeConfig:
    """The fully-validated active configuration.

    Reads all three layers for every field, so any invalid value
    anywhere in the environment or config file raises here — this is
    the eager-validation entry point services call at boot (via
    :func:`repro.cache.check_environment`).
    """
    return RuntimeConfig(**{
        f.name: _resolve(f.name)
        for f in dataclasses.fields(RuntimeConfig)
    })


# Narrow accessors: consult only their own field, so import-time
# readers (repro.perf, repro.logic.backend) fail only on errors in the
# value they actually need.
def cache_policy() -> str:
    """Resolved cache policy: ``on`` / ``off`` / ``memory``."""
    value = _resolve("cache")
    return _validate_cache(value, ENV_VARS["cache"])


def cache_dir() -> Path:
    """The disk-tier root with the default applied."""
    value = _resolve("cache_dir")
    if value:
        return Path(value)
    return Path(os.path.expanduser("~")) / ".cache" / "nova"


def cache_max_bytes() -> int:
    """Disk-tier prune budget in bytes."""
    return int(_resolve("cache_max_bytes"))


def substrate() -> Optional[str]:
    """The requested cover-kernel backend, or ``None`` when unset.

    Unlike the other accessors this distinguishes "explicitly asked
    for python" from "said nothing": :mod:`repro.logic.backend` only
    *switches* (and hard-fails on a missing numpy) when a backend was
    actually requested somewhere.
    """
    value = _scope_field("substrate")
    if value is None:
        value = _file_field("substrate")
    if value is None:
        value = _env_field("substrate")
    return value


def perf_enabled() -> bool:
    """Whether a process-global perf collector should start installed."""
    return bool(_resolve("perf"))


def bench_jobs() -> int:
    """Worker-process parallelism for benchmark sweeps."""
    return int(_resolve("bench_jobs"))


def bench_set() -> Optional[str]:
    """Active benchmark quick-slice name, or ``None`` when unset."""
    value = _resolve("bench_set")
    return value if value else None


def bench_task_timeout() -> Optional[float]:
    """Per-attempt hard-kill seconds, or ``None`` when unset."""
    value = _resolve("bench_task_timeout")
    return float(value) if value is not None else None


def sanitize_enabled() -> bool:
    """Whether the crash-consistency sanitizer arms in test runs."""
    return bool(_resolve("sanitize"))
