"""Reproduction of NOVA: optimal state assignment of finite state machines.

Villa & Sangiovanni-Vincentelli, "NOVA: State Assignment of Finite State
Machines for Optimal Two-Level Logic Implementation", DAC 1989 /
IEEE TCAD 9(9), 1990.

Public API highlights:

* :func:`repro.encode_fsm` — the full pipeline (MV/symbolic
  minimization, encoding, re-minimization, area);
* :mod:`repro.fsm` — machines, KISS2 I/O, the benchmark suite;
* :mod:`repro.encoding` — iexact/ihybrid/igreedy/iohybrid and baselines;
* :mod:`repro.logic` — the espresso-style two-level/MV minimizer;
* :mod:`repro.eval` — PLA instantiation, area model, tables harness;
* :mod:`repro.cache` — the content-addressed encode result cache;
* :mod:`repro.api` — the stable facade these names are mirrored from.
"""

from repro._version import __version__
from repro.cache import cache_clear, cache_info, cache_prune
from repro.config import RuntimeConfig, config_scope, get_config
from repro.encoding.nova import ALGORITHMS, NovaResult, RunReport, encode_fsm
from repro.encoding.options import EncodeOptions
from repro.errors import (
    BudgetExhausted,
    ConstraintError,
    EncodingInfeasible,
    ParseError,
    ReproError,
    VerificationError,
)
from repro.fsm.benchmarks import benchmark, benchmark_names
from repro.fsm.kiss import parse_kiss, to_kiss
from repro.fsm.machine import FSM, Transition

__all__ = [
    "ALGORITHMS",
    "EncodeOptions",
    "NovaResult",
    "RunReport",
    "encode_fsm",
    "cache_info",
    "cache_clear",
    "cache_prune",
    "RuntimeConfig",
    "get_config",
    "config_scope",
    "ReproError",
    "ParseError",
    "ConstraintError",
    "BudgetExhausted",
    "EncodingInfeasible",
    "VerificationError",
    "benchmark",
    "benchmark_names",
    "parse_kiss",
    "to_kiss",
    "FSM",
    "Transition",
    "__version__",
]
