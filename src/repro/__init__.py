"""Reproduction of NOVA: optimal state assignment of finite state machines.

Villa & Sangiovanni-Vincentelli, "NOVA: State Assignment of Finite State
Machines for Optimal Two-Level Logic Implementation", DAC 1989 /
IEEE TCAD 9(9), 1990.

Public API highlights:

* :func:`repro.encode_fsm` — the full pipeline (MV/symbolic
  minimization, encoding, re-minimization, area);
* :mod:`repro.fsm` — machines, KISS2 I/O, the benchmark suite;
* :mod:`repro.encoding` — iexact/ihybrid/igreedy/iohybrid and baselines;
* :mod:`repro.logic` — the espresso-style two-level/MV minimizer;
* :mod:`repro.eval` — PLA instantiation, area model, tables harness.
"""

from repro.encoding.nova import ALGORITHMS, NovaResult, RunReport, encode_fsm
from repro.errors import (
    BudgetExhausted,
    ConstraintError,
    EncodingInfeasible,
    ParseError,
    ReproError,
    VerificationError,
)
from repro.fsm.benchmarks import benchmark, benchmark_names
from repro.fsm.kiss import parse_kiss, to_kiss
from repro.fsm.machine import FSM, Transition

__version__ = "1.1.0"

__all__ = [
    "ALGORITHMS",
    "NovaResult",
    "RunReport",
    "encode_fsm",
    "ReproError",
    "ParseError",
    "ConstraintError",
    "BudgetExhausted",
    "EncodingInfeasible",
    "VerificationError",
    "benchmark",
    "benchmark_names",
    "parse_kiss",
    "to_kiss",
    "FSM",
    "Transition",
    "__version__",
]
