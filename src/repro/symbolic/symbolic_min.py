"""Symbolic minimization, NOVA's revisited version (§6.1).

The loop processes one next state at a time.  For next state *i*:

* on-set — the rows asserting *i* (with their binary outputs);
* off-set — the rows of every next state *j* that *i* already covers
  (a path i→j in the covering DAG G would close a cycle), plus the off
  conditions of the binary outputs (the paper's first modification:
  binary outputs carry their complete on/off description at every
  stage);
* dc-set — the rows of every other next state (no path from *i*).

After ``minimize(on, dc, off)``, the covering relations of the stage
are accepted only when the stage actually decreased the on-set
cardinality of next state *i* (the paper's second modification), in
which case edges ``(j, i, w_i)`` are added to G for every *j* whose
on-set the minimized implicants of *i* intersect.

The final cover ``FinalP`` is compacted with single-cube containment
plus a greedy irredundant pass rather than a full re-minimization: a
full espresso pass would need covering-aware off-sets for every stage
simultaneously, and the compaction preserves correctness of the cover
unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.constraints.input_constraints import ConstraintSet
from repro.constraints.output_constraints import OutputCluster, OutputConstraints
from repro.fsm.symbolic_cover import SymbolicCover
from repro.logic.cover import Cover
from repro.logic.espresso import espresso, irredundant
from repro.testing import faults


@dataclass
class SymbolicMinResult:
    """The (IC, OC) pair defined by one symbolic minimization."""

    input_constraints: ConstraintSet
    output_constraints: OutputConstraints
    final_cover_size: int
    symbol_constraints: Optional[ConstraintSet] = None


def _has_path(adj: Dict[int, Set[int]], src: int, dst: int) -> bool:
    """DFS reachability in the covering DAG (edges u -> v: u covers v)."""
    stack = [src]
    seen = set()
    while stack:
        u = stack.pop()
        if u == dst:
            return True
        if u in seen:
            continue
        seen.add(u)
        stack.extend(adj.get(u, ()))
    return False


def symbolic_minimize(sc: SymbolicCover, effort: str = "full") -> SymbolicMinResult:
    """Run the §6.1 loop and extract clustered input/output constraints."""
    faults.trip("mv_min", machine=sc.fsm.name)
    fsm = sc.fsm
    fmt = sc.fmt
    n = fsm.num_states
    next_mask = (1 << n) - 1

    # On_k: rows of the cover asserting next state k (binary outputs kept)
    on_sets: Dict[int, List[int]] = {i: [] for i in range(n)}
    output_only: List[int] = []  # rows with unspecified next state
    for cube in sc.on.cubes:
        out = fmt.field(cube, sc.output_var)
        ns = out & next_mask
        if ns == 0:
            output_only.append(cube)
            continue
        on_sets[ns.bit_length() - 1].append(cube)

    # covers u -> v : code(u) must cover code(v); weights per head state
    covers_adj: Dict[int, Set[int]] = {}
    weights: Dict[int, int] = {}
    final_cubes: List[int] = list(output_only)
    # stage order: largest on-sets first -- they have the most to gain
    order = sorted(range(n), key=lambda i: (-len(on_sets[i]), i))

    for i in order:
        on_i = on_sets[i]
        if not on_i:
            continue
        dc_cubes: List[int] = list(sc.dc.cubes)
        off_cubes: List[int] = []
        for j in range(n):
            if j == i or not on_sets[j]:
                continue
            if _has_path(covers_adj, i, j):
                # i already covers j: expanding i over On_j would need
                # j to cover i too -- a cycle; these rows are off
                off_cubes.extend(
                    fmt.with_field(c, sc.output_var, 1 << i)
                    for c in on_sets[j]
                )
            else:
                dc_cubes.extend(
                    fmt.with_field(c, sc.output_var, 1 << i)
                    for c in on_sets[j]
                )
        # complete binary-output description (modification 1): the off
        # conditions of the proper outputs come from the machine's off-set
        for c in sc.off.cubes:
            out = fmt.field(c, sc.output_var)
            keep = out & ~next_mask
            if keep:
                off_cubes.append(fmt.with_field(c, sc.output_var, keep))

        on = Cover(fmt, on_i)
        dc = Cover(fmt, dc_cubes)
        off = Cover(fmt, off_cubes) if off_cubes else None
        mb = espresso(on, dc=dc, off=off, effort=effort)
        m_i = [c for c in mb.cubes
               if fmt.field(c, sc.output_var) & (1 << i)]
        if len(m_i) < len(on_i):
            # accept the stage (modification 2)
            weights[i] = len(on_i) - len(m_i)
            for j in range(n):
                if j == i or not on_sets[j]:
                    continue
                hit = any(
                    fmt.intersects(mc, jc)
                    for mc in (fmt.with_field(c, sc.output_var,
                                              fmt.field(c, sc.output_var)
                                              | next_mask)
                               for c in m_i)
                    for jc in (fmt.with_field(c, sc.output_var,
                                              fmt.field(c, sc.output_var)
                                              | next_mask)
                               for c in on_sets[j])
                )
                if hit:
                    covers_adj.setdefault(j, set()).add(i)
            final_cubes.extend(mb.cubes)
        else:
            final_cubes.extend(on_i)

    final = Cover(fmt, final_cubes).single_cube_containment()
    final = irredundant(final, Cover(fmt, list(sc.dc.cubes)))

    # --- constraint extraction from FinalP -----------------------------
    ic = ConstraintSet(n)
    sym = (
        ConstraintSet(len(fsm.symbolic_input_values))
        if fsm.has_symbolic_input else None
    )
    companions: Dict[int, List[int]] = {i: [] for i in range(n)}
    free_ic: List[int] = []
    for cube in final.cubes:
        group = sc.state_field(cube)
        ic.add(group)
        if sym is not None:
            sym.add(sc.symbol_field(cube))
        out = fmt.field(cube, sc.output_var)
        heads = out & next_mask
        if heads == 0:
            if group != (1 << n) - 1 and group & (group - 1):
                free_ic.append(group)
            continue
        for i in range(n):
            if (heads >> i) & 1 and group & (group - 1):
                companions[i].append(group)

    clusters = [
        OutputCluster(
            next_state=i,
            edges=sorted((j, i) for j in covers_adj
                         if i in covers_adj[j]),
            weight=weights.get(i, 0),
            companion_ic=companions[i],
        )
        for i in range(n)
        if weights.get(i, 0) or companions[i]
    ]
    oc = OutputConstraints(n=n, clusters=clusters, free_ic=free_ic)
    return SymbolicMinResult(
        input_constraints=ic,
        output_constraints=oc,
        final_cover_size=len(final),
        symbol_constraints=sym,
    )
