"""Symbolic minimization (§6.1): encoding-independent covers + covering DAG."""

from repro.symbolic.symbolic_min import SymbolicMinResult, symbolic_minimize

__all__ = ["SymbolicMinResult", "symbolic_minimize"]
