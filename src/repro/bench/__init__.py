"""The benchmark observatory: declarative sweeps, robust timing, and a
gated performance trajectory.

Layers, bottom up:

* :mod:`repro.bench.timing` — variance-controlled measurement (warmup,
  repeated samples, MAD outlier rejection, mean/std/min/median).
* :mod:`repro.bench.record` — the schema-versioned
  :class:`~repro.bench.record.BenchRecord` shared by every producer and
  consumer of timing data, plus environment capture.
* :mod:`repro.bench.spec` — :class:`~repro.bench.spec.SweepSpec`, the
  declarative suite definition (JSON/TOML loadable).
* :mod:`repro.bench.discover` — machine-set and parallelism selection
  shared by the pytest harness, ``nova table`` and the sweeps.
* :mod:`repro.bench.sweep` — compiles a spec onto the batch runner and
  folds the journal back into one record.
* :mod:`repro.bench.trajectory` — the append-only
  ``BENCH_TRAJECTORY.json`` store, the latest-vs-baseline comparator,
  the CI regression gate, and the legacy ``BENCH_PR*.json`` importer.

The ``nova bench`` CLI (``run`` / ``compare`` / ``gate`` / ``import``)
is the front end; ``benchmarks/specs/`` holds the shipped suite
definitions.
"""

from __future__ import annotations

from repro.bench.record import SCHEMA_VERSION, BenchRecord, \
    capture_environment
from repro.bench.spec import SweepSpec, load_spec
from repro.bench.sweep import compile_tasks, run_sweep
from repro.bench.timing import SampleStats, best_of, mad_reject, measure, \
    summarize
from repro.bench.trajectory import (
    DEFAULT_GATE_SUITES,
    DEFAULT_PATH,
    TRAJECTORY_SCHEMA,
    GateResult,
    SuiteComparison,
    append_record,
    compare_suite,
    gate,
    import_legacy,
    load_trajectory,
    save_trajectory,
)

__all__ = [
    "BenchRecord",
    "DEFAULT_GATE_SUITES",
    "DEFAULT_PATH",
    "GateResult",
    "SCHEMA_VERSION",
    "SampleStats",
    "SuiteComparison",
    "SweepSpec",
    "TRAJECTORY_SCHEMA",
    "append_record",
    "best_of",
    "capture_environment",
    "compare_suite",
    "compile_tasks",
    "gate",
    "import_legacy",
    "load_spec",
    "load_trajectory",
    "mad_reject",
    "measure",
    "run_sweep",
    "save_trajectory",
    "summarize",
]
