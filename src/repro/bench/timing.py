"""Variance-controlled timing: repeated samples, robust statistics.

Best-of-N (the pre-observatory idiom scattered through the benchmark
scripts) answers "how fast can this go" but hides *how noisy* the
measurement was — and a perf-trajectory gate that compares two
best-of-N numbers cannot tell a regression from an unlucky scheduler
quantum.  This module standardizes the protocol:

* **warmup** runs are executed and discarded (they build packing
  tables, lazy complements, import caches — state every later sample
  would otherwise pay for unevenly);
* **N repeated samples** are collected with a monotonic clock;
* **outlier rejection** drops samples further than ``k`` scaled median
  absolute deviations from the median (MAD is robust: one GC pause or
  CPU-migration spike cannot drag the mean, unlike z-scores where the
  outlier inflates the very std used to reject it);
* the summary reports **mean / std / min / median** over the surviving
  samples plus how many were rejected — dropped data is never silent.

The clock is injectable everywhere so tests drive the math with a fake
counter instead of real sleeps; ``time.perf_counter`` (a duration, not
wall-clock ambient state) is the default.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "DEFAULT_MAD_K",
    "SampleStats",
    "best_of",
    "mad_reject",
    "measure",
    "summarize",
]

#: Samples beyond this many scaled MADs from the median are outliers.
#: 3.5 is the conventional conservative cut (Iglewicz & Hoaglin).
DEFAULT_MAD_K = 3.5

#: Scale factor making the MAD a consistent estimator of the standard
#: deviation under normality.
_MAD_SCALE = 1.4826


@dataclass(frozen=True)
class SampleStats:
    """Summary of one timed unit: robust stats over repeated samples."""

    mean: float
    std: float
    min: float
    median: float
    samples: int          # surviving samples the stats are computed on
    rejected: int = 0     # MAD outliers dropped before summarizing

    def to_dict(self) -> Dict[str, float]:
        return {
            "mean": round(self.mean, 9),
            "std": round(self.std, 9),
            "min": round(self.min, 9),
            "median": round(self.median, 9),
            "samples": self.samples,
            "rejected": self.rejected,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "SampleStats":
        return cls(mean=float(d["mean"]), std=float(d["std"]),
                   min=float(d["min"]), median=float(d["median"]),
                   samples=int(d["samples"]),
                   rejected=int(d.get("rejected", 0)))


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad_reject(samples: Sequence[float],
               k: float = DEFAULT_MAD_K) -> List[float]:
    """Samples within *k* scaled MADs of the median (order preserved).

    With fewer than 3 samples, or a zero MAD (no spread to estimate
    from — e.g. a fake clock returning identical durations), every
    sample is kept: rejection needs a meaningful dispersion estimate,
    and throwing data away on a degenerate one would bias the mean.
    """
    if len(samples) < 3:
        return list(samples)
    med = _median(samples)
    mad = _median([abs(x - med) for x in samples])
    if mad == 0.0:
        return list(samples)
    cut = k * _MAD_SCALE * mad
    return [x for x in samples if abs(x - med) <= cut]


def summarize(samples: Sequence[float],
              reject_outliers: bool = True,
              mad_k: float = DEFAULT_MAD_K) -> SampleStats:
    """Robust summary of raw duration samples.

    ``std`` is the population standard deviation (the sample set *is*
    the population we measured — consistent with the historical
    ``BENCH_PR6.json`` protocol).
    """
    if not samples:
        raise ValueError("cannot summarize zero samples")
    kept = mad_reject(samples, mad_k) if reject_outliers else list(samples)
    n = len(kept)
    mean = sum(kept) / n
    var = sum((x - mean) ** 2 for x in kept) / n
    return SampleStats(
        mean=mean,
        std=math.sqrt(var),
        min=min(kept),
        median=_median(kept),
        samples=n,
        rejected=len(samples) - n,
    )


def measure(fn: Callable[[], object],
            repeats: int,
            warmup: int = 1,
            clock: Callable[[], float] = time.perf_counter,
            ) -> List[float]:
    """Raw duration samples of *fn*: *warmup* discarded runs, then
    *repeats* timed ones.

    Returns the samples rather than a summary so callers can pool
    samples from several sources (e.g. per-repeat batch-runner tasks)
    through the same :func:`summarize`.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = clock()
        fn()
        samples.append(clock() - t0)
    return samples


def best_of(fn: Callable[[], object],
            repeats: int,
            warmup: int = 1,
            clock: Callable[[], float] = time.perf_counter,
            stats: Optional[Dict[str, Dict[str, float]]] = None,
            label: str = "",
            ) -> float:
    """Minimum duration over *repeats* timed runs (after *warmup*).

    The micro-benchmark convention (min is the least noisy estimator of
    the achievable time for CPU-bound work); when *stats* is given the
    full variance-controlled summary is recorded under *label* too, so
    best-of callers still publish mean±std.
    """
    samples = measure(fn, repeats, warmup=warmup, clock=clock)
    if stats is not None:
        stats[label or getattr(fn, "__name__", "fn")] = \
            summarize(samples).to_dict()
    return min(samples)
