"""Compile a :class:`~repro.bench.spec.SweepSpec` onto the batch runner.

The sweep engine reuses the fleet machinery instead of growing its own
timing loop: every (machine, algorithm, seed) unit of the spec becomes
``warmup + repeats`` :class:`~repro.runner.batch.BatchTask` attempts,
executed by a :class:`~repro.runner.batch.BatchRunner` (serial or
``jobs``-wide), and the per-run durations are read back out of the
journaled entries.  That buys the sweep everything the runner already
guarantees — process isolation per sample, hard timeout kills, a
durable per-sample provenance journal — for free.

Two deliberate departures from normal batch behaviour:

* ``retries=0`` — the runner's degradation ladder re-runs a failed task
  at the *next* algorithm rung, which for timing would silently record
  a different algorithm's duration under the unit's name.  A failed
  sample is dropped and counted instead.
* samples come from *inside* the worker (``record["seconds"]`` for
  encode tasks, the worker-side attempt ``elapsed`` for table rows),
  never from the parent's wall clock, so process spawn and journal
  overhead are excluded from the measurement.

Cache policy follows the spec (default ``"off"``): encode tasks carry
it in their options; table tasks inherit it through the environment the
workers are spawned with, since table rows encode internally with
their own defaults.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.bench import discover
from repro.bench.record import BenchRecord, capture_environment
from repro.bench.spec import SweepSpec
from repro.bench.timing import summarize
from repro.runner.batch import BatchRunner, BatchTask

__all__ = [
    "compile_tasks",
    "run_sweep",
]

#: task-id suffixes: warmup attempts are journaled but never sampled
_WARM = "w"
_REP = "r"


def compile_tasks(spec: SweepSpec,
                  machines: Optional[Sequence[str]] = None,
                  ) -> List[BatchTask]:
    """The flat task list one sweep executes: units × (warmup+repeats).

    Task ids are ``<unit-key>@r<i>`` (timed) and ``<unit-key>@w<i>``
    (warmup), which is what lets :func:`run_sweep` fold journal entries
    back into per-unit sample lists.
    """
    tasks: List[BatchTask] = []
    for key, machine, algo, seed in spec.units(
            list(machines) if machines is not None else None):
        options: Dict[str, object] = dict(spec.options)
        if spec.kind == "encode":
            options["cache"] = spec.cache
            if seed is not None:
                options["seed"] = seed
        runs = ([(_WARM, i) for i in range(spec.warmup)]
                + [(_REP, i) for i in range(spec.repeats)])
        for tag, i in runs:
            tasks.append(BatchTask(
                machine=machine,
                algorithm=algo,
                kind=spec.kind,
                table=spec.table,
                options=options if spec.kind == "encode" else {},
                task_id=f"{key}@{tag}{i}",
            ))
    return tasks


def _sample_of(entry: Dict, kind: str) -> Optional[float]:
    """The in-worker duration of one journal entry, or None to drop it.

    Only clean ``ok`` runs count: a ``degraded`` encode ran a different
    algorithm than the unit's name claims, and a failed/killed attempt
    measured nothing.  Cache hits are dropped too — they time a lookup.
    """
    if entry.get("status") != "ok" or entry.get("cache_hit"):
        return None
    if kind == "encode":
        record = entry.get("record") or {}
        seconds = record.get("seconds")
    else:
        attempts = entry.get("attempts") or []
        seconds = attempts[-1].get("elapsed") if attempts else None
    if not isinstance(seconds, (int, float)) or seconds < 0:
        return None
    return float(seconds)


def run_sweep(
    spec: SweepSpec,
    run_dir: Union[str, Path],
    *,
    jobs: Optional[int] = None,
    timestamp: Optional[float] = None,
    label: str = "",
    limit: Optional[int] = None,
    repeats: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    runner_factory: Optional[Callable[..., object]] = None,
) -> BenchRecord:
    """Execute *spec* and summarize it into one :class:`BenchRecord`.

    ``jobs`` defaults to the runtime config's ``bench_jobs``; ``limit``
    caps the machine list (the CI quick slice) and ``repeats``
    overrides the spec's sample count — both overrides are recorded in
    the emitted record's ``spec`` snapshot so trajectory comparisons
    only align genuinely comparable runs.  *runner_factory* lets tests
    substitute a fake runner; it receives the compiled task list plus
    the :class:`BatchRunner` keyword arguments and must return an
    object whose ``run()`` yields a report with ``entries``.
    """
    if repeats is not None:
        spec = spec.replace(repeats=repeats)
    machines = (list(spec.machines) if spec.machines
                else discover.subset_names(spec.subset))
    dropped_machines = 0
    if limit is not None and limit < len(machines):
        dropped_machines = len(machines) - limit
        machines = machines[:limit]
        if progress is not None:
            progress(f"{spec.name}: --limit {limit} dropped "
                     f"{dropped_machines} machine(s)")
    tasks = compile_tasks(spec, machines)
    width = discover.bench_jobs() if jobs is None else max(1, int(jobs))

    factory = BatchRunner if runner_factory is None else runner_factory
    env_cache = (spec.kind == "table" and spec.cache != "auto")
    saved = os.environ.get("NOVA_CACHE")  # nova-lint: disable=NV010 -- save-for-restore, not a policy read; the env var is the only channel reaching spawned workers
    if env_cache:
        # table rows encode with their own option defaults inside the
        # worker; the env is the only channel that reaches them
        os.environ["NOVA_CACHE"] = spec.cache
    try:
        runner = factory(
            tasks, Path(run_dir),
            jobs=width,
            task_timeout=spec.task_timeout,
            retries=0,
            force=True,
            progress=progress,
        )
        report = runner.run()
    finally:
        if env_cache:
            if saved is None:
                os.environ.pop("NOVA_CACHE", None)
            else:
                os.environ["NOVA_CACHE"] = saved

    by_task: Dict[str, Dict] = {e["task"]: e
                                for e in getattr(report, "entries", [])}
    units = {}
    dropped: Dict[str, int] = {}
    for key, _machine, _algo, _seed in spec.units(machines):
        samples = []
        lost = 0
        for i in range(spec.repeats):
            entry = by_task.get(f"{key}@{_REP}{i}")
            sample = None if entry is None else _sample_of(entry, spec.kind)
            if sample is None:
                lost += 1
            else:
                samples.append(sample)
        if lost:
            dropped[key] = lost
        if samples:
            units[key] = summarize(samples)
    if not units:
        raise ValueError(
            f"sweep {spec.name!r} produced no usable samples "
            f"({len(tasks)} tasks; journal: {run_dir})")

    notes: Dict[str, object] = {}
    if dropped:
        notes["dropped_samples"] = dropped
    if dropped_machines:
        notes["machines_dropped_by_limit"] = dropped_machines
    return BenchRecord(
        suite=spec.name,
        units=units,
        environment=capture_environment(),
        timestamp=timestamp,
        label=label,
        spec={**spec.to_dict(), "machines": list(machines),
              "jobs": width, "limit": limit},
        notes=notes,
    )
