"""Machine-set and parallelism discovery for benchmark harnesses.

One home for the selection logic that used to be copy-pasted between
``benchmarks/conftest.py`` and the table CLI: which machines a harness
actually runs is the *table's* machine set intersected with the active
quick-slice (``NOVA_BENCH_SET``, default ``small``), and how wide it
runs comes from the runtime config (``bench_jobs`` — the deprecated
``NOVA_BENCH_JOBS`` still works through the shim).

Keeping this in the package (not in a conftest) means the pytest
harness, the ``nova table`` command, and the ``nova bench`` sweeps all
agree on what "the small slice of table 3" means.
"""

from __future__ import annotations

from typing import List, Optional

from repro import config as config_mod
from repro.fsm.benchmarks import benchmark_names

__all__ = [
    "DEFAULT_TASK_TIMEOUT",
    "bench_jobs",
    "bench_subset",
    "subset_names",
    "task_timeout",
]

#: Hard per-attempt kill for batched benchmark rows (seconds).
DEFAULT_TASK_TIMEOUT = 900.0


def bench_subset(default: str = "small") -> str:
    """The active quick-slice name (``NOVA_BENCH_SET``).

    Resolved through :func:`repro.config.bench_set`, so a
    ``$NOVA_CONFIG`` file or :func:`repro.config.config_scope` overlay
    can pin the slice with the usual precedence.
    """
    value = config_mod.bench_set()
    return value if value is not None else default


def subset_names(table: str = "paper30",
                 subset: Optional[str] = None) -> List[str]:
    """Machines to run: *table*'s set intersected with the active slice.

    The intersection preserves *table* order (paper row order).  When
    the slice shares nothing with the table — e.g. ``small`` against
    ``table5`` — the first three table machines stand in, so a harness
    always runs *something* representative rather than zero rows.
    """
    active = bench_subset() if subset is None else subset
    table_set = benchmark_names(table)
    if active == table:
        return table_set
    chosen = benchmark_names(active) if active != "paper30" else table_set
    names = [n for n in table_set if n in set(chosen)]
    return names or table_set[:3]


def bench_jobs() -> int:
    """Worker-process width for batched benchmark runs (>= 1)."""
    return config_mod.bench_jobs()


def task_timeout(default: float = DEFAULT_TASK_TIMEOUT) -> float:
    """Per-attempt hard-kill seconds (``NOVA_BENCH_TASK_TIMEOUT``).

    Parsing and the positive-seconds validation live in
    :mod:`repro.config`, which raises ``ValueError`` naming the
    offending source on a malformed value.
    """
    value = config_mod.bench_task_timeout()
    return value if value is not None else default
