"""The performance trajectory: append-only record store and regression gate.

``BENCH_TRAJECTORY.json`` is the repository's timing memory: one
:class:`~repro.bench.record.BenchRecord` appended per named suite per
PR, never rewritten.  The comparator aligns the latest record of a
suite against the most recent earlier record sharing at least one unit
(records from other environments or pre-rename suites simply don't
align) and reports per-unit speedups plus their geometric mean — the
geomean, not the arithmetic mean, because speedups are ratios and a 2×
win on one unit should exactly cancel a 2× loss on another.

The gate turns that comparison into an exit code: a geomean below
``1 − max_regress/100`` on any gated suite fails CI.  Suites with no
comparable baseline *pass* by default (a brand-new suite cannot be a
regression) unless ``require_baseline`` is set, which is how CI
distinguishes "first record ever" from "someone deleted the history".

Legacy one-off reports (``BENCH_PR6/7/8.json``) fold in through
:func:`import_legacy` as ``schema: 0`` records under ``legacy-*``
suite names: their numbers were measured under older protocols (no MAD
rejection, some without std at all), so they are kept for the history
but can never falsely align against a live gated suite.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.record import SCHEMA_VERSION, BenchRecord
from repro.bench.timing import SampleStats

__all__ = [
    "DEFAULT_GATE_SUITES",
    "DEFAULT_PATH",
    "TRAJECTORY_SCHEMA",
    "GateResult",
    "SuiteComparison",
    "append_record",
    "compare_suite",
    "gate",
    "import_legacy",
    "load_trajectory",
    "save_trajectory",
]

TRAJECTORY_SCHEMA = 1
DEFAULT_PATH = "BENCH_TRAJECTORY.json"

#: Suites whose regression fails CI (the substrate and table suites).
DEFAULT_GATE_SUITES = ("substrate", "table3", "table6", "table7")

#: The pre-observatory reports import_legacy knows how to fold in.
LEGACY_FILES = ("BENCH_PR6.json", "BENCH_PR7.json", "BENCH_PR8.json")


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------
def load_trajectory(path: Union[str, Path]) -> List[BenchRecord]:
    """Every record in the trajectory file (empty when absent)."""
    p = Path(path)
    if not p.exists():
        return []
    data = json.loads(p.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "records" not in data:
        raise ValueError(
            f"{p}: not a trajectory file (expected an object with a "
            f"'records' list)")
    schema = int(data.get("schema", 0))
    if schema > TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{p}: trajectory schema {schema} is newer than this "
            f"reader ({TRAJECTORY_SCHEMA}); upgrade before reading")
    return [BenchRecord.from_dict(d) for d in data["records"]]


def save_trajectory(path: Union[str, Path],
                    records: Sequence[BenchRecord]) -> None:
    """Atomically publish the full record list (tmp + fsync + replace)."""
    p = Path(path)
    payload = {
        "schema": TRAJECTORY_SCHEMA,
        "records": [r.to_dict() for r in records],
    }
    data = json.dumps(payload, indent=1, sort_keys=True) + "\n"
    tmp = p.with_name(f"{p.name}.{os.getpid()}.tmp")
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, p)


def append_record(path: Union[str, Path],
                  record: BenchRecord) -> List[BenchRecord]:
    """Append one record and return the new full history."""
    records = load_trajectory(path)
    records.append(record)
    save_trajectory(path, records)
    return records


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SuiteComparison:
    """Latest-vs-baseline alignment of one suite."""

    suite: str
    status: str  # "ok" | "no-record" | "no-baseline"
    geomean_speedup: Optional[float] = None
    unit_speedups: Dict[str, float] = field(default_factory=dict)
    current_label: str = ""
    baseline_label: str = ""
    units_compared: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "suite": self.suite,
            "status": self.status,
            "geomean_speedup": self.geomean_speedup,
            "units_compared": self.units_compared,
            "unit_speedups": {k: round(v, 4) for k, v in
                              sorted(self.unit_speedups.items())},
            "current_label": self.current_label,
            "baseline_label": self.baseline_label,
        }


def _geomean(values: Sequence[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compare_suite(records: Sequence[BenchRecord],
                  suite: str) -> SuiteComparison:
    """Latest record of *suite* vs the newest earlier comparable one.

    Comparable means: same suite name, schema >= 1 (legacy imports are
    history, not baselines), and at least one unit key in common with
    positive means on both sides.
    """
    history = [r for r in records if r.suite == suite and r.schema >= 1]
    if not history:
        return SuiteComparison(suite=suite, status="no-record")
    current = history[-1]
    for baseline in reversed(history[:-1]):
        speedups = {}
        for key, cur in current.units.items():
            base = baseline.units.get(key)
            if base is None or base.mean <= 0 or cur.mean <= 0:
                continue
            speedups[key] = base.mean / cur.mean
        if speedups:
            return SuiteComparison(
                suite=suite,
                status="ok",
                geomean_speedup=_geomean(list(speedups.values())),
                unit_speedups=speedups,
                current_label=current.label,
                baseline_label=baseline.label,
                units_compared=len(speedups),
            )
    return SuiteComparison(suite=suite, status="no-baseline",
                           current_label=current.label)


@dataclass(frozen=True)
class GateResult:
    """Aggregate gate verdict over the gated suites."""

    max_regress_pct: float
    comparisons: Tuple[SuiteComparison, ...]
    regressions: Tuple[str, ...]
    missing: Tuple[str, ...]   # gated suites with no comparable baseline

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "max_regress_pct": self.max_regress_pct,
            "regressions": list(self.regressions),
            "missing_baselines": list(self.missing),
            "suites": [c.to_dict() for c in self.comparisons],
        }


def gate(records: Sequence[BenchRecord],
         max_regress_pct: float,
         suites: Sequence[str] = DEFAULT_GATE_SUITES) -> GateResult:
    """Check every gated suite's latest record against its baseline.

    A suite regresses when its geomean speedup drops below
    ``1 − max_regress_pct/100``.  Suites without a comparable baseline
    are reported in ``missing`` and left to the caller's policy
    (``nova bench gate --require-baseline`` turns them into a distinct
    non-zero exit).
    """
    if max_regress_pct < 0:
        raise ValueError(
            f"max_regress_pct must be >= 0, got {max_regress_pct}")
    floor = 1.0 - max_regress_pct / 100.0
    comparisons = []
    regressions = []
    missing = []
    for suite in suites:
        comp = compare_suite(records, suite)
        comparisons.append(comp)
        if comp.status != "ok":
            missing.append(suite)
        elif comp.geomean_speedup is not None \
                and comp.geomean_speedup < floor:
            regressions.append(suite)
    return GateResult(
        max_regress_pct=max_regress_pct,
        comparisons=tuple(comparisons),
        regressions=tuple(regressions),
        missing=tuple(missing),
    )


# ----------------------------------------------------------------------
# legacy import
# ----------------------------------------------------------------------
def _legacy_stats(d: Dict, samples_default: int = 1) -> SampleStats:
    """A schema-0 SampleStats from a legacy ``{mean,std,samples}`` blob.

    min/median were not recorded by the old protocols; they are
    reconstructed as the mean, which keeps the dataclass total without
    inventing precision — comparisons only ever read ``mean``.
    """
    mean = float(d["mean"])
    return SampleStats(
        mean=mean,
        std=float(d.get("std", 0.0)),
        min=mean,
        median=mean,
        samples=int(d.get("samples", samples_default)),
    )


def _import_pr6(data: Dict, source: str) -> List[BenchRecord]:
    kernel_units = {}
    for machine, info in data.get("cover_kernels", {}).items():
        for op, blob in info.get("ops", {}).items():
            for variant in ("before_s", "after_s"):
                if variant in blob:
                    key = f"{machine}/{op}/{variant[:-2]}"
                    kernel_units[key] = _legacy_stats(blob[variant])
    table_units = {}
    for table, variants in data.get("tables_wall_clock_s", {}).items():
        for variant, blob in variants.items():
            table_units[f"{table}/{variant}"] = _legacy_stats(blob)
    out = []
    if kernel_units:
        out.append(BenchRecord(
            suite="legacy-pr6-cover-kernels", units=kernel_units,
            schema=0, label="PR6",
            notes={"source": source, "reconstructed": True,
                   "protocol": data.get("protocol", {}).get("kernel_suite",
                                                            "")}))
    if table_units:
        out.append(BenchRecord(
            suite="legacy-pr6-tables", units=table_units,
            schema=0, label="PR6",
            notes={"source": source, "reconstructed": True,
                   "protocol": data.get("protocol", {}).get("tables", "")}))
    return out


def _import_pr7(data: Dict, source: str) -> List[BenchRecord]:
    units = {}
    for phase in ("cold", "warm", "uncoalesced", "coalesced", "overload"):
        blob = data.get(phase)
        if not isinstance(blob, dict):
            continue
        if phase == "overload":
            # overload recorded only its reject latency distribution
            blob = blob.get("reject_latency_ms")
            if not isinstance(blob, dict):
                continue
        elif phase == "uncoalesced" and "wall_ms" in blob:
            # one wall-clock figure for the whole 8-client burst
            blob = {"mean_ms": blob["wall_ms"],
                    "clients": blob.get("clients", 1)}
        if "mean_ms" not in blob:
            continue
        mean = float(blob["mean_ms"]) / 1e3
        units[phase] = SampleStats(
            mean=mean,
            std=0.0,  # the PR7 report recorded p50/max, never a std
            min=mean,
            median=float(blob.get("p50_ms", blob["mean_ms"])) / 1e3,
            samples=int(blob.get("n", blob.get("clients", 1))),
        )
    if not units:
        return []
    return [BenchRecord(
        suite="legacy-pr7-encode-service", units=units, schema=0,
        label="PR7",
        notes={"source": source, "reconstructed": True,
               "python": data.get("python", "")})]


def _import_pr8(data: Dict, source: str) -> List[BenchRecord]:
    units = {}
    for row in data.get("scaling", []):
        if "claimants" in row and "wall_s" in row:
            mean = float(row["wall_s"])
            units[f"claimants{row['claimants']}"] = SampleStats(
                mean=mean, std=0.0, min=mean, median=mean, samples=1)
    reclaim = data.get("reclaim")
    if isinstance(reclaim, dict) and "wall_s" in reclaim:
        mean = float(reclaim["wall_s"])
        units["reclaim"] = SampleStats(
            mean=mean, std=0.0, min=mean, median=mean, samples=1)
    if not units:
        return []
    return [BenchRecord(
        suite="legacy-pr8-steal", units=units, schema=0, label="PR8",
        notes={"source": source, "reconstructed": True,
               "machines": list(data.get("machines", []))})]


def import_legacy(root: Union[str, Path],
                  trajectory: Union[str, Path, None] = None,
                  ) -> List[BenchRecord]:
    """Fold every legacy ``BENCH_PR*.json`` under *root* into records.

    Returns the imported records; when *trajectory* is given they are
    appended to it — skipping any whose (suite, label) already exists,
    so the one-shot import is idempotent.
    """
    imported: List[BenchRecord] = []
    for name in LEGACY_FILES:
        path = Path(root) / name
        if not path.exists():
            continue
        data = json.loads(path.read_text(encoding="utf-8"))
        if name == "BENCH_PR6.json":
            imported.extend(_import_pr6(data, name))
        elif name == "BENCH_PR7.json":
            imported.extend(_import_pr7(data, name))
        else:
            imported.extend(_import_pr8(data, name))
    if trajectory is not None:
        existing = load_trajectory(trajectory)
        seen = {(r.suite, r.label) for r in existing}
        fresh = [r for r in imported if (r.suite, r.label) not in seen]
        if fresh:
            save_trajectory(trajectory, existing + fresh)
    return imported


# keep the public schema constant importable from one obvious place
RECORD_SCHEMA = SCHEMA_VERSION
