"""Declarative sweep specifications for the benchmark observatory.

A :class:`SweepSpec` names one *suite*: the cross product of machines ×
algorithms × seeds, each unit timed ``repeats`` times after ``warmup``
discarded runs, under explicit cache policy and
:class:`~repro.encoding.options.EncodeOptions` overrides.  Specs are
data, not code — loadable from JSON or TOML (:func:`load_spec`) and
checked eagerly at construction, so a typo'd algorithm name or a
negative repeat count fails when the spec is *read*, not twenty minutes
into a sweep.

The spec deliberately reuses the vocabulary of the batch runner and the
table harness: ``kind="encode"`` units become
:class:`~repro.runner.batch.BatchTask` encode tasks, ``kind="table"``
units become table-row tasks, and ``subset`` names the same machine
sets (``small`` / ``paper30`` / ``table5`` / ``table7`` / ``all``) the
``NOVA_BENCH_SET`` harness uses — compilation onto the runner lives in
:mod:`repro.bench.sweep`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.encoding.options import ALGORITHMS, CACHE_POLICIES

__all__ = [
    "SweepSpec",
    "load_spec",
]

_KINDS = ("encode", "table")

#: Fields a spec file may set; anything else is rejected eagerly.
_SPEC_FIELDS = (
    "name", "kind", "machines", "subset", "table", "algorithms",
    "seeds", "options", "repeats", "warmup", "cache", "task_timeout",
)


@dataclass(frozen=True)
class SweepSpec:
    """One named benchmark suite: what to run and how to time it.

    ``machines`` lists units explicitly; ``subset`` names a benchmark
    set (resolved at compile time through
    :func:`repro.bench.discover.subset_names`, which intersects it with
    the active ``NOVA_BENCH_SET`` slice).  Exactly one of the two must
    be given.  ``cache`` defaults to ``"off"`` — a timing sweep that
    silently hits the encode cache measures a dict lookup, not the
    algorithm; specs must opt *in* to cached timing.
    """

    name: str
    kind: str = "encode"
    machines: Tuple[str, ...] = ()
    subset: str = ""
    table: Optional[int] = None
    algorithms: Tuple[str, ...] = ("ihybrid",)
    seeds: Tuple[int, ...] = ()
    options: Dict[str, object] = field(default_factory=dict)
    repeats: int = 3
    warmup: int = 1
    cache: str = "off"
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sweep spec needs a non-empty name")
        if self.kind not in _KINDS:
            raise ValueError(
                f"spec {self.name!r}: unknown kind {self.kind!r} "
                f"(use {'/'.join(_KINDS)})")
        if bool(self.machines) == bool(self.subset):
            raise ValueError(
                f"spec {self.name!r}: give exactly one of 'machines' "
                f"(explicit list) or 'subset' (named set)")
        if self.kind == "table":
            if self.table is None:
                raise ValueError(
                    f"spec {self.name!r}: kind 'table' needs a table "
                    f"number")
        elif self.table is not None:
            raise ValueError(
                f"spec {self.name!r}: 'table' only applies to kind "
                f"'table'")
        if not self.algorithms:
            raise ValueError(
                f"spec {self.name!r}: needs at least one algorithm")
        for algo in self.algorithms:
            if algo not in ALGORITHMS:
                raise ValueError(
                    f"spec {self.name!r}: unknown algorithm {algo!r} "
                    f"(known: {', '.join(ALGORITHMS)})")
        if self.repeats < 1:
            raise ValueError(
                f"spec {self.name!r}: repeats must be >= 1, got "
                f"{self.repeats}")
        if self.warmup < 0:
            raise ValueError(
                f"spec {self.name!r}: warmup must be >= 0, got "
                f"{self.warmup}")
        if self.cache not in CACHE_POLICIES:
            raise ValueError(
                f"spec {self.name!r}: unknown cache policy "
                f"{self.cache!r} (use {'/'.join(CACHE_POLICIES)})")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(
                f"spec {self.name!r}: task_timeout must be positive, "
                f"got {self.task_timeout}")
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise ValueError(
                    f"spec {self.name!r}: seeds must be integers, got "
                    f"{seed!r}")

    # ------------------------------------------------------------------
    def units(self, machines: Optional[List[str]] = None,
              ) -> List[Tuple[str, str, str, Optional[int]]]:
        """The unit grid: ``(unit_key, machine, algorithm, seed)``.

        *machines* overrides the spec's own list (the compiler passes
        the resolved subset).  Unit keys are ``machine/algorithm`` plus
        ``/s<seed>`` only when the spec sweeps seeds, so suites without
        a seed dimension keep short stable keys across PRs.
        """
        names = list(machines) if machines is not None else \
            list(self.machines)
        seeds: List[Optional[int]] = list(self.seeds) or [None]
        out = []
        for machine in names:
            for algo in self.algorithms:
                for seed in seeds:
                    key = f"{machine}/{algo}"
                    if seed is not None:
                        key += f"/s{seed}"
                    out.append((key, machine, algo, seed))
        return out

    def to_dict(self) -> Dict[str, object]:
        d = dataclasses.asdict(self)
        d["machines"] = list(self.machines)
        d["algorithms"] = list(self.algorithms)
        d["seeds"] = list(self.seeds)
        return d

    @classmethod
    def from_dict(cls, d: Dict, source: str = "spec") -> "SweepSpec":
        unknown = sorted(set(d) - set(_SPEC_FIELDS))
        if unknown:
            raise ValueError(
                f"{source}: unknown spec key(s) {', '.join(unknown)} "
                f"(known: {', '.join(_SPEC_FIELDS)})")
        kwargs = dict(d)
        for key in ("machines", "algorithms"):
            if key in kwargs:
                kwargs[key] = tuple(str(x) for x in kwargs[key])
        if "seeds" in kwargs:
            kwargs["seeds"] = tuple(kwargs["seeds"])
        if "options" in kwargs and not isinstance(kwargs["options"], dict):
            raise ValueError(f"{source}: 'options' must be a table/object")
        return cls(**kwargs)

    def replace(self, **changes: object) -> "SweepSpec":
        return dataclasses.replace(self, **changes)


def load_spec(path: Union[str, Path]) -> SweepSpec:
    """Read one :class:`SweepSpec` from a ``.json`` or ``.toml`` file."""
    p = Path(path)
    if p.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - py3.10 only
            raise ValueError(
                f"{p}: TOML specs need Python 3.11+ (tomllib); use the "
                f"JSON form on this interpreter") from exc

        with open(p, "rb") as fh:
            data = tomllib.load(fh)
    elif p.suffix == ".json":
        data = json.loads(p.read_text(encoding="utf-8"))
    else:
        raise ValueError(
            f"{p}: unsupported spec format {p.suffix!r} (use .json or "
            f".toml)")
    if not isinstance(data, dict):
        raise ValueError(f"{p}: spec file must contain one object/table")
    return SweepSpec.from_dict(data, source=str(p))
