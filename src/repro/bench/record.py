"""Schema-versioned benchmark records and environment capture.

One record format is shared by every producer and consumer of timing
data: ``nova bench run`` emits it, the trajectory store
(:mod:`repro.bench.trajectory`) appends and compares it, and the legacy
``BENCH_PR6/7/8.json`` importer folds old one-off reports into it (with
``schema: 0`` provenance so consumers know those fields were
reconstructed, not measured under this protocol).

A record is one *suite* (a named :class:`~repro.bench.spec.SweepSpec`)
run once: per-unit :class:`~repro.bench.timing.SampleStats` keyed by
``machine/algorithm[/seed]``, plus the environment snapshot that makes
two records comparable (or tells you why they are not — comparing a
``numpy``-substrate record against a ``python`` one measures the
backend, not the PR).

Schema policy: ``SCHEMA_VERSION`` bumps only when a field changes
meaning or is removed; *adding* optional fields is backward compatible
and does not bump.  Loaders accept any ``schema <= SCHEMA_VERSION`` and
must tolerate unknown keys.  Records never mutate once appended.

Determinism contract (NV005): nothing here reads the wall clock — the
``timestamp`` is a parameter, supplied by the CLI layer.
"""

from __future__ import annotations

import dataclasses
import os
import platform
import sys
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bench.timing import SampleStats

__all__ = [
    "SCHEMA_VERSION",
    "BenchRecord",
    "capture_environment",
]

#: Version of the record layout below.  0 is reserved for records
#: reconstructed from pre-observatory BENCH_PR*.json reports.
SCHEMA_VERSION = 1


def capture_environment() -> Dict[str, object]:
    """Snapshot of everything that makes timing numbers (in)comparable.

    Captured once per record, not per unit: the substrate backend, the
    interpreter, and the host do not change mid-sweep.
    """
    from repro import __version__
    from repro.logic import backend

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "substrate": backend.ACTIVE,
        "repro_version": __version__,
    }


@dataclass(frozen=True)
class BenchRecord:
    """One suite run: per-unit stats plus provenance.

    ``units`` keys are ``machine/algorithm`` (plus ``/s<seed>`` when the
    spec sweeps seeds) so two records of the same suite align unit-wise
    for the speedup comparison.
    """

    suite: str
    units: Dict[str, SampleStats]
    environment: Dict[str, object] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION
    timestamp: Optional[float] = None   # supplied by the caller (CLI)
    label: str = ""                     # free-form: PR id, git sha, ...
    spec: Dict[str, object] = field(default_factory=dict)
    notes: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.suite:
            raise ValueError("BenchRecord.suite must be non-empty")
        if self.schema > SCHEMA_VERSION:
            raise ValueError(
                f"record schema {self.schema} is newer than this "
                f"reader (schema {SCHEMA_VERSION}); upgrade before "
                f"comparing")
        if self.schema >= 1 and not self.units:
            raise ValueError(
                f"suite {self.suite!r}: a schema>=1 record needs at "
                f"least one measured unit")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "suite": self.suite,
            "timestamp": self.timestamp,
            "label": self.label,
            "environment": dict(self.environment),
            "spec": dict(self.spec),
            "units": {name: stats.to_dict()
                      for name, stats in sorted(self.units.items())},
            "notes": dict(self.notes),
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "BenchRecord":
        units = {name: SampleStats.from_dict(stats)
                 for name, stats in dict(d.get("units", {})).items()}
        return cls(
            suite=str(d["suite"]),
            units=units,
            environment=dict(d.get("environment", {})),
            schema=int(d.get("schema", 0)),
            timestamp=d.get("timestamp"),
            label=str(d.get("label", "")),
            spec=dict(d.get("spec", {})),
            notes=dict(d.get("notes", {})),
        )

    def replace(self, **changes: object) -> "BenchRecord":
        return dataclasses.replace(self, **changes)
