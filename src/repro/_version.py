"""Single source of the package version.

Kept in its own leaf module (instead of ``repro/__init__``) so low-level
modules — notably :mod:`repro.cache.fingerprint`, which salts every
cache key with the version — can import it without pulling the whole
public API and creating an import cycle.

Compatibility policy (see README §Versioning): the modules re-exported
by :mod:`repro.api` are stable within a major version; the version
string participates in cache fingerprints, so *any* bump invalidates
previously cached encode results by construction.
"""

__version__ = "1.2.0"
