"""Batched whole-cover kernels: the pluggable logic substrate.

Every NOVA algorithm bottoms out in per-cube integer operations —
containment scans, cofactors, distance tests — over
:class:`~repro.logic.cover.Cover` objects.  This module concentrates
those inner loops into *whole-cover kernels* so they run once per cover
instead of once per cube, and makes the implementation swappable:

* the **python** backend (always available) keeps cubes as plain ints
  and runs hoisted, allocation-free loops — the reference
  implementation and the bit-identity oracle;
* the **numpy** backend packs each cover into a contiguous
  ``(n_cubes, n_words)`` array of 64-bit machine words and answers the
  same kernels with vectorized bitwise arithmetic
  (``np.bitwise_count`` for popcounts).  Small covers are delegated to
  the python kernels — below :data:`MIN_BATCH` cubes the array setup
  costs more than the loop it replaces.

**The bit-identity contract.**  Both backends MUST return identical
values for identical inputs: same cubes, same order, same tie-breaks.
Kernels never reorder results (boolean row selection preserves input
order; :func:`single_cube_containment` sorts by the canonical
``(minterm count desc, cube value asc)`` key in both backends).  The
test-suite enforces the contract with property tests
(``tests/test_backend.py``) and whole-pipeline encode comparisons
(``benchmarks/check_backend_identity.py``), so an encoding produced
under ``NOVA_SUBSTRATE=numpy`` is bit-for-bit the one the pure-python
substrate produces.

Selection happens once at import from the unified runtime config
(:mod:`repro.config`): the ``substrate`` field — set in a
``$NOVA_CONFIG`` file, or via the deprecated ``NOVA_SUBSTRATE``
variable (``python`` | ``numpy``; default ``python``).  Tests and
benchmarks may switch at runtime with :func:`select` or the
:func:`use` context manager — the swap is atomic (one module global).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence, Tuple

from repro import config as config_mod
from repro import perf

__all__ = [
    "ACTIVE",
    "MIN_BATCH",
    "available_backends",
    "kernels",
    "select",
    "use",
]

#: Covers smaller than this are answered by the python kernels even
#: under the numpy backend: packing dominates below it.  Results are
#: identical either way (the bit-identity contract), so the threshold
#: is a pure performance knob.
MIN_BATCH = 64

VALID_BACKENDS = ("python", "numpy")


def _count_kernel_call() -> None:
    stats = perf.STATS
    if stats is not None:
        stats.kernel_batch_calls += 1


# ----------------------------------------------------------------------
# per-variable profile consumed by the URP recursion
# ----------------------------------------------------------------------
#: One entry per variable: (non-full cube count, binate flag, OR of the
#: non-full fields, masked in place).  ``urp`` derives its leaf checks,
#: the unate-reduction cofactor and the Shannon split variable from one
#: profile instead of three per-cube scans.
VarProfile = List[Tuple[int, bool, int]]


# ======================================================================
# python kernels — the reference implementation
# ======================================================================
class PythonKernels:
    """Hoisted pure-python loops over lists of cube ints."""

    name = "python"

    @staticmethod
    def pack(fmt, cubes: Sequence[int]):
        """Reusable cover handle: the python backend needs no packing."""
        return list(cubes)

    @staticmethod
    def cofactor(fmt, cubes, against: int) -> List[int]:
        """Cofactor every cube against *against*; drops non-intersecting
        cubes, preserves order."""
        _count_kernel_call()
        masks = fmt.masks
        raise_mask = fmt.universe & ~against
        out: List[int] = []
        append = out.append
        for c in cubes:
            x = c & against
            for m in masks:
                if not x & m:
                    break
            else:
                append(c | raise_mask)
        return out

    @staticmethod
    def intersect_cube(fmt, cubes, cube: int) -> List[int]:
        """Intersect every cube with *cube*; drops empty results,
        preserves order."""
        _count_kernel_call()
        masks = fmt.masks
        out: List[int] = []
        append = out.append
        for c in cubes:
            r = c & cube
            for m in masks:
                if not r & m:
                    break
            else:
                append(r)
        return out

    @staticmethod
    def contain_any(fmt, cubes, cube: int) -> bool:
        """True when some single cube of the cover contains *cube*."""
        _count_kernel_call()
        for k in cubes:
            if cube & ~k == 0:
                return True
        return False

    @staticmethod
    def any_intersects(fmt, cubes, cube: int) -> bool:
        """True when *cube* shares a minterm with some cube of the cover."""
        _count_kernel_call()
        masks = fmt.masks
        for c in cubes:
            x = c & cube
            for m in masks:
                if not x & m:
                    break
            else:
                return True
        return False

    @staticmethod
    def contained_mask(fmt, cubes, cube: int) -> List[bool]:
        """Per-cube flags: cover cube i is contained in *cube*."""
        _count_kernel_call()
        return [c & ~cube == 0 for c in cubes]

    @staticmethod
    def intersect_counts(fmt, cubes, probes: Sequence[int]) -> List[int]:
        """For each probe cube, how many cover cubes it intersects."""
        _count_kernel_call()
        masks = fmt.masks
        counts: List[int] = []
        append = counts.append
        for p in probes:
            n = 0
            for c in cubes:
                x = c & p
                for m in masks:
                    if not x & m:
                        break
                else:
                    n += 1
            append(n)
        return counts

    @staticmethod
    def minterm_counts(fmt, cubes) -> List[int]:
        """Minterm count of every cube (product of field popcounts)."""
        _count_kernel_call()
        masks = fmt.masks
        out: List[int] = []
        append = out.append
        for c in cubes:
            n = 1
            for m in masks:
                n *= (c & m).bit_count()
            append(n)
        return out

    @staticmethod
    def distances(fmt, cubes, cube: int) -> List[int]:
        """Per-cube distance to *cube* (variables with empty intersection)."""
        _count_kernel_call()
        masks = fmt.masks
        out: List[int] = []
        append = out.append
        for c in cubes:
            x = c & cube
            d = 0
            for m in masks:
                if not x & m:
                    d += 1
            append(d)
        return out

    @staticmethod
    def single_cube_containment(fmt, cubes) -> List[int]:
        """Drop cubes contained in another single cube; canonical order.

        Candidates are deduplicated and visited in decreasing
        minterm-count order with the cube value as a deterministic
        tie-break — the order is part of the bit-identity contract
        (set iteration order, the pre-6.x behaviour, varied with
        insertion history).
        """
        _count_kernel_call()
        masks = fmt.masks

        def mc(c: int) -> int:
            n = 1
            for m in masks:
                n *= (c & m).bit_count()
            return n

        order = sorted(set(cubes), key=lambda c: (-mc(c), c))
        kept: List[int] = []
        kept_pc: List[int] = []
        for c in order:
            pc = c.bit_count()
            contained = False
            for k, kpc in zip(kept, kept_pc):
                if kpc > pc and c & ~k == 0:
                    contained = True
                    break
            if not contained:
                kept.append(c)
                kept_pc.append(pc)
        return kept

    @staticmethod
    def var_profile(fmt, cubes) -> VarProfile:
        """(non-full count, binate flag, non-full field union) per variable."""
        _count_kernel_call()
        out: List[Tuple[int, bool, int]] = []
        append = out.append
        for m in fmt.masks:
            count = 0
            first = -1
            binate = False
            union = 0
            for c in cubes:
                f = c & m
                if f != m:
                    count += 1
                    union |= f
                    if first < 0:
                        first = f
                    elif f != first:
                        binate = True
            append((count, binate, union))
        return out

    @staticmethod
    def consensus_scan(fmt, cubes, cube: int) -> List[int]:
        """MV consensus of *cube* with every cover cube, flattened.

        Per pair: nothing at distance > 1; the classic single consensus
        cube at distance 1 (dropped when empty); at distance 0 one cube
        per variable with that variable's parts unioned (the
        multiple-valued completeness requirement of iterated
        consensus — see :mod:`repro.logic.exact`).
        """
        _count_kernel_call()
        masks = fmt.masks
        out: List[int] = []
        append = out.append
        for b in cubes:
            inter = cube & b
            empty_m = -1
            n_empty = 0
            for m in masks:
                if not inter & m:
                    n_empty += 1
                    if n_empty > 1:
                        break
                    empty_m = m
            if n_empty > 1:
                continue
            union = cube | b
            if n_empty == 1:
                c = (inter & ~empty_m) | (union & empty_m)
                for m in masks:
                    if not c & m:
                        break
                else:
                    append(c)
                continue
            for m in masks:
                append((inter & ~m) | (union & m))
        return out

    # -- encoding-cube (Face) kernels ----------------------------------
    @staticmethod
    def face_members_ok(states: Sequence[int], codes: Sequence[int],
                        ic: int, care: int, val: int) -> bool:
        """§3.1 criterion over placed codes: state code lies in the face
        (care, val) exactly when the state is a member of *ic*."""
        _count_kernel_call()
        for s, code in zip(states, codes):
            if (((code ^ val) & care) == 0) != bool((ic >> s) & 1):
                return False
        return True

    @staticmethod
    def face_vertices(k: int, care: int, val: int) -> List[int]:
        """Sorted codes of the face's vertices."""
        _count_kernel_call()
        free = [i for i in range(k) if not (care >> i) & 1]
        out = []
        for bits in range(1 << len(free)):
            code = val
            for j, pos in enumerate(free):
                if (bits >> j) & 1:
                    code |= 1 << pos
            out.append(code)
        out.sort()
        return out


# ======================================================================
# numpy kernels — packed machine-word arrays
# ======================================================================
def _build_numpy_kernels():
    """Construct the numpy backend (raises ImportError without numpy)."""
    import numpy as np

    _PY = PythonKernels
    U64 = np.dtype("<u8")

    M64 = (1 << 64) - 1

    class _FormatData:
        """Per-format packing tables, cached on the Format object.

        The gather tables exploit that a variable's part field almost
        always lies inside one 64-bit word: ``arr[..., var_word] &
        var_wmask`` extracts every variable's field with a single fancy
        index, keeping the per-variable tests two-dimensional no matter
        how wide the format is.  The rare fields that straddle a word
        boundary (possible only for multi-valued variables, and only at
        one boundary since parts <= 64) are patched per variable from
        the ``straddle`` list.
        """

        __slots__ = ("nwords", "nbytes", "vmasks", "universe",
                     "int_universe", "int64_counts", "var_word",
                     "var_wmask", "straddle", "ra_ok", "var_shift",
                     "part_full", "ra_straddle")

        def __init__(self, fmt):
            self.nwords = (fmt.width + 63) // 64
            self.nbytes = self.nwords * 8
            self.int_universe = fmt.universe
            self.vmasks = np.array(
                [self._words(m) for m in fmt.masks], dtype=U64)
            self.universe = np.array(self._words(fmt.universe), dtype=U64)
            # minterm products fit int64 when the theoretical maximum
            # (all fields full) does; otherwise fall back to exact
            # python products so overflow can never corrupt a sort key
            max_product = 1
            for p in fmt.parts:
                max_product *= p
            self.int64_counts = max_product < (1 << 62)
            # per-variable word-gather tables
            var_word: List[int] = []
            var_wmask: List[int] = []
            straddle = []
            for v, (off, p) in enumerate(zip(fmt.offsets, fmt.parts)):
                w0, w1 = off // 64, (off + p - 1) // 64
                var_word.append(w0)
                var_wmask.append((fmt.masks[v] >> (64 * w0)) & M64)
                if w0 != w1:
                    straddle.append((v, [
                        (w, np.uint64((fmt.masks[v] >> (64 * w)) & M64))
                        for w in range(w0, w1 + 1)]))
            self.var_word = np.array(var_word, dtype=np.intp)
            self.var_wmask = np.array(var_wmask, dtype=U64)
            self.straddle = straddle
            # right-aligned field extraction (var_profile); needs every
            # part to fit one word so straddles span exactly two words
            self.ra_ok = all(p <= 64 for p in fmt.parts)
            if self.ra_ok:
                self.var_shift = np.array(
                    [off % 64 for off in fmt.offsets], dtype=U64)
                self.part_full = np.array(
                    [(1 << p) - 1 for p in fmt.parts], dtype=U64)
                self.ra_straddle = [
                    (v, parts_w[0][0], np.uint64(fmt.offsets[v] % 64),
                     np.uint64(64 - fmt.offsets[v] % 64))
                    for v, parts_w in straddle]
            else:  # pragma: no cover - parts > 64 never in benchmarks
                self.var_shift = self.part_full = None
                self.ra_straddle = []

        def _words(self, value: int) -> List[int]:
            return [(value >> (64 * j)) & M64
                    for j in range(self.nwords)]

    def _fmt_data(fmt) -> _FormatData:
        data = fmt._kcache
        if data is None:
            data = fmt._kcache = _FormatData(fmt)
        return data

    class Packed:
        """A cover packed once, reused across many kernel calls.

        ``inv`` (the bitwise complement, used by containment tests) is
        derived lazily and cached: espresso's expand asks thousands of
        containment/intersection questions against one off-set.
        """

        __slots__ = ("cubes", "arr", "_inv")

        def __init__(self, fd: _FormatData, cubes: Sequence[int]):
            self.cubes = list(cubes)
            self.arr = _pack_list(fd, self.cubes)
            self._inv = None

        def __len__(self) -> int:
            return len(self.cubes)

        def __getitem__(self, key):
            """Slice into a view-sharing Packed (no repacking).

            ``all_primes`` packs each round's pool once and scans
            shrinking tails of it; a slice reuses the parent's array
            (and its cached complement) as numpy views.
            """
            if not isinstance(key, slice):
                raise TypeError("Packed supports slice indexing only")
            view = Packed.__new__(Packed)
            view.cubes = self.cubes[key]
            view.arr = self.arr[key]
            view._inv = None if self._inv is None else self._inv[key]
            return view

        @property
        def inv(self):
            if self._inv is None:
                self._inv = ~self.arr
            return self._inv

    def _pack_list(fd: _FormatData, cubes: Sequence[int]):
        n = len(cubes)
        if n == 0:
            return np.empty((0, fd.nwords), dtype=U64)
        if fd.nwords == 1:
            return np.asarray(cubes, dtype=U64).reshape(n, 1)
        nbytes = fd.nbytes
        buf = b"".join(c.to_bytes(nbytes, "little") for c in cubes)
        return np.frombuffer(buf, dtype=U64).reshape(n, fd.nwords)

    def _coerce(fd: _FormatData, cubes):
        """(list, packed array) from either a raw sequence or a Packed."""
        if isinstance(cubes, Packed):
            return cubes.cubes, cubes.arr
        cubes = list(cubes)
        return cubes, _pack_list(fd, cubes)

    def _cube_words(fd: _FormatData, cube: int):
        if fd.nwords == 1:
            return np.uint64(cube)  # scalar broadcasts over (n, 1)
        return np.frombuffer(cube.to_bytes(fd.nbytes, "little"), dtype=U64)

    def _unpack(fd: _FormatData, arr) -> List[int]:
        if arr.shape[0] == 0:
            return []
        if fd.nwords == 1:
            return arr.ravel().tolist()
        # column-wise: one C-level tolist per word, then shift-combine —
        # much cheaper than per-row bytes round-trips
        out = arr[:, 0].tolist()
        for j in range(1, fd.nwords):
            shift = 64 * j
            out = [o | (w << shift) for o, w in zip(out, arr[:, j].tolist())]
        return out

    def _fields_nonzero(fd: _FormatData, arr):
        """(..., num_vars) bools: variable field non-zero in each row.

        One word-gather regardless of format width; straddling
        variables are patched from their word fragments.
        """
        nz = (arr[..., fd.var_word] & fd.var_wmask) != 0
        for v, parts_w in fd.straddle:
            w, mw = parts_w[0]
            acc = arr[..., w] & mw
            for w, mw in parts_w[1:]:
                acc = acc | (arr[..., w] & mw)
            nz[..., v] = acc != 0
        return nz

    class NumpyKernels:
        """Packed-word vectorized kernels (bit-identical to python)."""

        name = "numpy"

        @staticmethod
        def pack(fmt, cubes: Sequence[int]):
            return Packed(_fmt_data(fmt), cubes)

        @staticmethod
        def cofactor(fmt, cubes, against: int) -> List[int]:
            if len(cubes) < MIN_BATCH:
                return _PY.cofactor(fmt, _raw(cubes), against)
            _count_kernel_call()
            fd = _fmt_data(fmt)
            _, arr = _coerce(fd, cubes)
            cw = _cube_words(fd, against)
            keep = _fields_nonzero(fd, arr & cw).all(axis=1)
            raised = arr[keep] | (fd.universe & ~cw)
            return _unpack(fd, raised)

        @staticmethod
        def intersect_cube(fmt, cubes, cube: int) -> List[int]:
            if len(cubes) < MIN_BATCH:
                return _PY.intersect_cube(fmt, _raw(cubes), cube)
            _count_kernel_call()
            fd = _fmt_data(fmt)
            _, arr = _coerce(fd, cubes)
            inter = arr & _cube_words(fd, cube)
            keep = _fields_nonzero(fd, inter).all(axis=1)
            return _unpack(fd, inter[keep])

        @staticmethod
        def contain_any(fmt, cubes, cube: int) -> bool:
            if len(cubes) < MIN_BATCH:
                return _PY.contain_any(fmt, _raw(cubes), cube)
            _count_kernel_call()
            fd = _fmt_data(fmt)
            if isinstance(cubes, Packed):
                inv = cubes.inv
            else:
                _, arr = _coerce(fd, cubes)
                inv = ~arr
            if fd.nwords == 1:
                return bool(((np.uint64(cube) & inv.ravel()) == 0).any())
            # unrolled column ops beat a 2D reduce at these word counts
            left = inv[:, 0] & np.uint64(cube & M64)
            for j in range(1, fd.nwords):
                left = left | (inv[:, j] & np.uint64((cube >> (64 * j))
                                                     & M64))
            return bool((left == 0).any())

        @staticmethod
        def any_intersects(fmt, cubes, cube: int) -> bool:
            if len(cubes) < MIN_BATCH:
                return _PY.any_intersects(fmt, _raw(cubes), cube)
            _count_kernel_call()
            fd = _fmt_data(fmt)
            _, arr = _coerce(fd, cubes)
            inter = arr & _cube_words(fd, cube)
            return bool(_fields_nonzero(fd, inter).all(axis=1).any())

        @staticmethod
        def contained_mask(fmt, cubes, cube: int) -> List[bool]:
            if len(cubes) < MIN_BATCH:
                return _PY.contained_mask(fmt, _raw(cubes), cube)
            _count_kernel_call()
            fd = _fmt_data(fmt)
            _, arr = _coerce(fd, cubes)
            inv = fd.int_universe & ~cube
            if fd.nwords == 1:
                return ((arr.ravel() & np.uint64(inv)) == 0).tolist()
            left = arr[:, 0] & np.uint64(inv & M64)
            for j in range(1, fd.nwords):
                left = left | (arr[:, j] & np.uint64((inv >> (64 * j))
                                                     & M64))
            return (left == 0).tolist()

        @staticmethod
        def intersect_counts(fmt, cubes, probes: Sequence[int]) -> List[int]:
            if len(cubes) * len(probes) < MIN_BATCH * MIN_BATCH:
                return _PY.intersect_counts(fmt, _raw(cubes), probes)
            _count_kernel_call()
            fd = _fmt_data(fmt)
            _, arr = _coerce(fd, cubes)
            counts: List[int] = []
            # chunk the probe axis: the (m, n, vars) intermediate is
            # the only sizeable allocation in the backend
            n = arr.shape[0]
            chunk = max(1, (1 << 22) // max(1, n * fd.nbytes))
            probes = list(probes)
            for lo in range(0, len(probes), chunk):
                parr = _pack_list(fd, probes[lo:lo + chunk])
                inter = arr[None, :, :] & parr[:, None, :]
                nz = _fields_nonzero(fd, inter)
                counts.extend(
                    nz.all(axis=2).sum(axis=1, dtype=np.int64).tolist())
            return counts

        @staticmethod
        def minterm_counts(fmt, cubes) -> List[int]:
            if len(cubes) < MIN_BATCH:
                return _PY.minterm_counts(fmt, _raw(cubes))
            fd = _fmt_data(fmt)
            if not fd.int64_counts:
                return _PY.minterm_counts(fmt, _raw(cubes))
            _count_kernel_call()
            _, arr = _coerce(fd, cubes)
            pc = np.bitwise_count(arr[:, fd.var_word] & fd.var_wmask)
            for v, parts_w in fd.straddle:
                w, mw = parts_w[0]
                acc = np.bitwise_count(arr[:, w] & mw)
                for w, mw in parts_w[1:]:
                    acc = acc + np.bitwise_count(arr[:, w] & mw)
                pc[:, v] = acc
            return np.prod(pc, axis=1, dtype=np.int64).tolist()

        @staticmethod
        def distances(fmt, cubes, cube: int) -> List[int]:
            if len(cubes) < MIN_BATCH:
                return _PY.distances(fmt, _raw(cubes), cube)
            _count_kernel_call()
            fd = _fmt_data(fmt)
            _, arr = _coerce(fd, cubes)
            inter = arr & _cube_words(fd, cube)
            nz = _fields_nonzero(fd, inter)
            return (nz.shape[1] - nz.sum(axis=1, dtype=np.int64)).tolist()

        @staticmethod
        def single_cube_containment(fmt, cubes) -> List[int]:
            if len(cubes) < MIN_BATCH:
                return _PY.single_cube_containment(fmt, _raw(cubes))
            _count_kernel_call()
            fd = _fmt_data(fmt)
            raw = cubes.cubes if isinstance(cubes, Packed) else list(cubes)
            uniq = list(set(raw))
            counts = NumpyKernels.minterm_counts(fmt, uniq)
            by_count = dict(zip(uniq, counts))
            order = sorted(uniq, key=lambda c: (-by_count[c], c))
            arr = _pack_list(fd, order)
            inv = ~arr
            n = arr.shape[0]
            # the sequential kept-scan is equivalent to: drop order[i]
            # iff it is contained in some STRICTLY EARLIER order[j]
            # (containment is transitive, so a dropped container always
            # has a kept ancestor).  The restriction to j < i matters:
            # empty cubes all have minterm count 0, so a subset can
            # sort before its container and must then be kept, exactly
            # as the python kernel keeps it.
            dropped = np.zeros(n, dtype=bool)
            col = np.arange(n)
            chunk = max(1, (1 << 22) // max(1, n * 8))
            for lo in range(0, n, chunk):
                rows = arr[lo:lo + chunk]
                left = rows[:, 0][:, None] & inv[:, 0][None, :]
                for j in range(1, fd.nwords):
                    left = left | (rows[:, j][:, None] & inv[:, j][None, :])
                cont = left == 0
                cont &= col[None, :] < (lo + np.arange(cont.shape[0]))[:, None]
                dropped[lo:lo + chunk] = cont.any(axis=1)
            return [c for c, d in zip(order, dropped.tolist()) if not d]

        @staticmethod
        def var_profile(fmt, cubes) -> VarProfile:
            if len(cubes) < MIN_BATCH:
                return _PY.var_profile(fmt, _raw(cubes))
            fd = _fmt_data(fmt)
            if not fd.ra_ok:  # pragma: no cover - parts > 64
                return _PY.var_profile(fmt, _raw(cubes))
            _count_kernel_call()
            _, arr = _coerce(fd, cubes)
            nvars = len(fmt.masks)
            # right-aligned per-variable fields, one gather wide
            F = (arr[:, fd.var_word] >> fd.var_shift) & fd.part_full
            for v, w0, s0, sl in fd.ra_straddle:
                F[:, v] = ((arr[:, w0] >> s0)
                           | (arr[:, w0 + 1] << sl)) & fd.part_full[v]
            nonfull = F != fd.part_full
            counts = nonfull.sum(axis=0, dtype=np.int64)
            unions = np.bitwise_or.reduce(
                np.where(nonfull, F, np.uint64(0)), axis=0)
            first_idx = np.argmax(nonfull, axis=0)
            ref = F[first_idx, np.arange(nvars)]
            differs = (F != ref[None, :]) & nonfull
            binate = differs.any(axis=0)
            ulist = unions.tolist()
            offsets = fmt.offsets
            return [(int(counts[v]), bool(binate[v]),
                     ulist[v] << offsets[v]) for v in range(nvars)]

        @staticmethod
        def consensus_scan(fmt, cubes, cube: int) -> List[int]:
            if len(cubes) < MIN_BATCH:
                return _PY.consensus_scan(fmt, _raw(cubes), cube)
            _count_kernel_call()
            fd = _fmt_data(fmt)
            raw, arr = _coerce(fd, cubes)
            cw = _cube_words(fd, cube)
            inter = arr & cw
            union = arr | cw
            nz = _fields_nonzero(fd, inter)
            n_empty = nz.shape[1] - nz.sum(axis=1, dtype=np.int64)
            out: List[int] = []
            nvars = len(fmt.masks)
            # distance-1 rows: raise the single empty variable
            d1 = n_empty == 1
            if d1.any():
                vi = np.argmin(nz[d1], axis=1)
                m = fd.vmasks[vi]
                cands = (inter[d1] & ~m) | (union[d1] & m)
                ok = _fields_nonzero(fd, cands).all(axis=1)
                d1_results = _unpack(fd, cands)
            # distance-0 rows: one cube per variable, variable order
            d0 = n_empty == 0
            if d0.any():
                i0 = inter[d0][:, None, :]
                u0 = union[d0][:, None, :]
                vm = fd.vmasks[None, :, :]
                allc = (i0 & ~vm) | (u0 & vm)
                d0_results = _unpack(fd, allc.reshape(-1, fd.nwords))
            # reassemble in row order (per-pair order is part of the
            # kernel contract even though the only caller builds a set);
            # only distance <= 1 rows produce output, so walk just those
            it1 = iter(zip(d1_results, ok.tolist())) if d1.any() else None
            pos0 = 0
            for i in np.flatnonzero(n_empty <= 1).tolist():
                if n_empty[i] == 1:
                    c, keep = next(it1)
                    if keep:
                        out.append(c)
                else:
                    out.extend(d0_results[pos0:pos0 + nvars])
                    pos0 += nvars
            return out

        # -- encoding-cube (Face) kernels ------------------------------
        @staticmethod
        def face_members_ok(states, codes, ic, care, val) -> bool:
            # int64 vector path needs every quantity to fit a machine
            # word; membership masks can exceed it for very wide FSMs
            if (len(states) < MIN_BATCH * 2 or ic.bit_length() >= 63
                    or care.bit_length() >= 63 or val.bit_length() >= 63):
                return _PY.face_members_ok(states, codes, ic, care, val)
            _count_kernel_call()
            s = np.fromiter(states, dtype=np.int64, count=len(states))
            c = np.fromiter(codes, dtype=np.int64, count=len(codes))
            in_face = ((c ^ val) & care) == 0
            member = ((ic >> s) & 1).astype(bool)
            return bool(np.array_equal(in_face, member))

        @staticmethod
        def face_vertices(k: int, care: int, val: int) -> List[int]:
            free = [i for i in range(k) if not (care >> i) & 1]
            nfree = len(free)
            if (1 << nfree) < MIN_BATCH * 4:
                return _PY.face_vertices(k, care, val)
            _count_kernel_call()
            bits = np.arange(1 << nfree, dtype=np.int64)
            codes = np.full(1 << nfree, val, dtype=np.int64)
            for j, pos in enumerate(free):
                codes |= ((bits >> j) & 1) << pos
            codes.sort()
            return codes.tolist()

    def _raw(cubes):
        return cubes.cubes if isinstance(cubes, Packed) else cubes

    return NumpyKernels


# ======================================================================
# backend selection
# ======================================================================
kernels = PythonKernels
ACTIVE = "python"
_NUMPY_KERNELS = None


def available_backends() -> Tuple[str, ...]:
    """Backends usable in this environment."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return ("python",)
    return VALID_BACKENDS


def select(name: str) -> str:
    """Install backend *name*; returns the previously active name.

    ``python`` is always available.  Requesting ``numpy`` without numpy
    installed raises ImportError rather than silently degrading — a
    user who set ``NOVA_SUBSTRATE=numpy`` expects the packed kernels.
    """
    global kernels, ACTIVE, _NUMPY_KERNELS
    if name not in VALID_BACKENDS:
        raise ValueError(
            f"unknown substrate backend {name!r}: choose from "
            f"{VALID_BACKENDS} (NOVA_SUBSTRATE)")
    prev = ACTIVE
    if name == "python":
        kernels = PythonKernels
    else:
        if _NUMPY_KERNELS is None:
            try:
                _NUMPY_KERNELS = _build_numpy_kernels()
            except ImportError as exc:
                raise ImportError(
                    "NOVA_SUBSTRATE=numpy requested but numpy is not "
                    "installed; install the 'numpy' extra "
                    "(pip install repro[numpy]) or unset NOVA_SUBSTRATE"
                ) from exc
        kernels = _NUMPY_KERNELS
    ACTIVE = name
    return prev


@contextmanager
def use(name: str) -> Iterator[None]:
    """Temporarily switch the active backend (tests and benchmarks)."""
    prev = select(name)
    try:
        yield
    finally:
        select(prev)


# Selection routes through the unified runtime config (repro.config):
# a set-but-unknown substrate — a typo'd NOVA_SUBSTRATE, a bad
# $NOVA_CONFIG key — is a hard import error (the config parser raises)
# rather than a silent fall-through to the python backend: a user who
# requested a backend expects the packed kernels, and discovering the
# typo from a 4x-slower benchmark run is the worst way to learn.
# Whitespace-only counts as unset; case is normalized so "NumPy" works.
_env_choice: Optional[str] = config_mod.substrate()
if _env_choice is not None:
    select(_env_choice)
