"""Espresso PLA-format reader/writer (.pla, including .mv multiple-valued).

Supports the subset of the Berkeley format the NOVA flow touches:

* ``.i N`` / ``.o N`` — binary inputs and outputs;
* ``.mv numvar numbin s1 s2 ...`` — mixed binary / MV variable layout
  (ESPRESSO-MV style: ``numbin`` binary variables followed by MV
  variables of the listed sizes; the last variable is the output part);
* ``.type f|fd|fr|fdr`` — which covers the rows describe (on / dc / off
  via the output character ``1`` / ``-`` / ``0``);
* ``.p`` (row count, recomputed), ``.e``/``.end``, comments (``#``).

Binary input fields use ``0``/``1``/``-``; MV fields are written as
position strings (e.g. ``0110``) separated by ``|`` as espresso does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.logic.cover import Cover
from repro.logic.cube import Format


@dataclass
class PLA:
    """A parsed PLA: format, covers, and layout metadata."""

    fmt: Format
    on: Cover
    dc: Cover
    off: Cover
    num_binary: int  # leading 2-part variables
    kind: str = "fd"  # .type
    input_labels: List[str] = field(default_factory=list)
    output_labels: List[str] = field(default_factory=list)

    @property
    def num_outputs(self) -> int:
        return self.fmt.parts[-1]


def _parse_binary_field(ch: str) -> int:
    try:
        return {"0": 1, "1": 2, "-": 3, "2": 3, "~": 0}[ch]
    except KeyError:
        raise ValueError(f"bad binary input character {ch!r}")


def parse_pla(text: str) -> PLA:
    """Parse espresso PLA text into covers (on/dc/off per ``.type``)."""
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    mv_sizes: Optional[List[int]] = None
    num_binary = 0
    kind = "fd"
    input_labels: List[str] = []
    output_labels: List[str] = []
    rows: List[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                num_inputs = int(parts[1])
            elif directive == ".o":
                num_outputs = int(parts[1])
            elif directive == ".mv":
                sizes = [int(x) for x in parts[1:]]
                num_vars, num_binary = sizes[0], sizes[1]
                mv_sizes = sizes[2:]
                if len(mv_sizes) != num_vars - num_binary:
                    raise ValueError(".mv sizes do not match variable count")
            elif directive == ".type":
                kind = parts[1]
            elif directive == ".ilb":
                input_labels = parts[1:]
            elif directive == ".ob":
                output_labels = parts[1:]
            elif directive in (".p", ".e", ".end"):
                continue
            else:
                raise ValueError(f"unknown PLA directive {directive!r}")
            continue
        rows.append(line)

    if mv_sizes is not None:
        parts_list = [2] * num_binary + mv_sizes
    else:
        if num_inputs is None or num_outputs is None:
            raise ValueError("PLA text missing .i/.o (or .mv) directives")
        num_binary = num_inputs
        parts_list = [2] * num_inputs + [max(1, num_outputs)]
    fmt = Format(parts_list)

    pla = PLA(fmt=fmt, on=Cover(fmt), dc=Cover(fmt), off=Cover(fmt),
              num_binary=num_binary, kind=kind,
              input_labels=input_labels, output_labels=output_labels)
    for row in rows:
        _parse_row(pla, row)
    return pla


def _parse_row(pla: PLA, row: str) -> None:
    fmt = pla.fmt
    out_parts = fmt.parts[-1]
    compact = row.replace(" ", "")
    if "|" in compact:
        tokens = compact.split("|")
        binary_part = tokens[0]
        mv_tokens = tokens[1:]
    else:
        binary_part = compact[:pla.num_binary]
        rest = compact[pla.num_binary:]
        mv_tokens = []
        pos = 0
        for p in fmt.parts[pla.num_binary:]:
            mv_tokens.append(rest[pos:pos + p])
            pos += p
        if pos != len(rest):
            raise ValueError(f"row {row!r}: wrong total width")
    if len(binary_part) != pla.num_binary:
        raise ValueError(f"row {row!r}: wrong binary field width")
    fields = [_parse_binary_field(ch) for ch in binary_part]
    for tok, p in zip(mv_tokens[:-1], fmt.parts[pla.num_binary:-1]):
        if len(tok) != p or set(tok) - {"0", "1"}:
            raise ValueError(f"row {row!r}: bad MV token {tok!r}")
        fields.append(int(tok[::-1], 2))
    out_tok = mv_tokens[-1]
    if len(out_tok) != out_parts:
        raise ValueError(f"row {row!r}: bad output field width")
    on_field = 0
    dc_field = 0
    off_field = 0
    for j, ch in enumerate(out_tok):
        if ch in ("1", "4"):
            on_field |= 1 << j
        elif ch in ("-", "2", "~"):
            dc_field |= 1 << j
        elif ch == "0":
            off_field |= 1 << j
        else:
            raise ValueError(f"row {row!r}: bad output character {ch!r}")
    # .type f/fd: 0 means "not in the cover" rather than off-set
    if "r" not in pla.kind:
        off_field = 0
    if on_field:
        pla.on.append(pla.fmt.cube_from_fields(fields + [on_field]))
    if dc_field and "d" in pla.kind:
        pla.dc.append(pla.fmt.cube_from_fields(fields + [dc_field]))
    if off_field:
        pla.off.append(pla.fmt.cube_from_fields(fields + [off_field]))


def _format_row(fmt: Format, num_binary: int, cube: int) -> str:
    chars = []
    for v in range(num_binary):
        chars.append({1: "0", 2: "1", 3: "-", 0: "~"}[fmt.field(cube, v)])
    tokens = ["".join(chars)]
    for v in range(num_binary, fmt.num_vars - 1):
        f = fmt.field(cube, v)
        tokens.append(format(f, f"0{fmt.parts[v]}b")[::-1])
    out = fmt.field(cube, fmt.num_vars - 1)
    tokens.append("".join("1" if (out >> j) & 1 else "0"
                          for j in range(fmt.parts[-1])))
    return " ".join(tokens)


def write_pla(cover: Cover, num_binary: int,
              dc: Optional[Cover] = None,
              input_labels: Optional[List[str]] = None,
              output_labels: Optional[List[str]] = None) -> str:
    """Serialize covers to espresso PLA text (``.type fd``)."""
    fmt = cover.fmt
    lines = []
    all_binary = fmt.num_vars - 1 == num_binary
    if all_binary:
        lines.append(f".i {num_binary}")
        lines.append(f".o {fmt.parts[-1]}")
    else:
        sizes = " ".join(str(p) for p in fmt.parts[num_binary:])
        lines.append(f".mv {fmt.num_vars} {num_binary} {sizes}")
    if input_labels:
        lines.append(".ilb " + " ".join(input_labels))
    if output_labels:
        lines.append(".ob " + " ".join(output_labels))
    lines.append(f".p {len(cover) + (len(dc) if dc else 0)}")
    lines.append(".type fd")
    for cube in cover.cubes:
        lines.append(_format_row(fmt, num_binary, cube))
    if dc:
        for cube in dc.cubes:
            out = fmt.field(cube, fmt.num_vars - 1)
            row = _format_row(fmt, num_binary, cube)
            head, _, _tail = row.rpartition(" ")
            dc_tok = "".join("-" if (out >> j) & 1 else "0"
                             for j in range(fmt.parts[-1]))
            lines.append(f"{head} {dc_tok}")
    lines.append(".e")
    return "\n".join(lines) + "\n"
