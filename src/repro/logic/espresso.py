"""ESPRESSO-style heuristic two-level minimization (EXPAND / REDUCE / IRREDUNDANT).

Two validity oracles are supported for EXPAND:

* an explicit off-set (as in ``minimize(on, dc, off)`` used by NOVA's
  symbolic minimization loop) — a raise is legal when the grown cube
  stays at distance >= 1 from every off-cube;
* no off-set — a raise is legal when the grown cube is still an
  implicant of ``on + dc``, decided by a tautology call.  This avoids
  computing a global complement, which can blow up on wide covers.
"""

from __future__ import annotations

from typing import Optional

from repro.logic.cover import Cover


def _is_implicant(cube: int, on_dc: Cover) -> bool:
    return on_dc.contains_cube(cube)


def _valid_against_off(cube: int, off: Cover) -> bool:
    fmt = off.fmt
    for o in off.cubes:
        if fmt.intersects(cube, o):
            return False
    return True


def _expand_cube(cube: int, on_dc: Cover, off: Optional[Cover]) -> int:
    """Grow *cube* to a prime implicant by raising one position at a time.

    Raising is monotone: once a raise fails it fails for every superset,
    so a single pass over the candidate positions yields a prime.
    Positions blocked by fewer off-cubes are tried first so large
    expansions happen early.
    """
    fmt = on_dc.fmt if off is None else off.fmt
    candidates = [b for b in range(fmt.width) if not (cube >> b) & 1]
    if off is not None:
        # order by how many off-cubes conflict with each single raise
        def blocking(bit: int) -> int:
            grown = cube | (1 << bit)
            return sum(1 for o in off.cubes if fmt.intersects(grown, o))

        candidates.sort(key=blocking)
    for bit in candidates:
        grown = cube | (1 << bit)
        if off is not None:
            ok = _valid_against_off(grown, off)
        else:
            ok = _is_implicant(grown, on_dc)
        if ok:
            cube = grown
    return cube


def expand(f: Cover, on_dc: Cover, off: Optional[Cover] = None) -> Cover:
    """Expand every cube of *f* to a prime, dropping newly covered cubes."""
    fmt = f.fmt
    # expand small cubes first: they benefit the most and their primes
    # tend to swallow neighbouring cubes
    order = sorted(range(len(f.cubes)), key=lambda i: fmt.minterm_count(f.cubes[i]))
    covered = [False] * len(f.cubes)
    out = Cover(fmt)
    for i in order:
        if covered[i]:
            continue
        prime = _expand_cube(f.cubes[i], on_dc, off)
        out.cubes.append(prime)
        for j in order:
            if not covered[j] and f.cubes[j] & ~prime == 0:
                covered[j] = True
    return out.single_cube_containment()


def irredundant(f: Cover, dc: Optional[Cover] = None) -> Cover:
    """Greedy irredundant cover: drop cubes covered by the rest of f + dc."""
    fmt = f.fmt
    cubes = sorted(f.cubes, key=fmt.minterm_count)  # try dropping small first
    kept = list(cubes)
    i = 0
    while i < len(kept):
        c = kept[i]
        rest = Cover(fmt)
        rest.cubes = kept[:i] + kept[i + 1:]
        if dc is not None:
            rest.cubes = rest.cubes + list(dc.cubes)
        if rest.contains_cube(c):
            kept.pop(i)
        else:
            i += 1
    out = Cover(fmt)
    out.cubes = kept
    return out


def reduce_cover(f: Cover, dc: Optional[Cover] = None) -> Cover:
    """Replace each cube by its maximal reduction (SCCC rule).

    ``c_new = c  ∩  supercube(complement((F - c + D) cofactored by c))``.
    Cubes are processed in place so later reductions see earlier ones,
    keeping the cover equivalent to the original function at all times.
    """
    fmt = f.fmt
    # reduce large cubes first, as espresso does
    cubes = sorted(f.cubes, key=fmt.minterm_count, reverse=True)
    for i in range(len(cubes)):
        c = cubes[i]
        rest = Cover(fmt)
        rest.cubes = cubes[:i] + cubes[i + 1:]
        if dc is not None:
            rest.cubes = rest.cubes + list(dc.cubes)
        comp = rest.cofactor(c).complement()
        if not comp.cubes:
            cubes[i] = 0  # cube entirely covered by the rest: drop
            continue
        sccc = 0
        for k in comp.cubes:
            sccc |= k
        cubes[i] = c & sccc
    out = Cover(fmt)
    for c in cubes:
        if c and not fmt.is_empty(c):
            out.cubes.append(c)
    return out


def espresso(
    on: Cover,
    dc: Optional[Cover] = None,
    off: Optional[Cover] = None,
    max_iter: int = 10,
    effort: str = "full",
) -> Cover:
    """Heuristically minimize ``on`` against optional ``dc`` / explicit ``off``.

    Returns a prime, (greedily) irredundant cover of the function whose
    on-set is covered by the result plus ``dc`` and which never
    intersects ``off``.  ``effort='low'`` runs a single
    expand+irredundant pass (used for the very largest benchmark
    machines where the reduce/expand iteration is too slow in pure
    Python).
    """
    fmt = on.fmt
    if dc is None:
        dc = Cover(fmt)
    on_dc = on + dc
    f = on.single_cube_containment()
    f = expand(f, on_dc, off)
    f = irredundant(f, dc)
    if effort == "low":
        return f
    best = f
    best_cost = f.cost()
    for _ in range(max_iter):
        f = reduce_cover(best, dc)
        f = expand(f, on_dc, off)
        f = irredundant(f, dc)
        cost = f.cost()
        if cost < best_cost:
            best, best_cost = f, cost
        else:
            break
    return best


def minimize(on: Cover, dc: Cover, off: Cover, effort: str = "full") -> Cover:
    """NOVA-style ``minimize(on, dc, off)`` with an explicit off-set."""
    return espresso(on, dc=dc, off=off, effort=effort)
